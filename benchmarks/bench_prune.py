"""Branch-and-bound pruning: end-to-end model-tuner speedup.

Not a paper table -- an engineering property of the reproduction: the
admissible strategy bounds (:mod:`repro.engine.bounds`) let the model
tuner skip lowering/optimizing/scoring most of the schedule space while
returning a bit-identical winner.  This bench times ``tune_with_model``
with pruning off and on over a GEMM sweep (cold caches both ways,
calibration warmed outside the timed region), checks the winners match,
and writes the numbers to ``BENCH_prune.json``.

Run standalone (the CI smoke job does, on tiny spaces)::

    PYTHONPATH=src python benchmarks/bench_prune.py --quick
    PYTHONPATH=src python benchmarks/bench_prune.py --out BENCH_prune.json

or through pytest like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_prune.py

The committed ``BENCH_prune.json`` is a full-space run; the aggregate
speedup gate is 3x there (1x in ``--quick`` mode, where spaces are too
small to amortize the bound computation).
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.autotuner.calibrate import default_coeffs
from repro.autotuner.model_tuner import tune_with_model
from repro.engine import clear_feeds_cache, clear_shared_memo
from repro.ops.gemm import make_compute as gemm_compute
from repro.ops.gemm import make_space as gemm_space
from repro.primitives.microkernel import clear_schedule_memo

#: the full sweep: the square Tab. 2 size plus three skewed shapes
#: whose spaces stress different bound regimes (DMA-bound tall/skinny,
#: compute-bound deep-K).
FULL_SHAPES = [(512, 512, 512), (256, 384, 128), (128, 128, 640), (96, 2048, 96)]

#: tiny sweep for CI smoke: quick spaces, seconds not minutes.
QUICK_SHAPES = [(128, 128, 128), (96, 256, 64)]


def _cold_caches():
    """Both timed runs start from the same cold process-level state."""
    clear_shared_memo()
    clear_feeds_cache()
    clear_schedule_memo()


def run_sweep(shapes, *, quick_space: bool) -> dict:
    default_coeffs()  # calibration is shared state, warm it outside timing
    rows = []
    total_off = total_on = 0.0
    for m, n, k in shapes:
        compute = gemm_compute(m, n, k)
        space = gemm_space(compute, quick=quick_space)
        walls = {}
        results = {}
        for prune in (False, True):
            _cold_caches()
            t0 = time.perf_counter()
            results[prune] = tune_with_model(
                compute, space, run_best=True, prune=prune
            )
            walls[prune] = time.perf_counter() - t0
        off, on = results[False], results[True]
        total_off += walls[False]
        total_on += walls[True]
        rows.append(
            {
                "shape": f"{m}x{n}x{k}",
                "space_size": space.size(),
                "evaluated_off": off.evaluated,
                "evaluated_on": on.evaluated,
                "bound_pruned": on.metrics.bound_pruned,
                "spm_pruned": on.metrics.spm_pruned,
                "prune_batches": len(on.metrics.prune_batches),
                "wall_off_s": round(walls[False], 3),
                "wall_on_s": round(walls[True], 3),
                "speedup": round(walls[False] / walls[True], 2),
                "candidates_per_s_off": round(
                    off.evaluated / walls[False], 1
                ),
                "candidates_per_s_on": round(on.evaluated / walls[True], 1),
                "winner_identical": (
                    off.best.candidate.strategy.decisions
                    == on.best.candidate.strategy.decisions
                ),
                "best_cycles": on.best.measured_cycles,
            }
        )
    return {
        "bench": "prune",
        "mode": "quick" if quick_space else "full",
        "shapes": [r["shape"] for r in rows],
        "rows": rows,
        "total_wall_off_s": round(total_off, 3),
        "total_wall_on_s": round(total_on, 3),
        "aggregate_speedup": round(total_off / total_on, 2),
        "all_winners_identical": all(r["winner_identical"] for r in rows),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny shapes + quick spaces (the CI smoke gate)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_prune.json",
        metavar="PATH",
        help="where to write the JSON results",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail below this aggregate speedup (default: 3.0 full, "
             "1.0 quick)",
    )
    args = parser.parse_args(argv)
    gate = args.min_speedup if args.min_speedup is not None else (
        1.0 if args.quick else 3.0
    )

    shapes = QUICK_SHAPES if args.quick else FULL_SHAPES
    result = run_sweep(shapes, quick_space=args.quick)
    result["min_speedup_gate"] = gate
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")

    for row in result["rows"]:
        print(
            f"{row['shape']:>14}  space {row['space_size']:>5}  "
            f"{row['wall_off_s']:>7.2f}s -> {row['wall_on_s']:>6.2f}s  "
            f"({row['speedup']:.1f}x)  pruned {row['bound_pruned']}"
            f"(+{row['spm_pruned']} spm)  "
            f"winner {'OK' if row['winner_identical'] else 'DIFFERS'}"
        )
    print(
        f"aggregate: {result['total_wall_off_s']:.1f}s -> "
        f"{result['total_wall_on_s']:.1f}s "
        f"({result['aggregate_speedup']:.2f}x, gate {gate}x)"
    )

    if not result["all_winners_identical"]:
        print("FAIL: pruned search returned a different winner", file=sys.stderr)
        return 1
    if result["aggregate_speedup"] < gate:
        print(
            f"FAIL: aggregate speedup {result['aggregate_speedup']}x "
            f"below the {gate}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


def test_prune_speedup(benchmark, scale, show):
    """Pytest wrapper so ``pytest benchmarks/`` exercises the same
    sweep (tiny shapes at smoke scale)."""
    quick = scale.name != "full"
    shapes = QUICK_SHAPES if quick else FULL_SHAPES
    result = benchmark.pedantic(
        lambda: run_sweep(shapes, quick_space=quick), rounds=1, iterations=1
    )
    lines = [
        f"prune bench ({result['mode']}): aggregate "
        f"{result['aggregate_speedup']}x "
        f"({result['total_wall_off_s']}s -> {result['total_wall_on_s']}s)"
    ]
    for row in result["rows"]:
        lines.append(
            f"  {row['shape']}: {row['speedup']}x, "
            f"pruned {row['bound_pruned']}/{row['space_size']}"
        )
    show("\n".join(lines))
    assert result["all_winners_identical"]
    assert result["aggregate_speedup"] >= (1.0 if quick else 3.0)


if __name__ == "__main__":
    sys.exit(main())
