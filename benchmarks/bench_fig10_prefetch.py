"""Fig. 10: automatic software prefetching (double buffering) vs the
same schedules without latency hiding.

Paper expectation: +65.4% average improvement even on the
best-performing baseline configurations.
"""

import statistics

from repro.harness import experiments as E


def test_fig10_prefetch(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.fig10_prefetch(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.table())
    imps = [r.improvement for r in result.rows]
    assert imps
    # no configuration regresses, and the mean gain is substantial
    assert all(i > -0.01 for i in imps)
    assert statistics.mean(imps) > 0.15
