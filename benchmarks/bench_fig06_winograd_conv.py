"""Fig. 6: Winograd CONV, swATOP vs the xMath-based manual pipeline.

Paper expectation: average speedups 2.20/2.35/2.33 for batch 1/32/128.
"""

import statistics

from repro.harness import experiments as E


def test_fig6_winograd_conv(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.fig6_winograd_conv(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.table())
    speedups = result.speedups()
    assert speedups
    # swATOP wins everywhere, by a clearly super-unity average
    assert all(s > 1.0 for s in speedups)
    assert statistics.mean(speedups) > 1.3
