"""Fig. 11: lightweight zero-padding vs traditional whole-tensor
padding on unaligned GEMMs.

Paper expectation: the lightweight scheme reduces boundary-processing
overhead to below 5%, while the traditional full copy costs far more.
"""

import statistics

from repro.harness import experiments as E


def test_fig11_padding(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.fig11_padding(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.table())
    assert result.rows
    light = [r.lightweight_overhead for r in result.rows]
    trad = [r.traditional_overhead for r in result.rows]
    # lightweight dramatically cheaper than the traditional copy
    assert statistics.mean(light) < statistics.mean(trad) / 3
    # and small in absolute terms (paper: <5%; margin for scaled shapes)
    assert statistics.mean(light) < 0.15
