"""Tab. 3: tuning time of the black-box vs the model-based autotuner.

Paper expectation: black-box brute force needs hours per layer and
days per network; the performance-model-based tuner needs seconds to
minutes -- more than two orders of magnitude faster (454x/353x/365x on
VGG16/ResNet/Yolo).
"""

from repro.harness import experiments as E


def test_tab3_tuning_time(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.tab3_tuning_time(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.table())
    assert result.rows
    speedups = [r.speedup for r in result.rows]
    # two-orders-of-magnitude shape: every layer tunes >=10x faster
    # (small scaled-down spaces bound the per-layer ratio) and the
    # aggregate lands far beyond that
    assert all(s > 10 for s in speedups)
    total_bb = sum(r.blackbox_seconds for r in result.rows)
    total_mm = sum(r.model_seconds for r in result.rows)
    assert total_bb / total_mm > 50
