"""Shared benchmark fixtures.

Every benchmark regenerates one table/figure of the paper through the
harness drivers and prints the rendered table.  Because pytest captures
stdout of passing tests, each table is *also* appended to
``bench_tables.txt`` at the repository root, so a plain
``pytest benchmarks/ --benchmark-only`` run still leaves the full
paper-vs-measured tables on disk.  The ``REPRO_SCALE`` environment
variable selects the evaluation scale (``smoke``/``default``/``full``);
see DESIGN.md Sec. 6 and EXPERIMENTS.md.
"""

import datetime
from pathlib import Path

import pytest

from repro.harness.scales import get_scale

_TABLES_PATH = Path(__file__).resolve().parents[1] / "bench_tables.txt"


@pytest.fixture(scope="session")
def scale():
    sc = get_scale()
    print(f"\n[repro] running benchmarks at scale {sc.name!r}")
    stamp = datetime.datetime.now().isoformat(timespec="seconds")
    with _TABLES_PATH.open("a") as fh:
        fh.write(f"\n{'=' * 72}\nbenchmark session {stamp} "
                 f"(scale {sc.name})\n{'=' * 72}\n")
    return sc


@pytest.fixture
def show():
    def _show(table):
        text = table.render() if hasattr(table, "render") else str(table)
        print("\n" + text + "\n")
        with _TABLES_PATH.open("a") as fh:
            fh.write("\n" + text + "\n")
        return text

    return _show
