"""Engine parallelism: black-box evaluation fanned out over workers.

Not a paper table -- an engineering property of the reproduction: the
evaluation engine can execute candidate batches on worker processes,
and the outcome (rankings, best candidate, measured cycles) is
bit-identical to a serial run.  The wall-clock benefit scales with the
host's core count; the comparison below records the measured times on
whatever this machine is, alongside the identity check that actually
matters.
"""

from repro.autotuner import tune_blackbox
from repro.harness.report import Table
from repro.ops.gemm import make_compute as gemm_compute
from repro.ops.gemm import make_space as gemm_space
from repro.workloads import listing2_shapes

#: first Listing-2 shape (200^3, unaligned) -- small enough that a
#: >=50-candidate brute force stays in benchmark time.
CANDIDATES = 64


def test_engine_workers(benchmark, scale, show):
    shape = listing2_shapes()[0]
    compute = gemm_compute(shape.m, shape.n, shape.k)
    space = gemm_space(compute)

    def run_both():
        serial = tune_blackbox(
            compute, space, limit=CANDIDATES, workers=1, keep_scores=True
        )
        parallel = tune_blackbox(
            compute, space, limit=CANDIDATES, workers=2, keep_scores=True
        )
        return serial, parallel

    serial, parallel = benchmark.pedantic(run_both, rounds=1, iterations=1)

    t = Table(
        f"engine workers: black-box GEMM {shape.m}x{shape.n}x{shape.k} "
        f"({serial.evaluated} candidates)",
        ["workers", "evaluated", "wall", "best cycles"],
    )
    for r in (serial, parallel):
        t.add(
            r.metrics.workers if r.metrics else 1, r.evaluated,
            f"{r.wall_seconds:.2f}s", f"{r.best.measured_cycles:.0f}",
        )
    same_best = (
        parallel.best.candidate.strategy.decisions
        == serial.best.candidate.strategy.decisions
    )
    t.note(f"identical best candidate: {same_best}")
    t.note(
        "speedup tracks physical cores; order and scores are "
        "bit-identical by construction"
    )
    show(t)

    assert serial.evaluated >= 50
    assert same_best
    assert [s.measured_cycles for s in parallel.scores] == [
        s.measured_cycles for s in serial.scores
    ]
