"""Chaos smoke: fault-injected tuning must match the fault-free run.

Not a paper table -- the resilience gate of the reproduction: with a
seeded :class:`repro.faults.FaultPlan` injecting worker crashes and
eval-cache corruption, a model-tuner GEMM sweep (supervised parallel
evaluation, persistent eval cache) must complete and return the same
winner as the fault-free run, with every recovery decision accounted
for in the engine metrics.  Results, including the resilience counters,
go to ``BENCH_chaos.json``.

Run standalone (the CI chaos-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_chaos.py --quick
    PYTHONPATH=src python benchmarks/bench_chaos.py --out BENCH_chaos.json

or through pytest like the other benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.autotuner.calibrate import default_coeffs
from repro.autotuner.model_tuner import tune_with_model
from repro.engine import clear_feeds_cache, clear_shared_memo, set_eval_cache
from repro.faults import FaultPlan, set_fault_plan
from repro.ops.gemm import make_compute as gemm_compute
from repro.ops.gemm import make_space as gemm_space
from repro.primitives.microkernel import clear_schedule_memo

FULL_SHAPES = [(512, 512, 512), (256, 384, 128)]
QUICK_SHAPES = [(128, 128, 128), (96, 256, 64)]

#: the injected failure mix: a 2% worker-crash rate exercises pool
#: teardown/rebuild and isolation redispatch, a 25% flush-corruption
#: rate exercises torn-write recovery of the eval cache.  Transient by
#: construction (retries re-draw), so the winner must not move.
CHAOS_PLAN = FaultPlan(seed=7, crash=0.02, corrupt=0.25)


def _cold_caches():
    clear_shared_memo()
    clear_feeds_cache()
    clear_schedule_memo()


def run_sweep(shapes, *, quick_space: bool, workers: int) -> dict:
    default_coeffs()  # calibration is shared state, warm it outside timing
    rows = []
    total_clean = total_chaos = 0.0
    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as tmp:
        for m, n, k in shapes:
            compute = gemm_compute(m, n, k)
            space = gemm_space(compute, quick=quick_space)
            results = {}
            walls = {}
            for mode, plan in (("clean", None), ("chaos", CHAOS_PLAN)):
                _cold_caches()
                set_fault_plan(plan)
                store = set_eval_cache(
                    Path(tmp) / f"evals-{mode}-{m}x{n}x{k}.json"
                )
                t0 = time.perf_counter()
                try:
                    results[mode] = tune_with_model(
                        compute,
                        space,
                        run_best=True,
                        prune=True,
                        workers=workers,
                    )
                finally:
                    set_fault_plan(None)
                    set_eval_cache(None)
                walls[mode] = time.perf_counter() - t0
                del store
            clean, chaos = results["clean"], results["chaos"]
            total_clean += walls["clean"]
            total_chaos += walls["chaos"]
            metrics = chaos.metrics
            rows.append(
                {
                    "shape": f"{m}x{n}x{k}",
                    "space_size": space.size(),
                    "evaluated_clean": clean.evaluated,
                    "evaluated_chaos": chaos.evaluated,
                    "wall_clean_s": round(walls["clean"], 3),
                    "wall_chaos_s": round(walls["chaos"], 3),
                    "retries": metrics.retries,
                    "quarantined": metrics.quarantined,
                    "degraded_batches": metrics.degraded_batches,
                    "events": metrics.event_counts(),
                    "winner_identical": (
                        clean.best.candidate.strategy.decisions
                        == chaos.best.candidate.strategy.decisions
                    ),
                    "cycles_identical": (
                        clean.best.measured_cycles
                        == chaos.best.measured_cycles
                    ),
                }
            )
    return {
        "bench": "chaos",
        "mode": "quick" if quick_space else "full",
        "plan": CHAOS_PLAN.describe(),
        "workers": workers,
        "shapes": [r["shape"] for r in rows],
        "rows": rows,
        "total_wall_clean_s": round(total_clean, 3),
        "total_wall_chaos_s": round(total_chaos, 3),
        "total_retries": sum(r["retries"] for r in rows),
        "total_quarantined": sum(r["quarantined"] for r in rows),
        "all_winners_identical": all(r["winner_identical"] for r in rows),
        "all_cycles_identical": all(r["cycles_identical"] for r in rows),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny shapes + quick spaces (the CI chaos-smoke gate)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the supervised pool (default: 2, "
             "so injected crashes really break a pool)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_chaos.json",
        metavar="PATH",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    shapes = QUICK_SHAPES if args.quick else FULL_SHAPES
    result = run_sweep(shapes, quick_space=args.quick, workers=args.workers)
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")

    for row in result["rows"]:
        events = ", ".join(
            f"{kind} {count}" for kind, count in sorted(row["events"].items())
        ) or "none"
        print(
            f"{row['shape']:>14}  space {row['space_size']:>5}  "
            f"{row['wall_clean_s']:>6.2f}s -> {row['wall_chaos_s']:>6.2f}s  "
            f"events: {events}  "
            f"winner {'OK' if row['winner_identical'] else 'DIFFERS'}"
        )
    print(
        f"plan {result['plan']}: {result['total_retries']} retries, "
        f"{result['total_quarantined']} quarantined, winners "
        f"{'identical' if result['all_winners_identical'] else 'DIFFER'}"
    )

    if not result["all_winners_identical"]:
        print("FAIL: chaos run returned a different winner", file=sys.stderr)
        return 1
    if not result["all_cycles_identical"]:
        print("FAIL: chaos run returned different cycles", file=sys.stderr)
        return 1
    return 0


def test_chaos_winner_identical(benchmark, scale, show):
    """Pytest wrapper so ``pytest benchmarks/`` exercises the same
    sweep (tiny shapes at smoke scale)."""
    quick = scale.name != "full"
    shapes = QUICK_SHAPES if quick else FULL_SHAPES
    result = benchmark.pedantic(
        lambda: run_sweep(shapes, quick_space=quick, workers=2),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"chaos bench ({result['mode']}, plan {result['plan']}): "
        f"{result['total_retries']} retries, "
        f"{result['total_quarantined']} quarantined"
    ]
    for row in result["rows"]:
        lines.append(
            f"  {row['shape']}: winner "
            f"{'OK' if row['winner_identical'] else 'DIFFERS'}, "
            f"events {row['events']}"
        )
    show("\n".join(lines))
    assert result["all_winners_identical"]
    assert result["all_cycles_identical"]
    assert result["total_quarantined"] == 0  # the mix is transient-only


if __name__ == "__main__":
    sys.exit(main())
