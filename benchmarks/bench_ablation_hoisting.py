"""Ablation: DMA hoisting (Sec. 4.5.1's redundant-copy elimination).

"To reduce redundant data copy, DMA nodes are injected into the IR as
far as possible from gemm_op."  This bench disables exactly that and
measures the cost on schedules where an operand tile is invariant
across an outer loop (a full-K, full-N panel of B re-fetched for every
M tile): without hoisting the invariant transfer is re-issued each
iteration.
"""

import numpy as np

from repro.autotuner import synthetic_feeds
from repro.codegen.executor import CompiledKernel
from repro.dsl import ScheduleSpace
from repro.harness.report import Table
from repro.ops.gemm import make_compute
from repro.optimizer.dma_inference import infer_dma
from repro.optimizer.prefetch import apply_prefetch
from repro.scheduler.lower import lower_strategy

#: (M, N, K, tile_M): K and N untiled so the B panel is loop-invariant
#: across the M loop.
CASES = [
    (1024, 128, 128, 64),
    (2048, 64, 256, 128),
    (512, 256, 128, 64),
]


def _run(m, n, k, tm, hoist: bool) -> float:
    compute = make_compute(m, n, k)
    sp = ScheduleSpace(compute)
    sp.split("M", [tm])
    sp.split("N", [n])
    sp.split("K", [k])
    kernel = lower_strategy(compute, sp.strategy())
    kernel = infer_dma(kernel, compute, hoist=hoist)
    kernel = apply_prefetch(kernel)
    ck = CompiledKernel(kernel, compute)
    return ck.run(synthetic_feeds(compute)).report.cycles


def test_ablation_dma_hoisting(benchmark, show):
    def run():
        return [
            (m, n, k, tm, _run(m, n, k, tm, True), _run(m, n, k, tm, False))
            for m, n, k, tm in CASES
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        "Ablation: DMA hoisting removed (same schedule)",
        ["shape (tileM)", "hoisted", "unhoisted", "slowdown"],
    )
    for m, n, k, tm, hoisted, unhoisted in rows:
        t.add(
            f"{m}x{n}x{k} ({tm})",
            f"{hoisted:.3g}", f"{unhoisted:.3g}",
            f"{unhoisted / hoisted:.2f}x",
        )
    t.note(
        "the loop-invariant B panel is fetched once when hoisted, once "
        "per M tile when not"
    )
    show(t)
    # removing hoisting must never help, and must visibly hurt
    assert all(u >= h * 0.999 for *_, h, u in rows)
    assert any(u > h * 1.1 for *_, h, u in rows)
