"""Fig. 7: explicit CONV, swATOP vs naive im2col + xMath.

Paper expectation: swATOP faster in 40/29/32 of 43 cases per batch
size; best speedup 15.2x; small-batch speedups exceed big-batch ones.
"""

from repro.harness import experiments as E


def test_fig7_explicit_conv(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.fig7_explicit_conv(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.table())
    speedups = result.speedups()
    assert speedups
    wins = sum(s > 1.0 for s in speedups)
    assert wins / len(speedups) >= 0.6  # majority, losses allowed
