"""Fig. 5: implicit CONV, swATOP vs swDNN on VGG16/ResNet/Yolo layers.

Paper expectation: swATOP is never slower than swDNN; average speedup
1.44 (batch 32) and 1.32 (batch 128); batch 1 has no manual kernel but
swATOP reaches big-batch-class efficiency.
"""

from repro.harness import experiments as E


def test_fig5_implicit_conv(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.fig5_implicit_conv(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.table())
    speedups = result.speedups()
    assert speedups, "no comparable layers ran"
    # shape of the result: swATOP wins the clear majority of layers
    wins = sum(s > 0.99 for s in speedups)
    assert wins / len(speedups) >= 0.7
    # batch-1 rows exist and executed even without a manual kernel
    assert any(r.batch == 1 and r.speedup is None for r in result.rows)
