"""Ablation (extension beyond the paper): Winograd tile-size selection.

The paper fixes F(2x2, 3x3); real libraries also ship F(4x4, 3x3)
(4x multiply reduction, heavier transforms) and choose per shape.  Our
``variant="auto"`` tunes both and keeps the faster -- the same
"dynamically picks the optimal tensorized primitives" policy swATOP
applies across conv methods, one level deeper.
"""

import numpy as np

from repro.harness.report import Table
from repro.harness.runner import run_conv_winograd
from repro.ops.conv_common import ConvParams

#: channel-heavy shapes favour F(4x4) (the GEMM savings dominate);
#: spatial-heavy small-channel shapes favour F(2x2) (transform cost).
CASES = [
    ConvParams(batch=4, ni=64, no=64, ri=56, ci=56, kr=3, kc=3, pad=1),
    ConvParams(batch=16, ni=128, no=128, ri=28, ci=28, kr=3, kc=3, pad=1),
    ConvParams(batch=16, ni=256, no=256, ri=14, ci=14, kr=3, kc=3, pad=1),
]


def test_ablation_winograd_variant(benchmark, show):
    rng = np.random.default_rng(0)

    def run():
        rows = []
        for p in CASES:
            x = rng.standard_normal(p.input_shape).astype(np.float32)
            w = rng.standard_normal(p.weight_shape).astype(np.float32)
            f22 = run_conv_winograd(p, x, w, quick=True, variant="f22",
                                    collect_output=False)
            f44 = run_conv_winograd(p, x, w, quick=True, variant="f44",
                                    collect_output=False)
            rows.append((p, f22.cycles, f44.cycles))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        "Ablation: Winograd F(2x2) vs F(4x4) per shape",
        ["shape", "F(2x2,3x3)", "F(4x4,3x3)", "winner", "margin"],
    )
    winners = set()
    for p, c22, c44 in rows:
        winner = "f44" if c44 < c22 else "f22"
        winners.add(winner)
        t.add(
            f"Ni{p.ni} R{p.ro} B{p.batch}",
            f"{c22:.3g}", f"{c44:.3g}", winner,
            f"{max(c22, c44) / min(c22, c44):.2f}x",
        )
    t.note("variant='auto' tunes both and keeps the faster")
    show(t)
    # the crossover is real: each variant wins somewhere in the set
    assert winners == {"f22", "f44"}
