"""Fig. 8: absolute throughput/efficiency of the three CONV methods
over the versatility sweep.

Paper expectation: implicit ~70% of peak (>2.1 TFLOPS) for training
batches; Winograd effective efficiency can exceed 100% (direct-conv
FLOP normalisation); explicit is the lowest of the three.
"""

import statistics

from repro.harness import experiments as E


def test_fig8_efficiency(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.tab1_fig8_versatility(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.fig8())
    by = result.by_method_batch()
    train_batches = [b for b in scale.batches if b >= 32]
    if train_batches:
        b = train_batches[0]
        imp = [r.swatop_eff for r in by.get(("implicit", b), [])]
        exp = [r.swatop_eff for r in by.get(("explicit", b), [])]
        if imp:
            assert statistics.mean(imp) > 0.2  # well off the floor
        if imp and exp:
            # explicit trails implicit on average (the paper's ordering)
            assert statistics.mean(exp) <= statistics.mean(imp) * 1.2
