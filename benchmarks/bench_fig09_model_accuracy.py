"""Fig. 9: performance of the model-picked schedule vs the true
brute-force optimum.

Paper expectation: average performance loss below 2%, worst case below
8% -- the static model is accurate enough to replace exhaustive search.
"""

import statistics

from repro.harness import experiments as E


def test_fig9_model_accuracy(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.fig9_model_accuracy(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.table())
    ratios = [r.ratio for r in result.rows]
    assert ratios
    mean_loss = 1 - statistics.mean(ratios)
    worst_loss = 1 - min(ratios)
    # small average loss; worst case bounded (paper: <2% / <8%; we allow
    # a margin for the scaled-down shapes)
    assert mean_loss < 0.08
    assert worst_loss < 0.20
