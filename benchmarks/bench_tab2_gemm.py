"""Tab. 2: GEMM, swATOP vs xMath over the Listing-2 shapes.

Paper expectation: swATOP faster in most cases (aligned +31.6%,
unaligned +49.8% average gains); xMath keeps a small edge (-6.6%) on
its square sweet spot, and loses little where it loses.
"""

from repro.harness import experiments as E
from repro.harness.report import speedup_summary


def test_tab2_gemm(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.tab2_gemm(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.table())
    unaligned = [r.speedup for r in result.rows if not r.aligned]
    aligned = [r.speedup for r in result.rows if r.aligned]
    assert unaligned and aligned
    s_un = speedup_summary(unaligned)
    # unaligned: swATOP dominates (boundary processing vs full padding)
    assert s_un["faster"] / s_un["cases"] >= 0.9
    assert s_un["avg_gain"] > 0.2
    # aligned: mixed outcome with bounded losses, as in the paper
    s_al = speedup_summary(aligned)
    assert s_al["avg_loss"] < 0.25
