"""Ablations beyond the paper: what each schedule-space dimension buys.

DESIGN.md calls out three swATOP design choices; these benches measure
the cost of removing each from the GEMM schedule space:

* **layout transformation** (SPM operand layouts, Sec. 4.3.2),
* **vectorization transformation** (vec-M vs vec-N, Sec. 4.3.3),
* **DMA hoisting** (kept implicitly: quantified via loop-order choice).
"""

import numpy as np
import pytest

from repro.autotuner import tune_with_model
from repro.harness.report import Table
from repro.ops.gemm import make_compute, make_space


def _tuned_cycles(m, n, k, *, layouts=True, vectorization=True, quick=True):
    cd = make_compute(m, n, k)
    sp = make_space(cd, quick=quick, layouts=layouts, vectorization=vectorization)
    return tune_with_model(cd, sp, run_best=True).report.cycles


SHAPES = [(512, 512, 512), (64, 2048, 256), (2048, 64, 256)]


def test_ablation_vectorization(benchmark, show):
    def run():
        rows = []
        for m, n, k in SHAPES:
            full = _tuned_cycles(m, n, k)
            frozen = _tuned_cycles(m, n, k, vectorization=False)
            rows.append((m, n, k, full, frozen))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        "Ablation: vectorization choice removed (vec-M forced)",
        ["shape", "full space", "no vec choice", "slowdown"],
    )
    for m, n, k, full, frozen in rows:
        t.add(f"{m}x{n}x{k}", f"{full:.3g}", f"{frozen:.3g}",
              f"{frozen / full:.2f}x")
    show(t)
    # skinny-M shapes need vec-N: freezing the choice must cost there
    skinny = [r for r in rows if r[0] < r[1]]
    assert any(frozen > full * 1.1 for *_, full, frozen in skinny)


def test_ablation_layouts(benchmark, show):
    def run():
        rows = []
        for m, n, k in SHAPES:
            full = _tuned_cycles(m, n, k)
            frozen = _tuned_cycles(m, n, k, layouts=False)
            rows.append((m, n, k, full, frozen))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        "Ablation: SPM layout choice removed",
        ["shape", "full space", "no layout choice", "slowdown"],
    )
    for m, n, k, full, frozen in rows:
        t.add(f"{m}x{n}x{k}", f"{full:.3g}", f"{frozen:.3g}",
              f"{frozen / full:.2f}x")
    show(t)
    # the frozen space is a subset: it can never beat the full space by
    # more than model noise
    assert all(frozen >= full * 0.92 for *_, full, frozen in rows)
