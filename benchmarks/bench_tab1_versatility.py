"""Tab. 1: the Listing-1 versatility sweep over all three methods.

Paper expectation: implicit and Winograd faster than the manual
libraries in every configuration (avg +44..45% / +295..316%); explicit
faster in most (+21..26%) with bounded losses (-17..22%).
"""

from repro.harness import experiments as E
from repro.harness.report import speedup_summary


def test_tab1_versatility(benchmark, scale, show):
    result = benchmark.pedantic(
        lambda: E.tab1_fig8_versatility(scale=scale),
        rounds=1,
        iterations=1,
    )
    show(result.tab1())
    by = result.by_method_batch()
    assert by, "sweep produced no rows"
    # Winograd dominates its baseline across the sweep
    wino = [
        r.speedup
        for (m, _), rows in by.items()
        if m == "winograd"
        for r in rows
        if r.speedup is not None
    ]
    assert wino and sum(s > 1 for s in wino) / len(wino) >= 0.9
    # explicit wins a majority but is allowed losses (the paper's 75%)
    expl = [
        r.speedup
        for (m, _), rows in by.items()
        if m == "explicit"
        for r in rows
        if r.speedup is not None
    ]
    if expl:
        assert sum(s > 1 for s in expl) / len(expl) >= 0.5
