"""Tests for the pipeline-derived micro-kernel cycle model."""

import pytest

from repro.errors import PipelineError
from repro.machine.config import default_config
from repro.primitives.microkernel import (
    ALL_VARIANTS,
    COL_MAJOR,
    ROW_MAJOR,
    KernelVariant,
    block_drain_cycles,
    block_init_cycles,
    cycles_per_k_step,
    schedule_memo_stats,
)


class TestVariantDefinitions:
    def test_eight_variants(self):
        assert len(ALL_VARIANTS) == 8
        assert len({v.name for v in ALL_VARIANTS}) == 8

    def test_validation(self):
        with pytest.raises(PipelineError):
            KernelVariant("diagonal", ROW_MAJOR, "M")
        with pytest.raises(PipelineError):
            KernelVariant(ROW_MAJOR, ROW_MAJOR, "K")

    def test_vec_contiguity_rules(self):
        """vec-M wants A column-major; vec-N wants B row-major
        (Sec. 4.3.2 layout rules)."""
        assert KernelVariant(COL_MAJOR, COL_MAJOR, "M").vec_operand_contiguous
        assert not KernelVariant(ROW_MAJOR, COL_MAJOR, "M").vec_operand_contiguous
        assert KernelVariant(COL_MAJOR, ROW_MAJOR, "N").vec_operand_contiguous
        assert not KernelVariant(COL_MAJOR, COL_MAJOR, "N").vec_operand_contiguous

    def test_names_stable(self):
        v = KernelVariant(COL_MAJOR, ROW_MAJOR, "M")
        assert v.name == "ac_br_vecm"


class TestDerivedCycles:
    def test_contiguous_variants_near_vmad_bound(self):
        """Well-laid-out variants sustain ~1 vmad/cycle: 16 vmads ->
        16-18 cycles per k-step (loop control costs a little)."""
        good = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        assert 16 <= cycles_per_k_step(good) <= 18

    def test_noncontiguous_vec_operand_is_much_slower(self):
        """Scalar load-and-pack roughly doubles the k-step: the effect
        that makes layout transformation worth a schedule dimension."""
        good = cycles_per_k_step(KernelVariant(COL_MAJOR, COL_MAJOR, "M"))
        bad = cycles_per_k_step(KernelVariant(ROW_MAJOR, COL_MAJOR, "M"))
        assert bad >= 1.7 * good

    def test_all_variants_at_least_vmad_bound(self):
        for v in ALL_VARIANTS:
            assert cycles_per_k_step(v) >= 16

    def test_symmetry_between_vec_dims(self):
        """vec-M with (A col, B col) mirrors vec-N with (B row, A row)."""
        m_side = cycles_per_k_step(KernelVariant(COL_MAJOR, COL_MAJOR, "M"))
        n_side = cycles_per_k_step(KernelVariant(ROW_MAJOR, ROW_MAJOR, "N"))
        assert m_side == n_side


class TestInitDrain:
    def test_init_nonzero_and_variant_dependent(self):
        good = block_init_cycles(KernelVariant(COL_MAJOR, COL_MAJOR, "M"))
        bad = block_init_cycles(KernelVariant(ROW_MAJOR, COL_MAJOR, "M"))
        assert good >= 16  # at least the 16 C loads
        assert bad > good

    def test_drain_covers_stores_plus_latency(self):
        cfg = default_config()
        drain = block_drain_cycles(KernelVariant(COL_MAJOR, COL_MAJOR, "M"))
        # 16 stores on one pipe + waiting out the last vmad latency
        assert drain >= 16
        assert drain <= 16 + cfg.latencies["vmad"] + 4

    def test_results_cached(self):
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        assert cycles_per_k_step(v) == cycles_per_k_step(v)


class TestScheduleMemo:
    def test_repeat_queries_hit_the_memo(self):
        v = KernelVariant(COL_MAJOR, ROW_MAJOR, "N")
        cycles_per_k_step(v)  # may miss or hit (shared across tests)
        before = schedule_memo_stats().hits
        cycles_per_k_step(v)
        after = schedule_memo_stats().hits
        assert after == before + 1

    def test_latency_table_splits_memo_entries(self):
        """The old lru_cache keyed on the config object, whose hash
        ignores the latency table -- two configs differing only in vmad
        latency shared one cached cycle count.  The signature-keyed
        memo must keep them apart."""
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        base = default_config()
        slow = base.with_overrides(
            latencies={**base.latencies, "vmad": base.latencies["vmad"] + 32}
        )
        assert slow == base  # dataclass equality is latency-blind...
        assert cycles_per_k_step(v, slow) > cycles_per_k_step(v, base)

    def test_drain_shared_across_variants(self):
        """The store sequence is variant-independent: after one variant
        warmed the memo, every other variant's drain is a pure hit."""
        drains = {block_drain_cycles(v) for v in ALL_VARIANTS}
        assert len(drains) == 1
        before = schedule_memo_stats().hits
        for v in ALL_VARIANTS:
            block_drain_cycles(v)
        assert schedule_memo_stats().hits == before + len(ALL_VARIANTS)
