"""Tests for the spm_gemm primitive: functional exactness and the
structural cycle model."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.config import default_config
from repro.primitives.gemm_kernel import (
    ALL_VARIANTS,
    COL_MAJOR,
    ROW_MAJOR,
    KernelVariant,
    gemm_flops,
    kernel_cycles,
    spm_gemm,
    spm_tile_bytes,
)


def pack(mat: np.ndarray, layout: str, ld: int) -> np.ndarray:
    """Pack a logical matrix into a flat SPM array in the given layout."""
    rows, cols = mat.shape
    if layout == COL_MAJOR:
        flat = np.zeros(ld * cols, dtype=np.float32)
        flat.reshape(cols, ld).T[:rows, :] = mat
    else:
        flat = np.zeros(ld * rows, dtype=np.float32)
        flat.reshape(rows, ld)[:, :cols] = mat
    return flat


class TestFunctional:
    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.name)
    def test_all_variants_compute_exact_product(self, variant):
        rng = np.random.default_rng(0)
        m, n, k = 12, 20, 16
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        c0 = rng.standard_normal((m, n)).astype(np.float32)

        lda = m if variant.a_layout == COL_MAJOR else k
        ldb = k if variant.b_layout == COL_MAJOR else n
        c_layout = COL_MAJOR if variant.vec_dim == "M" else ROW_MAJOR
        ldc = m if c_layout == COL_MAJOR else n

        fa = pack(a, variant.a_layout, lda)
        fb = pack(b, variant.b_layout, ldb)
        fc = pack(c0, c_layout, ldc)
        spm_gemm(
            m, n, k, 1.0, fa, lda, fb, ldb, 1.0, fc, ldc, variant.vec_dim,
            a_layout=variant.a_layout, b_layout=variant.b_layout,
        )
        if c_layout == COL_MAJOR:
            got = fc.reshape(n, ldc).T[:m, :]
        else:
            got = fc.reshape(m, ldc)[:, :n]
        np.testing.assert_allclose(got, a @ b + c0, rtol=1e-5, atol=1e-5)

    def test_alpha_beta(self):
        m = n = k = 8
        a = np.eye(m, dtype=np.float32)
        b = np.full((k, n), 2.0, dtype=np.float32)
        c = np.ones((m, n), dtype=np.float32)
        fa, fb = pack(a, COL_MAJOR, m), pack(b, COL_MAJOR, k)
        fc = pack(c, COL_MAJOR, m)
        spm_gemm(m, n, k, 0.5, fa, m, fb, k, 3.0, fc, m, "M")
        got = fc.reshape(n, m).T
        np.testing.assert_allclose(got, 0.5 * (a @ b) + 3.0 * c)

    def test_padded_leading_dimension(self):
        """lda > m leaves padding untouched (strided tile in SPM)."""
        rng = np.random.default_rng(1)
        m, n, k, lda = 6, 4, 5, 9
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        fa = pack(a, COL_MAJOR, lda)
        fb = pack(b, COL_MAJOR, k)
        fc = np.zeros(lda * n, dtype=np.float32)
        spm_gemm(m, n, k, 1.0, fa, lda, fb, k, 0.0, fc, lda, "M")
        got = fc.reshape(n, lda).T[:m, :]
        np.testing.assert_allclose(got, a @ b, rtol=1e-5, atol=1e-6)
        pad = fc.reshape(n, lda).T[m:, :]
        assert (pad == 0).all()

    def test_bad_leading_dim_rejected(self):
        fa = np.zeros(64, np.float32)
        with pytest.raises(MachineError):
            spm_gemm(8, 8, 8, 1.0, fa, 4, fa, 8, 0.0, fa, 8, "M")

    def test_undersized_spm_array_rejected(self):
        small = np.zeros(8, np.float32)
        big = np.zeros(64, np.float32)
        with pytest.raises(MachineError):
            spm_gemm(8, 8, 8, 1.0, small, 8, big, 8, 0.0, big, 8, "M")

    def test_non_flat_operand_rejected(self):
        mat = np.zeros((8, 8), np.float32)
        flat = np.zeros(64, np.float32)
        with pytest.raises(MachineError):
            spm_gemm(8, 8, 8, 1.0, mat, 8, flat, 8, 0.0, flat, 8, "M")


class TestCycleModel:
    def test_shape_validation(self):
        v = ALL_VARIANTS[0]
        with pytest.raises(MachineError):
            kernel_cycles(0, 8, 8, v)

    def test_monotone_across_block_quanta(self):
        """Cost grows once a dimension crosses a register-block quantum
        (within a quantum it is flat -- the padded block does the same
        work; see test_ceil_quantization_steps)."""
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        base = kernel_cycles(64, 64, 64, v).total
        assert kernel_cycles(256, 64, 64, v).total > base  # mc 8 -> 32: 2 blocks
        assert kernel_cycles(64, 128, 64, v).total > base  # nc 8 -> 16: 4 scalars
        assert kernel_cycles(64, 64, 128, v).total > base  # K loop doubles

    def test_large_tiles_approach_peak(self):
        """At 512^3 the best variant exceeds 85% of the vmad bound."""
        best = min(
            kernel_cycles(512, 512, 512, v).total for v in ALL_VARIANTS
        )
        ideal = 512 ** 3 / 256  # MNK / (64 CPEs * 4 lanes)
        assert ideal / best > 0.85

    def test_small_tiles_are_overhead_dominated(self):
        cost = kernel_cycles(16, 16, 16, KernelVariant(COL_MAJOR, COL_MAJOR, "M"))
        assert cost.overhead_fraction > 0.5

    def test_layout_changes_cost(self):
        good = kernel_cycles(256, 256, 256, KernelVariant(COL_MAJOR, COL_MAJOR, "M"))
        bad = kernel_cycles(256, 256, 256, KernelVariant(ROW_MAJOR, COL_MAJOR, "M"))
        assert bad.total > 1.5 * good.total

    def test_vec_dim_matters_for_skinny_shapes(self):
        """M=8 wastes the 16-element M-vector block; vec-N fills up."""
        vec_m = kernel_cycles(8, 1024, 128, KernelVariant(COL_MAJOR, COL_MAJOR, "M"))
        vec_n = kernel_cycles(8, 1024, 128, KernelVariant(ROW_MAJOR, ROW_MAJOR, "N"))
        assert vec_n.total < vec_m.total

    def test_ceil_quantization_steps(self):
        """Cost is flat within a register-block quantum then jumps --
        the nonlinearity a linear cost model cannot represent."""
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        # per-CPE M tile: ceil(M/8); block quantum = 16 -> M quantum = 128
        c1 = kernel_cycles(120, 64, 64, v).total
        c2 = kernel_cycles(128, 64, 64, v).total
        c3 = kernel_cycles(136, 64, 64, v).total
        assert c1 == c2  # same number of blocks
        assert c3 > c2  # crossed a block boundary

    def test_flops(self):
        assert gemm_flops(2, 3, 4) == 48


class TestSpmFootprint:
    def test_even_tile(self):
        cfg = default_config()
        # 64x64 tiles: each CPE holds 8x8 of each operand
        assert spm_tile_bytes(64, 64, 64) == 3 * 8 * 8 * cfg.dtype_bytes

    def test_rounds_up_for_ragged_tiles(self):
        even = spm_tile_bytes(64, 64, 64)
        ragged = spm_tile_bytes(65, 64, 64)
        assert ragged > even

    def test_scheduler_scale_tile_fits_spm(self):
        """A typical tuned tile (128x128x128) fits in 64 KB per CPE."""
        cfg = default_config()
        assert spm_tile_bytes(128, 128, 128) < cfg.spm_bytes
