"""Tests for the template-based assembly-kernel emitter."""

import re

import pytest

from repro.primitives.asm_emitter import (
    emit_all_kernels,
    emit_inner_loop,
    kernel_summary,
)
from repro.primitives.microkernel import ALL_VARIANTS, KernelVariant, COL_MAJOR


class TestEmission:
    def test_all_eight_kernels_emitted(self):
        text = emit_all_kernels()
        for v in ALL_VARIANTS:
            assert f"spm_gemm_{v.name}" in text
            assert f".Lk_loop_{v.name}" in text

    def test_steady_state_annotation_matches_model(self):
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        text = emit_inner_loop(v)
        m = re.search(r"steady state: ([\d.]+) cycles per k-step", text)
        assert m is not None
        from repro.primitives.microkernel import cycles_per_k_step

        assert float(m.group(1)) == pytest.approx(cycles_per_k_step(v), abs=0.1)

    def test_sixteen_vmads_per_step(self):
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        text = emit_inner_loop(v)
        # two rotated steps in the listing -> 32 vmads
        assert len(re.findall(r"\bvmad\b", text)) == 32

    def test_issue_slots_annotated(self):
        text = emit_inner_loop(ALL_VARIANTS[0])
        slots = re.findall(r"# c(\d+)\s+(P0|P1)", text)
        assert slots
        cycles = [int(c) for c, _ in slots]
        assert cycles == sorted(cycles)  # listed in issue order
        # dual issue actually happens: some cycle hosts both pipes
        from collections import Counter

        per_cycle = Counter(cycles)
        assert max(per_cycle.values()) == 2

    def test_loop_closed_with_branch(self):
        text = emit_inner_loop(ALL_VARIANTS[0])
        assert "bne" in text

    def test_good_variant_listing_is_bubble_free(self):
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        text = emit_inner_loop(v)
        m = re.search(r"(\d+) bubbles", text)
        assert m is not None
        assert int(m.group(1)) <= 3  # near-perfect issue density


class TestSummary:
    def test_summary_covers_all_variants(self):
        rows = kernel_summary()
        assert len(rows) == 8
        assert {r["name"] for r in rows} == {v.name for v in ALL_VARIANTS}

    def test_vmad_count_fixed_by_blocking(self):
        for r in kernel_summary():
            assert r["vmads_per_k"] == 16

    def test_contiguous_variants_load_less(self):
        rows = {r["name"]: r for r in kernel_summary()}
        good = rows["ac_bc_vecm"]
        bad = rows["ar_bc_vecm"]
        assert good["vec_contiguous"] and not bad["vec_contiguous"]
        assert bad["loads_per_k"] > good["loads_per_k"]
        assert bad["cycles_per_k"] > good["cycles_per_k"]
