"""Tests for the primitive registry and legality rules."""

import pytest

from repro.errors import IllegalCandidateError
from repro.primitives.gemm_kernel import COL_MAJOR, ROW_MAJOR
from repro.primitives.microkernel import ALL_VARIANTS, KernelVariant
from repro.primitives.registry import (
    PrimitiveInfo,
    PrimitiveRegistry,
    default_registry,
)


class TestRegistry:
    def test_default_has_eight_public_variants(self):
        reg = PrimitiveRegistry()
        assert len(reg.public_variants()) == 8

    def test_get_unknown(self):
        with pytest.raises(IllegalCandidateError):
            PrimitiveRegistry().get("nope")

    def test_register_manual_special(self):
        reg = PrimitiveRegistry()
        special = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        reg.register(
            "xmath_square",
            PrimitiveInfo(special, public=False, cycle_scale=0.9),
        )
        assert len(reg.public_variants()) == 8  # still hidden from swATOP
        cost = reg.cost(256, 256, 256, special)
        assert cost.total > 0

    def test_duplicate_registration_rejected(self):
        reg = PrimitiveRegistry()
        v = ALL_VARIANTS[0]
        with pytest.raises(IllegalCandidateError):
            reg.register(v.name, PrimitiveInfo(v))

    def test_cycle_scale_applies(self):
        reg = PrimitiveRegistry()
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        reg.register("fast", PrimitiveInfo(v, public=False, cycle_scale=0.5))
        normal = reg.cost(128, 128, 128, v).total
        # the named entry shares the variant; fetch via cost on the entry
        scaled = reg._entries["fast"].cycle_scale * normal
        assert scaled == pytest.approx(0.5 * normal)

    def test_default_registry_is_singleton(self):
        assert default_registry() is default_registry()


class TestLegality:
    def test_empty_tile_illegal(self):
        reg = PrimitiveRegistry()
        with pytest.raises(IllegalCandidateError):
            reg.check_legal(0, 8, 8, ALL_VARIANTS[0])

    def test_boundary_allowed_by_default(self):
        reg = PrimitiveRegistry()
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        reg.check_legal(3, 64, 64, v)  # M=3 < 4 lanes but boundary ok

    def test_strict_mode_requires_whole_vectors(self):
        reg = PrimitiveRegistry()
        v = KernelVariant(COL_MAJOR, COL_MAJOR, "M")
        with pytest.raises(IllegalCandidateError):
            reg.check_legal(6, 64, 64, v, allow_boundary=False)
        reg.check_legal(8, 64, 64, v, allow_boundary=False)

    def test_strict_mode_checks_vec_dim_only(self):
        reg = PrimitiveRegistry()
        v = KernelVariant(ROW_MAJOR, ROW_MAJOR, "N")
        # N must be vector-aligned; M free
        reg.check_legal(6, 64, 64, v, allow_boundary=False)
        with pytest.raises(IllegalCandidateError):
            reg.check_legal(64, 6, 64, v, allow_boundary=False)

    def test_legal_variants_filtering(self):
        reg = PrimitiveRegistry()
        legal = reg.legal_variants(6, 64, 64, allow_boundary=False)
        assert legal
        assert all(v.vec_dim == "N" for v in legal)

    def test_best_variant_picks_minimum(self):
        reg = PrimitiveRegistry()
        variant, cost = reg.best_variant(8, 1024, 128)
        all_costs = {
            v.name: reg.cost(8, 1024, 128, v).total for v in reg.public_variants()
        }
        assert cost.total == min(all_costs.values())
        assert variant.vec_dim == "N"  # skinny M favours vec-N

    def test_best_variant_no_legal_raises(self):
        reg = PrimitiveRegistry()
        with pytest.raises(IllegalCandidateError):
            reg.best_variant(1, 1, 64, allow_boundary=False)
