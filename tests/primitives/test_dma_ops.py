"""Tests for the swDMA/swDMAWait primitive wrappers."""

import numpy as np
import pytest

from repro.errors import DmaError
from repro.machine.dma import MEM_TO_SPM, SPM_TO_MEM, DmaDescriptor, ReplyWord
from repro.machine.memory import MainMemory
from repro.primitives.dma_ops import DmaUnit


def make_unit():
    mem = MainMemory(1 << 20)
    return mem, DmaUnit(mem)


class TestSwDma:
    def test_continuous_mode(self):
        mem, unit = make_unit()
        buf = mem.alloc("a", (64,))
        mem.write(buf, np.arange(64, dtype=np.float32))
        tr = unit.sw_dma(buf.addr, 256, 0, 0, MEM_TO_SPM)
        payloads = unit.complete_gather(tr)
        np.testing.assert_array_equal(payloads[0], np.arange(64, dtype=np.float32))

    def test_strided_mode(self):
        mem, unit = make_unit()
        buf = mem.alloc("m", (4, 8))
        data = np.arange(32, dtype=np.float32).reshape(4, 8)
        mem.write(buf, data)
        # 2 floats per row, skip 6
        tr = unit.sw_dma(buf.addr, 4 * 8, 8, 24, MEM_TO_SPM)
        got = unit.complete_gather(tr)[0].reshape(4, 2)
        np.testing.assert_array_equal(got, data[:, :2])

    def test_reply_word_counts_descriptors(self):
        mem, unit = make_unit()
        mem.alloc("a", (1024,))
        reply = ReplyWord()
        descs = [
            DmaDescriptor(i * 256, 128, 128, 0, MEM_TO_SPM, cpe_id=i)
            for i in range(4)
        ]
        tr = unit.batch(descs, reply)
        unit.complete_gather(tr)
        assert reply.count == 4
        unit.sw_dma_wait(reply, 4)  # does not raise

    def test_wait_raises_when_unsatisfied(self):
        with pytest.raises(DmaError):
            DmaUnit.sw_dma_wait(ReplyWord(), 1)

    def test_scatter_roundtrip(self):
        mem, unit = make_unit()
        buf = mem.alloc("dst", (16,))
        payload = np.arange(16, dtype=np.float32)
        tr = unit.sw_dma(buf.addr, 64, 0, 0, SPM_TO_MEM)
        unit.complete_scatter(tr, [payload])
        np.testing.assert_array_equal(mem.read(buf), payload)

    def test_scatter_payload_count_checked(self):
        mem, unit = make_unit()
        tr = unit.sw_dma(0, 64, 0, 0, SPM_TO_MEM)
        with pytest.raises(DmaError):
            unit.complete_scatter(tr, [])

    def test_direction_mismatch(self):
        mem, unit = make_unit()
        tr_in = unit.sw_dma(0, 64, 0, 0, MEM_TO_SPM)
        with pytest.raises(DmaError):
            unit.complete_scatter(tr_in, [np.zeros(16, np.float32)])
        tr_out = unit.sw_dma(0, 64, 0, 0, SPM_TO_MEM)
        with pytest.raises(DmaError):
            unit.complete_gather(tr_out)

    def test_empty_batch_rejected(self):
        _, unit = make_unit()
        with pytest.raises(DmaError):
            unit.batch([])

    def test_mixed_direction_batch_rejected(self):
        _, unit = make_unit()
        descs = [
            DmaDescriptor(0, 16, 16, 0, MEM_TO_SPM),
            DmaDescriptor(64, 16, 16, 0, SPM_TO_MEM),
        ]
        with pytest.raises(DmaError):
            unit.batch(descs)

    def test_cost_attached(self):
        _, unit = make_unit()
        tr = unit.sw_dma(0, 4096, 0, 0, MEM_TO_SPM)
        assert tr.cost.cycles > 0
        assert tr.cost.payload_bytes == 4096


class TestGld:
    def test_gld_far_slower_than_dma(self):
        _, unit = make_unit()
        nbytes = 1 << 16
        tr = unit.sw_dma(0, nbytes, 0, 0, MEM_TO_SPM)
        assert unit.gld_cycles(nbytes) > 5 * tr.cost.cycles

    def test_gld_validation(self):
        _, unit = make_unit()
        with pytest.raises(DmaError):
            unit.gld_cycles(-1)
