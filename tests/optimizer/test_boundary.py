"""Tests for boundary processing helpers and padding cost models."""

import numpy as np
import pytest

from repro.dsl import ScheduleSpace
from repro.machine.config import default_config
from repro.optimizer.boundary import (
    boundary_gemm_sites,
    lightweight_pad_sites,
    pad_tensor,
    pad_up,
    padded_shape,
    traditional_pad_cost,
    unpad_tensor,
)
from repro.scheduler import lower_strategy

from ..scheduler.test_lower import gemm_cd


class TestPadMath:
    def test_pad_up(self):
        assert pad_up(13, 4) == 16
        assert pad_up(16, 4) == 16
        assert pad_up(1, 128) == 128

    def test_pad_up_validation(self):
        with pytest.raises(ValueError):
            pad_up(4, 0)

    def test_padded_shape(self):
        assert padded_shape((13, 100), (4, 64)) == (16, 128)
        with pytest.raises(ValueError):
            padded_shape((4,), (4, 4))


class TestFunctionalPadding:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.random((5, 7)).astype(np.float32)
        p = pad_tensor(x, (8, 8))
        assert p.shape == (8, 8)
        assert (p[5:, :] == 0).all() and (p[:, 7:] == 0).all()
        np.testing.assert_array_equal(unpad_tensor(p, (5, 7)), x)

    def test_rank_checked(self):
        with pytest.raises(ValueError):
            pad_tensor(np.zeros((2, 2)), (4,))


class TestTraditionalCost:
    def test_cost_scales_with_padded_size(self):
        small = traditional_pad_cost((100, 100), (128, 128))
        big = traditional_pad_cost((1000, 1000), (1024, 1024))
        assert big.cycles > small.cycles
        assert big.bytes_copied > small.bytes_copied

    def test_round_trip_copies_in_and_out(self):
        cfg = default_config()
        c = traditional_pad_cost((100, 100), (128, 128))
        assert c.bytes_copied == (100 * 100 + 128 * 128) * cfg.dtype_bytes

    def test_unpad_direction(self):
        c = traditional_pad_cost((100, 100), (128, 128), round_trip=False)
        assert c.bytes_copied == (100 * 100 + 128 * 128) * 4

    def test_traditional_dwarfs_boundary_data(self):
        """The whole-tensor copy moves orders of magnitude more data
        than the boundary region itself -- the Fig. 11 motivation."""
        shape, padded = (2000, 2000), (2048, 2048)
        c = traditional_pad_cost(shape, padded)
        boundary_bytes = (2048 * 2048 - 2000 * 2000) * 4
        assert c.bytes_copied > 3 * boundary_bytes


class TestKernelAnalyses:
    def _kernel(self, M=100, tm=64):
        cd = gemm_cd(M, 128, 128)
        sp = ScheduleSpace(cd)
        sp.split("M", [tm]); sp.split("N", [64]); sp.split("K", [64])
        return lower_strategy(cd, sp.strategy())

    def test_boundary_sites_counted(self):
        k = self._kernel(M=100, tm=64)  # tail 36
        sites = boundary_gemm_sites(k)
        assert sites["boundary"] > 0
        assert sites["main"] > 0

    def test_aligned_kernel_has_no_boundary(self):
        k = self._kernel(M=128, tm=64)
        assert boundary_gemm_sites(k)["boundary"] == 0

    def test_lightweight_sites(self):
        k = self._kernel(M=66, tm=64)  # tail 2 -> padded
        assert lightweight_pad_sites(k) > 0
        k2 = self._kernel(M=128, tm=64)
        assert lightweight_pad_sites(k2) == 0
