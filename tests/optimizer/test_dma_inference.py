"""Tests for DMA inference: flattening, geometry, hoisting."""

import pytest

from repro.dsl import ScheduleSpace
from repro.errors import IrError
from repro.ir import AffineExpr, DmaCgNode, ForNode, SeqNode, TileAccess, find_all, walk
from repro.machine.config import default_config
from repro.machine.dma import MEM_TO_SPM
from repro.optimizer.dma_inference import (
    flatten_access,
    geometry_of,
    infer_dma,
    storage_shapes,
)
from repro.scheduler import lower_strategy

from ..scheduler.test_lower import conv_cd, gemm_cd


class TestFlatten:
    def test_partial_last_dim(self):
        flat = flatten_access((8, 16), (64, 64))
        assert flat.chunk_elems == 16
        assert flat.outer_lengths == (8,)
        assert flat.outer_strides == (64,)

    def test_whole_tensor_is_one_chunk(self):
        flat = flatten_access((16, 8), (16, 8))
        assert flat.chunk_elems == 16 * 8
        assert flat.outer_lengths == ()

    def test_rank_mismatch(self):
        with pytest.raises(IrError):
            flatten_access((4,), (4, 4))

    def test_chunk_offsets_cover_tile(self):
        flat = flatten_access((3, 5, 7), (10, 20, 30))
        offs = flat.chunk_offsets()
        assert len(offs) == 3 * 5
        # offsets follow row-major order of (dim0, dim1) with strides
        assert offs[0] == 0
        assert offs[1] == 30  # next dim1 step
        assert offs[5] == 600  # next dim0 step (20*30)


class TestFlattenPartialAbsorption:
    def test_partial_dim_joins_contiguous_run(self):
        """lengths (4, 8, 32) over shape (16, 8, 32): dims 1,2 fully
        covered so dim0's 4 rows are one contiguous run of 4*8*32."""
        flat = flatten_access((4, 8, 32), (16, 8, 32))
        assert flat.chunk_elems == 4 * 8 * 32
        assert flat.outer_lengths == ()

    def test_gap_stops_absorption(self):
        flat = flatten_access((4, 4, 32), (16, 8, 32))
        assert flat.chunk_elems == 4 * 32
        assert flat.outer_lengths == (4,)
        assert flat.outer_strides == (8 * 32,)


class TestGeometry:
    def test_strided_tile(self):
        acc = TileAccess("T", ((AffineExpr(0), 8), (AffineExpr(0), 16)))
        geo = geometry_of(acc, (64, 64))
        cfg = default_config()
        assert geo.block_bytes == 16 * cfg.dtype_bytes
        assert geo.n_blocks == 8
        assert geo.stride_bytes == (64 - 16) * cfg.dtype_bytes
        assert geo.n_descriptors == 1

    def test_contiguous_tile(self):
        acc = TileAccess("T", ((AffineExpr(0), 8), (AffineExpr(0), 64)))
        geo = geometry_of(acc, (64, 64))
        assert geo.n_blocks == 1
        assert geo.stride_bytes == 0

    def test_multilevel_stride_needs_descriptors(self):
        acc = TileAccess(
            "T", ((AffineExpr(0), 2), (AffineExpr(0), 3), (AffineExpr(0), 4))
        )
        geo = geometry_of(acc, (8, 8, 8))
        assert geo.n_descriptors == 2  # one per outermost slice
        assert geo.n_blocks == 6

    def test_layout_changes_geometry(self):
        """The same logical tile, two layouts: blocks differ -- the
        Sec. 4.3.2 effect."""
        tall = geometry_of(
            TileAccess("T", ((AffineExpr(0), 64), (AffineExpr(0), 4))), (128, 128)
        )
        wide = geometry_of(
            TileAccess("T", ((AffineExpr(0), 4), (AffineExpr(0), 64))), (128, 128)
        )
        assert tall.n_blocks == 64 and tall.block_bytes == 16
        assert wide.n_blocks == 4 and wide.block_bytes == 256


class TestInferPass:
    def test_all_dmas_annotated(self):
        cd, kernel = _lowered()
        out = infer_dma(kernel, cd)
        for dma in find_all(out, DmaCgNode):
            assert dma.geometry is not None

    def test_hoists_invariant_transfer(self):
        """B's tile does not depend on cM: after hoisting, B's DMA sits
        outside the cM loop."""
        cd = gemm_cd(128, 128, 64)
        sp = ScheduleSpace(cd)
        sp.split("M", [64])
        sp.split("N", [128])
        sp.split("K", [64])
        sp.reorder([("N", "M", "K")])
        kernel = lower_strategy(cd, sp.strategy())
        out = infer_dma(kernel, cd)

        def dmas_inside_loops(root, buffer):
            hits = []
            def visit(node, loops):
                if isinstance(node, DmaCgNode) and node.access.buffer == buffer:
                    hits.append(tuple(loops))
                if isinstance(node, ForNode):
                    loops = loops + [node.var]
                for c in node.children():
                    visit(c, loops)
            visit(root, [])
            return hits

        before = dmas_inside_loops(kernel, "B")
        after = dmas_inside_loops(out, "B")
        assert any("cM" in loc for loc in before)
        assert all("cM" not in loc for loc in after)

    def test_hoisting_preserves_transfer_count_in_tree(self):
        """Hoisting dedupes identical transfers: fewer DMA nodes, and
        the remaining one is the same access."""
        cd, kernel = _lowered()
        before = len(find_all(kernel, DmaCgNode))
        after = len(find_all(infer_dma(kernel, cd), DmaCgNode))
        assert after <= before

    def test_never_hoists_past_binding_loop(self):
        """A transfer referencing an inner loop variable must stay
        inside that loop (regression: hoisting past nested binders)."""
        cd = gemm_cd(256, 128, 256)
        sp = ScheduleSpace(cd)
        sp.split("M", [64])
        sp.split("N", [64])
        sp.split("K", [64])
        kernel = lower_strategy(cd, sp.strategy())
        out = infer_dma(kernel, cd)
        # every remaining DMA's variables must be bound by its ancestors
        def check(node, bound):
            if isinstance(node, DmaCgNode):
                assert node.access.variables() <= bound, (
                    f"{node.access.buffer}: {node.access.variables()} vs {bound}"
                )
            if isinstance(node, ForNode):
                bound = bound | {node.var}
            for c in node.children():
                check(c, bound)
        check(out, set())

    def test_storage_shapes_respect_layout(self):
        cd = conv_cd()
        sp = ScheduleSpace(cd)
        sp.split("Kr", [1]); sp.split("Kc", [1])
        sp.layout("input", [(1, 2, 3, 0)])  # Ni, Ri, Ci, B
        kernel = lower_strategy(cd, sp.strategy())
        shapes = storage_shapes(kernel, cd)
        assert shapes["input"] == (8, 10, 10, 2)


def _lowered():
    cd = gemm_cd(128, 128, 128)
    sp = ScheduleSpace(cd)
    sp.split("M", [64]); sp.split("N", [64]); sp.split("K", [64])
    return cd, lower_strategy(cd, sp.strategy())
