"""Tests for SPM planning over kernel IR."""

import pytest

from repro.errors import SpmCapacityError
from repro.ir.nodes import AllocSpmNode, KernelNode, SeqNode
from repro.machine.config import default_config
from repro.optimizer.memplan import per_cpe_bytes, plan_spm, spm_utilization


def kernel_with(allocs):
    return KernelNode("k", allocs=allocs, body=SeqNode([]))


class TestPerCpeBytes:
    def test_distributed_2d(self):
        # 64x64 f32: each CPE holds 8x8
        a = AllocSpmNode("a", (64, 64))
        assert per_cpe_bytes(a) == 8 * 8 * 4

    def test_distributed_leading_singleton(self):
        """A (1, 256, 256) batched-GEMM tile distributes over its
        flattened (256, 256) view, not its leading singleton."""
        a = AllocSpmNode("a", (1, 256, 256))
        assert per_cpe_bytes(a) == 32 * 32 * 4

    def test_replicated(self):
        a = AllocSpmNode("a", (4, 4), distributed=False)
        assert per_cpe_bytes(a) == 64

    def test_rounds_up(self):
        a = AllocSpmNode("a", (9, 9))
        assert per_cpe_bytes(a) == 2 * 2 * 4  # ceil(9/8) each way


class TestPlan:
    def test_plan_offsets_and_capacity(self):
        k = kernel_with([
            AllocSpmNode("a", (64, 64), double_buffered=True),
            AllocSpmNode("b", (64, 64)),
        ])
        plan = plan_spm(k)
        assert plan.buffers["a"].reserved_bytes == 2 * 256
        assert plan.total_bytes <= default_config().spm_bytes
        assert 0 < spm_utilization(k) < 1

    def test_overflow_raises(self):
        k = kernel_with([AllocSpmNode("big", (4096, 4096))])
        with pytest.raises(SpmCapacityError):
            plan_spm(k)
