"""Tests for the automatic double-buffering pass."""

import pytest

from repro.dsl import ScheduleSpace
from repro.errors import IrError
from repro.ir import ForNode, walk
from repro.optimizer.dma_inference import infer_dma
from repro.optimizer.prefetch import (
    apply_prefetch,
    direct_stream_dmas,
    next_iteration_env,
    pipelined_loops,
)
from repro.scheduler import LoweringOptions, lower_strategy

from ..scheduler.test_lower import gemm_cd


def optimized_kernel(double_buffer=True, tm=64, tn=64, tk=32):
    cd = gemm_cd(128, 128, 128)
    sp = ScheduleSpace(cd)
    sp.split("M", [tm]); sp.split("N", [tn]); sp.split("K", [tk])
    kernel = lower_strategy(
        cd, sp.strategy(), options=LoweringOptions(double_buffer=double_buffer)
    )
    return cd, infer_dma(kernel, cd)


class TestApplyPrefetch:
    def test_streaming_loop_marked(self):
        cd, kernel = optimized_kernel()
        out = apply_prefetch(kernel)
        marked = pipelined_loops(out)
        assert marked
        assert any(l.var == "cK" for l in marked)

    def test_requires_double_buffer_allocation(self):
        cd, kernel = optimized_kernel(double_buffer=False)
        with pytest.raises(IrError):
            apply_prefetch(kernel)

    def test_loop_without_varying_dma_not_marked(self):
        """After hoisting, a loop whose transfers are all invariant has
        nothing to stream."""
        cd, kernel = optimized_kernel()
        out = apply_prefetch(kernel)
        for loop in pipelined_loops(out):
            dmas = direct_stream_dmas(loop)
            assert any(loop.var in d.access.variables() for d in dmas)

    def test_double_fill_body_not_pipelined(self):
        """Regression: a collapsed K loop with a peeled tail fills the
        same buffer twice per outer iteration -- prefetching both at
        iteration start would clobber the first tile (observed as a
        wrong 512x384x640 GEMM).  Such loops must stay synchronous."""
        import numpy as np

        from repro.codegen import compile_candidate
        from repro.scheduler import Candidate

        from repro.dsl import ScheduleSpace
        from repro.ops.gemm import make_compute

        compute = make_compute(512, 384, 640)
        sp = ScheduleSpace(compute)
        sp.split("M", [256]); sp.split("N", [128]); sp.split("K", [512])
        strat = sp.strategy()
        ck = compile_candidate(
            Candidate(strat, lower_strategy(compute, strat), compute)
        )
        for loop in pipelined_loops(ck.kernel):
            seen = set()
            for dma in direct_stream_dmas(loop):
                assert dma.spm not in seen
                seen.add(dma.spm)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((512, 640)).astype(np.float32)
        b = rng.standard_normal((640, 384)).astype(np.float32)
        out = ck.run({"A": a, "B": b}).outputs["C"]
        np.testing.assert_allclose(out, a @ b, rtol=1e-3, atol=1e-2)

    def test_idempotent(self):
        cd, kernel = optimized_kernel()
        once = apply_prefetch(kernel)
        twice = apply_prefetch(once)
        assert len(pipelined_loops(once)) == len(pipelined_loops(twice))

    def test_direct_dmas_stop_at_nested_loops(self):
        cd, kernel = optimized_kernel()
        out = apply_prefetch(kernel)
        outer = [
            n for n in walk(out)
            if isinstance(n, ForNode) and not n.pipelined
        ]
        for loop in outer:
            for dma in direct_stream_dmas(loop):
                # anything directly in a non-pipelined outer loop must be
                # loop-invariant leftovers (hoisted) or C traffic
                assert dma.spm in ("spm_a", "spm_b", "spm_c")


class TestNextIterationEnv:
    def test_innermost_advance(self):
        nxt = next_iteration_env([("k", 4), ("n", 2)], {"k": 1, "n": 0})
        assert nxt == {"k": 2, "n": 0}

    def test_carry(self):
        nxt = next_iteration_env([("k", 4), ("n", 2)], {"k": 3, "n": 0})
        assert nxt == {"k": 0, "n": 1}

    def test_exhausted(self):
        assert next_iteration_env([("k", 4), ("n", 2)], {"k": 3, "n": 1}) is None

    def test_single_loop(self):
        assert next_iteration_env([("k", 3)], {"k": 2}) is None
        assert next_iteration_env([("k", 3)], {"k": 0}) == {"k": 1}
