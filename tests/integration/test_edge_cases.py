"""Edge-case integration tests: degenerate shapes, extreme tiles,
machine-config what-ifs."""

import numpy as np
import pytest

from repro.codegen import compile_candidate
from repro.codegen.executor import CompiledKernel
from repro.dsl import ScheduleSpace
from repro.harness.runner import run_conv_implicit, run_gemm
from repro.machine.config import default_config
from repro.ops.conv_common import ConvParams
from repro.ops.direct import conv2d_reference
from repro.ops.gemm import make_compute
from repro.scheduler import Candidate, lower_strategy


def gemm_run(m, n, k, tm=None, tn=None, tk=None, **overrides):
    compute = make_compute(m, n, k)
    sp = ScheduleSpace(compute)
    sp.split("M", [tm or m])
    sp.split("N", [tn or n])
    sp.split("K", [tk or k])
    sp.vectorize()
    strat = sp.strategy(**overrides)
    ck = compile_candidate(
        Candidate(strat, lower_strategy(compute, strat), compute)
    )
    rng = np.random.default_rng(0)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    res = ck.run({"A": a, "B": b})
    np.testing.assert_allclose(res.outputs["C"], a @ b, rtol=1e-3, atol=1e-2)
    return res.report


class TestDegenerateShapes:
    def test_single_row_gemm(self):
        """M = 1: the vectorized dim pads to a whole vector."""
        gemm_run(1, 64, 32)

    def test_single_col_gemm(self):
        gemm_run(64, 1, 32, **{"vec_dim": "M"})

    def test_k_equals_one(self):
        gemm_run(32, 32, 1)

    def test_all_tiny(self):
        gemm_run(3, 5, 2)

    def test_prime_extents(self):
        gemm_run(97, 89, 83, tm=32, tn=32, tk=32)

    def test_tile_one(self):
        """Degenerate tile factor 1 on a non-vectorized dim."""
        gemm_run(16, 64, 24, tm=16, tn=64, tk=1)


class TestConvEdges:
    def test_conv_minimum_channels(self):
        params = ConvParams(batch=2, ni=8, no=8, ri=4, ci=4, kr=3, kc=3, pad=1)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        run = run_conv_implicit(params, x, w, quick=True)
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )

    def test_conv_output_1x1(self):
        """Valid conv shrinking to a single output pixel."""
        params = ConvParams(batch=2, ni=8, no=8, ri=3, ci=3, kr=3, kc=3, pad=0)
        assert params.ro == 1
        rng = np.random.default_rng(2)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        run = run_conv_implicit(params, x, w, quick=True)
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )

    def test_wide_5x5_kernel(self):
        """Winograd does not apply to 5x5; implicit does."""
        params = ConvParams(batch=2, ni=8, no=8, ri=8, ci=8, kr=5, kc=5, pad=2)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        run = run_conv_implicit(params, x, w, quick=True)
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )

    def test_asymmetric_kernel(self):
        params = ConvParams(batch=2, ni=8, no=8, ri=8, ci=8, kr=1, kc=3,
                            pad=0)
        rng = np.random.default_rng(4)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        run = run_conv_implicit(params, x, w, quick=True)
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )


class TestConfigWhatIfs:
    def test_infinite_bandwidth_makes_everything_compute_bound(self):
        cfg = default_config().with_overrides(dram_peak_bw=1e15)
        rng = np.random.default_rng(5)
        a = rng.standard_normal((256, 256)).astype(np.float32)
        b = rng.standard_normal((256, 256)).astype(np.float32)
        fast = run_gemm(a, b, quick=True, config=cfg)
        slow = run_gemm(a, b, quick=True)
        assert fast.cycles < slow.cycles
        assert fast.report.dma_cycles < slow.report.dma_cycles

    def test_faster_clock_speeds_compute(self):
        """Doubling the clock doubles flop rate but leaves the byte/s of
        DRAM unchanged -- kernels shift toward DMA-bound."""
        cfg = default_config().with_overrides(clock_hz=3.0e9)
        rng = np.random.default_rng(6)
        a = rng.standard_normal((512, 512)).astype(np.float32)
        b = rng.standard_normal((512, 512)).astype(np.float32)
        base = run_gemm(a, b, quick=True)
        fast = run_gemm(a, b, quick=True, config=cfg)
        assert fast.report.seconds < base.report.seconds

    def test_tiny_spm_prunes_large_tiles(self):
        from repro.errors import IllegalCandidateError

        cfg = default_config().with_overrides(spm_bytes=4 * 1024)
        compute = make_compute(512, 512, 512)
        sp = ScheduleSpace(compute)
        sp.split("M", [256]); sp.split("N", [256]); sp.split("K", [256])
        with pytest.raises(IllegalCandidateError):
            lower_strategy(compute, sp.strategy(), config=cfg)
