"""Cross-check the executor's CG-level data movement against the
faithful per-CPE path: expanding an inferred DMA node into 64 per-CPE
descriptors and executing them on the cluster must land exactly the
data the executor's tile slicing produces."""

import numpy as np
import pytest

from repro.dsl import ScheduleSpace
from repro.ir import DmaCgNode, find_all
from repro.machine.cluster import CpeCluster, split_tiles
from repro.machine.dma import MEM_TO_SPM, cg_tile_descriptors
from repro.machine.memory import MainMemory
from repro.optimizer.dma_inference import flatten_access, infer_dma, storage_shapes
from repro.scheduler.lower import lower_strategy

from ..scheduler.test_lower import gemm_cd


def build_kernel(M=64, N=48, K=32, tm=32, tn=24, tk=16):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [tm])
    sp.split("N", [tn])
    sp.split("K", [tk])
    kernel = infer_dma(lower_strategy(cd, sp.strategy()), cd)
    return cd, kernel


class TestFaithfulDma:
    def test_per_cpe_descriptors_reassemble_executor_tile(self):
        """For each 2-D-flattenable DMA access in a real kernel: gather
        through 64 per-CPE descriptors on the cluster, reassemble, and
        compare against direct NumPy slicing of the tensor."""
        cd, kernel = build_kernel()
        shapes = storage_shapes(kernel, cd)
        rng = np.random.default_rng(0)
        mem = MainMemory(1 << 22)
        cluster = CpeCluster(mem)
        data = {}
        for name, shape in shapes.items():
            buf = mem.alloc(name, shape)
            arr = rng.standard_normal(shape).astype(np.float32)
            mem.write(buf, arr)
            data[name] = (buf, arr)

        env = {"cM": 1, "cN": 0, "cK": 1}
        checked = 0
        for dma in find_all(kernel, DmaCgNode):
            if dma.direction != MEM_TO_SPM:
                continue
            buf, arr = data[dma.access.buffer]
            offs = [off.evaluate(env) for off, _ in dma.access.dims]
            lens = list(dma.access.lengths)
            flat = flatten_access(tuple(lens), arr.shape)
            if flat.outer_lengths and len(flat.outer_lengths) > 1:
                continue  # multi-level strides are issued as N descriptors
            rows = flat.outer_lengths[0] if flat.outer_lengths else 1
            cols = flat.chunk_elems
            row_stride = flat.outer_strides[0] if flat.outer_strides else cols
            base = buf.elem_addr(tuple(offs))
            descs = cg_tile_descriptors(
                base, rows, cols, row_stride * 4, 4, MEM_TO_SPM,
                grid_rows=8, grid_cols=8,
            )
            cluster.dma_in(descs, spm_offset=0)
            # reassemble the 8x8 distributed tile from the scratch pads
            expect2d = arr[
                tuple(slice(o, o + l) for o, l in zip(offs, lens))
            ].reshape(rows, cols)
            tiles = {}
            from repro.machine.spm import partition_extent

            rparts = partition_extent(rows, 8)
            cparts = partition_extent(cols, 8)
            for rid, (r0, rl) in enumerate(rparts):
                for cid, (c0, cl) in enumerate(cparts):
                    if rl == 0 or cl == 0:
                        continue
                    got = cluster.cpe(rid, cid).spm_read(0, rl * cl)
                    np.testing.assert_array_equal(
                        got.reshape(rl, cl),
                        expect2d[r0 : r0 + rl, c0 : c0 + cl],
                        err_msg=f"{dma.access.buffer} CPE ({rid},{cid})",
                    )
            checked += 1
        assert checked >= 2  # at least A and B were cross-checked
