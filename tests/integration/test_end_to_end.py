"""Integration tests: full tune -> compile -> execute -> verify flows
for every operator, cross-checked against independent references."""

import numpy as np
import pytest

from repro.autotuner import tune_blackbox, tune_with_model
from repro.codegen import compile_candidate, emit_c
from repro.codegen.executor import CompiledKernel
from repro.harness.runner import (
    run_conv_explicit,
    run_conv_implicit,
    run_conv_winograd,
    run_gemm,
)
from repro.ops import conv_implicit
from repro.ops.conv_common import ConvParams
from repro.ops.direct import conv2d_reference
from repro.ops.gemm import make_compute, make_space


class TestGemmEndToEnd:
    def test_tune_compile_run_verify(self):
        m, n, k = 160, 112, 96
        compute = make_compute(m, n, k)
        space = make_space(compute, quick=True)
        result = tune_with_model(compute, space)
        ck = CompiledKernel(result.best.candidate.kernel, compute)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        out = ck.run({"A": a, "B": b}).outputs["C"]
        np.testing.assert_allclose(out, a @ b, rtol=1e-3, atol=1e-2)

    def test_emitted_c_for_tuned_kernel(self):
        compute = make_compute(128, 128, 128)
        space = make_space(compute, quick=True)
        result = tune_with_model(compute, space, run_best=False)
        src = emit_c(result.best.candidate.kernel)
        assert "spm_gemm_" in src
        assert src.count("{") == src.count("}")

    def test_model_and_blackbox_agree_on_ranking_shape(self):
        compute = make_compute(192, 192, 192)
        space = make_space(compute, quick=True)
        mm = tune_with_model(compute, space)
        bb = tune_blackbox(compute, space)
        assert mm.report.cycles <= 1.15 * bb.report.cycles


class TestConvEndToEnd:
    @pytest.mark.parametrize(
        "runner",
        [run_conv_implicit, run_conv_winograd, run_conv_explicit],
        ids=["implicit", "winograd", "explicit"],
    )
    def test_every_method_matches_direct_reference(self, runner):
        params = ConvParams(batch=4, ni=16, no=16, ri=10, ci=10,
                            kr=3, kc=3, pad=1)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        ref = conv2d_reference(x, w, params)
        run = runner(params, x, w, library="swatop", quick=True)
        np.testing.assert_allclose(run.output, ref, rtol=1e-3, atol=1e-2)

    def test_methods_agree_with_each_other(self):
        params = ConvParams(batch=2, ni=8, no=8, ri=8, ci=8,
                            kr=3, kc=3, pad=1)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        outs = [
            runner(params, x, w, library="swatop", quick=True).output
            for runner in (run_conv_implicit, run_conv_winograd,
                           run_conv_explicit)
        ]
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-3, atol=1e-2)
        np.testing.assert_allclose(outs[0], outs[2], rtol=1e-3, atol=1e-2)

    def test_awkward_shapes_stay_exact(self):
        """Ragged channels/spatial: boundary machinery end to end."""
        params = ConvParams(batch=3, ni=10, no=13, ri=9, ci=11,
                            kr=3, kc=3, pad=1)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        ref = conv2d_reference(x, w, params)
        for runner in (run_conv_implicit, run_conv_explicit):
            run = runner(params, x, w, library="swatop", quick=True)
            np.testing.assert_allclose(run.output, ref, rtol=1e-3, atol=1e-2)

    def test_one_by_one_kernel_implicit(self):
        params = ConvParams(batch=4, ni=16, no=16, ri=8, ci=8,
                            kr=1, kc=1, pad=0)
        rng = np.random.default_rng(4)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        ref = conv2d_reference(x, w, params)
        run = run_conv_implicit(params, x, w, library="swatop", quick=True)
        np.testing.assert_allclose(run.output, ref, rtol=1e-3, atol=1e-2)


class TestComparisonSanity:
    def test_swatop_never_catastrophically_loses_gemm(self):
        """Across a mixed bag of shapes, swATOP stays within 25% of
        xMath everywhere (and usually wins)."""
        rng = np.random.default_rng(5)
        for m, n, k in [(256, 256, 256), (100, 300, 50), (512, 128, 256)]:
            a = rng.standard_normal((m, k)).astype(np.float32)
            b = rng.standard_normal((k, n)).astype(np.float32)
            rs = run_gemm(a, b, library="swatop", quick=True)
            rx = run_gemm(a, b, library="xmath")
            assert rs.cycles <= 1.25 * rx.cycles

    def test_tuned_beats_median_candidate(self):
        """Tuning must actually help: the chosen schedule beats the
        median of the space by a clear margin."""
        params = ConvParams(batch=8, ni=32, no=32, ri=8, ci=8,
                            kr=3, kc=3, pad=1)
        compute = conv_implicit.make_compute(params)
        space = conv_implicit.make_space(params, quick=True)
        bb = tune_blackbox(compute, space, keep_scores=True)
        cycles = sorted(s.measured_cycles for s in bb.scores)
        median = cycles[len(cycles) // 2]
        assert bb.best.measured_cycles < 0.8 * median
