"""Smoke-run the fast examples: a README that lies is a bug."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "schedule space" in out
        assert "max |error| vs NumPy" in out
        assert "cost model predicted" in out
        # correctness is printed, not just claimed
        import re

        m = re.search(r"max \|error\| vs NumPy: ([\d.e+-]+)", out)
        assert m and float(m.group(1)) < 1e-2

    def test_custom_operator(self):
        out = run_example("custom_operator.py")
        assert "attn_scores" in out
        assert "max |error| vs NumPy einsum" in out

    def test_network_inference(self):
        out = run_example("network_inference.py")
        assert "online autotuning" in out
        assert "warm kernel cache" in out
