"""Tests for the swTVM-style code-generation baseline."""

import numpy as np
import pytest

from repro.baselines.swtvm import (
    naive_k_step_cycles,
    pick_tiles,
    swtvm_gemm,
    swtvm_tile_bytes,
)
from repro.errors import WorkloadError
from repro.machine.config import default_config
from repro.primitives.microkernel import ALL_VARIANTS, cycles_per_k_step


class TestNaiveSchedule:
    def test_slower_than_hand_pipelined(self):
        """The compiler-style inner loop pays the load latency the hand
        schedule hides -- the paper's 'lack of pipeline support'."""
        hand_best = min(cycles_per_k_step(v) for v in ALL_VARIANTS)
        assert naive_k_step_cycles() > hand_best

    def test_at_least_vmad_bound(self):
        assert naive_k_step_cycles() >= 16


class TestFootprint:
    def test_no_regcomm_footprint_is_larger(self):
        """Without register communication each CPE holds whole panels:
        ~8x the cooperative kernels' operand share."""
        from repro.primitives.gemm_kernel import spm_tile_bytes

        m = n = k = 128
        assert swtvm_tile_bytes(m, n, k) > 4 * spm_tile_bytes(m, n, k)

    def test_pick_tiles_fit(self):
        cfg = default_config()
        for shape in [(512, 512, 512), (64, 64, 64), (4096, 128, 256)]:
            tm, tn, tk = pick_tiles(*shape)
            assert swtvm_tile_bytes(tm, tn, tk) <= cfg.spm_bytes

    def test_tiles_shrink_under_pressure(self):
        """The inflated footprint forces sub-maximal blocking on big
        problems (the cooperative kernels afford 256-wide tiles)."""
        tm, tn, tk = pick_tiles(4096, 4096, 4096)
        assert max(tm, tn, tk) < 256


class TestSwtvmGemm:
    def test_functional_correctness(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((96, 120)).astype(np.float32)
        b = rng.standard_normal((120, 72)).astype(np.float32)
        res = swtvm_gemm(a, b)
        np.testing.assert_allclose(res.output, a @ b, rtol=1e-4, atol=1e-3)

    def test_operand_validation(self):
        with pytest.raises(WorkloadError):
            swtvm_gemm(np.zeros((4, 4)), np.zeros((5, 4)))

    def test_much_slower_than_swatop(self):
        """The paper's qualitative claim: several-fold slower than the
        manual/tuned kernels."""
        from repro.harness.runner import run_gemm

        rng = np.random.default_rng(1)
        a = rng.standard_normal((256, 256)).astype(np.float32)
        b = rng.standard_normal((256, 256)).astype(np.float32)
        tv = swtvm_gemm(a, b)
        sw = run_gemm(a, b, library="swatop", quick=True)
        assert tv.report.cycles > 2.5 * sw.cycles

    def test_fully_synchronous(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((128, 128)).astype(np.float32)
        b = rng.standard_normal((128, 128)).astype(np.float32)
        rep = swtvm_gemm(a, b).report
        assert rep.cycles == pytest.approx(
            rep.dma_cycles + rep.compute_cycles
        )
        assert rep.overlap_fraction == 0.0
