"""Tests for the swDNN and xMath manual baselines."""

import numpy as np
import pytest

from repro.baselines import swdnn, xmath
from repro.errors import WorkloadError
from repro.ops.conv_common import ConvParams


class TestXmath:
    def test_functional_correctness_aligned(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((128, 256)).astype(np.float32)
        b = rng.standard_normal((256, 128)).astype(np.float32)
        res = xmath.xmath_gemm(a, b)
        np.testing.assert_allclose(res.output, a @ b, rtol=1e-4, atol=1e-3)
        assert not res.padded

    def test_functional_correctness_unaligned(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((100, 70)).astype(np.float32)
        b = rng.standard_normal((70, 90)).astype(np.float32)
        res = xmath.xmath_gemm(a, b)
        np.testing.assert_allclose(res.output, a @ b, rtol=1e-4, atol=1e-3)
        assert res.padded

    def test_padding_costs_cycles(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((250, 250)).astype(np.float32)
        b = rng.standard_normal((250, 250)).astype(np.float32)
        unaligned = xmath.xmath_gemm(a, b)
        a2 = rng.standard_normal((256, 256)).astype(np.float32)
        b2 = rng.standard_normal((256, 256)).astype(np.float32)
        aligned = xmath.xmath_gemm(a2, b2)
        # less useful work but more cycles: the padding overhead
        assert unaligned.report.cycles > aligned.report.cycles

    def test_sweet_spot_detection(self):
        assert xmath.is_square_sweet_spot(512, 512, 512)
        assert xmath.is_square_sweet_spot(1024, 512, 512)
        assert not xmath.is_square_sweet_spot(4096, 512, 512)  # ratio 8
        assert not xmath.is_square_sweet_spot(500, 500, 500)  # unaligned

    def test_sweet_spot_beats_generic_blocking(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((512, 512)).astype(np.float32)
        b = rng.standard_normal((512, 512)).astype(np.float32)
        sweet = xmath.xmath_gemm(a, b)
        # a skinny aligned shape outside the niche, same flops
        a2 = rng.standard_normal((128, 2048)).astype(np.float32)
        b2 = rng.standard_normal((2048, 512)).astype(np.float32)
        generic = xmath.xmath_gemm(a2, b2)
        assert sweet.report.cycles < generic.report.cycles

    def test_operand_validation(self):
        with pytest.raises(WorkloadError):
            xmath.xmath_gemm(np.zeros((4, 4)), np.zeros((5, 4)))


class TestSwdnn:
    def _params(self, **kw):
        d = dict(batch=32, ni=64, no=64, ri=16, ci=16, kr=3, kc=3, pad=1)
        d.update(kw)
        return ConvParams(**d)

    def test_supported_gate(self):
        assert swdnn.supported(self._params())
        assert not swdnn.supported(self._params(batch=1))
        assert not swdnn.supported(self._params(batch=8))
        assert not swdnn.supported(self._params(ni=4))
        assert not swdnn.supported(self._params(stride=2))

    def test_fixed_strategy_builds(self):
        s = swdnn.fixed_strategy(self._params())
        assert s.tile("Kr") == 1
        assert s["vec_dim"] == "M"
        assert s["layout:input"] == (1, 2, 3, 0)

    def test_unsupported_raises(self):
        with pytest.raises(WorkloadError):
            swdnn.fixed_strategy(self._params(batch=4))

    def test_check_support_bypass_for_shards(self):
        s = swdnn.fixed_strategy(self._params(batch=8), check_support=False)
        assert s.tile("B") == 8

    def test_menu_fallback_fits_spm(self):
        """Large layers fall down the kernel menu instead of failing."""
        p = self._params(ni=512, no=512, ri=28, ci=28)
        s = swdnn.fixed_strategy(p)
        assert s.tile("Ro") <= 16
        # the chosen configuration actually lowers
        from repro.ops.conv_implicit import make_compute
        from repro.scheduler.lower import lower_strategy

        lower_strategy(make_compute(p), s)

    def test_strategy_is_deterministic(self):
        p = self._params()
        assert swdnn.fixed_strategy(p).decisions == swdnn.fixed_strategy(p).decisions
