"""Tests for IR nodes, visitors, and the printer."""

import pytest

from repro.errors import IrError
from repro.ir.expr import AffineExpr, Cond
from repro.ir.nodes import (
    AllocSpmNode,
    ComputeOpNode,
    DmaCgNode,
    DmaGeometry,
    ForNode,
    GemmOpNode,
    IfThenElseNode,
    KernelNode,
    SeqNode,
    TileAccess,
    ZeroSpmNode,
)
from repro.ir.printer import pretty
from repro.ir.visitors import (
    count_nodes,
    find_all,
    find_unique,
    loop_nest_of,
    transform,
    walk,
)
from repro.machine.dma import MEM_TO_SPM
from repro.primitives.microkernel import ALL_VARIANTS


def sample_access(var="i"):
    return TileAccess("T", ((AffineExpr.var(var) * 8, 8), (AffineExpr(0), 16)))


def sample_gemm():
    return GemmOpNode(
        m=8, n=16, k=4,
        a_spm="spm_a", b_spm="spm_b", c_spm="spm_c",
        a_map=((0,), (1,)), b_map=((0,), (1,)), c_map=((0,), (1,)),
        variant=ALL_VARIANTS[0],
        a_lens=(8, 4), b_lens=(4, 16), c_lens=(8, 16),
    )


def sample_kernel():
    body = ForNode(
        "i", 4,
        SeqNode([
            DmaCgNode(sample_access(), "spm_a", MEM_TO_SPM),
            sample_gemm(),
        ]),
    )
    return KernelNode(
        "k",
        allocs=[AllocSpmNode("spm_a", (8, 4)), AllocSpmNode("spm_c", (8, 16))],
        body=body,
    )


class TestValidation:
    def test_negative_extent(self):
        with pytest.raises(IrError):
            ForNode("i", -1)

    def test_alloc_bad_shape(self):
        with pytest.raises(IrError):
            AllocSpmNode("a", (0, 4))

    def test_tile_access_bad_length(self):
        with pytest.raises(IrError):
            TileAccess("T", ((AffineExpr(0), 0),))

    def test_tile_access_non_affine(self):
        with pytest.raises(IrError):
            TileAccess("T", ((3, 4),))  # type: ignore[arg-type]

    def test_gemm_bad_dims(self):
        with pytest.raises(IrError):
            GemmOpNode(
                m=0, n=1, k=1, a_spm="a", b_spm="b", c_spm="c",
                a_map=((0,), (1,)), b_map=((0,), (1,)), c_map=((0,), (1,)),
                variant=ALL_VARIANTS[0],
            )

    def test_compute_negative_cycles(self):
        with pytest.raises(IrError):
            ComputeOpNode("t", -1.0)

    def test_kernel_alloc_lookup(self):
        k = sample_kernel()
        assert k.alloc("spm_a").shape == (8, 4)
        with pytest.raises(IrError):
            k.alloc("nope")


class TestAccessProperties:
    def test_lengths_and_elems(self):
        acc = sample_access()
        assert acc.lengths == (8, 16)
        assert acc.elems == 128

    def test_variables(self):
        assert sample_access("j").variables() == frozenset({"j"})


class TestVisitors:
    def test_walk_covers_all(self):
        k = sample_kernel()
        kinds = [type(n).__name__ for n in walk(k)]
        assert "KernelNode" in kinds
        assert "ForNode" in kinds
        assert "GemmOpNode" in kinds

    def test_find_all(self):
        k = sample_kernel()
        assert len(find_all(k, DmaCgNode)) == 1
        assert len(find_all(k, AllocSpmNode)) == 2

    def test_find_unique(self):
        k = sample_kernel()
        assert find_unique(k, GemmOpNode).m == 8
        with pytest.raises(IrError):
            find_unique(k, AllocSpmNode)

    def test_count_nodes(self):
        k = sample_kernel()
        assert count_nodes(k, ForNode) == 1
        assert count_nodes(k) >= 6

    def test_transform_identity_preserves(self):
        k = sample_kernel()
        out = transform(k, lambda n: None)
        assert isinstance(out, KernelNode)
        assert pretty(out) == pretty(k)

    def test_transform_replaces(self):
        k = sample_kernel()

        def double_loops(n):
            if isinstance(n, ForNode):
                return ForNode(n.var, n.extent * 2, n.body)
            return None

        out = transform(k, double_loops)
        assert find_unique(out, ForNode).extent == 8
        # original untouched
        assert find_unique(k, ForNode).extent == 4

    def test_loop_nest_of(self):
        k = sample_kernel()
        gemm = find_unique(k, GemmOpNode)
        nest = loop_nest_of(k, gemm)
        assert [n.var for n in nest] == ["i"]

    def test_loop_nest_of_missing(self):
        k = sample_kernel()
        with pytest.raises(IrError):
            loop_nest_of(k, sample_gemm())  # different object


class TestPrinter:
    def test_pretty_contains_structure(self):
        text = pretty(sample_kernel())
        assert "kernel k {" in text
        assert "for i in range(4)" in text
        assert "gemm_op spm_c += spm_a x spm_b" in text
        assert "dma_sync T(" in text

    def test_pretty_geometry(self):
        dma = DmaCgNode(
            sample_access(), "spm_a", MEM_TO_SPM,
            geometry=DmaGeometry(8, 64, 192, 1),
        )
        assert "geom(blocks=8, block=64B, stride=192B" in pretty(dma)

    def test_pretty_if(self):
        node = IfThenElseNode(
            Cond(AffineExpr.var("i"), "==", 3),
            ZeroSpmNode("spm_c"),
            ZeroSpmNode("spm_a"),
        )
        text = pretty(node)
        assert "if (i == 3)" in text and "else" in text

    def test_pretty_pipelined_tag(self):
        loop = ForNode("i", 2, SeqNode([]), pipelined=True)
        assert "pipelined" in pretty(loop)


class TestWithChildren:
    def test_leaf_rejects_children(self):
        with pytest.raises(IrError):
            ZeroSpmNode("a").with_children([SeqNode([])])

    def test_kernel_roundtrip(self):
        k = sample_kernel()
        rebuilt = k.with_children(k.children())
        assert pretty(rebuilt) == pretty(k)

    def test_kernel_rejects_non_alloc(self):
        k = sample_kernel()
        kids = k.children()
        kids[0] = SeqNode([])
        with pytest.raises(IrError):
            k.with_children(kids)
