"""Tests for affine expressions and conditions."""

import pytest

from repro.errors import IrError
from repro.ir.expr import AffineExpr, Cond


class TestConstruction:
    def test_of_int(self):
        e = AffineExpr.of(5)
        assert e.is_constant and e.const == 5

    def test_of_str(self):
        e = AffineExpr.of("i")
        assert e.coeffs == {"i": 1}

    def test_of_expr_passthrough(self):
        e = AffineExpr.var("i")
        assert AffineExpr.of(e) is e

    def test_of_bad_type(self):
        with pytest.raises(IrError):
            AffineExpr.of(3.5)

    def test_zero_coeffs_dropped(self):
        e = AffineExpr(1, {"i": 0, "j": 2})
        assert "i" not in e.coeffs
        assert e.coeffs == {"j": 2}


class TestAlgebra:
    def test_add(self):
        e = AffineExpr.var("i") * 3 + AffineExpr.var("j") + 7
        assert e.const == 7
        assert e.coeffs == {"i": 3, "j": 1}

    def test_add_cancels(self):
        e = AffineExpr.var("i") - AffineExpr.var("i")
        assert e.is_constant and e.const == 0

    def test_radd(self):
        e = 5 + AffineExpr.var("i")
        assert e.const == 5

    def test_mul_scale(self):
        e = (AffineExpr.var("i") + 2) * 4
        assert e.const == 8 and e.coeffs["i"] == 4

    def test_mul_non_int_rejected(self):
        with pytest.raises(IrError):
            AffineExpr.var("i") * 1.5  # noqa: B018

    def test_immutability(self):
        e = AffineExpr.var("i")
        with pytest.raises(IrError):
            e.coeffs["i"] = 5  # type: ignore[index]

    def test_hashable(self):
        assert hash(AffineExpr.var("i") + 1) == hash(AffineExpr(1, {"i": 1}))
        assert AffineExpr.var("i") + 1 == AffineExpr(1, {"i": 1})


class TestEvaluation:
    def test_evaluate(self):
        e = AffineExpr.var("i") * 3 + AffineExpr.var("j") + 1
        assert e.evaluate({"i": 2, "j": 10}) == 17

    def test_unbound_raises(self):
        with pytest.raises(IrError):
            AffineExpr.var("i").evaluate({})

    def test_substitute_const(self):
        e = AffineExpr.var("i") * 3 + AffineExpr.var("j")
        s = e.substitute({"i": 2})
        assert s.const == 6 and s.coeffs == {"j": 1}

    def test_substitute_expr(self):
        e = AffineExpr.var("i") * 2
        s = e.substitute({"i": AffineExpr.var("k") + 1})
        assert s.const == 2 and s.coeffs == {"k": 2}

    def test_variables(self):
        e = AffineExpr.var("i") + AffineExpr.var("j") * 2
        assert e.variables == frozenset({"i", "j"})

    def test_str(self):
        assert str(AffineExpr.var("i") * 2 + 3) == "2*i + 3"
        assert str(AffineExpr(0)) == "0"


class TestCond:
    def test_eval(self):
        c = Cond(AffineExpr.var("i"), "==", 3)
        assert c.evaluate({"i": 3})
        assert not c.evaluate({"i": 2})

    def test_all_ops(self):
        e = AffineExpr.var("i")
        env = {"i": 5}
        assert Cond(e, "<", 6).evaluate(env)
        assert Cond(e, "<=", 5).evaluate(env)
        assert Cond(e, ">", 4).evaluate(env)
        assert Cond(e, ">=", 5).evaluate(env)
        assert Cond(e, "!=", 4).evaluate(env)

    def test_bad_op(self):
        with pytest.raises(IrError):
            Cond(AffineExpr.var("i"), "~=", 0)

    def test_str(self):
        assert str(Cond(AffineExpr.var("i"), ">=", 2)) == "i >= 2"
