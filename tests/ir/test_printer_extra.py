"""Printer coverage for the pass-introduced node kinds."""

from repro.ir.expr import AffineExpr
from repro.ir.nodes import (
    ComputeOpNode,
    DmaCgNode,
    DmaWaitNode,
    PrefetchNode,
    TileAccess,
)
from repro.ir.printer import pretty
from repro.machine.dma import MEM_TO_SPM


def sample_dma(reply=None):
    access = TileAccess("T", ((AffineExpr.var("i"), 4),))
    return DmaCgNode(access, "spm_a", MEM_TO_SPM, reply=reply)


class TestPrinterExtra:
    def test_async_dma_shows_reply(self):
        text = pretty(sample_dma(reply="r0"))
        assert "dma_async" in text
        assert "reply=r0" in text

    def test_dma_wait(self):
        assert "dma_wait r0 x2" in pretty(DmaWaitNode("r0", 2))

    def test_prefetch_node(self):
        node = PrefetchNode([sample_dma()], (("i", 4), ("j", 2)))
        text = pretty(node)
        assert "prefetch_next over (i, j)" in text
        assert "nested if-then-else" in text

    def test_compute_op(self):
        text = pretty(ComputeOpNode("winograd_input_xform", 123.4, flops=99))
        assert "compute_op winograd_input_xform" in text
        assert "flops=99" in text

    def test_unknown_node_fallback(self):
        from repro.ir.nodes import Node

        class Weird(Node):
            pass

        assert "<Weird>" in pretty(Weird())
