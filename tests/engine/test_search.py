"""Correctness guarantees of the branch-and-bound search.

The contract: pruning changes how much work tuning does, never what it
returns.  Winner and top-K must be bit-identical to the exhaustive
walk, at any worker count, for any machine config.
"""

import pytest

from repro.autotuner.model_tuner import tune_with_model
from repro.dsl import ScheduleSpace
from repro.engine import (
    AnalyticEvaluator,
    CandidatePipeline,
    default_prune,
    resolve_prune,
    search_candidates,
    set_default_prune,
)
from repro.machine.config import default_config

from ..scheduler.test_lower import gemm_cd


def make_pipeline(m, n, k, splits, config=None):
    cd = gemm_cd(m, n, k)
    sp = ScheduleSpace(cd)
    sp.split("M", splits)
    sp.split("N", splits)
    sp.split("K", splits)
    return CandidatePipeline(cd, sp, config=config)


SPACES = [
    (128, 128, 128, [32, 64, 128]),
    (96, 256, 64, [16, 32, 64]),
    (192, 64, 128, [32, 64]),
]


def strategies_of(pairs):
    return [tuple(sorted(c.strategy.decisions.items())) for c, _ in pairs]


class TestIdenticalResults:
    @pytest.mark.parametrize("m,n,k,splits", SPACES)
    @pytest.mark.parametrize("top_k", [1, 3])
    def test_winner_and_topk_match_exhaustive(self, m, n, k, splits, top_k):
        exhaustive = make_pipeline(m, n, k, splits)
        full = search_candidates(
            exhaustive, AnalyticEvaluator(config=exhaustive.config),
            top_k=top_k, prune=False,
        )
        pruned_pipe = make_pipeline(m, n, k, splits)
        pruned = search_candidates(
            pruned_pipe, AnalyticEvaluator(config=pruned_pipe.config),
            top_k=top_k, prune=True, batch_size=4,
        )
        assert pruned_pipe.metrics.bound_pruned > 0  # it really pruned

        def ranked(pairs):
            order = sorted(
                range(len(pairs)), key=lambda i: pairs[i][1].cycles
            )  # stable: enumeration order breaks ties, as the tuner does
            return [
                tuple(sorted(pairs[i][0].strategy.decisions.items()))
                for i in order[:top_k]
            ]

        assert ranked(pruned) == ranked(full)

    def test_identical_under_modified_machine(self):
        cfg = default_config().with_overrides(
            dma_latency_cycles=800, dram_peak_bw=68.0e9
        )
        full_pipe = make_pipeline(128, 128, 128, [32, 64, 128], config=cfg)
        full = search_candidates(
            full_pipe, AnalyticEvaluator(config=cfg), prune=False
        )
        pruned_pipe = make_pipeline(128, 128, 128, [32, 64, 128], config=cfg)
        pruned = search_candidates(
            pruned_pipe, AnalyticEvaluator(config=cfg), prune=True,
            batch_size=4,
        )
        best_full = min(full, key=lambda p: p[1].cycles)
        best_pruned = min(pruned, key=lambda p: p[1].cycles)
        assert (
            best_full[0].strategy.decisions == best_pruned[0].strategy.decisions
        )
        assert best_full[1].cycles == best_pruned[1].cycles

    def test_model_tuner_winner_identical(self):
        # a space larger than one PRUNE_BATCH, so the tuner-level path
        # really exercises the branch-and-bound driver
        cd = gemm_cd(128, 128, 128)
        sp = ScheduleSpace(cd)
        sp.split("M", [16, 32, 48, 64, 128])
        sp.split("N", [16, 32, 48, 64, 128])
        sp.split("K", [16, 32, 48, 64, 128])
        off = tune_with_model(cd, sp, run_best=False, prune=False)
        on = tune_with_model(cd, sp, run_best=False, prune=True)
        assert (
            off.best.candidate.strategy.decisions
            == on.best.candidate.strategy.decisions
        )
        assert off.best.predicted_cycles == on.best.predicted_cycles
        assert on.evaluated < off.evaluated  # and it was cheaper


class TestDeterminism:
    def test_results_are_in_enumeration_order(self):
        pipe = make_pipeline(128, 128, 128, [32, 64, 128])
        pairs = search_candidates(
            pipe, AnalyticEvaluator(config=pipe.config), prune=True,
            batch_size=4,
        )
        reference = make_pipeline(128, 128, 128, [32, 64, 128])
        enum_order = {
            tuple(sorted(c.strategy.decisions.items())): i
            for i, c in enumerate(reference.candidates())
        }
        positions = [enum_order[s] for s in strategies_of(pairs)]
        assert positions == sorted(positions)

    def test_evaluated_set_is_worker_invariant(self):
        serial_pipe = make_pipeline(96, 256, 64, [16, 32, 64])
        serial = search_candidates(
            serial_pipe, AnalyticEvaluator(config=serial_pipe.config),
            prune=True, workers=1, batch_size=4,
        )
        parallel_pipe = make_pipeline(96, 256, 64, [16, 32, 64])
        parallel = search_candidates(
            parallel_pipe, AnalyticEvaluator(config=parallel_pipe.config),
            prune=True, workers=3, batch_size=4,
        )
        assert strategies_of(serial) == strategies_of(parallel)
        assert [e.cycles for _, e in serial] == [e.cycles for _, e in parallel]
        assert (
            serial_pipe.metrics.bound_pruned
            == parallel_pipe.metrics.bound_pruned
        )


class TestAccounting:
    def test_counters_partition_the_declared_space(self):
        pipe = make_pipeline(128, 128, 128, [32, 64, 128])
        pairs = search_candidates(
            pipe, AnalyticEvaluator(config=pipe.config), prune=True,
            batch_size=4,
        )
        # every declared strategy is exactly one of: scored, illegal
        # (incl. SPM-prefiltered), or bound-pruned.
        assert pipe.stats.declared == (
            len(pairs) + pipe.stats.pruned + pipe.metrics.bound_pruned
        )
        assert pipe.metrics.spm_pruned <= pipe.stats.pruned
        assert pipe.metrics.bounds.count == pipe.stats.declared
        considered = sum(b.considered for b in pipe.metrics.prune_batches)
        assert considered == pipe.stats.declared
        assert (
            sum(b.pruned for b in pipe.metrics.prune_batches)
            == pipe.metrics.bound_pruned
        )

    def test_limit_forces_exhaustive_path(self):
        pipe = make_pipeline(128, 128, 128, [32, 64])
        pairs = search_candidates(
            pipe, AnalyticEvaluator(config=pipe.config), prune=True, limit=3
        )
        assert len(pairs) == 3
        assert pipe.metrics.bound_pruned == 0  # limit disables pruning


class TestGlobalDefault:
    def test_set_default_prune_round_trips(self):
        before = default_prune()
        try:
            set_default_prune(False)
            assert resolve_prune(None) is False
            assert resolve_prune(True) is True
            set_default_prune(True)
            assert resolve_prune(None) is True
            assert resolve_prune(False) is False
        finally:
            set_default_prune(before)

    def test_search_honours_global_off(self):
        before = default_prune()
        try:
            set_default_prune(False)
            pipe = make_pipeline(128, 128, 128, [32, 64])
            search_candidates(pipe, AnalyticEvaluator(config=pipe.config))
            assert pipe.metrics.bound_pruned == 0
        finally:
            set_default_prune(before)
