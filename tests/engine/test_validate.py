"""Tests for differential kernel validation (repro.engine.validate)."""

import numpy as np
import pytest

from repro.engine import (
    CandidatePipeline,
    SimulatorEvaluator,
    ValidatingEvaluator,
    compare_tensors,
    default_validate,
    reference_outputs,
    resolve_validate,
    set_default_validate,
    synthetic_feeds,
    tolerance_for,
    validate_candidate,
    validation_digest,
)
from repro.errors import ValidationError
from repro.faults import FaultPlan, compute_digest, set_fault_plan
from repro.machine.sanitizer import set_sanitize
from repro.ops.conv_common import ConvParams
from repro.ops import conv_implicit, conv_winograd, conv2d_reference
from repro.ops.gemm import make_compute as gemm_compute
from repro.ops.gemm import make_space as gemm_space


@pytest.fixture(autouse=True)
def _clean_process_state():
    yield
    set_default_validate(None)
    set_sanitize(None)
    set_fault_plan(None)


def first_candidate(compute, space):
    pipeline = CandidatePipeline(compute, space)
    return pipeline, next(pipeline.candidates(limit=1))


class TestModes:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        set_default_validate(None)
        assert default_validate() == "off"
        assert resolve_validate(None) == "off"

    def test_sanitize_forces_all(self, monkeypatch):
        set_default_validate(None)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert default_validate() == "all"

    def test_explicit_mode_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        set_default_validate("winner")
        assert default_validate() == "winner"
        assert resolve_validate("off") == "off"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            set_default_validate("sometimes")
        with pytest.raises(ValueError):
            resolve_validate("maybe")


class TestReference:
    def test_gemm_reference_is_matmul(self):
        compute = gemm_compute(24, 20, 28)
        feeds = synthetic_feeds(compute)
        refs = reference_outputs(compute, feeds)
        a64 = np.asarray(feeds["A"], np.float64)
        b64 = np.asarray(feeds["B"], np.float64)
        np.testing.assert_allclose(refs["C"], a64 @ b64, rtol=1e-12)

    def test_conv_reference_matches_direct(self):
        params = ConvParams(batch=2, ni=8, no=8, ri=10, ci=10)
        compute = conv_implicit.make_compute(params)
        feeds = synthetic_feeds(compute)
        refs = reference_outputs(compute, feeds)
        direct = conv2d_reference(feeds["input"], feeds["weight"], params)
        (out_name,) = refs
        np.testing.assert_allclose(
            refs[out_name], direct, rtol=1e-4, atol=1e-4
        )

    def test_tolerance_grows_with_reduction_length(self):
        small = gemm_compute(16, 16, 16)
        large = gemm_compute(16, 16, 4096)
        assert tolerance_for(large)[0] > tolerance_for(small)[0]
        assert tolerance_for(small)[0] >= 1e-5

    def test_compare_tensors_structured_error(self):
        ref = np.zeros((4, 4))
        bad = ref.copy()
        bad[1, 2] = 5.0
        with pytest.raises(ValidationError) as exc:
            compare_tensors(
                bad, ref, rtol=1e-5, atol=1e-5, op="gemm", tensor="C"
            )
        err = exc.value
        assert err.op == "gemm"
        assert err.tensor == "C"
        assert err.mismatches == 1
        assert err.max_abs_err == pytest.approx(5.0)

    def test_compare_tensors_shape_mismatch(self):
        with pytest.raises(ValidationError):
            compare_tensors(
                np.zeros((2, 2)), np.zeros((2, 3)),
                rtol=1e-5, atol=1e-5,
            )


class TestValidateCandidate:
    def test_honest_gemm_passes(self):
        compute = gemm_compute(48, 48, 48)
        space = gemm_space(compute, quick=True)
        _, cand = first_candidate(compute, space)
        report = validate_candidate(cand)
        assert report.op == compute.name
        assert report.max_abs_err <= report.atol + report.rtol
        assert report.cycles > 0

    def test_honest_winograd_passes(self):
        params = ConvParams(batch=1, ni=8, no=8, ri=10, ci=10)
        compute = conv_winograd.make_compute(params)
        space = conv_winograd.make_space(params, quick=True)
        _, cand = first_candidate(compute, space)
        report = validate_candidate(cand)
        assert report.tensors

    def test_poisoned_kernel_fails(self):
        """A fault-plan poison silently corrupting kernel outputs is
        exactly what differential validation exists to catch."""
        compute = gemm_compute(48, 48, 48)
        space = gemm_space(compute, quick=True)
        _, cand = first_candidate(compute, space)
        set_fault_plan(FaultPlan(poison=compute_digest(compute)[:12]))
        with pytest.raises(ValidationError):
            validate_candidate(cand)

    def test_pipeline_validate_counts_failures(self):
        compute = gemm_compute(48, 48, 48)
        space = gemm_space(compute, quick=True)
        pipeline, cand = first_candidate(compute, space)
        pipeline.validate(cand)
        assert pipeline.metrics.validation.count == 1
        assert pipeline.metrics.validation_failures == 0
        set_fault_plan(FaultPlan(poison=compute_digest(compute)[:12]))
        with pytest.raises(ValidationError):
            pipeline.validate(cand)
        assert pipeline.metrics.validation_failures == 1
        assert pipeline.metrics.event_counts().get("validation") == 1


class TestValidatingEvaluator:
    def test_wraps_and_delegates(self):
        compute = gemm_compute(48, 48, 48)
        space = gemm_space(compute, quick=True)
        _, cand = first_candidate(compute, space)
        inner = SimulatorEvaluator(synthetic_feeds(compute))
        ev = ValidatingEvaluator(inner)
        assert ev.kind == inner.kind + "+validate"
        assert ev.params_key()[0] == inner.params_key()
        result = ev.evaluate(cand)
        assert not result.failed
        assert result.measured_cycles > 0
        assert ev.validations == 1 and ev.failures == 0

    def test_poison_becomes_failed_evaluation(self):
        compute = gemm_compute(48, 48, 48)
        space = gemm_space(compute, quick=True)
        _, cand = first_candidate(compute, space)
        inner = SimulatorEvaluator(synthetic_feeds(compute))
        ev = ValidatingEvaluator(inner)
        set_fault_plan(FaultPlan(poison=compute_digest(compute)[:12]))
        result = ev.evaluate(cand)
        assert result.failed
        assert result.site == "validation"
        assert ev.failures == 1


class TestDigest:
    def test_digest_depends_on_key_and_strategy(self):
        compute = gemm_compute(48, 48, 48)
        space = gemm_space(compute, quick=True)
        pipeline = CandidatePipeline(compute, space)
        cands = list(pipeline.candidates(limit=2))
        d1 = validation_digest("gemm:48x48x48", cands[0].strategy)
        assert d1 == validation_digest("gemm:48x48x48", cands[0].strategy)
        assert d1 != validation_digest("gemm:64x48x48", cands[0].strategy)
        if len(cands) > 1:
            assert d1 != validation_digest(
                "gemm:48x48x48", cands[1].strategy
            )
