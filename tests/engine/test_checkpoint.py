"""Checkpoint/resume of the branch-and-bound search.

The contract: a sweep interrupted at any batch boundary and resumed
from its checkpoint finishes with results bit-identical to an
uninterrupted run; corrupt or mismatched checkpoints never poison a
search -- they are quarantined or ignored and the sweep starts fresh.
"""

import json

import pytest

from repro.autotuner.model_tuner import tune_with_model
from repro.dsl import ScheduleSpace
from repro.engine import (
    AnalyticEvaluator,
    CandidatePipeline,
    SearchCheckpoint,
    search_candidates,
    set_default_checkpoint,
)
from repro.engine.checkpoint import CHECKPOINT_VERSION
from repro.engine.evalcache import CODE_SALT

from ..scheduler.test_lower import gemm_cd


@pytest.fixture(autouse=True)
def no_default_checkpoint():
    set_default_checkpoint(None)
    yield
    set_default_checkpoint(None)


def make_space():
    cd = gemm_cd(128, 128, 128)
    sp = ScheduleSpace(cd)
    sp.split("M", [16, 32, 64, 128])
    sp.split("N", [16, 32, 64, 128])
    sp.split("K", [16, 32, 64, 128])
    return cd, sp


def make_pipeline():
    cd, sp = make_space()
    return CandidatePipeline(cd, sp)


def run_search(pipeline, evaluator=None, **kw):
    evaluator = evaluator or AnalyticEvaluator(config=pipeline.config)
    # batch_size=4 gives the space several branch-and-bound batches
    # (i.e. several checkpoint writes) before the tail is pruned
    return search_candidates(
        pipeline, evaluator, prune=True, batch_size=4, **kw
    )


def signature(pairs):
    return [
        (tuple(sorted(c.strategy.decisions.items())), e.cycles)
        for c, e in pairs
    ]


class InterruptingEvaluator(AnalyticEvaluator):
    """Raises KeyboardInterrupt after ``budget`` evaluations -- the
    same kind/params as AnalyticEvaluator, so the search digest (and
    with it the checkpoint identity) is unchanged."""

    def __init__(self, budget, config=None):
        super().__init__(config=config)
        self.budget = budget
        self.done = 0

    def evaluate(self, candidate):
        if self.done >= self.budget:
            raise KeyboardInterrupt
        self.done += 1
        return super().evaluate(candidate)


class TestCheckpointFile:
    def test_written_and_complete(self, tmp_path):
        path = tmp_path / "ckpt.json"
        pipeline = make_pipeline()
        results = run_search(pipeline, checkpoint=path)
        assert results
        raw = json.loads(path.read_text())
        assert raw["version"] == CHECKPOINT_VERSION
        assert raw["salt"] == CODE_SALT
        assert raw["complete"] is True
        assert len(raw["scored"]) == len(results)

    def test_resume_complete_checkpoint_skips_evaluation(self, tmp_path):
        path = tmp_path / "ckpt.json"
        first_pipe = make_pipeline()
        first = run_search(first_pipe, checkpoint=path)

        second_pipe = make_pipeline()
        second = run_search(second_pipe, checkpoint=path, resume=True)
        assert signature(second) == signature(first)
        # everything came from the checkpoint, nothing was re-scored
        assert second_pipe.metrics.prediction.count == 0
        assert second_pipe.metrics.event_counts().get("checkpoint-resume") == 1

    def test_interrupt_then_resume_bit_identical(self, tmp_path):
        path = tmp_path / "ckpt.json"
        clean_pipe = make_pipeline()
        clean = run_search(clean_pipe)

        interrupted_pipe = make_pipeline()
        interrupting = InterruptingEvaluator(
            budget=5, config=interrupted_pipe.config
        )
        with pytest.raises(KeyboardInterrupt):
            run_search(interrupted_pipe, interrupting, checkpoint=path)
        partial = json.loads(path.read_text())
        assert partial["complete"] is False
        # it really stopped mid-sweep with at least one batch banked
        assert 0 < len(partial["scored"]) < len(clean)

        resumed_pipe = make_pipeline()
        resumed = run_search(resumed_pipe, checkpoint=path, resume=True)
        assert signature(resumed) == signature(clean)
        # the resumed run scored strictly less than the whole sweep
        assert 0 < resumed_pipe.metrics.prediction.count < len(clean)

    def test_without_resume_checkpoint_is_ignored(self, tmp_path):
        path = tmp_path / "ckpt.json"
        first_pipe = make_pipeline()
        first = run_search(first_pipe, checkpoint=path)

        again_pipe = make_pipeline()
        again = run_search(again_pipe, checkpoint=path)  # resume not set
        assert signature(again) == signature(first)
        assert again_pipe.metrics.prediction.count > 0  # re-evaluated


class TestCheckpointValidation:
    def test_corrupt_checkpoint_quarantined_and_fresh(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{definitely not json")
        pipeline = make_pipeline()
        results = run_search(pipeline, checkpoint=path, resume=True)
        assert results
        assert (tmp_path / "ckpt.json.corrupt").exists()
        assert json.loads(path.read_text())["complete"] is True

    def test_mismatched_space_ignored_in_place(self, tmp_path):
        path = tmp_path / "ckpt.json"
        SearchCheckpoint(space="0" * 64, pos=4).save(path)
        pipeline = make_pipeline()
        clean = run_search(make_pipeline())
        results = run_search(pipeline, checkpoint=path, resume=True)
        assert signature(results) == signature(clean)
        assert not (tmp_path / "ckpt.json.corrupt").exists()

    def test_inconsistent_cursor_quarantined(self, tmp_path):
        path = tmp_path / "ckpt.json"
        state = SearchCheckpoint(space="x", pos=1)
        state.scored = [(0, {"predicted": 1.0}), (1, {"predicted": 2.0})]
        state.save(path)
        assert SearchCheckpoint.load(path, expect_space="x") is None
        assert (tmp_path / "ckpt.json.corrupt").exists()

    def test_failed_evaluation_round_trips(self):
        from repro.engine import FailedEvaluation

        failure = FailedEvaluation(
            site="crash",
            error_type="InjectedCrash",
            error_message="boom",
            error_chain=("InjectedCrash: boom",),
            attempts=3,
        )
        raw = SearchCheckpoint.pack_eval(failure)
        back = SearchCheckpoint.unpack_eval(raw, None)
        assert back == failure


class TestDefaultPolicy:
    def test_directory_policy_resumes_per_search(self, tmp_path):
        set_default_checkpoint(tmp_path, resume=True)
        first_pipe = make_pipeline()
        first = run_search(first_pipe)
        files = list(tmp_path.glob("search-*.json"))
        assert len(files) == 1

        second_pipe = make_pipeline()
        second = run_search(second_pipe)
        assert signature(second) == signature(first)
        assert second_pipe.metrics.prediction.count == 0  # resumed

    def test_explicit_argument_beats_policy(self, tmp_path):
        set_default_checkpoint(tmp_path / "policy-dir", resume=True)
        explicit = tmp_path / "explicit.json"
        run_search(make_pipeline(), checkpoint=explicit)
        assert explicit.exists()
        assert not (tmp_path / "policy-dir").exists()


class TestTunerResume:
    def test_tune_with_model_resume_from(self, tmp_path):
        path = tmp_path / "tuner.json"
        cd, sp = make_space()
        first = tune_with_model(
            cd, sp, run_best=False, prune=True, checkpoint=path
        )
        cd2, sp2 = make_space()
        resumed = tune_with_model(
            cd2, sp2, run_best=False, prune=True, resume_from=path
        )
        assert (
            resumed.best.candidate.strategy.decisions
            == first.best.candidate.strategy.decisions
        )
        assert resumed.best.predicted_cycles == first.best.predicted_cycles
        assert resumed.metrics.prediction.count == 0  # answered by resume
