"""The persistent evaluation cache and its MemoizingEvaluator tier."""

import json

import pytest

from repro.dsl import ScheduleSpace
from repro.engine import (
    CandidatePipeline,
    MemoizingEvaluator,
    PersistentEvalStore,
    SimulatorEvaluator,
    default_eval_store,
    evaluate_batch,
    set_eval_cache,
)
from repro.engine.evalcache import EVAL_CACHE_VERSION

from ..scheduler.test_lower import gemm_cd


@pytest.fixture
def candidate():
    cd = gemm_cd(64, 64, 64)
    sp = ScheduleSpace(cd)
    sp.split("M", [32])
    sp.split("N", [32])
    sp.split("K", [32])
    return next(CandidatePipeline(cd, sp).candidates())


@pytest.fixture
def no_default_store():
    """Isolate tests from any process-wide eval cache."""
    before = default_eval_store()
    set_eval_cache(None)
    yield
    set_eval_cache(before)


class TestPersistentEvalStore:
    def test_roundtrip_across_reload(self, tmp_path, candidate, no_default_store):
        path = tmp_path / "scores.json"
        store = PersistentEvalStore(path)
        memo = MemoizingEvaluator(
            SimulatorEvaluator(), store={}, disk=store
        )
        first = memo.evaluate(candidate)
        store.flush()
        assert path.exists()

        reloaded = PersistentEvalStore(path)
        assert len(reloaded) == 1
        sim = SimulatorEvaluator()
        memo2 = MemoizingEvaluator(sim, store={}, disk=reloaded)
        second = memo2.evaluate(candidate)
        assert sim.executions == 0  # answered from disk, not re-simulated
        assert second.memoized
        assert second.measured_cycles == first.measured_cycles
        assert reloaded.hits == 1 and memo2.disk_hits == 1

    def test_salt_mismatch_discards_store(self, tmp_path, candidate, no_default_store):
        path = tmp_path / "scores.json"
        store = PersistentEvalStore(path, salt="code-v1")
        MemoizingEvaluator(
            SimulatorEvaluator(), store={}, disk=store
        ).evaluate(candidate)
        store.flush()

        stale = PersistentEvalStore(path, salt="code-v2")
        assert len(stale) == 0

    def test_version_mismatch_discards_store(self, tmp_path, no_default_store):
        path = tmp_path / "scores.json"
        payload = {
            "version": EVAL_CACHE_VERSION + 1,
            "salt": PersistentEvalStore(tmp_path / "x.json").salt,
            "entries": {"deadbeef": [1.0, 2.0]},
        }
        path.write_text(json.dumps(payload))
        assert len(PersistentEvalStore(path)) == 0

    def test_corrupt_file_starts_empty(self, tmp_path, no_default_store):
        path = tmp_path / "scores.json"
        path.write_text("{not json")
        store = PersistentEvalStore(path)
        assert len(store) == 0

    def test_unsalvageable_file_quarantined(self, tmp_path, no_default_store):
        path = tmp_path / "scores.json"
        path.write_text("{not json")
        store = PersistentEvalStore(path)
        sidecar = tmp_path / "scores.json.corrupt"
        assert store.quarantined_path == sidecar
        assert sidecar.read_text() == "{not json"  # evidence preserved
        assert not path.exists()
        assert "corrupt original" in store.describe()

    def test_truncated_file_recovers_valid_prefix(
        self, tmp_path, candidate, no_default_store
    ):
        path = tmp_path / "scores.json"
        store = PersistentEvalStore(path)
        memo = MemoizingEvaluator(SimulatorEvaluator(), store={}, disk=store)
        evaluation = memo.evaluate(candidate)
        # pad with synthetic entries so a truncation point falls
        # between entries, then tear the tail off the file
        for i in range(20):
            store.put(("synthetic", i), evaluation)
        store.flush()
        data = path.read_text()
        path.write_text(data[: int(len(data) * 0.6)])

        recovered = PersistentEvalStore(path)
        assert recovered.recovered
        assert 0 < len(recovered) < 21
        assert "recovered" in recovered.describe()
        # the real entry survives: it was written first
        sim = SimulatorEvaluator()
        MemoizingEvaluator(sim, store={}, disk=recovered).evaluate(candidate)
        assert sim.executions == 0  # answered from the recovered prefix
        # recovery marks the store dirty so the next flush rewrites a
        # clean file
        recovered.flush()
        clean = PersistentEvalStore(path)
        assert not clean.recovered
        assert len(clean) == len(recovered)

    def test_malformed_entries_skipped_individually(
        self, tmp_path, no_default_store
    ):
        path = tmp_path / "scores.json"
        probe = PersistentEvalStore(tmp_path / "probe.json")
        payload = {
            "version": EVAL_CACHE_VERSION,
            "salt": probe.salt,
            "entries": {
                "good": [1.0, 2.0, None],
                "bad-shape": [1.0],
                "bad-types": ["x", "y", "z"],
                "bad-report": [1.0, 2.0, "not a dict"],
            },
        }
        path.write_text(json.dumps(payload))
        store = PersistentEvalStore(path)
        assert len(store) == 1
        assert store.invalid_entries == 3
        assert "3 malformed" in store.describe()
        store.flush()  # rewrites without the bad entries
        assert len(PersistentEvalStore(path)) == 1

    def test_flush_is_atomic_and_idempotent(self, tmp_path, candidate, no_default_store):
        path = tmp_path / "nested" / "scores.json"
        store = PersistentEvalStore(path)
        memo = MemoizingEvaluator(SimulatorEvaluator(), store={}, disk=store)
        memo.evaluate(candidate)
        store.flush()
        mtime = path.stat().st_mtime_ns
        store.flush()  # clean: must not rewrite
        assert path.stat().st_mtime_ns == mtime
        assert not list(path.parent.glob("*.tmp"))  # no temp litter

    def test_reports_survive_the_disk_roundtrip(
        self, tmp_path, candidate, no_default_store
    ):
        """Harness drivers read ``result.report.cycles`` (and .seconds,
        .gflops) off warm runs, so the numeric report summary must come
        back from disk with the requesting evaluator's config."""
        path = tmp_path / "scores.json"
        store = PersistentEvalStore(path)
        memo = MemoizingEvaluator(SimulatorEvaluator(), store={}, disk=store)
        original = memo.evaluate(candidate).report
        assert original is not None
        store.flush()

        sim = SimulatorEvaluator()
        hit = MemoizingEvaluator(
            sim, store={}, disk=PersistentEvalStore(path)
        ).evaluate(candidate)
        assert hit.report is not None
        assert hit.report.cycles == original.cycles
        assert hit.report.dma_cycles == original.dma_cycles
        assert hit.report.compute_cycles == original.compute_cycles
        assert hit.report.bytes_moved == original.bytes_moved
        assert hit.report.flops == original.flops
        assert hit.report.config is sim.config  # rebuilt, clock intact
        assert hit.report.seconds == original.seconds


class TestProcessWideDefault:
    def test_memoizer_picks_up_installed_cache(self, tmp_path, candidate):
        before = default_eval_store()
        try:
            store = set_eval_cache(tmp_path / "scores.json")
            sim = SimulatorEvaluator()
            memo = MemoizingEvaluator(sim, store={})  # no explicit disk
            assert memo.disk is store
            memo.evaluate(candidate)
            memo.flush()

            fresh = SimulatorEvaluator()
            again = MemoizingEvaluator(fresh, store={})
            again.evaluate(candidate)
            assert fresh.executions == 0
        finally:
            set_eval_cache(before)

    def test_explicit_none_disables_disk(self, tmp_path, candidate):
        before = default_eval_store()
        try:
            set_eval_cache(tmp_path / "scores.json")
            memo = MemoizingEvaluator(SimulatorEvaluator(), store={}, disk=None)
            assert memo.disk is None
        finally:
            set_eval_cache(before)

    def test_batch_flushes_at_boundary(self, tmp_path, candidate):
        before = default_eval_store()
        try:
            path = tmp_path / "scores.json"
            set_eval_cache(path)
            memo = MemoizingEvaluator(SimulatorEvaluator(), store={})
            evaluate_batch([candidate], memo)
            assert path.exists()  # no explicit flush() needed
        finally:
            set_eval_cache(before)


class TestQuarantineSidecars:
    def test_repeated_corruption_never_clobbers_evidence(self, tmp_path):
        """Each quarantine gets its own sidecar: ``.corrupt``,
        ``.corrupt.1``, ... -- a second corruption must not overwrite
        the first post-mortem."""
        from repro.engine.evalcache import quarantine_corrupt

        path = tmp_path / "store.json"
        path.write_text("first corruption")
        s1 = quarantine_corrupt(path, "test")
        assert s1 == tmp_path / "store.json.corrupt"
        path.write_text("second corruption")
        s2 = quarantine_corrupt(path, "test")
        assert s2 == tmp_path / "store.json.corrupt.1"
        path.write_text("third corruption")
        s3 = quarantine_corrupt(path, "test")
        assert s3 == tmp_path / "store.json.corrupt.2"
        assert s1.read_text() == "first corruption"
        assert s2.read_text() == "second corruption"
        assert s3.read_text() == "third corruption"
        assert not path.exists()
