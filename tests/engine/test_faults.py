"""Resilience of the supervised evaluation engine under injected faults.

The contract mirrors the pruning one: faults change how much work a
sweep does (retries, bisections, pool rebuilds), never what it returns.
Transient failures must recover to bit-identical results; persistent
(poison) failures must quarantine exactly the poisoned candidate.
"""

import warnings

import pytest

from repro.dsl import ScheduleSpace
from repro.engine import (
    AnalyticEvaluator,
    CandidatePipeline,
    EngineMetrics,
    FailedEvaluation,
    MemoizingEvaluator,
    PersistentEvalStore,
    evaluate_batch,
    search_candidates,
)
from repro.engine import parallel as par
from repro.engine.evalcache import EVAL_CACHE_VERSION
from repro.faults import (
    FaultPlan,
    InjectedCrash,
    InjectedEvaluatorError,
    InjectedHang,
    candidate_digest,
    set_fault_plan,
)

from ..scheduler.test_lower import gemm_cd


@pytest.fixture(autouse=True)
def clean_engine_state():
    from repro.engine import set_default_checkpoint, set_eval_cache

    set_fault_plan(None)
    set_default_checkpoint(None)
    set_eval_cache(None)
    par.reset_degradation_warnings()
    yield
    set_fault_plan(None)
    set_default_checkpoint(None)
    set_eval_cache(None)
    par.reset_degradation_warnings()


def make_pipeline(splits=(32, 64, 128)):
    cd = gemm_cd(128, 128, 128)
    sp = ScheduleSpace(cd)
    sp.split("M", list(splits))
    sp.split("N", list(splits))
    sp.split("K", list(splits))
    return CandidatePipeline(cd, sp)


def eval_signature(pairs):
    """Comparable (strategy, cycles) list for bit-identity checks."""
    return [
        (tuple(sorted(c.strategy.decisions.items())), e.cycles)
        for c, e in pairs
        if not e.failed
    ]


class TestFaultPlan:
    def test_draws_are_deterministic(self):
        plan = FaultPlan(seed=7, exception=0.5)
        first = [plan.should_fire("exception", f"k{i}") for i in range(64)]
        again = [plan.should_fire("exception", f"k{i}") for i in range(64)]
        assert first == again
        assert any(first) and not all(first)

    def test_attempt_redraws(self):
        plan = FaultPlan(seed=3, crash=0.5)
        keys = [f"k{i}" for i in range(128)]
        fired0 = {k for k in keys if plan.should_fire("crash", k, 0)}
        fired1 = {k for k in keys if plan.should_fire("crash", k, 1)}
        assert fired0 and fired0 != fired1  # a retry really re-draws

    def test_seed_changes_schedule(self):
        keys = [f"k{i}" for i in range(128)]
        a = {k for k in keys if FaultPlan(seed=1, hang=0.3).should_fire("hang", k)}
        b = {k for k in keys if FaultPlan(seed=2, hang=0.3).should_fire("hang", k)}
        assert a != b

    def test_parse_round_trip(self):
        plan = FaultPlan.parse("seed=42,crash=0.1,corrupt=0.5,poison=ab12")
        assert plan == FaultPlan(seed=42, crash=0.1, corrupt=0.5, poison="ab12")
        assert FaultPlan.parse(plan.describe()) == plan

    @pytest.mark.parametrize(
        "spec",
        ["crash", "crash=2.0", "bogus=0.1", "crash=-0.5", "seed=x"],
    )
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_noop_plan_not_installed(self):
        assert set_fault_plan(FaultPlan(seed=9)) is None
        assert set_fault_plan(FaultPlan(seed=9, crash=0.1)) is not None

    def test_evaluator_raises_planned_sites(self):
        pipeline = make_pipeline((64, 128))
        cands = list(pipeline.candidates())
        digest = candidate_digest(cands[0])
        from repro.faults import FaultyEvaluator

        inner = AnalyticEvaluator(config=pipeline.config)
        for rate_name, exc_type in [
            ("crash", InjectedCrash),
            ("hang", InjectedHang),
            ("exception", InjectedEvaluatorError),
        ]:
            plan = FaultPlan(seed=0, **{rate_name: 1.0})
            with pytest.raises(exc_type):
                FaultyEvaluator(inner, plan).evaluate(cands[0])
        poisoned = FaultyEvaluator(
            inner, FaultPlan(poison=digest[:12])
        )
        with pytest.raises(InjectedEvaluatorError):
            poisoned.evaluate(cands[0])


class TestSupervisedSerial:
    def test_transient_exceptions_recover_bit_identical(self):
        pipeline = make_pipeline()
        cands = list(pipeline.candidates())
        clean = evaluate_batch(
            cands, AnalyticEvaluator(config=pipeline.config), workers=1
        )

        # seed chosen so the plan fires on several candidates but never
        # three attempts in a row (which would be a quarantine)
        set_fault_plan(FaultPlan(seed=2, exception=0.3))
        metrics = EngineMetrics()
        faulty = evaluate_batch(
            cands,
            AnalyticEvaluator(config=pipeline.config),
            workers=1,
            metrics=metrics,
        )
        assert metrics.retries > 0  # the plan really fired
        assert metrics.quarantined == 0  # transient: retries recovered all
        assert [e.cycles for e in faulty] == [e.cycles for e in clean]

    def test_poison_quarantined_exactly(self):
        pipeline = make_pipeline()
        cands = list(pipeline.candidates())
        clean = evaluate_batch(
            cands, AnalyticEvaluator(config=pipeline.config), workers=1
        )
        victim = 3
        set_fault_plan(
            FaultPlan(poison=candidate_digest(cands[victim])[:12])
        )
        metrics = EngineMetrics()
        faulty = evaluate_batch(
            cands,
            AnalyticEvaluator(config=pipeline.config),
            workers=1,
            metrics=metrics,
        )
        assert metrics.quarantined == 1
        assert isinstance(faulty[victim], FailedEvaluation)
        assert faulty[victim].site == "exception"
        assert faulty[victim].attempts == 3  # initial try + 2 retries
        assert "poison" in faulty[victim].error_message
        assert faulty[victim].error_chain  # the chain survived
        for i, (a, b) in enumerate(zip(faulty, clean)):
            if i != victim:
                assert a.cycles == b.cycles

    def test_quarantined_never_reaches_memo(self):
        pipeline = make_pipeline((64, 128))
        cands = list(pipeline.candidates())
        set_fault_plan(FaultPlan(poison=candidate_digest(cands[0])[:12]))
        store = {}
        memo = MemoizingEvaluator(
            AnalyticEvaluator(config=pipeline.config), store=store, disk=None
        )
        out = evaluate_batch(cands, memo, workers=1)
        assert out[0].failed
        assert len(store) == len(cands) - 1

    def test_hang_site_classified(self):
        assert par._classify(InjectedHang("x")) == "hang"
        assert par._classify(InjectedCrash("x")) == "crash"
        assert par._classify(TimeoutError()) == "hang"
        assert par._classify(ValueError("x")) == "exception"

    def test_events_recorded(self):
        pipeline = make_pipeline((64, 128))
        cands = list(pipeline.candidates())
        set_fault_plan(FaultPlan(poison=candidate_digest(cands[0])[:12]))
        metrics = EngineMetrics()
        evaluate_batch(
            cands,
            AnalyticEvaluator(config=pipeline.config),
            workers=1,
            metrics=metrics,
        )
        counts = metrics.event_counts()
        assert counts.get("retry") == 2
        assert counts.get("quarantine") == 1
        assert "quarantine 1" in metrics.describe_events()


class TestSupervisedParallel:
    def test_crash_recovery_bit_identical(self):
        pipeline = make_pipeline()
        cands = list(pipeline.candidates())
        clean = evaluate_batch(
            cands, AnalyticEvaluator(config=pipeline.config), workers=1
        )
        set_fault_plan(FaultPlan(seed=5, crash=0.08))
        metrics = EngineMetrics()
        faulty = evaluate_batch(
            cands,
            AnalyticEvaluator(config=pipeline.config),
            workers=2,
            metrics=metrics,
        )
        # the pool really broke and was rebuilt, and no candidate was
        # quarantined by a neighbour's crash
        assert metrics.event_counts().get("pool-rebuild", 0) > 0
        assert metrics.quarantined == 0
        assert metrics.degraded_batches == 0
        assert [e.cycles for e in faulty] == [e.cycles for e in clean]

    def test_parallel_poison_quarantined_exactly(self):
        pipeline = make_pipeline()
        cands = list(pipeline.candidates())
        victim = 5
        set_fault_plan(
            FaultPlan(poison=candidate_digest(cands[victim])[:12])
        )
        metrics = EngineMetrics()
        out = evaluate_batch(
            cands,
            AnalyticEvaluator(config=pipeline.config),
            workers=2,
            metrics=metrics,
        )
        assert metrics.quarantined == 1
        assert isinstance(out[victim], FailedEvaluation)
        assert sum(1 for e in out if e.failed) == 1
        assert metrics.event_counts().get("bisect", 0) > 0

    def test_degradation_is_loud(self, monkeypatch):
        pipeline = make_pipeline((64, 128))
        cands = list(pipeline.candidates())

        def broken_pool(workers, evaluator):
            raise OSError("no process support here")

        monkeypatch.setattr(par, "_make_pool", broken_pool)
        metrics = EngineMetrics()
        with pytest.warns(RuntimeWarning, match="degraded to serial"):
            out = evaluate_batch(
                cands,
                AnalyticEvaluator(config=pipeline.config),
                workers=2,
                metrics=metrics,
            )
        assert metrics.degraded_batches == 1
        assert metrics.event_counts().get("degraded") == 1
        assert len(out) == len(cands) and not any(e.failed for e in out)
        # second degradation: counted again, but warned only once
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            evaluate_batch(
                cands,
                AnalyticEvaluator(config=pipeline.config),
                workers=2,
                metrics=metrics,
            )
        assert metrics.degraded_batches == 2


class TestAcceptanceScenario:
    """The issue's acceptance criterion: crashes + a poison candidate +
    a corrupted eval-cache file, in one seeded sweep."""

    def test_chaos_sweep_matches_fault_free(self, tmp_path):
        # fault-free exhaustive reference
        ref_pipe = make_pipeline()
        reference = search_candidates(
            ref_pipe, AnalyticEvaluator(config=ref_pipe.config), prune=False
        )
        ref_best = min(
            reference, key=lambda p: (p[1].cycles,)
        )

        # pick a mid-ranking candidate the pruned sweep will evaluate
        pruned_pipe = make_pipeline()
        pruned = search_candidates(
            pruned_pipe,
            AnalyticEvaluator(config=pruned_pipe.config),
            prune=True,
            batch_size=8,
        )
        by_cycles = sorted(pruned, key=lambda p: p[1].cycles)
        poison_cand = by_cycles[len(by_cycles) // 2][0]
        poison = candidate_digest(poison_cand)[:16]

        # a corrupted eval-cache file the sweep must survive
        cache_path = tmp_path / "evals.json"
        cache_path.write_text(
            '{"version": %d, "salt": "x", "entries": {"trunc' % EVAL_CACHE_VERSION
        )
        store = PersistentEvalStore(cache_path)
        assert len(store) == 0

        set_fault_plan(FaultPlan(seed=13, crash=0.05, poison=poison))
        chaos_pipe = make_pipeline()
        memo = MemoizingEvaluator(
            AnalyticEvaluator(config=chaos_pipe.config), store={}, disk=store
        )
        chaos = search_candidates(
            chaos_pipe, memo, prune=True, batch_size=8, workers=2
        )

        # the sweep completed, quarantining exactly the poison candidate
        failed = [(c, e) for c, e in chaos if e.failed]
        assert len(failed) == 1
        assert candidate_digest(failed[0][0]).startswith(poison)
        assert chaos_pipe.metrics.quarantined == 1

        # and the winner matches the fault-free exhaustive run
        chaos_best = min(chaos, key=lambda p: (p[1].cycles,))
        assert (
            chaos_best[0].strategy.decisions == ref_best[0].strategy.decisions
        )
        assert chaos_best[1].cycles == ref_best[1].cycles

        # the store only holds healthy entries and flushes cleanly
        set_fault_plan(None)
        store.flush()
        reloaded = PersistentEvalStore(cache_path)
        assert len(reloaded) == len(store)
