"""Tests for the unified candidate-evaluation engine."""

import numpy as np
import pytest

from repro.dsl import ScheduleSpace
from repro.dsl.schedule import ScheduleStrategy
from repro.engine import (
    AnalyticEvaluator,
    CandidatePipeline,
    EngineMetrics,
    MemoizingEvaluator,
    SimulatorEvaluator,
    clear_feeds_cache,
    clip_strategy,
    compile_strategy,
    compute_signature,
    evaluate_batch,
    strategy_key,
    synthetic_feeds,
)
from repro.errors import TuningError

from ..scheduler.test_lower import gemm_cd


def small_space(M=128, N=128, K=128):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [32, 64])
    sp.split("N", [32, 64])
    sp.split("K", [32, 64])
    return cd, sp


class TestCandidatePipeline:
    def test_enumerates_whole_space(self):
        cd, sp = small_space()
        pipe = CandidatePipeline(cd, sp)
        cands = list(pipe.candidates())
        assert len(cands) == pipe.stats.legal
        assert pipe.stats.declared == sp.size() == 8
        # every declared strategy is accounted in the enumeration stage,
        # every legal one went through the optimizer
        assert pipe.metrics.enumeration.count == pipe.stats.declared
        assert pipe.metrics.optimization.count == len(cands)

    def test_limit_stops_at_n_legal(self):
        cd, sp = small_space()
        pipe = CandidatePipeline(cd, sp)
        assert len(list(pipe.candidates(limit=2))) == 2

    def test_candidates_without_space_raises(self):
        cd, _ = small_space()
        with pytest.raises(TuningError):
            next(CandidatePipeline(cd).candidates())

    def test_prepare_single_strategy(self):
        cd, sp = small_space()
        pipe = CandidatePipeline(cd, sp)
        target = next(pipe.candidates())
        again = CandidatePipeline(cd).prepare(target.strategy)
        assert again.strategy.decisions == target.strategy.decisions
        assert pipe.metrics.optimization.count >= 1

    def test_compile_strategy_runs_correctly(self):
        cd, sp = small_space(64, 64, 64)
        pipe = CandidatePipeline(cd, sp)
        strategy = next(pipe.candidates()).strategy
        ck = compile_strategy(cd, strategy)
        feeds = synthetic_feeds(cd)
        out = ck.run(feeds).outputs["C"]
        np.testing.assert_allclose(
            out, feeds["A"] @ feeds["B"], rtol=1e-4, atol=1e-3
        )

    def test_clip_strategy_clamps_tiles(self):
        cd = gemm_cd(32, 32, 32)
        s = ScheduleStrategy({"tile:M": 64, "tile:N": 16, "vec_dim": "M"})
        clipped = clip_strategy(s, cd)
        assert clipped["tile:M"] == 32  # clamped to the axis extent
        assert clipped["tile:N"] == 16  # already legal: untouched


class TestEvaluators:
    def test_analytic_predicts_without_running(self):
        cd, sp = small_space()
        cand = next(CandidatePipeline(cd, sp).candidates())
        ev = AnalyticEvaluator().evaluate(cand)
        assert ev.predicted_cycles is not None and ev.predicted_cycles > 0
        assert ev.measured_cycles is None and ev.report is None
        assert ev.cycles == ev.predicted_cycles

    def test_simulator_measures_and_counts(self):
        cd, sp = small_space(64, 64, 64)
        cand = next(CandidatePipeline(cd, sp).candidates())
        sim = SimulatorEvaluator()
        ev = sim.evaluate(cand)
        assert sim.executions == 1
        assert ev.measured_cycles is not None and ev.measured_cycles > 0
        assert ev.report is not None
        assert ev.report.cycles == ev.measured_cycles

    def test_compute_signature_distinguishes_shapes(self):
        a, _ = small_space(64, 64, 64)
        b, _ = small_space(64, 64, 64)
        c, _ = small_space(128, 64, 64)
        assert compute_signature(a) == compute_signature(b)
        assert compute_signature(a) != compute_signature(c)

    def test_strategy_key_order_independent(self):
        s1 = ScheduleStrategy({"tile:M": 64, "vec_dim": "M"})
        s2 = ScheduleStrategy({"vec_dim": "M", "tile:M": 64})
        assert strategy_key(s1) == strategy_key(s2)


class TestMemoization:
    def test_second_evaluation_is_a_hit(self):
        cd, sp = small_space(64, 64, 64)
        cand = next(CandidatePipeline(cd, sp).candidates())
        sim = SimulatorEvaluator()
        memo = MemoizingEvaluator(sim, store={})
        first = memo.evaluate(cand)
        second = memo.evaluate(cand)
        assert sim.executions == 1  # the probe: no re-execution
        assert memo.hits == 1
        assert not first.memoized and second.memoized
        assert second.measured_cycles == first.measured_cycles
        assert second.report is first.report  # cached SimReport survives

    def test_salt_separates_contexts(self):
        cd, sp = small_space(64, 64, 64)
        cand = next(CandidatePipeline(cd, sp).candidates())
        store = {}
        sim = SimulatorEvaluator()
        MemoizingEvaluator(sim, store=store, salt=("prefetch",)).evaluate(cand)
        MemoizingEvaluator(sim, store=store, salt=("bare",)).evaluate(cand)
        assert sim.executions == 2  # different salt: no sharing
        assert len(store) == 2

    def test_batch_memo_skips_execution(self):
        cd, sp = small_space(64, 64, 64)
        cands = list(CandidatePipeline(cd, sp).candidates())
        store = {}
        warm = SimulatorEvaluator()
        first = evaluate_batch(cands, MemoizingEvaluator(warm, store=store))
        assert warm.executions == len(cands)

        cold = SimulatorEvaluator()
        metrics = EngineMetrics()
        second = evaluate_batch(
            cands, MemoizingEvaluator(cold, store=store), metrics=metrics
        )
        assert cold.executions == 0  # everything answered from the memo
        assert metrics.memo_hits == len(cands)
        assert metrics.execution.count == 0
        for a, b in zip(first, second):
            assert b.memoized
            assert b.measured_cycles == a.measured_cycles
            assert b.report is not None


class TestParallelBatch:
    def test_parallel_matches_serial_bit_for_bit(self):
        cd, sp = small_space()
        cands = list(CandidatePipeline(cd, sp).candidates())
        assert len(cands) > 1
        serial = evaluate_batch(cands, SimulatorEvaluator(), workers=1)
        parallel = evaluate_batch(cands, SimulatorEvaluator(), workers=2)
        assert len(serial) == len(parallel) == len(cands)
        assert [e.measured_cycles for e in serial] == [
            e.measured_cycles for e in parallel
        ]

    def test_results_are_order_stable(self):
        cd, sp = small_space()
        cands = list(CandidatePipeline(cd, sp).candidates())
        sim = SimulatorEvaluator()
        batch = evaluate_batch(cands, sim, workers=2, chunk_size=1)
        for cand, ev in zip(cands, batch):
            assert ev.measured_cycles == sim.evaluate(cand).measured_cycles

    def test_default_chunking_is_order_stable_at_any_width(self):
        """The default chunk size is len/workers; whatever the split,
        results[i] must belong to candidates[i]."""
        cd, sp = small_space()
        cands = list(CandidatePipeline(cd, sp).candidates())
        reference = [
            SimulatorEvaluator().evaluate(c).measured_cycles for c in cands
        ]
        for workers in (2, 3, len(cands)):
            batch = evaluate_batch(cands, SimulatorEvaluator(), workers=workers)
            assert [e.measured_cycles for e in batch] == reference

    def test_metrics_record_workers_and_counts(self):
        cd, sp = small_space()
        cands = list(CandidatePipeline(cd, sp).candidates())
        metrics = EngineMetrics()
        evaluate_batch(cands, SimulatorEvaluator(), workers=2, metrics=metrics)
        assert metrics.workers == 2
        assert metrics.execution.count == len(cands)
        assert metrics.execution.seconds > 0

    def test_analytic_batch_reports_into_prediction_stage(self):
        cd, sp = small_space()
        cands = list(CandidatePipeline(cd, sp).candidates())
        metrics = EngineMetrics()
        batch = evaluate_batch(cands, AnalyticEvaluator(), metrics=metrics)
        assert metrics.prediction.count == len(cands)
        assert metrics.execution.count == 0
        assert all(e.predicted_cycles is not None for e in batch)


class TestFeedsCache:
    def test_repeat_calls_reuse_arrays(self):
        cd, _ = small_space(64, 64, 64)
        clear_feeds_cache()
        first = synthetic_feeds(cd)
        second = synthetic_feeds(cd)
        assert first is not second  # callers get their own dict...
        for name in first:
            assert first[name] is second[name]  # ...over shared arrays
            assert not first[name].flags.writeable

    def test_seed_and_shape_separate_entries(self):
        cd, _ = small_space(64, 64, 64)
        other, _ = small_space(128, 64, 64)
        assert synthetic_feeds(cd, seed=0)["A"] is not synthetic_feeds(
            cd, seed=1
        )["A"]
        assert synthetic_feeds(cd)["A"].shape != synthetic_feeds(other)[
            "A"
        ].shape

    def test_values_match_uncached_generation(self):
        cd, _ = small_space(64, 64, 64)
        cached = synthetic_feeds(cd, seed=7)
        clear_feeds_cache()
        fresh = synthetic_feeds(cd, seed=7)
        for name in fresh:
            np.testing.assert_array_equal(cached[name], fresh[name])
