"""Admissibility of the pre-IR strategy bounds.

The branch-and-bound search is only allowed to prune a candidate when
its bound provably cannot beat the incumbent; these tests check the
"provably" part directly: over whole schedule spaces the bound (scaled
by the comparison slack ``BOUND_SAFETY``) never exceeds the predicted
score, never exceeds the measured score, and the SPM-infeasibility
prefilter never rejects a strategy lowering would have accepted.
"""

import pytest

from repro.dsl import ScheduleSpace
from repro.dsl.schedule import ScheduleStrategy
from repro.engine import (
    BOUND_SAFETY,
    AnalyticEvaluator,
    CandidatePipeline,
    SimulatorEvaluator,
    definitely_infeasible,
    strategy_bound,
)
from repro.engine.bounds import VACUOUS
from repro.machine.config import default_config

from ..scheduler.test_lower import gemm_cd


def space_of(cd, splits):
    sp = ScheduleSpace(cd)
    sp.split("M", splits)
    sp.split("N", splits)
    sp.split("K", splits)
    return sp


SHAPES = [
    (128, 128, 128, [32, 64]),
    (96, 256, 64, [16, 32, 64]),
    (64, 192, 128, [16, 32, 64]),
]


class TestAdmissibilityVsPrediction:
    @pytest.mark.parametrize("m,n,k,splits", SHAPES)
    def test_bound_never_exceeds_predicted_score(self, m, n, k, splits):
        cd = gemm_cd(m, n, k)
        pipe = CandidatePipeline(cd, space_of(cd, splits))
        analytic = AnalyticEvaluator(config=pipe.config)
        checked = 0
        for cand in pipe.candidates():
            bound = strategy_bound(cd, cand.strategy, pipe.config)
            predicted = analytic.evaluate(cand).predicted_cycles
            assert bound.cycles * BOUND_SAFETY <= predicted, (
                f"inadmissible bound {bound.cycles} > {predicted} "
                f"for {cand.strategy.decisions}"
            )
            checked += 1
        assert checked > 0

    def test_bound_admissible_under_modified_machine(self):
        # a config whose DMA is twice as expensive and whose vmad
        # latency differs: both the bound and the model must move
        # together, with the inequality intact.
        cfg = default_config().with_overrides(
            dma_latency_cycles=3300,
            dram_peak_bw=17.0e9,
            latencies={**default_config().latencies, "vmad": 9},
        )
        cd = gemm_cd(96, 96, 96)
        pipe = CandidatePipeline(cd, space_of(cd, [32, 96]), config=cfg)
        analytic = AnalyticEvaluator(config=cfg)
        for cand in pipe.candidates():
            bound = strategy_bound(cd, cand.strategy, cfg)
            predicted = analytic.evaluate(cand).predicted_cycles
            assert bound.cycles * BOUND_SAFETY <= predicted


class TestAdmissibilityVsMeasurement:
    def test_bound_never_exceeds_measured_cycles(self):
        cd = gemm_cd(64, 64, 64)
        pipe = CandidatePipeline(cd, space_of(cd, [32, 64]))
        sim = SimulatorEvaluator()
        for cand in pipe.candidates():
            bound = strategy_bound(cd, cand.strategy, pipe.config)
            measured = sim.evaluate(cand).measured_cycles
            assert bound.cycles * BOUND_SAFETY <= measured


class TestBoundStructure:
    def test_bound_is_max_of_dma_and_compute(self):
        cd = gemm_cd(128, 128, 128)
        strategy = ScheduleStrategy(
            {"tile:M": 64, "tile:N": 64, "tile:K": 64}
        )
        bound = strategy_bound(cd, strategy)
        assert bound.cycles == max(bound.dma_cycles, bound.compute_cycles)
        assert bound.transfers > 0 and bound.dma_bytes > 0

    def test_undecodable_strategy_gets_vacuous_bound(self):
        cd = gemm_cd(64, 64, 64)
        weird = ScheduleStrategy({"tile:M": "not-a-tile"})
        assert strategy_bound(cd, weird) == VACUOUS
        assert VACUOUS.cycles == 0.0  # never prunes

    def test_slow_variant_has_larger_compute_bound(self):
        cd = gemm_cd(128, 128, 128)
        base = {"tile:M": 64, "tile:N": 64, "tile:K": 64}
        fast = strategy_bound(
            cd,
            ScheduleStrategy(
                {**base, "vec_dim": "M",
                 "spm_layout:a": "col_major", "spm_layout:b": "col_major"}
            ),
        )
        slow = strategy_bound(
            cd,
            ScheduleStrategy(
                {**base, "vec_dim": "M",
                 "spm_layout:a": "row_major", "spm_layout:b": "col_major"}
            ),
        )
        assert slow.compute_cycles > fast.compute_cycles


class TestSpmPrefilter:
    def test_never_rejects_a_lowerable_strategy(self):
        # a space that straddles the SPM capacity: some strategies fit,
        # some overflow.  The prefilter may miss overflowing ones (it is
        # a floor), but must never fire on one lowering accepts.
        cd = gemm_cd(512, 512, 512)
        sp = space_of(cd, [64, 256, 512])
        pipe = CandidatePipeline(cd, sp)
        fired = 0
        for strategy in pipe.strategies():
            infeasible = definitely_infeasible(
                cd, strategy, pipe.config, pipe.options
            )
            candidate = pipe.realize(strategy)
            if infeasible:
                fired += 1
                assert candidate is None, (
                    f"prefilter rejected lowerable {strategy.decisions}"
                )
        assert fired > 0  # the space really exercises the filter

    def test_small_tiles_are_not_flagged(self):
        cd = gemm_cd(128, 128, 128)
        strategy = ScheduleStrategy(
            {"tile:M": 32, "tile:N": 32, "tile:K": 32}
        )
        assert not definitely_infeasible(cd, strategy)
