"""Tests for the compile pipeline wrapper and its failure modes."""

import numpy as np
import pytest

from repro.codegen import compile_candidate
from repro.dsl import ScheduleSpace
from repro.errors import IrError
from repro.ir import ForNode, walk
from repro.optimizer.prefetch import pipelined_loops
from repro.scheduler import Candidate, LoweringOptions, lower_strategy

from ..scheduler.test_lower import gemm_cd


def candidate(double_buffer=True, M=128, N=128, K=128):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [64]); sp.split("N", [64]); sp.split("K", [32])
    strat = sp.strategy()
    kernel = lower_strategy(
        cd, strat, options=LoweringOptions(double_buffer=double_buffer)
    )
    return Candidate(strat, kernel, cd)


class TestCompilePipeline:
    def test_default_pipeline_prefetches(self):
        ck = compile_candidate(candidate())
        assert pipelined_loops(ck.kernel)

    def test_prefetch_disabled(self):
        ck = compile_candidate(candidate(double_buffer=False), prefetch=False)
        assert not pipelined_loops(ck.kernel)
        # still runs correctly
        rng = np.random.default_rng(0)
        a = rng.standard_normal((128, 128)).astype(np.float32)
        b = rng.standard_normal((128, 128)).astype(np.float32)
        res = ck.run({"A": a, "B": b})
        np.testing.assert_allclose(res.outputs["C"], a @ b, rtol=1e-4, atol=1e-3)

    def test_prefetch_without_reservation_rejected(self):
        """Asking for prefetch on a single-buffered lowering must fail
        loudly, not silently under-reserve the scratch pad."""
        with pytest.raises(IrError):
            compile_candidate(candidate(double_buffer=False), prefetch=True)

    def test_compiled_kernel_exposes_plan(self):
        ck = compile_candidate(candidate())
        assert ck.spm_plan.total_bytes > 0
        assert set(ck.storage_shapes) == {"A", "B", "C"}

    def test_original_candidate_untouched(self):
        cand = candidate()
        before = sum(1 for n in walk(cand.kernel)
                     if isinstance(n, ForNode) and n.pipelined)
        compile_candidate(cand)
        after = sum(1 for n in walk(cand.kernel)
                    if isinstance(n, ForNode) and n.pipelined)
        assert before == after == 0  # passes rebuild, never mutate
