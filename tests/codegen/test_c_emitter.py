"""Tests for the C source emitter."""

import pytest

from repro.codegen import compile_candidate, emit_c
from repro.dsl import ScheduleSpace
from repro.errors import CodegenError
from repro.scheduler import Candidate, lower_strategy

from ..scheduler.test_lower import gemm_cd


def build(M=128, N=96, K=80, tm=64, tn=48, tk=32):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [tm]); sp.split("N", [tn]); sp.split("K", [tk])
    strat = sp.strategy()
    cand = Candidate(strat, lower_strategy(cd, strat), cd)
    ck = compile_candidate(cand)
    return ck.kernel, emit_c(ck.kernel)


class TestEmission:
    def test_compiles_structurally(self):
        _, src = build()
        assert src.count("{") == src.count("}")
        assert "#include <slave.h>" in src
        assert "void gemm__" in src

    def test_coalesced_spm_region(self):
        _, src = build()
        assert "spm_pool" in src
        assert "#define SPM_A(phase)" in src
        assert "double buffered" in src

    def test_gemm_variant_call(self):
        _, src = build()
        assert "spm_gemm_" in src
        assert "SW_VEC_M" in src or "SW_VEC_N" in src

    def test_dma_primitives_used(self):
        _, src = build()
        assert "swDMA(" in src
        assert "swDMAWait(" in src
        assert "cpe_tile_offset(rid, cid" in src  # per-CPE derivation

    def test_pipelined_loop_emits_double_buffer_dance(self):
        _, src = build()
        assert "software prefetching" in src
        assert "phase ^= 1" in src
        assert "infer next iteration index" in src

    def test_loop_structure(self):
        _, src = build(tm=64)
        assert "for (int cM = 0; cM < 2; ++cM)" in src

    def test_raw_kernel_rejected(self):
        cd = gemm_cd()
        sp = ScheduleSpace(cd)
        sp.split("M", [64]); sp.split("N", [64]); sp.split("K", [64])
        raw = lower_strategy(cd, sp.strategy())
        with pytest.raises(CodegenError):
            emit_c(raw)

    def test_deterministic(self):
        _, a = build()
        _, b = build()
        assert a == b
