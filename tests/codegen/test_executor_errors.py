"""Error-path tests for the executor: every malformed kernel must fail
loudly, never compute garbage silently."""

import numpy as np
import pytest

from repro.codegen.executor import CompiledKernel, _ExecState
from repro.dsl import ScheduleSpace
from repro.errors import CodegenError
from repro.ir import (
    AffineExpr,
    AllocSpmNode,
    DmaCgNode,
    DmaGeometry,
    GemmOpNode,
    KernelNode,
    SeqNode,
    TileAccess,
)
from repro.machine.dma import MEM_TO_SPM
from repro.primitives.microkernel import ALL_VARIANTS
from repro.scheduler import Candidate, lower_strategy
from repro.codegen import compile_candidate

from ..scheduler.test_lower import gemm_cd


def compiled(M=64, N=64, K=64):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [32]); sp.split("N", [32]); sp.split("K", [32])
    strat = sp.strategy()
    return cd, compile_candidate(Candidate(strat, lower_strategy(cd, strat), cd))


class TestFeedValidation:
    def test_unknown_tensor_in_dma_rejected_at_build(self):
        cd, ck = compiled()
        bad = DmaCgNode(
            access=TileAccess("Ghost", ((AffineExpr(0), 4),)),
            spm="spm_a",
            direction=MEM_TO_SPM,
            geometry=DmaGeometry(1, 16, 0, 1),
        )
        kernel = KernelNode(
            "bad",
            allocs=[AllocSpmNode("spm_a", (4,))],
            body=SeqNode([bad]),
        )
        with pytest.raises(CodegenError):
            CompiledKernel(kernel, cd)

    def test_out_of_bounds_access_rejected_at_run(self):
        """An access whose evaluated offset escapes the tensor must be
        caught by the executor's bounds check."""
        cd, ck = compiled()
        from repro.ir import find_all
        from repro.ir.visitors import transform
        from repro.ir.nodes import Node

        def corrupt(n):
            if isinstance(n, DmaCgNode) and n.access.buffer == "A":
                dims = ((AffineExpr(1000), 32), n.access.dims[1])
                return DmaCgNode(
                    TileAccess("A", dims), n.spm, n.direction,
                    n.reply, n.geometry, n.phase_var,
                )
            return None

        bad_kernel = transform(ck.kernel, corrupt)
        bad = CompiledKernel(bad_kernel, cd)
        rng = np.random.default_rng(0)
        feeds = {
            "A": rng.standard_normal((64, 64)).astype(np.float32),
            "B": rng.standard_normal((64, 64)).astype(np.float32),
        }
        with pytest.raises(CodegenError):
            bad.run(feeds)

    def test_gemm_view_overflow_rejected(self):
        cd, ck = compiled()
        from repro.ir.visitors import transform

        def inflate(n):
            if isinstance(n, GemmOpNode):
                return GemmOpNode(
                    m=n.m * 8, n=n.n, k=n.k,
                    a_spm=n.a_spm, b_spm=n.b_spm, c_spm=n.c_spm,
                    a_map=n.a_map, b_map=n.b_map, c_map=n.c_map,
                    variant=n.variant, accumulate=n.accumulate,
                    a_lens=(n.a_lens[0] * 8, *n.a_lens[1:]),
                    b_lens=n.b_lens, c_lens=n.c_lens,
                )
            return None

        bad_kernel = transform(ck.kernel, inflate)
        bad = CompiledKernel(bad_kernel, cd)
        rng = np.random.default_rng(1)
        feeds = {
            "A": rng.standard_normal((64, 64)).astype(np.float32),
            "B": rng.standard_normal((64, 64)).astype(np.float32),
        }
        with pytest.raises(CodegenError):
            bad.run(feeds)

    def test_gemm_dim_mismatch_rejected(self):
        cd, ck = compiled()
        from repro.ir.visitors import transform

        def skew(n):
            if isinstance(n, GemmOpNode):
                return GemmOpNode(
                    m=n.m, n=n.n, k=n.k + 1,  # declared K no longer matches
                    a_spm=n.a_spm, b_spm=n.b_spm, c_spm=n.c_spm,
                    a_map=n.a_map, b_map=n.b_map, c_map=n.c_map,
                    variant=n.variant, accumulate=n.accumulate,
                    a_lens=n.a_lens, b_lens=n.b_lens, c_lens=n.c_lens,
                )
            return None

        bad = CompiledKernel(transform(ck.kernel, skew), cd)
        rng = np.random.default_rng(2)
        feeds = {
            "A": rng.standard_normal((64, 64)).astype(np.float32),
            "B": rng.standard_normal((64, 64)).astype(np.float32),
        }
        with pytest.raises(CodegenError):
            bad.run(feeds)
