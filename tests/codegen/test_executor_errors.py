"""Error-path tests for the executor: every malformed kernel must fail
loudly, never compute garbage silently."""

from dataclasses import replace

import numpy as np
import pytest

from repro.codegen.executor import CompiledKernel, _ExecState
from repro.dsl import ScheduleSpace
from repro.errors import CodegenError, SanitizerError
from repro.ir import (
    AffineExpr,
    AllocSpmNode,
    DmaCgNode,
    DmaGeometry,
    ForNode,
    GemmOpNode,
    KernelNode,
    SeqNode,
    TileAccess,
)
from repro.ir.visitors import transform
from repro.machine.dma import MEM_TO_SPM
from repro.primitives.microkernel import ALL_VARIANTS
from repro.scheduler import Candidate, lower_strategy
from repro.codegen import compile_candidate

from ..scheduler.test_lower import gemm_cd


def compiled(M=64, N=64, K=64):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [32]); sp.split("N", [32]); sp.split("K", [32])
    strat = sp.strategy()
    return cd, compile_candidate(Candidate(strat, lower_strategy(cd, strat), cd))


def _feeds(M=64, N=64, K=64, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "A": rng.standard_normal((M, K)).astype(np.float32),
        "B": rng.standard_normal((K, N)).astype(np.float32),
    }


class TestFeedValidation:
    def test_unknown_tensor_in_dma_rejected_at_build(self):
        cd, ck = compiled()
        bad = DmaCgNode(
            access=TileAccess("Ghost", ((AffineExpr(0), 4),)),
            spm="spm_a",
            direction=MEM_TO_SPM,
            geometry=DmaGeometry(1, 16, 0, 1),
        )
        kernel = KernelNode(
            "bad",
            allocs=[AllocSpmNode("spm_a", (4,))],
            body=SeqNode([bad]),
        )
        with pytest.raises(CodegenError):
            CompiledKernel(kernel, cd)

    def test_out_of_bounds_access_rejected_at_run(self):
        """An access whose evaluated offset escapes the tensor must be
        caught by the executor's bounds check."""
        cd, ck = compiled()
        from repro.ir import find_all
        from repro.ir.visitors import transform
        from repro.ir.nodes import Node

        def corrupt(n):
            if isinstance(n, DmaCgNode) and n.access.buffer == "A":
                dims = ((AffineExpr(1000), 32), n.access.dims[1])
                return DmaCgNode(
                    TileAccess("A", dims), n.spm, n.direction,
                    n.reply, n.geometry, n.phase_var,
                )
            return None

        bad_kernel = transform(ck.kernel, corrupt)
        bad = CompiledKernel(bad_kernel, cd)
        rng = np.random.default_rng(0)
        feeds = {
            "A": rng.standard_normal((64, 64)).astype(np.float32),
            "B": rng.standard_normal((64, 64)).astype(np.float32),
        }
        with pytest.raises(CodegenError):
            bad.run(feeds)

    def test_gemm_view_overflow_rejected(self):
        cd, ck = compiled()
        from repro.ir.visitors import transform

        def inflate(n):
            if isinstance(n, GemmOpNode):
                return GemmOpNode(
                    m=n.m * 8, n=n.n, k=n.k,
                    a_spm=n.a_spm, b_spm=n.b_spm, c_spm=n.c_spm,
                    a_map=n.a_map, b_map=n.b_map, c_map=n.c_map,
                    variant=n.variant, accumulate=n.accumulate,
                    a_lens=(n.a_lens[0] * 8, *n.a_lens[1:]),
                    b_lens=n.b_lens, c_lens=n.c_lens,
                )
            return None

        bad_kernel = transform(ck.kernel, inflate)
        bad = CompiledKernel(bad_kernel, cd)
        rng = np.random.default_rng(1)
        feeds = {
            "A": rng.standard_normal((64, 64)).astype(np.float32),
            "B": rng.standard_normal((64, 64)).astype(np.float32),
        }
        with pytest.raises(CodegenError):
            bad.run(feeds)

    def test_gemm_dim_mismatch_rejected(self):
        cd, ck = compiled()
        from repro.ir.visitors import transform

        def skew(n):
            if isinstance(n, GemmOpNode):
                return GemmOpNode(
                    m=n.m, n=n.n, k=n.k + 1,  # declared K no longer matches
                    a_spm=n.a_spm, b_spm=n.b_spm, c_spm=n.c_spm,
                    a_map=n.a_map, b_map=n.b_map, c_map=n.c_map,
                    variant=n.variant, accumulate=n.accumulate,
                    a_lens=n.a_lens, b_lens=n.b_lens, c_lens=n.c_lens,
                )
            return None

        bad = CompiledKernel(transform(ck.kernel, skew), cd)
        rng = np.random.default_rng(2)
        feeds = {
            "A": rng.standard_normal((64, 64)).astype(np.float32),
            "B": rng.standard_normal((64, 64)).astype(np.float32),
        }
        with pytest.raises(CodegenError):
            bad.run(feeds)


class TestMachineSanitizer:
    """Sanitized runs turn silent machine-level corruption into
    structured errors naming the IR node, the buffer and the bytes."""

    def test_oob_dma_names_node_buffer_and_bytes(self):
        """A DMA whose geometry escapes its bound main-memory window is
        a structured ``mem-oob``, not a stray numpy IndexError."""
        cd, ck = compiled()

        def corrupt(n):
            if isinstance(n, DmaCgNode) and n.access.buffer == "A":
                dims = ((AffineExpr(1000), 32), n.access.dims[1])
                return DmaCgNode(
                    TileAccess("A", dims), n.spm, n.direction,
                    n.reply, n.geometry, n.phase_var,
                )
            return None

        bad = CompiledKernel(transform(ck.kernel, corrupt), cd, sanitize=True)
        with pytest.raises(SanitizerError) as exc:
            bad.run(_feeds())
        err = exc.value
        assert err.check == "mem-oob"
        assert err.buffer == "A"
        assert "dma[A->spm:" in err.node
        assert err.byte_range is not None and err.byte_range[1] > err.byte_range[0]
        # still a CodegenError: pre-sanitizer error-handling keeps working
        assert isinstance(err, CodegenError)

    def test_double_buffer_phase_race_detected(self):
        """A synchronous DMA buried in a nested loop of a pipelined
        body touches the phase the stream prefetch is still filling --
        the verifier cannot see through the nested loop, the sanitizer
        catches it at execution."""
        cd, ck = compiled(K=96)  # stream extent 3: iteration 1 races
        done = []

        def inject(n):
            if isinstance(n, ForNode) and n.pipelined and not done:
                done.append(n)
                from repro.optimizer.prefetch import direct_stream_dmas

                dma = direct_stream_dmas(n)[0]
                wrapped = ForNode("san_race", 1, SeqNode([replace(dma)]))
                return ForNode(
                    n.var, n.extent, SeqNode([wrapped, n.body]),
                    pipelined=True,
                )
            return None

        bad = CompiledKernel(transform(ck.kernel, inject), cd, sanitize=True)
        with pytest.raises(SanitizerError) as exc:
            bad.run(_feeds(K=96))
        err = exc.value
        assert err.check == "phase-race"
        assert err.buffer == "spm_a"
        assert "dma[A->spm:spm_a]" in err.node

    def test_unfed_spm_read_detected(self):
        """Dropping a stream DMA leaves the GEMM reading SPM bytes
        nothing ever wrote: ``uninit-read`` naming the operand buffer."""
        cd, ck = compiled()

        def drop(n):
            if (
                isinstance(n, DmaCgNode)
                and n.access.buffer == "A"
                and n.direction == MEM_TO_SPM
            ):
                return SeqNode([])
            return None

        bad = CompiledKernel(transform(ck.kernel, drop), cd, sanitize=True)
        with pytest.raises(SanitizerError) as exc:
            bad.run(_feeds())
        err = exc.value
        assert err.check == "uninit-read"
        assert err.buffer == "spm_a"
        assert err.node.startswith("gemm[")
        assert err.byte_range is not None

    def test_sanitizer_off_by_default_and_costless(self, monkeypatch):
        """Without opt-in the executor holds no sanitizer at all:
        results identical, ``sanitizer_checks`` unset."""
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        cd, ck = compiled()
        feeds = _feeds()
        plain = ck.run(feeds)
        assert plain.sanitizer_checks is None
        san = CompiledKernel(ck.kernel, cd, sanitize=True).run(feeds)
        assert san.sanitizer_checks and san.sanitizer_checks > 0
        np.testing.assert_array_equal(plain.outputs["C"], san.outputs["C"])
