"""Tests for the simulation executor: functional exactness and timing
semantics (overlap, phases, costs)."""

import numpy as np
import pytest

from repro.codegen import compile_candidate
from repro.codegen.executor import CompiledKernel
from repro.dsl import ScheduleSpace
from repro.errors import CodegenError
from repro.scheduler import Candidate, LoweringOptions, lower_strategy

from ..scheduler.test_lower import conv_cd, gemm_cd


def gemm_candidate(M=128, N=96, K=80, tm=64, tn=48, tk=32, **overrides):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [tm]); sp.split("N", [tn]); sp.split("K", [tk])
    sp.vectorize(); sp.spm_layout("a"); sp.spm_layout("b")
    strat = sp.strategy(**overrides)
    return Candidate(strat, lower_strategy(cd, strat), cd)


def run_gemm(cand, M, N, K, seed=0):
    ck = compile_candidate(cand)
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((M, K)).astype(np.float32)
    b = rng.standard_normal((K, N)).astype(np.float32)
    res = ck.run({"A": a, "B": b})
    return res, a, b


class TestFunctional:
    @pytest.mark.parametrize("vec", ["M", "N"])
    def test_gemm_exact(self, vec):
        cand = gemm_candidate(vec_dim=vec)
        res, a, b = run_gemm(cand, 128, 96, 80)
        np.testing.assert_allclose(
            res.outputs["C"], a @ b, rtol=1e-4, atol=1e-3
        )

    def test_ragged_gemm_exact(self):
        """Boundary switching + lightweight padding keep results exact."""
        cand = gemm_candidate(M=67, N=50, K=33, tm=64, tn=48, tk=32)
        res, a, b = run_gemm(cand, 67, 50, 33)
        np.testing.assert_allclose(
            res.outputs["C"], a @ b, rtol=1e-4, atol=1e-3
        )

    def test_conv_matches_direct_reference(self):
        cd = conv_cd()
        sp = ScheduleSpace(cd)
        for ax, f in [("B", 2), ("No", 16), ("Ro", 4), ("Co", 8), ("Ni", 8)]:
            sp.split(ax, [f])
        sp.split("Kr", [1]); sp.split("Kc", [1])
        cand = Candidate(sp.strategy(), lower_strategy(cd, sp.strategy()), cd)
        ck = compile_candidate(cand)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 8, 10, 10)).astype(np.float32)
        w = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
        out = ck.run({"input": x, "weight": w}).outputs["out"]
        ref = np.zeros((2, 16, 8, 8), dtype=np.float32)
        for kr in range(3):
            for kc in range(3):
                patch = x[:, :, kr:kr + 8, kc:kc + 8]
                ref += np.einsum("bihw,oi->bohw", patch, w[:, :, kr, kc])
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-3)

    def test_layout_permutation_roundtrip(self):
        """Kernel-chosen tensor layouts are invisible to the caller."""
        cd = gemm_cd(64, 64, 64)
        sp = ScheduleSpace(cd)
        sp.split("M", [32]); sp.split("N", [32]); sp.split("K", [32])
        sp.layout("A", [(1, 0)])  # store A transposed
        strat = sp.strategy()
        cand = Candidate(strat, lower_strategy(cd, strat), cd)
        res, a, b = run_gemm(cand, 64, 64, 64)
        np.testing.assert_allclose(res.outputs["C"], a @ b, rtol=1e-4, atol=1e-3)

    def test_missing_feed_rejected(self):
        cand = gemm_candidate()
        ck = compile_candidate(cand)
        with pytest.raises(CodegenError):
            ck.run({"A": np.zeros((128, 80), np.float32)})

    def test_wrong_shape_rejected(self):
        cand = gemm_candidate()
        ck = compile_candidate(cand)
        with pytest.raises(CodegenError):
            ck.run({
                "A": np.zeros((128, 81), np.float32),
                "B": np.zeros((80, 96), np.float32),
            })

    def test_uninferred_kernel_rejected(self):
        cand = gemm_candidate()
        with pytest.raises(CodegenError):
            CompiledKernel(cand.kernel, cand.compute)  # raw IR, no geometry


class TestTiming:
    def test_report_fields_populated(self):
        cand = gemm_candidate()
        res, _, _ = run_gemm(cand, 128, 96, 80)
        r = res.report
        assert r.cycles > 0
        assert r.dma_cycles > 0
        assert r.compute_cycles > 0
        assert r.bytes_moved > 0
        assert r.flops >= 2 * 128 * 96 * 80

    def test_prefetch_overlaps_dma(self):
        """The same schedule with and without double buffering: the
        pipelined version is faster and reports overlap (Fig. 10)."""
        cd = gemm_cd(512, 512, 512)
        sp = ScheduleSpace(cd)
        sp.split("M", [128]); sp.split("N", [128]); sp.split("K", [64])
        strat = sp.strategy()

        base_kernel = lower_strategy(
            cd, strat, options=LoweringOptions(double_buffer=False)
        )
        base = compile_candidate(
            Candidate(strat, base_kernel, cd), prefetch=False
        )
        fast_kernel = lower_strategy(cd, strat)
        fast = compile_candidate(Candidate(strat, fast_kernel, cd))

        rng = np.random.default_rng(0)
        feeds = {
            "A": rng.standard_normal((512, 512)).astype(np.float32),
            "B": rng.standard_normal((512, 512)).astype(np.float32),
        }
        r_base = base.run(feeds).report
        r_fast = fast.run(feeds).report
        assert r_fast.cycles < r_base.cycles
        assert r_fast.overlap_fraction > 0.1
        assert r_base.overlap_fraction == 0.0
        # functional results identical
        np.testing.assert_allclose(
            base.run(feeds).outputs["C"], fast.run(feeds).outputs["C"],
            rtol=1e-5,
        )

    def test_dma_cost_sensitive_to_layout(self):
        """Transposed A storage changes DMA traffic shape and cost."""
        cd = gemm_cd(256, 64, 256)
        def build(perm):
            sp = ScheduleSpace(cd)
            sp.split("M", [128]); sp.split("N", [64]); sp.split("K", [32])
            sp.layout("A", [perm])
            strat = sp.strategy()
            return compile_candidate(
                Candidate(strat, lower_strategy(cd, strat), cd)
            )
        rng = np.random.default_rng(0)
        feeds = {
            "A": rng.standard_normal((256, 256)).astype(np.float32),
            "B": rng.standard_normal((256, 64)).astype(np.float32),
        }
        r_mk = build((0, 1)).run(feeds)
        r_km = build((1, 0)).run(feeds)
        np.testing.assert_allclose(
            r_mk.outputs["C"], r_km.outputs["C"], rtol=1e-4, atol=1e-3
        )
        assert r_mk.report.dma_cycles != r_km.report.dma_cycles

    def test_waste_bytes_on_misaligned_tiles(self):
        """Tiles not aligned to 128 B rows pay transaction waste."""
        cand = gemm_candidate(M=128, N=96, K=80, tm=64, tn=48, tk=40)
        res, _, _ = run_gemm(cand, 128, 96, 80)
        assert res.report.waste_bytes > 0

    def test_deterministic(self):
        cand = gemm_candidate()
        r1, _, _ = run_gemm(cand, 128, 96, 80)
        r2, _, _ = run_gemm(cand, 128, 96, 80)
        assert r1.report.cycles == r2.report.cycles
