"""Tests for schedule-space enumeration and pruning."""

import pytest

from repro.dsl import ScheduleSpace
from repro.errors import TuningError
from repro.scheduler import EnumerationStats, enumerate_candidates, iter_candidates

from .test_lower import gemm_cd


def small_space(M=128, N=128, K=128):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [32, 64])
    sp.split("N", [32, 64])
    sp.split("K", [64])
    sp.vectorize()
    return cd, sp


class TestEnumeration:
    def test_all_legal_candidates_yielded(self):
        cd, sp = small_space()
        cands = enumerate_candidates(cd, sp)
        assert len(cands) == sp.size() == 8

    def test_stats_track_pruning(self):
        cd, sp = small_space()
        # add an order that is illegal (reduction outermost)
        sp.reorder([("M", "N", "K"), ("K", "M", "N")])
        stats = EnumerationStats()
        cands = list(iter_candidates(cd, sp, stats=stats))
        assert stats.declared == 16
        assert stats.pruned == 8
        assert stats.legal == len(cands) == 8

    def test_limit(self):
        cd, sp = small_space()
        cands = enumerate_candidates(cd, sp, limit=3)
        assert len(cands) == 3

    def test_empty_space_raises(self):
        cd, sp = small_space()
        sp.reorder([("K", "M", "N")])  # every strategy illegal
        with pytest.raises(TuningError):
            enumerate_candidates(cd, sp)

    def test_candidates_carry_distinct_kernels(self):
        cd, sp = small_space()
        cands = enumerate_candidates(cd, sp)
        names = {c.describe() for c in cands}
        assert len(names) == len(cands)

    def test_candidate_description(self):
        cd, sp = small_space()
        cand = enumerate_candidates(cd, sp, limit=1)[0]
        assert "tile:M" in cand.describe()
