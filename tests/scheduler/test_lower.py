"""Tests for strategy lowering: structure, boundaries, legality."""

import numpy as np
import pytest

from repro.dsl import ComputeDef, ScheduleSpace, ShiftedDim
from repro.errors import IllegalCandidateError
from repro.ir import (
    DmaCgNode,
    ForNode,
    GemmOpNode,
    KernelNode,
    ZeroSpmNode,
    find_all,
    walk,
)
from repro.machine.dma import MEM_TO_SPM, SPM_TO_MEM
from repro.scheduler import LoweringOptions, lower_strategy


def gemm_cd(M=128, N=128, K=128):
    cd = ComputeDef("gemm")
    cd.axis("M", M)
    cd.axis("N", N)
    cd.axis("K", K, reduction=True)
    cd.tensor("A", ["M", "K"], "input")
    cd.tensor("B", ["K", "N"], "input")
    cd.tensor("C", ["M", "N"], "output")
    cd.define_gemm("C", "A", "B", m="M", n=["N"], k="K")
    return cd


def conv_cd():
    cd = ComputeDef("conv")
    cd.axis("B", 2)
    cd.axis("No", 16)
    cd.axis("Ro", 8)
    cd.axis("Co", 8)
    cd.axis("Ni", 8, reduction=True)
    cd.axis("Kr", 3, reduction=True)
    cd.axis("Kc", 3, reduction=True)
    cd.tensor(
        "input", ["B", "Ni", ShiftedDim("Ro", "Kr"), ShiftedDim("Co", "Kc")], "input"
    )
    cd.tensor("weight", ["No", "Ni", "Kr", "Kc"], "weight")
    cd.tensor("out", ["B", "No", "Ro", "Co"], "output")
    cd.define_gemm("out", "weight", "input", m="No", n=["B", "Ro", "Co"], k="Ni")
    return cd


def lower_gemm(M=128, N=128, K=128, tm=64, tn=64, tk=64, **overrides):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [tm])
    sp.split("N", [tn])
    sp.split("K", [tk])
    sp.vectorize()
    sp.spm_layout("a")
    sp.spm_layout("b")
    return cd, lower_strategy(cd, sp.strategy(**overrides))


class TestStructure:
    def test_loop_trip_counts(self):
        _, k = lower_gemm(128, 128, 128, 64, 64, 64)
        loops = {n.var: n.extent for n in walk(k) if isinstance(n, ForNode)}
        assert loops == {"cM": 2, "cN": 2, "cK": 2}

    def test_accumulation_region(self):
        """Each output tile: zero C -> K loop -> write back."""
        _, k = lower_gemm()
        zeros = find_all(k, ZeroSpmNode)
        outs = [d for d in find_all(k, DmaCgNode) if d.direction == SPM_TO_MEM]
        assert len(zeros) == 1 and len(outs) == 1
        assert all(z.spm == "spm_c" for z in zeros)

    def test_trip_one_loop_collapsed(self):
        _, k = lower_gemm(128, 128, 128, 128, 64, 64)
        loops = [n.var for n in walk(k) if isinstance(n, ForNode)]
        assert "cM" not in loops

    def test_gemm_site_dims(self):
        _, k = lower_gemm(128, 128, 128, 64, 32, 16)
        g = find_all(k, GemmOpNode)[0]
        assert (g.m, g.n, g.k) == (64, 32, 16)

    def test_kernel_name_encodes_variant(self):
        _, k = lower_gemm(vec_dim="N")
        assert "vecn" in k.name


class TestBoundaries:
    def test_ragged_split_peels_epilogue(self):
        """200 = 3*64 + 8: boundary gemm sites use the tail size."""
        _, k = lower_gemm(M=200, tm=64)
        sizes = {g.m for g in find_all(k, GemmOpNode)}
        assert sizes == {64, 8}

    def test_all_ragged_produces_all_combinations(self):
        _, k = lower_gemm(M=100, N=100, K=100, tm=64, tn=64, tk=64)
        sigs = {(g.m, g.n, g.k) for g in find_all(k, GemmOpNode)}
        assert sigs == {
            (64, 64, 64), (64, 64, 36), (64, 36, 64), (64, 36, 36),
            (36, 64, 64), (36, 64, 36), (36, 36, 64), (36, 36, 36),
        }

    def test_tiny_tail_lightweight_padded(self):
        """M = 66 = 64 + 2: the 2-wide vec-M boundary pads to 4 and the
        pad buffer is zeroed (lightweight zero-padding)."""
        _, k = lower_gemm(M=66, tm=64, vec_dim="M")
        sizes = sorted({g.m for g in find_all(k, GemmOpNode)})
        assert sizes == [4, 64]
        pad_zeros = [z for z in find_all(k, ZeroSpmNode) if z.spm == "spm_a"]
        assert pad_zeros

    def test_boundary_dma_moves_only_real_data(self):
        _, k = lower_gemm(M=66, tm=64)
        a_dmas = [
            d for d in find_all(k, DmaCgNode)
            if d.access.buffer == "A" and d.direction == MEM_TO_SPM
        ]
        m_lens = {d.access.dims[0][1] for d in a_dmas}
        assert m_lens == {64, 2}  # never the padded 4

    def test_alloc_covers_padded_tail(self):
        _, k = lower_gemm(M=66, tm=64, vec_dim="M")
        assert k.alloc("spm_a").shape[0] >= 64


class TestConvLowering:
    def test_conv_alg2_structure(self):
        cd = conv_cd()
        sp = ScheduleSpace(cd)
        for ax, f in [("B", 2), ("No", 16), ("Ro", 8), ("Co", 8), ("Ni", 8)]:
            sp.split(ax, [f])
        sp.split("Kr", [1])
        sp.split("Kc", [1])
        k = lower_strategy(cd, sp.strategy())
        # kernel loops Kr/Kc stay; all others collapse (single trip)
        loops = {n.var: n.extent for n in walk(k) if isinstance(n, ForNode)}
        assert loops == {"cKr": 3, "cKc": 3}
        # shifted access: input rows length = tile_ro (+ tile_kr - 1 = 0)
        b_dma = [
            d for d in find_all(k, DmaCgNode) if d.access.buffer == "input"
        ][0]
        assert b_dma.access.dims[2][1] == 8

    def test_conv_fused_n_dimension(self):
        cd = conv_cd()
        sp = ScheduleSpace(cd)
        for ax, f in [("B", 2), ("No", 16), ("Ro", 4), ("Co", 8), ("Ni", 8)]:
            sp.split(ax, [f])
        sp.split("Kr", [1])
        sp.split("Kc", [1])
        k = lower_strategy(cd, sp.strategy())
        g = find_all(k, GemmOpNode)[0]
        assert g.n == 2 * 4 * 8  # B x Ro_tile x Co_tile

    def test_kernel_axis_tile_must_be_one(self):
        cd = conv_cd()
        sp = ScheduleSpace(cd)
        sp.split("Kr", [3])
        with pytest.raises(IllegalCandidateError):
            lower_strategy(cd, sp.strategy())


class TestLegality:
    def test_reduction_outside_spatial_rejected(self):
        cd = gemm_cd()
        sp = ScheduleSpace(cd)
        sp.reorder([("K", "M", "N")])
        with pytest.raises(IllegalCandidateError):
            lower_strategy(cd, sp.strategy())

    def test_spm_overflow_rejected(self):
        cd = gemm_cd(2048, 2048, 2048)
        sp = ScheduleSpace(cd)
        sp.split("M", [2048])
        sp.split("N", [2048])
        sp.split("K", [2048])
        with pytest.raises(IllegalCandidateError):
            lower_strategy(cd, sp.strategy())

    def test_bad_order_permutation_rejected(self):
        cd = gemm_cd()
        sp = ScheduleSpace(cd)
        strat = sp.strategy()
        strat = type(strat)({**strat.decisions, "order": ("M", "N")})
        with pytest.raises(IllegalCandidateError):
            lower_strategy(cd, strat)

    def test_double_buffer_budget_counted(self):
        """A tile that fits single-buffered but not doubled is pruned
        only when double buffering is requested."""
        cd = gemm_cd(512, 512, 512)
        sp = ScheduleSpace(cd)
        sp.split("M", [512])
        sp.split("N", [512])
        sp.split("K", [512])
        strat = sp.strategy()
        with pytest.raises(IllegalCandidateError):
            lower_strategy(cd, strat, options=LoweringOptions(double_buffer=True))
        k = lower_strategy(cd, strat, options=LoweringOptions(double_buffer=False))
        assert isinstance(k, KernelNode)
