"""Tests for standalone loop transformations."""

import pytest

from repro.errors import ScheduleError
from repro.ir.nodes import ForNode, GemmOpNode, SeqNode, ZeroSpmNode
from repro.primitives.microkernel import ALL_VARIANTS
from repro.scheduler.transforms import (
    fuse_extents,
    fuse_shared_input_gemms,
    perfect_nest_depth,
    reorder_axes,
    split_extent,
)


class TestSplit:
    def test_even_split(self):
        r = split_extent(128, 32)
        assert (r.full_trips, r.tail, r.trips) == (4, 0, 4)
        assert not r.has_boundary

    def test_ragged_split(self):
        r = split_extent(100, 32)
        assert (r.full_trips, r.tail, r.trips) == (3, 4, 4)
        assert r.has_boundary

    def test_factor_one(self):
        r = split_extent(7, 1)
        assert r.full_trips == 7 and r.tail == 0

    def test_factor_equals_extent(self):
        r = split_extent(7, 7)
        assert r.full_trips == 1 and r.tail == 0

    def test_validation(self):
        with pytest.raises(ScheduleError):
            split_extent(0, 1)
        with pytest.raises(ScheduleError):
            split_extent(8, 9)
        with pytest.raises(ScheduleError):
            split_extent(8, 0)

    def test_split_fuse_roundtrip(self):
        r = split_extent(96, 24)
        assert fuse_extents(r.full_trips, r.factor) == 96


class TestReorderFuse:
    def test_reorder_valid(self):
        assert reorder_axes(("K", "M"), ("M", "K")) == ("K", "M")

    def test_reorder_invalid(self):
        with pytest.raises(ScheduleError):
            reorder_axes(("M", "M"), ("M", "K"))

    def test_fuse_validation(self):
        with pytest.raises(ScheduleError):
            fuse_extents(0, 4)


def make_gemm(n=16, b_spm="spm_b"):
    return GemmOpNode(
        m=8, n=n, k=4,
        a_spm="spm_a", b_spm=b_spm, c_spm="spm_c",
        a_map=((0,), (1,)), b_map=((0,), (1,)), c_map=((0,), (1,)),
        variant=ALL_VARIANTS[0],
        a_lens=(8, 4), b_lens=(4, n), c_lens=(8, n),
    )


class TestGemmFusion:
    def test_fuses_adjacent_shared_input(self):
        seq = SeqNode([make_gemm(16), make_gemm(16), make_gemm(16)])
        out = fuse_shared_input_gemms(seq)
        assert isinstance(out, SeqNode)
        assert len(out.body) == 1
        fused = out.body[0]
        assert isinstance(fused, GemmOpNode)
        assert fused.n == 48
        assert fused.b_lens == (4, 48)

    def test_different_operands_not_fused(self):
        seq = SeqNode([make_gemm(16), make_gemm(16, b_spm="spm_b2")])
        out = fuse_shared_input_gemms(seq)
        assert len(out.body) == 2

    def test_interrupted_run_not_fused(self):
        seq = SeqNode([make_gemm(), ZeroSpmNode("spm_c"), make_gemm()])
        out = fuse_shared_input_gemms(seq)
        assert len(out.body) == 3

    def test_fusion_inside_loops(self):
        loop = ForNode("i", 2, SeqNode([make_gemm(), make_gemm()]))
        out = fuse_shared_input_gemms(loop)
        assert isinstance(out, ForNode)
        inner = out.body
        assert isinstance(inner, SeqNode) and len(inner.body) == 1

    def test_fused_flops_preserved(self):
        gemms = [make_gemm(16) for _ in range(4)]
        total = sum(g.flops for g in gemms)
        out = fuse_shared_input_gemms(SeqNode(gemms))
        assert out.body[0].flops == total


class TestNestDepth:
    def test_depth(self):
        nest = ForNode("i", 2, SeqNode([ForNode("j", 2, ZeroSpmNode("x"))]))
        assert perfect_nest_depth(nest) == 2

    def test_non_loop(self):
        assert perfect_nest_depth(ZeroSpmNode("x")) == 0
