"""Tests for network tables and evaluation sweeps."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    BATCH_SIZES,
    GemmShape,
    conv_layers,
    listing1_configs,
    listing2_aligned,
    listing2_shapes,
    listing2_unaligned,
    network,
    subsample,
)


class TestNetworks:
    def test_known_networks(self):
        for name in ("vgg16", "resnet", "yolo"):
            assert network(name)
        with pytest.raises(WorkloadError):
            network("alexnet")

    def test_vgg16_has_thirteen_conv_layers(self):
        total = sum(spec.count for spec in network("vgg16"))
        assert total == 13

    def test_implicit_excludes_first_layer(self):
        layers = conv_layers("vgg16", method="implicit")
        assert all(spec.ni >= 8 for spec in layers)

    def test_winograd_only_3x3(self):
        layers = conv_layers("yolo", method="winograd")
        assert layers
        assert all(spec.kernel == 3 for spec in layers)

    def test_strided_layers_excluded(self):
        for name in ("resnet", "yolo"):
            for method in ("implicit", "explicit", "winograd"):
                assert all(
                    spec.stride == 1 for spec in conv_layers(name, method=method)
                )

    def test_unique_vs_expanded(self):
        uniq = conv_layers("vgg16", method="implicit")
        full = conv_layers("vgg16", method="implicit", unique=False)
        assert len(full) == sum(spec.count for spec in uniq)

    def test_layer_params_scaling(self):
        spec = network("vgg16")[1]  # 64->64 at 224
        p1 = spec.params(batch=32)
        p4 = spec.params(batch=32, scale=4)
        assert p1.ri == 224 and p4.ri == 56
        assert p4.ni == p1.ni  # channels preserved

    def test_scale_floor(self):
        spec = network("vgg16")[-1]  # spatial 14
        assert spec.params(batch=1, scale=8).ri == 4

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            network("vgg16")[0].params(batch=1, scale=0)

    def test_batch_sizes_match_paper(self):
        assert BATCH_SIZES == (1, 32, 128)


class TestListing1:
    def test_default_count_is_75(self):
        assert len(listing1_configs(batch=32)) == 75

    def test_literal_script_count_is_60(self):
        cfgs = listing1_configs(batch=32, literal_script=True)
        assert len(cfgs) == 60
        assert all(c.ni >= c.no for c in cfgs)

    def test_all_3x3_padded(self):
        for c in listing1_configs(batch=1):
            assert (c.kr, c.kc, c.pad) == (3, 3, 1)

    def test_scaling(self):
        cfgs = listing1_configs(batch=1, scale=4)
        assert max(c.ri for c in cfgs) == 32
        assert min(c.ri for c in cfgs) >= 4


class TestListing2:
    def test_counts_match_paper(self):
        assert len(listing2_shapes()) == 559
        assert len(listing2_unaligned()) == 216
        assert len(listing2_aligned()) == 343

    def test_alignment_flags(self):
        assert all(s.m % 4 == 0 for s in listing2_aligned())
        assert any(s.m == 200 for s in listing2_unaligned())

    def test_scaling_preserves_counts(self):
        shapes = listing2_shapes(scale=4)
        assert len(shapes) == 559
        # aligned values shrink at half the nominal scale (diversity)
        assert max(s.m for s in shapes if s.aligned) == 4096
        assert max(s.m for s in shapes if not s.aligned) == 2000
        assert all(s.m >= 36 for s in shapes)

    def test_scaled_shape_vector_aligned(self):
        s = GemmShape(200, 500, 1000, aligned=False).scaled(4)
        assert s.m % 4 == 0 and s.n % 4 == 0 and s.k % 4 == 0

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            GemmShape(8, 8, 8, True).scaled(0)


class TestSubsample:
    def test_shorter_than_limit(self):
        assert subsample([1, 2, 3], 5) == [1, 2, 3]

    def test_even_coverage(self):
        out = subsample(list(range(100)), 10)
        assert len(out) == 10
        assert out[0] == 0 and out[-1] >= 80

    def test_validation(self):
        with pytest.raises(WorkloadError):
            subsample([1], 0)
