"""Verifier tests: deliberately-broken kernels, each caught with the
offending pass named in the diagnostic."""

import dataclasses

import pytest

from repro.dsl import ScheduleSpace
from repro.errors import PassVerificationError
from repro.ir import DmaCgNode, KernelNode, transform
from repro.ir.expr import AffineExpr
from repro.ir.nodes import TileAccess
from repro.passes import (
    FunctionPass,
    PassContext,
    PassManager,
    check_kernel,
    lowering_passes,
    optimize_passes,
)

from ..scheduler.test_lower import gemm_cd


def gemm_strategy(M=128, N=128, K=128, tm=64, tn=64, tk=64):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [tm])
    sp.split("N", [tn])
    sp.split("K", [tk])
    return cd, sp.strategy()


def run_with_breaker(breaker, *, optimize=False):
    """Lower (and optionally optimize) a healthy gemm, then run the
    breaker pass on the manager so the interleaved verifier sees its
    damage immediately."""
    cd, strategy = gemm_strategy()
    passes = list(lowering_passes())
    if optimize:
        passes += optimize_passes()
    passes.append(breaker)
    manager = PassManager(passes)
    ctx = PassContext(compute=cd, strategy=strategy)
    manager.run(ctx)


def rewrite_dmas(kernel: KernelNode, fn) -> KernelNode:
    out = transform(kernel, lambda n: fn(n) if isinstance(n, DmaCgNode) else None)
    assert isinstance(out, KernelNode)
    return out


class TestBrokenKernels:
    def test_dangling_buffer_reference(self):
        """A DMA retargeted at an undeclared SPM buffer is caught."""

        def dangle(ctx, kernel):
            return rewrite_dmas(
                kernel, lambda d: dataclasses.replace(d, spm="spm_ghost")
            )

        breaker = FunctionPass("break-dangle", dangle)
        with pytest.raises(PassVerificationError) as err:
            run_with_breaker(breaker)
        assert err.value.pass_name == "break-dangle"
        assert any("spm_ghost" in v for v in err.value.violations)

    def test_spm_over_capacity(self):
        """Inflating an alloc past the 64 KB scratchpad is caught once
        plan-spm has established the capacity invariant."""

        def inflate(ctx, kernel):
            allocs = [
                dataclasses.replace(a, shape=(4096, 4096))
                for a in kernel.allocs
            ]
            return dataclasses.replace(kernel, allocs=allocs)

        breaker = FunctionPass("break-capacity", inflate)
        with pytest.raises(PassVerificationError) as err:
            run_with_breaker(breaker)
        assert err.value.pass_name == "break-capacity"
        assert any("capacity" in v for v in err.value.violations)

    def test_double_buffer_phase_mismatch(self):
        """A pipelined loop streaming into a buffer whose double-buffer
        reservation was dropped is caught."""

        def drop_reservation(ctx, kernel):
            allocs = [
                dataclasses.replace(a, double_buffered=False)
                for a in kernel.allocs
            ]
            return dataclasses.replace(kernel, allocs=allocs)

        breaker = FunctionPass("break-phases", drop_reservation)
        with pytest.raises(PassVerificationError) as err:
            run_with_breaker(breaker, optimize=True)
        assert err.value.pass_name == "break-phases"
        assert any(
            "no double-buffer reservation" in v for v in err.value.violations
        )

    def test_malformed_loop_nest(self):
        """A DMA offset referencing a variable no enclosing loop binds
        is caught."""

        def unbind(ctx, kernel):
            def shift(d: DmaCgNode):
                (off, length), *rest = d.access.dims
                dims = ((off + AffineExpr.var("ghost_var"), length), *rest)
                return dataclasses.replace(
                    d, access=TileAccess(d.access.buffer, dims)
                )

            return rewrite_dmas(kernel, shift)

        breaker = FunctionPass("break-nesting", unbind)
        with pytest.raises(PassVerificationError) as err:
            run_with_breaker(breaker)
        assert err.value.pass_name == "break-nesting"
        assert any("ghost_var" in v for v in err.value.violations)


class TestCheckKernel:
    def test_healthy_pipeline_is_clean(self):
        cd, strategy = gemm_strategy()
        manager = PassManager([*lowering_passes(), *optimize_passes()])
        kernel = manager.run(PassContext(compute=cd, strategy=strategy))
        assert check_kernel(kernel, compute=cd) == []

    def test_raw_kernel_skips_ungated_invariants(self):
        """Before DMA inference runs, missing geometry is not a
        violation -- the invariant is established, not assumed."""
        cd, strategy = gemm_strategy()
        kernel = PassManager(lowering_passes()).run(
            PassContext(compute=cd, strategy=strategy)
        )
        assert check_kernel(kernel, compute=cd, established=()) == []
        # but a finished kernel must hold everything
        assert any(
            "no" in v and "geometry" in v
            for v in check_kernel(kernel, compute=cd)
        )
