"""Golden tests: the staged pass pipeline is a refactor, not a rewrite.

``reference_lower_strategy`` is the frozen pre-pipeline monolith and
``infer_dma``/``apply_prefetch`` its optimizer tail; for every strategy
of a fixed set the pipeline must produce **bit-identical** IR (the
nodes are dataclasses, so ``==`` is deep structural equality) and the
tuner's ranking over the space must be unchanged.
"""

import pytest

from repro.dsl import ScheduleSpace
from repro.engine import AnalyticEvaluator, CandidatePipeline
from repro.errors import IllegalCandidateError
from repro.optimizer import apply_prefetch, infer_dma
from repro.scheduler import lower_strategy, reference_lower_strategy

from ..scheduler.test_lower import conv_cd, gemm_cd


def gemm_space(M=128, N=128, K=96):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [32, 64])
    sp.split("N", [32, 128])
    sp.split("K", [48, 96])  # 48 leaves no tail, 96 is untiled
    sp.vectorize()
    return cd, sp


def conv_space():
    cd = conv_cd()
    sp = ScheduleSpace(cd)
    sp.split("No", [8, 16])
    sp.split("Co", [4, 8])
    sp.split("Ni", [4, 8])
    sp.split("Kr", [1])  # kernel axes iterate point-wise
    sp.split("Kc", [1])
    return cd, sp


def reference_compile(cd, strategy, *, prefetch=True):
    kernel = reference_lower_strategy(cd, strategy)
    kernel = infer_dma(kernel, cd)
    if prefetch:
        kernel = apply_prefetch(kernel)
    return kernel


@pytest.mark.parametrize("make_space", [gemm_space, conv_space])
class TestBitIdenticalIr:
    def test_lowering_matches_reference(self, make_space):
        cd, sp = make_space()
        checked = 0
        for strategy in sp.strategies():
            try:
                expected = reference_lower_strategy(cd, strategy)
            except IllegalCandidateError:
                with pytest.raises(IllegalCandidateError):
                    lower_strategy(cd, strategy)
                continue
            assert lower_strategy(cd, strategy) == expected
            checked += 1
        assert checked > 0

    def test_full_pipeline_matches_reference(self, make_space):
        cd, sp = make_space()
        pipe = CandidatePipeline(cd)
        checked = 0
        for strategy in sp.strategies():
            try:
                expected = reference_compile(cd, strategy)
            except IllegalCandidateError:
                continue
            assert pipe.prepare(strategy).kernel == expected
            checked += 1
        assert checked > 0


class TestTunerPicksUnchanged:
    def test_analytic_ranking_matches_reference(self):
        cd, sp = gemm_space()
        evaluator = AnalyticEvaluator()

        pipeline_scores = {}
        for cand in CandidatePipeline(cd, sp).candidates():
            key = tuple(sorted(cand.strategy.decisions.items()))
            pipeline_scores[key] = evaluator.evaluate(cand).cycles

        from repro.scheduler.enumerate import Candidate

        reference_scores = {}
        for strategy in sp.strategies():
            try:
                kernel = reference_compile(cd, strategy)
            except IllegalCandidateError:
                continue
            key = tuple(sorted(strategy.decisions.items()))
            cand = Candidate(strategy=strategy, kernel=kernel, compute=cd)
            reference_scores[key] = evaluator.evaluate(cand).cycles

        assert pipeline_scores == reference_scores
        best = min(pipeline_scores, key=pipeline_scores.__getitem__)
        ref_best = min(reference_scores, key=reference_scores.__getitem__)
        assert best == ref_best
