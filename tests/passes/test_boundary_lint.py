"""Tests for the pass-pipeline import-boundary lint (tools/)."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
TOOL = REPO / "tools" / "check_pass_boundary.py"


def load_tool():
    spec = importlib.util.spec_from_file_location("check_pass_boundary", TOOL)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestBoundaryLint:
    def test_repo_source_is_clean(self):
        proc = subprocess.run(
            [sys.executable, str(TOOL), str(REPO / "src")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_direct_import_is_flagged(self, tmp_path):
        mod = load_tool()
        bad = tmp_path / "repro" / "engine" / "rogue.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "from repro.optimizer.dma_inference import infer_dma\n"
        )
        violations = list(mod.iter_violations(tmp_path))
        assert len(violations) == 1
        path, lineno, name = violations[0]
        assert path == bad and lineno == 1 and name == "infer_dma"

    def test_attribute_access_is_flagged(self, tmp_path):
        mod = load_tool()
        bad = tmp_path / "repro" / "harness" / "rogue.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import repro.optimizer as opt\n"
            "def f(k):\n"
            "    return opt.apply_prefetch(k)\n"
        )
        violations = list(mod.iter_violations(tmp_path))
        assert [(v[1], v[2]) for v in violations] == [(3, "apply_prefetch")]

    def test_allowed_packages_are_exempt(self, tmp_path):
        mod = load_tool()
        ok = tmp_path / "repro" / "passes" / "optimize.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("from ..optimizer.dma_inference import infer_dma\n")
        assert list(mod.iter_violations(tmp_path)) == []
