"""PassManager tests: instrumentation, metrics, dump hooks, failure
semantics."""

import io

import pytest

from repro.dsl import ScheduleSpace
from repro.engine import CandidatePipeline, EngineMetrics
from repro.errors import IllegalCandidateError, PassVerificationError
from repro.passes import (
    FunctionPass,
    PassContext,
    PassManager,
    lowering_passes,
    optimize_passes,
    set_dump_ir,
)

from ..scheduler.test_lower import gemm_cd


def gemm_setup(M=128, N=128, K=128, tm=64, tn=64, tk=64):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [tm])
    sp.split("N", [tn])
    sp.split("K", [tk])
    return cd, sp.strategy()


class TestInstrumentation:
    def test_trace_records_every_pass(self):
        cd, strategy = gemm_setup()
        manager = PassManager([*lowering_passes(), *optimize_passes()])
        manager.run(PassContext(compute=cd, strategy=strategy))
        names = [r.name for r in manager.last_trace]
        assert names == [
            "decode-strategy", "build-loop-nest", "plan-spm",
            "infer-dma", "hoist-dma", "prefetch", "analyze-boundary",
        ]
        for r in manager.last_trace:
            assert r.seconds >= 0
        # the builder materialises the tree out of nothing
        build = manager.last_trace[1]
        assert build.nodes_before == 0 and build.nodes_after > 0
        # hoisting only ever moves or removes transfers
        hoist = manager.last_trace[4]
        assert hoist.delta <= 0
        assert "nodes" in build.describe()

    def test_metrics_record_stage_and_passes(self):
        cd, strategy = gemm_setup()
        metrics = EngineMetrics()
        manager = PassManager(
            lowering_passes(), metrics=metrics, stage="lowering"
        )
        manager.run(PassContext(compute=cd, strategy=strategy))
        assert metrics.lowering.count == 1
        assert metrics.lowering.seconds > 0
        assert set(metrics.passes) == {
            "decode-strategy", "build-loop-nest", "plan-spm"
        }
        assert all(s.count == 1 for s in metrics.passes.values())
        assert "lower" in metrics.describe()
        assert "plan-spm" in metrics.describe_passes()

    def test_pass_metrics_merge(self):
        cd, strategy = gemm_setup()
        a, b = EngineMetrics(), EngineMetrics()
        for m in (a, b):
            PassManager(lowering_passes(), metrics=m, stage="lowering").run(
                PassContext(compute=cd, strategy=strategy)
            )
        a.merge(b)
        assert a.lowering.count == 2
        assert a.passes["plan-spm"].count == 2

    def test_established_invariants_accumulate(self):
        cd, strategy = gemm_setup()
        ctx = PassContext(compute=cd, strategy=strategy)
        PassManager([*lowering_passes(), *optimize_passes()]).run(ctx)
        assert {"spm-plan", "dma-geometry"} <= ctx.established


class TestFailureSemantics:
    def test_illegal_candidate_propagates_but_charges_stage(self):
        # untiled 512^3: the SPM plan overflows the 64 KB scratchpad
        cd, strategy = gemm_setup(512, 512, 512, tm=512, tn=512, tk=512)
        metrics = EngineMetrics()
        manager = PassManager(
            lowering_passes(), metrics=metrics, stage="lowering"
        )
        with pytest.raises(IllegalCandidateError):
            manager.run(PassContext(compute=cd, strategy=strategy))
        # pruned strategies still cost lowering time; Tab. 3 must see it
        assert metrics.lowering.count == 1

    def test_empty_result_is_a_verification_error(self):
        cd, strategy = gemm_setup()
        analysis_only = FunctionPass("analyze-nothing", lambda ctx, k: None)
        with pytest.raises(PassVerificationError) as err:
            PassManager([analysis_only]).run(
                PassContext(compute=cd, strategy=strategy)
            )
        assert err.value.pass_name == "analyze-nothing"

    def test_verify_false_skips_checks(self):
        import dataclasses

        cd, strategy = gemm_setup()

        def dangle(ctx, kernel):
            return dataclasses.replace(kernel, allocs=[])

        passes = [*lowering_passes(), FunctionPass("break", dangle)]
        with pytest.raises(PassVerificationError):
            PassManager(passes).run(PassContext(compute=cd, strategy=strategy))
        # same damage, verification off: no error
        PassManager(passes, verify=False).run(
            PassContext(compute=cd, strategy=strategy)
        )


class TestDumpIr:
    def teardown_method(self):
        set_dump_ir(None)

    def test_dump_all_prints_every_pass(self):
        cd, strategy = gemm_setup()
        buf = io.StringIO()
        set_dump_ir("all", stream=buf)
        PassManager([*lowering_passes(), *optimize_passes()]).run(
            PassContext(compute=cd, strategy=strategy)
        )
        text = buf.getvalue()
        assert "IR after pass 'build-loop-nest'" in text
        assert "IR before pass 'prefetch'" in text
        assert "kernel gemm" in text  # printer output, not just headers

    def test_dump_filters_by_pass_name(self):
        cd, strategy = gemm_setup()
        buf = io.StringIO()
        set_dump_ir("prefetch", stream=buf)
        PassManager([*lowering_passes(), *optimize_passes()]).run(
            PassContext(compute=cd, strategy=strategy)
        )
        text = buf.getvalue()
        assert "IR after pass 'prefetch'" in text
        assert "build-loop-nest" not in text

    def test_dump_limit_caps_runs(self):
        cd, strategy = gemm_setup()
        buf = io.StringIO()
        set_dump_ir("all", limit=1, stream=buf)
        manager = PassManager(lowering_passes())
        manager.run(PassContext(compute=cd, strategy=strategy))
        first = buf.getvalue()
        manager.run(PassContext(compute=cd, strategy=strategy))
        assert buf.getvalue() == first  # second run not dumped


class TestPipelineStages:
    def test_prepare_charges_lowering_not_enumeration(self):
        """The satellite fix: replay compiles used to be mis-charged to
        the enumeration stage."""
        cd, strategy = gemm_setup()
        pipe = CandidatePipeline(cd)
        pipe.prepare(strategy)
        assert pipe.metrics.enumeration.count == 0
        assert pipe.metrics.enumeration.seconds == 0
        assert pipe.metrics.lowering.count == 1
        assert pipe.metrics.lowering.seconds > 0
        assert pipe.metrics.optimization.count == 1

    def test_candidates_split_enumeration_and_lowering(self):
        cd = gemm_cd()
        sp = ScheduleSpace(cd)
        sp.split("M", [32, 64])
        sp.split("N", [32, 64])
        sp.split("K", [32, 64])
        pipe = CandidatePipeline(cd, sp)
        cands = list(pipe.candidates())
        assert pipe.metrics.enumeration.count == pipe.stats.declared == 8
        # every declared strategy was lowered (legal or pruned)
        assert pipe.metrics.lowering.count == pipe.stats.declared
        assert pipe.metrics.optimization.count == len(cands)
        assert pipe.metrics.passes["decode-strategy"].count == 8
