"""Tests for tuning-result records and the error hierarchy."""

import pytest

import repro.errors as E
from repro.autotuner.result import CandidateScore, TuningResult
from repro.dsl.schedule import ScheduleStrategy
from repro.scheduler.enumerate import Candidate


def make_score(**kw):
    cand = Candidate(
        strategy=ScheduleStrategy({"tile:M": 4}),
        kernel=None,  # records never dereference the kernel
        compute=None,
    )
    return CandidateScore(candidate=cand, **kw)


class TestCandidateScore:
    def test_measured_preferred_over_predicted(self):
        s = make_score(predicted_cycles=100.0, measured_cycles=120.0)
        assert s.cycles == 120.0

    def test_predicted_fallback(self):
        assert make_score(predicted_cycles=100.0).cycles == 100.0

    def test_unevaluated_raises(self):
        with pytest.raises(ValueError):
            make_score().cycles


class TestTuningResult:
    def test_summary_mentions_method_and_space(self):
        r = TuningResult(
            best=make_score(predicted_cycles=10.0),
            space_size=42,
            legal_count=40,
            evaluated=40,
            wall_seconds=1.5,
            method="model",
        )
        text = r.summary()
        assert "model" in text and "space=42" in text

    def test_summary_prefers_measured_report(self):
        from repro.machine.trace import SimReport

        r = TuningResult(
            best=make_score(predicted_cycles=10.0),
            space_size=1,
            legal_count=1,
            evaluated=1,
            wall_seconds=0.1,
            method="blackbox",
            report=SimReport(cycles=123.0),
        )
        assert "measured" in r.summary()


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        for name in dir(E):
            obj = getattr(E, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not E.ReproError:
                    assert issubclass(obj, E.ReproError), name

    def test_pruning_error_is_a_schedule_error(self):
        assert issubclass(E.IllegalCandidateError, E.ScheduleError)

    def test_machine_errors_grouped(self):
        for cls in (E.SpmCapacityError, E.DmaError, E.RegCommError,
                    E.PipelineError, E.MainMemoryError):
            assert issubclass(cls, E.MachineError)

    def test_cache_error_importable(self):
        from repro.runtime import CacheError

        assert issubclass(CacheError, E.ReproError)
