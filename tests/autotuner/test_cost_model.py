"""Tests for the Eq. (1)/(2) cost model and its calibration."""

import numpy as np
import pytest

from repro.autotuner import (
    default_coeffs,
    eq2_features,
    fit_all,
    fit_quality,
    fit_variant,
    predict_dma,
    predict_gemm,
    predict_kernel,
)
from repro.codegen import compile_candidate
from repro.dsl import ScheduleSpace
from repro.errors import TuningError
from repro.ir import AffineExpr, DmaCgNode, DmaGeometry, TileAccess
from repro.machine.config import default_config
from repro.machine.dma import MEM_TO_SPM
from repro.primitives.gemm_kernel import kernel_cycles
from repro.primitives.microkernel import ALL_VARIANTS
from repro.scheduler import Candidate, lower_strategy

from ..scheduler.test_lower import gemm_cd


class TestEq2:
    def test_features_shape(self):
        f = eq2_features(64, 128, 32, "M")
        assert len(f) == 4
        assert f[0] == 32.0 and f[3] == 1.0

    def test_quantized_features_flat_within_block(self):
        """M=40 and M=120 quantise to the same effective extent (one
        16-row register block per CPE)."""
        assert eq2_features(40, 64, 32, "M") == eq2_features(120, 64, 32, "M")
        assert eq2_features(120, 64, 32, "M") != eq2_features(136, 64, 32, "M")

    def test_fit_accuracy_within_eight_percent_typical(self):
        """Mean relative error of the fitted model stays under ~8% --
        the regime behind Fig. 9's small losses."""
        for v in ALL_VARIANTS:
            q = fit_quality(v)
            assert q["mean_rel_err"] < 0.08, (v.name, q)

    def test_predict_matches_structural_at_large_tiles(self):
        coeffs = default_coeffs()
        v = ALL_VARIANTS[0]
        pred = predict_gemm(256, 256, 256, v, coeffs)
        real = kernel_cycles(256, 256, 256, v).total
        assert abs(pred - real) / real < 0.10

    def test_missing_coeffs_raise(self):
        with pytest.raises(TuningError):
            predict_gemm(64, 64, 64, ALL_VARIANTS[0], {})

    def test_fit_all_covers_variants(self):
        coeffs = fit_all()
        assert set(coeffs) == {v.name for v in ALL_VARIANTS}

    def test_coeffs_cached(self):
        assert default_coeffs() == default_coeffs()

    def test_coeffs_keyed_on_full_machine_signature(self):
        """Two configs that compare equal (dataclass hashing skips the
        latency tables) but time instructions differently must fit
        different coefficients -- the old object-keyed lru_cache
        silently handed the second config the first one's fit."""
        base = default_config()
        slow = base.with_overrides(
            latencies={**base.latencies, "vmad": base.latencies["vmad"] + 32}
        )
        assert slow == base
        assert default_coeffs(slow) != default_coeffs(base)
        # and repeat queries still answer from the cache
        assert default_coeffs(slow) == default_coeffs(slow)


class TestEq1:
    def _dma(self, n_blocks, block, stride, descs=1):
        return DmaCgNode(
            access=TileAccess("T", ((AffineExpr(0), 1),)),
            spm="spm_a",
            direction=MEM_TO_SPM,
            geometry=DmaGeometry(n_blocks, block, stride, descs),
        )

    def test_latency_floor(self):
        cfg = default_config()
        t = predict_dma(self._dma(1, 64, 0))
        assert t >= cfg.dma_latency_cycles

    def test_bandwidth_term_scales(self):
        small = predict_dma(self._dma(16, 512, 0))
        big = predict_dma(self._dma(64, 512, 0))
        assert big > small

    def test_waste_charged_for_unaligned_strides(self):
        """Blocks drifting off 128 B alignment pay more than aligned
        ones of the same payload."""
        aligned = predict_dma(self._dma(64, 128, 128))  # step 256, aligned
        drifted = predict_dma(self._dma(64, 128, 72))   # step 200: drifts
        assert drifted > aligned

    def test_requires_geometry(self):
        node = DmaCgNode(
            access=TileAccess("T", ((AffineExpr(0), 1),)),
            spm="spm_a",
            direction=MEM_TO_SPM,
        )
        with pytest.raises(TuningError):
            predict_dma(node)


class TestKernelPrediction:
    def _compiled(self, M=512, N=512, K=512, tm=128, tn=128, tk=64):
        cd = gemm_cd(M, N, K)
        sp = ScheduleSpace(cd)
        sp.split("M", [tm]); sp.split("N", [tn]); sp.split("K", [tk])
        strat = sp.strategy()
        cand = Candidate(strat, lower_strategy(cd, strat), cd)
        return cd, compile_candidate(cand)

    def test_prediction_close_to_simulation(self):
        """End-to-end: predicted vs simulated time within ~25% for a
        regular schedule (the model need only rank, but it should be in
        the right ballpark)."""
        cd, ck = self._compiled()
        pred = predict_kernel(ck.kernel, default_coeffs())
        rng = np.random.default_rng(0)
        feeds = {
            "A": rng.standard_normal((512, 512)).astype(np.float32),
            "B": rng.standard_normal((512, 512)).astype(np.float32),
        }
        measured = ck.run(feeds).report.cycles
        assert abs(pred.total - measured) / measured < 0.25

    def test_pipelined_kernel_uses_max(self):
        cd, ck = self._compiled()
        pred = predict_kernel(ck.kernel, default_coeffs())
        assert pred.pipelined
        assert pred.total <= pred.dma + pred.compute + 1e4

    def test_bound_classification(self):
        cd, ck = self._compiled(tk=64)
        pred = predict_kernel(ck.kernel, default_coeffs())
        assert pred.bound in ("dma", "compute")

    def test_prediction_ranks_schedules(self):
        """The model orders a clearly-bad schedule after a good one --
        the property tuning correctness rests on."""
        _, good = self._compiled(tm=128, tn=128, tk=256)
        _, bad = self._compiled(tm=32, tn=32, tk=32)
        coeffs = default_coeffs()
        assert (
            predict_kernel(good.kernel, coeffs).total
            < predict_kernel(bad.kernel, coeffs).total
        )
