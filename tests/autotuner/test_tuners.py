"""Tests for the model-based and black-box autotuners."""

import numpy as np
import pytest

from repro.autotuner import synthetic_feeds, tune_blackbox, tune_with_model
from repro.dsl import ScheduleSpace
from repro.errors import TuningError

from ..scheduler.test_lower import gemm_cd


def small_space(M=256, N=256, K=256):
    cd = gemm_cd(M, N, K)
    sp = ScheduleSpace(cd)
    sp.split("M", [64, 128])
    sp.split("N", [64, 128])
    sp.split("K", [64, 128])
    return cd, sp


class TestSyntheticFeeds:
    def test_covers_inputs_only(self):
        cd, _ = small_space()
        feeds = synthetic_feeds(cd)
        assert set(feeds) == {"A", "B"}
        assert feeds["A"].shape == (256, 256)
        assert feeds["A"].dtype == np.float32

    def test_deterministic_by_seed(self):
        cd, _ = small_space()
        a = synthetic_feeds(cd, seed=3)["A"]
        b = synthetic_feeds(cd, seed=3)["A"]
        np.testing.assert_array_equal(a, b)


class TestModelTuner:
    def test_basic_tuning(self):
        cd, sp = small_space()
        result = tune_with_model(cd, sp)
        assert result.method == "model"
        assert result.space_size == 8
        assert result.evaluated == result.legal_count
        assert result.report is not None
        assert result.best.measured_cycles is not None

    def test_predictions_populated(self):
        cd, sp = small_space()
        result = tune_with_model(cd, sp, keep_scores=True)
        assert len(result.scores) == result.evaluated
        assert all(s.predicted_cycles is not None for s in result.scores)
        preds = [s.predicted_cycles for s in result.scores]
        assert preds == sorted(preds)

    def test_run_best_false_skips_execution(self):
        cd, sp = small_space()
        result = tune_with_model(cd, sp, run_best=False)
        assert result.report is None
        assert result.best.measured_cycles is None

    def test_top_k_measures_finalists(self):
        cd, sp = small_space()
        result = tune_with_model(cd, sp, top_k=3, keep_scores=True)
        measured = [s for s in result.scores if s.measured_cycles is not None]
        assert len(measured) == 3

    def test_empty_space(self):
        cd, sp = small_space()
        sp.reorder([("K", "M", "N")])
        with pytest.raises(TuningError):
            tune_with_model(cd, sp)

    def test_summary_text(self):
        cd, sp = small_space()
        result = tune_with_model(cd, sp)
        assert "model" in result.summary()


class TestBlackbox:
    def test_basic_tuning(self):
        cd, sp = small_space(128, 128, 128)
        result = tune_blackbox(cd, sp)
        assert result.method == "blackbox"
        assert result.evaluated == result.legal_count
        assert result.report is not None

    def test_limit(self):
        cd, sp = small_space(128, 128, 128)
        result = tune_blackbox(cd, sp, limit=2)
        assert result.evaluated == 2

    def test_finds_true_optimum(self):
        cd, sp = small_space(128, 128, 128)
        full = tune_blackbox(cd, sp, keep_scores=True)
        measured = [s.measured_cycles for s in full.scores]
        assert full.best.measured_cycles == min(measured)


class TestEngineIntegration:
    def test_blackbox_parallel_matches_serial(self):
        cd, sp = small_space(128, 128, 128)
        serial = tune_blackbox(cd, sp, workers=1, keep_scores=True)
        par = tune_blackbox(cd, sp, workers=2, keep_scores=True)
        assert (
            par.best.candidate.strategy.decisions
            == serial.best.candidate.strategy.decisions
        )
        assert [s.measured_cycles for s in par.scores] == [
            s.measured_cycles for s in serial.scores
        ]

    def test_model_parallel_matches_serial(self):
        cd, sp = small_space(128, 128, 128)
        serial = tune_with_model(cd, sp, workers=1, keep_scores=True)
        par = tune_with_model(cd, sp, workers=2, keep_scores=True)
        assert (
            par.best.candidate.strategy.decisions
            == serial.best.candidate.strategy.decisions
        )
        assert [s.predicted_cycles for s in par.scores] == [
            s.predicted_cycles for s in serial.scores
        ]

    def test_measured_scores_carry_reports(self):
        cd, sp = small_space()
        result = tune_with_model(cd, sp, top_k=3, keep_scores=True)
        measured = [s for s in result.scores if s.measured_cycles is not None]
        assert measured
        for s in measured:
            assert s.report is not None
            assert s.report.cycles == s.measured_cycles
        assert result.best.report is result.report

    def test_metrics_populated(self):
        cd, sp = small_space()
        result = tune_with_model(cd, sp)
        m = result.metrics
        assert m is not None
        assert m.enumeration.count == result.space_size
        assert m.optimization.count == result.legal_count
        assert m.prediction.count + m.memo_hits >= result.evaluated
        assert "engine:" in result.summary()

    def test_blackbox_metrics_count_executions(self):
        cd, sp = small_space(128, 128, 128)
        result = tune_blackbox(cd, sp)
        m = result.metrics
        assert m is not None
        assert m.execution.count == result.evaluated
        assert m.prediction.count == 0


class TestModelVsBlackbox:
    def test_model_close_to_brute_force(self):
        """The Fig. 9 property at test scale: the model's pick is
        within 8% of the brute-force best."""
        cd, sp = small_space(256, 256, 256)
        model = tune_with_model(cd, sp)
        brute = tune_blackbox(cd, sp)
        loss = model.report.cycles / brute.report.cycles
        assert loss <= 1.08

    def test_model_much_faster_to_tune(self):
        cd, sp = small_space(256, 256, 256)
        model = tune_with_model(cd, sp, run_best=False)
        brute = tune_blackbox(cd, sp)
        assert model.wall_seconds < brute.wall_seconds
