"""Tests for the runtime layer: kernel cache, library, network runs."""

import numpy as np
import pytest

from repro.dsl.schedule import ScheduleStrategy
from repro.ops import ConvParams, conv2d_reference
from repro.runtime import (
    AtopLibrary,
    CacheError,
    KernelCache,
    TunedEntry,
    run_network,
)


def sample_entry():
    return TunedEntry(
        strategy=ScheduleStrategy(
            {"tile:M": 64, "order": ("M", "N", "K"), "vec_dim": "M"}
        ),
        predicted_cycles=123.0,
        measured_cycles=150.0,
    )


class TestKernelCache:
    def test_put_get(self):
        c = KernelCache()
        c.put("k", sample_entry())
        assert "k" in c
        got = c.get("k")
        assert got is not None and got.measured_cycles == 150.0
        assert c.hits == 1

    def test_miss_counting(self):
        c = KernelCache()
        assert c.get("nope") is None
        assert c.misses == 1

    def test_json_roundtrip(self, tmp_path):
        c = KernelCache()
        c.put("gemm:64x64x64", sample_entry())
        path = tmp_path / "cache.json"
        c.save(path)
        loaded = KernelCache.load(path)
        entry = loaded.get("gemm:64x64x64")
        assert entry.strategy.decisions == sample_entry().strategy.decisions
        assert entry.strategy["order"] == ("M", "N", "K")  # tuple preserved
        assert entry.predicted_cycles == 123.0

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(CacheError):
            KernelCache.load(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"version": 99, "entries": {}}')
        with pytest.raises(CacheError):
            KernelCache.load(path)

    def test_malformed_entry(self):
        with pytest.raises(CacheError):
            TunedEntry.from_json({"nope": 1})

    def test_counters_survive_roundtrip(self, tmp_path):
        c = KernelCache()
        c.put("k", sample_entry())
        c.get("k")
        c.get("k")
        c.get("nope")
        path = tmp_path / "cache.json"
        c.save(path)
        loaded = KernelCache.load(path)
        assert loaded.hits == 2
        assert loaded.misses == 1

    def test_old_file_without_counters_loads_zeroed(self, tmp_path):
        c = KernelCache()
        c.put("k", sample_entry())
        path = tmp_path / "cache.json"
        c.save(path)
        import json

        payload = json.loads(path.read_text())
        del payload["hits"], payload["misses"]
        path.write_text(json.dumps(payload))
        loaded = KernelCache.load(path)
        assert loaded.hits == 0 and loaded.misses == 0
        assert loaded.get("k") is not None

    def test_tolerant_load_quarantines_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        loaded = KernelCache.load(path, strict=False)
        assert len(loaded) == 0
        sidecar = tmp_path / "bad.json.corrupt"
        assert loaded.quarantined_path == sidecar
        assert sidecar.read_text() == "not json {"  # evidence preserved
        assert not path.exists()

    def test_tolerant_load_skips_malformed_entries(self, tmp_path):
        c = KernelCache()
        c.put("good", sample_entry())
        path = tmp_path / "cache.json"
        c.save(path)
        import json

        payload = json.loads(path.read_text())
        payload["entries"]["broken"] = {"nope": 1}
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheError):
            KernelCache.load(path)  # strict: a damaged library must stop
        loaded = KernelCache.load(path, strict=False)
        assert loaded.skipped_entries == 1
        assert loaded.get("good") is not None

    def test_tolerant_load_ignores_version_mismatch(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"version": 99, "entries": {}}')
        loaded = KernelCache.load(path, strict=False)
        assert len(loaded) == 0
        assert path.exists()  # another code version may still want it

    def test_save_is_atomic(self, tmp_path):
        c = KernelCache()
        c.put("k", sample_entry())
        path = tmp_path / "nested" / "cache.json"
        c.save(path)  # creates the parent directory
        assert KernelCache.load(path).get("k") is not None
        assert not list(path.parent.glob("*.tmp"))  # no temp litter

    def test_library_survives_corrupt_cache_file(self, tmp_path):
        path = tmp_path / "library.json"
        path.write_text("truncated {")
        lib = AtopLibrary(cache_path=path)  # must not raise
        assert len(lib.cache) == 0
        assert (tmp_path / "library.json.corrupt").exists()

    def test_duplicate_put_same_strategy_ok(self):
        c = KernelCache()
        c.put("k", sample_entry())
        refreshed = sample_entry()
        refreshed.measured_cycles = 99.0
        c.put("k", refreshed)  # same decisions: allowed
        assert c._entries["k"].measured_cycles == 99.0

    def test_duplicate_put_different_strategy_rejected(self):
        c = KernelCache()
        c.put("k", sample_entry())
        other = TunedEntry(
            strategy=ScheduleStrategy(
                {"tile:M": 128, "order": ("M", "N", "K"), "vec_dim": "M"}
            )
        )
        with pytest.raises(CacheError):
            c.put("k", other)
        c.put("k", other, overwrite=True)
        assert c._entries["k"].strategy["tile:M"] == 128


class TestAtopLibrary:
    @pytest.fixture
    def case(self):
        params = ConvParams(batch=8, ni=16, no=16, ri=8, ci=8,
                            kr=3, kc=3, pad=1)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        return params, x, w

    def test_first_call_tunes_then_caches(self, case):
        params, x, w = case
        lib = AtopLibrary(quick=True)
        r1 = lib.conv2d(x, w, params)
        assert lib.stats.tuned == 1
        r2 = lib.conv2d(x, w, params)
        assert lib.stats.cache_hits == 1
        np.testing.assert_allclose(r1.output, r2.output, rtol=1e-5)
        # cached run reproduces the same simulated time
        assert r2.cycles == pytest.approx(r1.cycles, rel=1e-9)

    def test_results_correct(self, case):
        params, x, w = case
        lib = AtopLibrary(quick=True)
        run = lib.conv2d(x, w, params)
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )

    def test_method_override(self, case):
        params, x, w = case
        lib = AtopLibrary(quick=True)
        run = lib.conv2d(x, w, params, method="implicit")
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )
        assert any(k.startswith("conv:implicit") for k in lib.cache.keys())

    def test_gemm_cache(self):
        lib = AtopLibrary(quick=True)
        rng = np.random.default_rng(1)
        a = rng.standard_normal((64, 48)).astype(np.float32)
        b = rng.standard_normal((48, 32)).astype(np.float32)
        r1 = lib.gemm(a, b)
        r2 = lib.gemm(a, b)
        assert lib.stats.tuned == 1 and lib.stats.cache_hits == 1
        np.testing.assert_allclose(r1.output, a @ b, rtol=1e-4, atol=1e-3)
        assert r2.cycles == pytest.approx(r1.cycles)

    def test_persistent_cache_survives_restart(self, case, tmp_path):
        params, x, w = case
        path = tmp_path / "kernels.json"
        lib1 = AtopLibrary(quick=True, cache_path=path)
        lib1.conv2d(x, w, params)
        assert path.exists()
        lib2 = AtopLibrary(quick=True, cache_path=path)
        lib2.conv2d(x, w, params)
        assert lib2.stats.tuned == 0
        assert lib2.stats.cache_hits == 1


class TestStridedThroughLibrary:
    def test_strided_conv_dispatches_and_is_correct(self):
        params = ConvParams(batch=4, ni=16, no=16, ri=14, ci=14,
                            kr=3, kc=3, pad=1, stride=2)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        lib = AtopLibrary(quick=True)
        run = lib.conv2d(x, w, params)
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )

    def test_strided_repeat_call_hits_cache(self):
        params = ConvParams(batch=4, ni=16, no=16, ri=14, ci=14,
                            kr=3, kc=3, pad=1, stride=2)
        rng = np.random.default_rng(7)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        lib = AtopLibrary(quick=True)
        first = lib.conv2d(x, w, params)
        assert lib.stats.tuned == 1
        assert any(k.startswith("conv:strided:") for k in lib.cache.keys())
        second = lib.conv2d(x, w, params)
        assert lib.stats.tuned == 1  # no re-tuning
        assert lib.stats.cache_hits == 1
        np.testing.assert_array_equal(first.output, second.output)

    def test_strided_layers_in_network_use_tensorized_path(self):
        res = run_network("resnet", batch=8, scale=16, max_layers=4)
        methods = {l.spec.name: l.method for l in res.layers}
        assert methods["conv1"] == "mpe-fallback"        # Ni=3 stem
        assert methods["res3_down"] == "strided-implicit"


class TestNetworkRuns:
    def test_vgg_prefix_runs_and_times(self):
        res = run_network("vgg16", batch=8, scale=16, max_layers=3)
        assert len(res.layers) == 3
        assert res.total_cycles > 0
        assert all(l.cycles > 0 for l in res.layers)
        assert "vgg16" in res.summary()

    def test_strided_layers_fall_back(self):
        res = run_network("resnet", batch=8, scale=16, max_layers=3)
        methods = {l.method for l in res.layers}
        assert "mpe-fallback" in methods  # the 7x7/s2 stem
        assert res.fallback_fraction() > 0

    def test_library_reuse_across_layers(self):
        lib = AtopLibrary(quick=True)
        run_network("vgg16", batch=8, library=lib, scale=16, max_layers=4)
        first_tuned = lib.stats.tuned
        run_network("vgg16", batch=8, library=lib, scale=16, max_layers=4)
        assert lib.stats.tuned == first_tuned  # all layers cached
