"""Execution-level robustness of the runtime library: a corrupted
cached kernel must be *detected* (differential validation), *removed*
(cache quarantine) and *survived* (reference fallback with a correct
result) -- the caller never sees garbage."""

import numpy as np
import pytest

from repro.faults import FaultPlan, compute_digest, set_fault_plan
from repro.machine.config import default_config
from repro.machine.trace import SimReport
from repro.ops import conv2d_reference
from repro.ops.conv_common import ConvParams
from repro.runtime import (
    AtopLibrary,
    KernelCache,
    KernelFallbackWarning,
    TunedEntry,
)
from repro.runtime.network import FALLBACK_METHODS, LayerResult, NetworkResult
from repro.workloads.networks import LayerSpec
from repro.dsl.schedule import ScheduleStrategy
from repro.ops.gemm import make_compute as gemm_compute


@pytest.fixture(autouse=True)
def _no_fault_plan():
    yield
    set_fault_plan(None)


def gemm_feeds(m=64, n=32, k=48, seed=3):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal((m, k)).astype(np.float32),
        rng.standard_normal((k, n)).astype(np.float32),
    )


class TestCorruptedKernelEndToEnd:
    def test_poisoned_cached_kernel_detected_quarantined_and_survived(
        self, tmp_path
    ):
        """The acceptance scenario: a kernel cached by an earlier
        (unvalidated) session starts producing corrupt outputs; the
        next validated use detects it, quarantines the entry and still
        returns the correct result via the reference fallback."""
        a, b = gemm_feeds()
        path = tmp_path / "kernels.json"

        # session 1: warm the cache with validation off -- no digest
        # is recorded, so the entry is untrusted on the next hit.
        warm = AtopLibrary(quick=True, cache_path=path, validate="off")
        warm.gemm(a, b)
        assert warm.stats.tuned == 1
        key = warm.gemm_key(64, 32, 48)
        assert key in warm.cache

        # the kernel goes bad: every execution of this compute now
        # silently perturbs its outputs (repro.faults poison).
        set_fault_plan(
            FaultPlan(poison=compute_digest(gemm_compute(64, 32, 48))[:12])
        )

        # session 2: validated library over the same warm cache.
        lib = AtopLibrary(quick=True, cache_path=path, validate="all")
        assert key in lib.cache
        with pytest.warns(KernelFallbackWarning):
            run = lib.gemm(a, b)

        # detected ...
        assert lib.stats.validations == 1
        assert run.fallback_reason is not None
        assert "ValidationError" in run.fallback_reason
        # ... quarantined ...
        assert key not in lib.cache
        assert key in lib.cache.quarantined_keys
        assert lib.stats.quarantined == 1
        assert lib.stats.fallbacks == 1
        # quarantine is persisted: a restart does not resurrect it
        assert key not in KernelCache.load(path)
        # ... and survived: the caller still gets the right answer.
        assert run.report.detail == "validation-fallback"
        np.testing.assert_allclose(
            run.output, a @ b, rtol=1e-4, atol=1e-3
        )

    def test_recovery_after_the_fault_clears(self, tmp_path):
        """Once the poison is gone the quarantined key re-tunes and is
        certified (digest recorded), so later hits validate for free."""
        a, b = gemm_feeds()
        path = tmp_path / "kernels.json"
        warm = AtopLibrary(quick=True, cache_path=path, validate="off")
        warm.gemm(a, b)
        set_fault_plan(
            FaultPlan(poison=compute_digest(gemm_compute(64, 32, 48))[:12])
        )
        lib = AtopLibrary(quick=True, cache_path=path, validate="all")
        with pytest.warns(KernelFallbackWarning):
            lib.gemm(a, b)
        set_fault_plan(None)

        run = lib.gemm(a, b)  # key quarantined -> re-tunes cleanly
        assert run.fallback_reason is None
        assert lib.stats.tuned == 1
        np.testing.assert_allclose(run.output, a @ b, rtol=1e-4, atol=1e-3)
        key = lib.gemm_key(64, 32, 48)
        entry = lib.cache._entries[key]
        assert entry.validation_digest is not None

        # the recorded digest makes the next hit free: no revalidation
        validations = lib.stats.validations
        again = lib.gemm(a, b)
        assert again.fallback_reason is None
        assert lib.stats.validations == validations

    def test_one_warning_per_key(self, tmp_path, monkeypatch):
        """Repeated failures of one kernel warn once, not per call."""
        import warnings as warnings_mod

        # neutralize REPRO_SANITIZE: with it set the *tuner* would also
        # validate and refuse to re-tune the poisoned kernel at all --
        # this test is about the library-level single-warning contract.
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        a, b = gemm_feeds()
        path = tmp_path / "kernels.json"
        warm = AtopLibrary(quick=True, cache_path=path, validate="off")
        warm.gemm(a, b)
        set_fault_plan(
            FaultPlan(poison=compute_digest(gemm_compute(64, 32, 48))[:12])
        )
        lib = AtopLibrary(quick=True, cache_path=path, validate="all")
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            lib.gemm(a, b)  # hit -> detected -> fallback (warns)
            lib.gemm(a, b)  # miss -> re-tune -> still poisoned (silent)
        fallback_warnings = [
            w for w in caught
            if issubclass(w.category, KernelFallbackWarning)
        ]
        assert len(fallback_warnings) == 1
        assert lib.stats.fallbacks == 2

    def test_validated_conv_hit_is_certified_once(self):
        """The conv path certifies a fresh tune and amortizes later
        hits through the recorded digest."""
        params = ConvParams(batch=8, ni=16, no=16, ri=8, ci=8,
                            kr=3, kc=3, pad=1)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        lib = AtopLibrary(quick=True, validate="all")
        r1 = lib.conv2d(x, w, params)
        assert r1.fallback_reason is None
        assert lib.stats.validations == 1
        r2 = lib.conv2d(x, w, params)  # hit: digest fresh, no recheck
        assert lib.stats.validations == 1
        np.testing.assert_allclose(
            r1.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )
        np.testing.assert_allclose(r1.output, r2.output, rtol=1e-5)


class TestKernelCacheQuarantine:
    def entry(self):
        return TunedEntry(
            strategy=ScheduleStrategy(
                {"tile:M": 32, "order": ("M", "N", "K"), "vec_dim": "M"}
            )
        )

    def test_quarantine_removes_and_records(self):
        c = KernelCache()
        c.put("k", self.entry())
        dropped = c.quarantine("k")
        assert dropped is not None
        assert "k" not in c
        assert c.quarantined_keys == ["k"]

    def test_quarantine_missing_key_is_noop(self):
        c = KernelCache()
        assert c.quarantine("ghost") is None
        assert c.quarantined_keys == []

    def test_validation_digest_roundtrips_json(self):
        e = self.entry()
        e.validation_digest = "ab" * 32
        back = TunedEntry.from_json(e.to_json())
        assert back.validation_digest == "ab" * 32

    def test_old_cache_entries_load_with_no_digest(self):
        data = self.entry().to_json()
        assert "validation_digest" not in data  # old format unchanged
        assert TunedEntry.from_json(data).validation_digest is None


class TestFallbackAccounting:
    def _layer(self, name, method, cycles):
        spec = LayerSpec(name, ni=4, no=4, spatial=8)
        params = ConvParams(batch=1, ni=4, no=4, ri=8, ci=8, kr=3, kc=3,
                            pad=1)
        report = SimReport(
            cycles=cycles, compute_cycles=cycles, flops=1,
            config=default_config(), detail=method,
        )
        return LayerResult(spec=spec, params=params, method=method,
                           report=report)

    def test_fallback_fraction_is_cycle_weighted_over_all_fallbacks(self):
        res = NetworkResult(
            name="synthetic", batch=1,
            layers=[
                self._layer("l0", "implicit", 700.0),
                self._layer("l1", "mpe-fallback", 200.0),
                self._layer("l2", "validation-fallback", 100.0),
            ],
        )
        assert res.fallback_layers == 2
        assert res.fallback_fraction() == pytest.approx(0.3)
        assert set(FALLBACK_METHODS) == {
            "mpe-fallback", "validation-fallback"
        }

    def test_no_fallbacks_is_zero(self):
        res = NetworkResult(
            name="synthetic", batch=1,
            layers=[self._layer("l0", "implicit", 700.0)],
        )
        assert res.fallback_layers == 0
        assert res.fallback_fraction() == 0.0
