"""Tests for the strided-convolution phase decomposition."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.harness.runner import run_conv_strided
from repro.ops.conv_common import ConvParams
from repro.ops.direct import conv2d_reference
from repro.ops.strided import (
    decompose,
    phase_input,
    phase_weight,
    reference_by_phases,
)


def make(kr=3, s=2, pad=1, ri=10, **kw):
    d = dict(batch=2, ni=4, no=6, ri=ri, ci=ri, kr=kr, kc=kr, pad=pad, stride=s)
    d.update(kw)
    return ConvParams(**d)


class TestDecompose:
    def test_stride2_3x3_has_four_phases(self):
        phases = decompose(make())
        assert len(phases) == 4
        # subsampled kernels: (2,2), (2,1), (1,2), (1,1)
        sizes = sorted((p.params.kr, p.params.kc) for p in phases)
        assert sizes == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_stride2_1x1_single_phase(self):
        phases = decompose(make(kr=1, pad=0, ri=8))
        assert len(phases) == 1
        assert phases[0].params.kr == 1

    def test_stride3_5x5(self):
        phases = decompose(make(kr=5, s=3, pad=2, ri=13))
        assert len(phases) == 9

    def test_unit_stride_rejected(self):
        with pytest.raises(WorkloadError):
            decompose(make(s=1))

    def test_phase_outputs_match_parent_grid(self):
        params = make(kr=7, pad=3, ri=14)
        for phase in decompose(params):
            assert phase.params.ro == params.ro
            assert phase.params.co == params.co
            assert phase.params.pad == 0


class TestSlices:
    def test_phase_weight_shapes(self):
        params = make()
        w = np.random.default_rng(0).random(params.weight_shape).astype(np.float32)
        for phase in decompose(params):
            ws = phase_weight(w, params, phase)
            assert ws.shape == phase.params.weight_shape

    def test_phase_input_shapes(self):
        params = make(kr=7, pad=3, ri=14)
        x = np.random.default_rng(1).random(params.input_shape).astype(np.float32)
        for phase in decompose(params):
            xs = phase_input(x, params, phase)
            assert xs.shape == phase.params.input_shape

    def test_weight_shape_checked(self):
        params = make()
        with pytest.raises(WorkloadError):
            phase_weight(np.zeros((1, 1, 3, 3), np.float32), params,
                         decompose(params)[0])


class TestIdentity:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(),
            dict(kr=7, pad=3, ri=14),
            dict(kr=3, pad=0, ri=9),
            dict(kr=1, pad=0, ri=8),
            dict(kr=5, s=3, pad=2, ri=13),
        ],
    )
    def test_phase_sum_equals_direct(self, kw):
        params = make(**kw)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        np.testing.assert_allclose(
            reference_by_phases(x, w, params),
            conv2d_reference(x, w, params),
            rtol=1e-4,
            atol=1e-4,
        )


class TestStridedRunner:
    def test_tuned_strided_conv_correct(self):
        params = ConvParams(batch=4, ni=16, no=16, ri=14, ci=14,
                            kr=3, kc=3, pad=1, stride=2)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        run = run_conv_strided(params, x, w, quick=True)
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )
        assert run.cycles > 0

    def test_resnet_stem_shape(self):
        """The 7x7/stride-2 stem decomposes and runs (explicit method:
        Ni=3 is below the implicit channel floor)."""
        params = ConvParams(batch=4, ni=3, no=8, ri=14, ci=14,
                            kr=7, kc=7, pad=3, stride=2)
        rng = np.random.default_rng(4)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        run = run_conv_strided(params, x, w, quick=True, method="explicit")
        np.testing.assert_allclose(
            run.output, conv2d_reference(x, w, params), rtol=1e-3, atol=1e-2
        )

    def test_unit_stride_rejected(self):
        params = ConvParams(batch=2, ni=8, no=8, ri=8, ci=8, pad=1)
        with pytest.raises(WorkloadError):
            run_conv_strided(params, np.zeros(params.input_shape, np.float32),
                             np.zeros(params.weight_shape, np.float32))
