"""Tests for the GEMM operator definition."""

import pytest

from repro.errors import WorkloadError
from repro.ops.gemm import make_compute, make_space, tile_candidates


class TestCompute:
    def test_shapes(self):
        cd = make_compute(128, 256, 64)
        cd.validate()
        assert cd.tensor_shape("A") == (128, 64)
        assert cd.tensor_shape("B") == (64, 256)
        assert cd.tensor_shape("C") == (128, 256)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_compute(0, 4, 4)


class TestTileCandidates:
    def test_within_extent(self):
        for extent in (20, 100, 1000, 9000):
            for quick in (True, False):
                cands = tile_candidates(extent, quick=quick)
                assert cands
                assert all(c <= extent for c in cands)

    def test_quick_keeps_large_end(self):
        cands = tile_candidates(2048, quick=True)
        assert max(cands) == 512

    def test_small_extent_uses_extent(self):
        assert tile_candidates(20) == [20]

    def test_includes_exact_extent_when_small(self):
        assert 200 in tile_candidates(200)


class TestSpace:
    def test_decisions_present(self):
        cd = make_compute(512, 512, 512)
        sp = make_space(cd)
        keys = set(sp.decision_keys)
        assert {"tile:M", "tile:N", "tile:K", "order", "vec_dim",
                "spm_layout:a", "spm_layout:b"} <= keys

    def test_ablation_flags(self):
        cd = make_compute(512, 512, 512)
        sp = make_space(cd, layouts=False, vectorization=False)
        keys = set(sp.decision_keys)
        assert "vec_dim" not in keys
        assert "spm_layout:a" not in keys

    def test_quick_space_smaller(self):
        cd = make_compute(2048, 2048, 2048)
        assert make_space(cd, quick=True).size() < make_space(cd).size()
