"""Tests for the F(2x2,3x3) / F(4x4,3x3) Winograd variants."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.harness.runner import run_conv_winograd
from repro.ops import conv_winograd as W
from repro.ops.conv_common import ConvParams
from repro.ops.direct import conv2d_reference


def params(**kw):
    d = dict(batch=2, ni=8, no=8, ri=12, ci=12, kr=3, kc=3, pad=1)
    d.update(kw)
    return ConvParams(**d)


class TestVariantRegistry:
    def test_lookup(self):
        assert W.get_variant("f22") is W.F22
        assert W.get_variant("f44") is W.F44
        assert W.get_variant(None) is W.F22
        assert W.get_variant(W.F44) is W.F44
        with pytest.raises(WorkloadError):
            W.get_variant("f88")

    def test_geometry(self):
        assert (W.F22.out_tile, W.F22.tile, W.F22.num_gemms) == (2, 4, 16)
        assert (W.F44.out_tile, W.F44.tile, W.F44.num_gemms) == (4, 6, 36)

    def test_backward_compatible_aliases(self):
        assert W.NUM_GEMMS == 16 and W.TILE == 4 and W.OUT_TILE == 2


class TestF44Math:
    def test_single_tile_identity(self):
        """A^T[(Gg)*(B^T d)]A == direct 4x4 correlation of a 6x6 tile."""
        rng = np.random.default_rng(0)
        d = rng.standard_normal((6, 6)).astype(np.float32)
        g = rng.standard_normal((3, 3)).astype(np.float32)
        u = W.F44.Gm @ g @ W.F44.Gm.T
        v = W.F44.BT @ d @ W.F44.BT.T
        y = W.F44.AT @ (u * v) @ W.F44.AT.T
        direct = np.array(
            [
                [(d[i : i + 3, j : j + 3] * g).sum() for j in range(4)]
                for i in range(4)
            ]
        )
        np.testing.assert_allclose(y, direct, rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("variant", ["f22", "f44"])
    def test_reference_matches_direct(self, variant):
        p = params()
        rng = np.random.default_rng(1)
        x = rng.standard_normal(p.input_shape).astype(np.float32)
        w = rng.standard_normal(p.weight_shape).astype(np.float32)
        np.testing.assert_allclose(
            W.winograd_reference(x, w, p, variant),
            conv2d_reference(x, w, p),
            rtol=5e-3,
            atol=5e-2,  # F44's fractional transforms are fp32-looser
        )

    def test_tile_counts_differ(self):
        p = params(ri=16, ci=16)
        _, _, p22 = W.tile_counts(p, "f22")
        _, _, p44 = W.tile_counts(p, "f44")
        assert p22 == 4 * p44  # 2x2 output tiles vs 4x4

    def test_f44_batches_36_gemms(self):
        cd = W.make_compute(params(ni=16, no=16), "f44")
        assert cd.axes["T"].extent == 36


class TestVariantRunner:
    @pytest.fixture
    def case(self):
        p = params(batch=4, ni=16, no=16, ri=16, ci=16)
        rng = np.random.default_rng(2)
        x = rng.standard_normal(p.input_shape).astype(np.float32)
        w = rng.standard_normal(p.weight_shape).astype(np.float32)
        return p, x, w, conv2d_reference(x, w, p)

    @pytest.mark.parametrize("variant", ["f22", "f44"])
    def test_tuned_variants_correct(self, case, variant):
        p, x, w, ref = case
        run = run_conv_winograd(p, x, w, quick=True, variant=variant)
        np.testing.assert_allclose(run.output, ref, rtol=5e-3, atol=5e-2)

    def test_auto_picks_minimum(self, case):
        p, x, w, ref = case
        f22 = run_conv_winograd(p, x, w, quick=True, variant="f22")
        f44 = run_conv_winograd(p, x, w, quick=True, variant="f44")
        auto = run_conv_winograd(p, x, w, quick=True, variant="auto")
        assert auto.cycles == min(f22.cycles, f44.cycles)
        np.testing.assert_allclose(auto.output, ref, rtol=5e-3, atol=5e-2)

    def test_auto_rejected_for_manual(self, case):
        p, x, w, _ = case
        with pytest.raises(WorkloadError):
            run_conv_winograd(p, x, w, library="manual", variant="auto")

    def test_f44_reduces_gemm_flops(self):
        """F(4x4) does ~1.8x fewer GEMM multiplies than F(2x2)."""
        p = params(ni=32, no=32, ri=24, ci=24, batch=1)
        _, _, p22 = W.tile_counts(p, "f22")
        _, _, p44 = W.tile_counts(p, "f44")
        flops22 = 16 * p22
        flops44 = 36 * p44
        assert flops22 / flops44 == pytest.approx(16 / 9, rel=0.01)
