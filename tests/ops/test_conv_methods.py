"""Tests for the three tensorized convolution decompositions."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ops import conv_explicit, conv_implicit, conv_winograd, select_method
from repro.ops.conv_common import ConvParams
from repro.ops.direct import conv2d_reference
from repro.ops.im2col import col_shape, im2col, im2col_cost
from repro.ops.selector import applicable_methods


def small_params(**kw):
    defaults = dict(batch=2, ni=8, no=16, ri=8, ci=8, kr=3, kc=3, pad=1)
    defaults.update(kw)
    return ConvParams(**defaults)


class TestApplicability:
    def test_implicit_needs_channels(self):
        assert conv_implicit.applicable(small_params())
        assert not conv_implicit.applicable(small_params(ni=3))
        assert not conv_implicit.applicable(small_params(stride=2))

    def test_winograd_needs_3x3_unit_stride(self):
        assert conv_winograd.applicable(small_params())
        assert not conv_winograd.applicable(small_params(kr=5, kc=5, pad=2))
        assert not conv_winograd.applicable(small_params(stride=2))

    def test_explicit_broadest(self):
        assert conv_explicit.applicable(small_params(ni=3))
        assert not conv_explicit.applicable(small_params(stride=2))

    def test_selector(self):
        assert select_method(small_params()) == "winograd"
        assert select_method(small_params(kr=1, kc=1, pad=0)) == "implicit"
        assert select_method(small_params(ni=3, kr=1, kc=1, pad=0)) == "explicit"
        assert applicable_methods(small_params(ni=3)) == ["winograd", "explicit"]

    def test_selector_no_method(self):
        with pytest.raises(WorkloadError):
            select_method(small_params(stride=2))


class TestImplicitSeed:
    def test_compute_shapes(self):
        p = small_params()
        cd = conv_implicit.make_compute(p)
        cd.validate()
        assert cd.tensor_shape("input") == (2, 8, 10, 10)  # padded + shift
        assert cd.tensor_shape("out") == p.output_shape

    def test_space_nonempty_and_bounded(self):
        p = small_params(ni=64, no=64, ri=16, ci=16)
        sp = conv_implicit.make_space(p, quick=True)
        assert 0 < sp.size() < 20_000

    def test_not_applicable_raises(self):
        with pytest.raises(WorkloadError):
            conv_implicit.make_compute(small_params(ni=3))


class TestIm2col:
    def test_col_shape(self):
        p = small_params()
        assert col_shape(p, "kn") == (8 * 9, 2 * 8 * 8)
        assert col_shape(p, "nk") == (2 * 8 * 8, 8 * 9)
        with pytest.raises(WorkloadError):
            col_shape(p, "zz")

    def test_expansion_reproduces_conv(self):
        """W_mat @ col == direct convolution."""
        p = small_params()
        rng = np.random.default_rng(0)
        x = rng.standard_normal(p.input_shape).astype(np.float32)
        w = rng.standard_normal(p.weight_shape).astype(np.float32)
        col = im2col(x, p, "kn")
        w_mat = conv_explicit.weight_matrix(w, p)
        out = conv_explicit.output_from_matrix(w_mat @ col, p)
        np.testing.assert_allclose(
            out, conv2d_reference(x, w, p), rtol=1e-4, atol=1e-4
        )

    def test_layouts_transpose(self):
        p = small_params()
        x = np.random.default_rng(1).random(p.input_shape).astype(np.float32)
        np.testing.assert_array_equal(im2col(x, p, "nk"), im2col(x, p, "kn").T)

    def test_cost_layout_sensitivity(self):
        """Element-granular NK gathering costs more than KN streaming."""
        p = small_params(ni=32, no=32, ri=16, ci=16)
        kn = im2col_cost(p, "kn")
        nk = im2col_cost(p, "nk")
        assert nk.cycles > kn.cycles
        assert kn.bytes_written == nk.bytes_written

    def test_cost_scales_with_size(self):
        small = im2col_cost(small_params())
        big = im2col_cost(small_params(ri=16, ci=16, batch=8))
        assert big.cycles > small.cycles


class TestWinogradFunctional:
    def test_reference_matches_direct(self):
        p = small_params()
        rng = np.random.default_rng(0)
        x = rng.standard_normal(p.input_shape).astype(np.float32)
        w = rng.standard_normal(p.weight_shape).astype(np.float32)
        np.testing.assert_allclose(
            conv_winograd.winograd_reference(x, w, p),
            conv2d_reference(x, w, p),
            rtol=1e-3,
            atol=1e-3,
        )

    def test_odd_output_sizes_cropped(self):
        """Ro not divisible by 2: tiles pad, output crops exactly."""
        p = small_params(ri=7, ci=9)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(p.input_shape).astype(np.float32)
        w = rng.standard_normal(p.weight_shape).astype(np.float32)
        np.testing.assert_allclose(
            conv_winograd.winograd_reference(x, w, p),
            conv2d_reference(x, w, p),
            rtol=1e-3,
            atol=1e-3,
        )

    def test_transform_matrices_identity_property(self):
        """F(2,3) exactness on a single tile: A^T[(Gg)*(B^T d)]A equals
        direct correlation of the 4x4 tile with the 3x3 filter."""
        rng = np.random.default_rng(5)
        d = rng.standard_normal((4, 4)).astype(np.float32)
        g = rng.standard_normal((3, 3)).astype(np.float32)
        u = conv_winograd.G @ g @ conv_winograd.G.T
        v = conv_winograd.BT @ d @ conv_winograd.BT.T
        y = conv_winograd.AT @ (u * v) @ conv_winograd.AT.T
        direct = np.array(
            [
                [(d[i : i + 3, j : j + 3] * g).sum() for j in range(2)]
                for i in range(2)
            ]
        )
        np.testing.assert_allclose(y, direct, rtol=1e-4, atol=1e-4)

    def test_tile_counts(self):
        p = small_params()  # ro = co = 8
        tr, tc, tot = conv_winograd.tile_counts(p)
        assert (tr, tc) == (4, 4)
        assert tot == p.batch * 16

    def test_gemm_batch_is_sixteen(self):
        p = small_params()
        cd = conv_winograd.make_compute(p)
        assert cd.axes["T"].extent == 16

    def test_transform_reports_positive(self):
        p = small_params(ni=32, no=32, ri=16, ci=16)
        for rep in (
            conv_winograd.input_transform_report(p),
            conv_winograd.filter_transform_report(p),
            conv_winograd.output_transform_report(p),
        ):
            assert rep.cycles > 0
            assert rep.bytes_moved > 0


class TestExplicitHelpers:
    def test_gemm_dims(self):
        p = small_params()
        d = conv_explicit.gemm_dims(p)
        assert d == {"m": 16, "n": 2 * 8 * 8, "k": 8 * 9}

    def test_space_includes_col_layout(self):
        p = small_params(ni=32, no=32, ri=16, ci=16)
        sp = conv_explicit.make_space(p, quick=True)
        assert "layout:B" in sp.decision_keys

    def test_col_layout_of(self):
        p = small_params(ni=32, no=32, ri=16, ci=16)
        sp = conv_explicit.make_space(p, quick=True)
        s = sp.strategy(**{"layout:B": (1, 0)})
        assert conv_explicit.col_layout_of(s) == "nk"
        assert conv_explicit.col_layout_of(sp.strategy()) == "kn"

    def test_expand_report(self):
        p = small_params()
        rep = conv_explicit.expand_report(p, "kn")
        assert rep.cycles > 0 and rep.dma_cycles == rep.cycles
