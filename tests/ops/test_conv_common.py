"""Tests for conv parameter handling and the direct reference."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ops.conv_common import ConvParams, pad_input
from repro.ops.direct import conv2d_loops, conv2d_reference


class TestConvParams:
    def test_output_shape_unit_stride(self):
        p = ConvParams(batch=2, ni=3, no=4, ri=8, ci=8, kr=3, kc=3, pad=1)
        assert p.ro == 8 and p.co == 8
        assert p.output_shape == (2, 4, 8, 8)

    def test_output_shape_no_pad(self):
        p = ConvParams(batch=1, ni=1, no=1, ri=8, ci=8, kr=3, kc=3)
        assert p.ro == 6

    def test_strided(self):
        p = ConvParams(batch=1, ni=1, no=1, ri=8, ci=8, kr=3, kc=3, pad=1, stride=2)
        assert p.ro == 4

    def test_flops(self):
        p = ConvParams(batch=2, ni=3, no=4, ri=6, ci=6, kr=3, kc=3, pad=1)
        assert p.flops == 2 * 2 * 4 * 6 * 6 * 3 * 3 * 3

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ConvParams(batch=0, ni=1, no=1, ri=4, ci=4)
        with pytest.raises(WorkloadError):
            ConvParams(batch=1, ni=1, no=1, ri=2, ci=2, kr=5, kc=5)
        with pytest.raises(WorkloadError):
            ConvParams(batch=1, ni=1, no=1, ri=4, ci=4, pad=-1)

    def test_with_batch(self):
        p = ConvParams(batch=2, ni=3, no=4, ri=6, ci=6, pad=1)
        assert p.with_batch(32).batch == 32
        assert p.batch == 2

    def test_describe(self):
        p = ConvParams(batch=2, ni=3, no=4, ri=6, ci=6, pad=1)
        assert "Ni3" in p.describe()


class TestPadInput:
    def test_pad_shape_and_values(self):
        p = ConvParams(batch=1, ni=2, no=1, ri=4, ci=4, pad=1)
        x = np.ones(p.input_shape, np.float32)
        xp = pad_input(x, p)
        assert xp.shape == p.padded_input_shape
        assert xp[0, 0, 0, 0] == 0.0
        assert xp[0, 0, 1, 1] == 1.0

    def test_no_pad_passthrough(self):
        p = ConvParams(batch=1, ni=1, no=1, ri=4, ci=4)
        x = np.random.default_rng(0).random(p.input_shape).astype(np.float32)
        np.testing.assert_array_equal(pad_input(x, p), x)

    def test_shape_mismatch(self):
        p = ConvParams(batch=1, ni=1, no=1, ri=4, ci=4)
        with pytest.raises(WorkloadError):
            pad_input(np.zeros((1, 1, 5, 4), np.float32), p)


class TestDirectReference:
    def test_loops_match_reference_small(self):
        p = ConvParams(batch=2, ni=3, no=2, ri=5, ci=5, kr=3, kc=3, pad=1)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(p.input_shape).astype(np.float32)
        w = rng.standard_normal(p.weight_shape).astype(np.float32)
        np.testing.assert_allclose(
            conv2d_loops(x, w, p), conv2d_reference(x, w, p), rtol=1e-5, atol=1e-5
        )

    def test_strided_agreement(self):
        p = ConvParams(batch=1, ni=2, no=2, ri=7, ci=7, kr=3, kc=3, pad=1, stride=2)
        rng = np.random.default_rng(1)
        x = rng.standard_normal(p.input_shape).astype(np.float32)
        w = rng.standard_normal(p.weight_shape).astype(np.float32)
        np.testing.assert_allclose(
            conv2d_loops(x, w, p), conv2d_reference(x, w, p), rtol=1e-5, atol=1e-5
        )

    def test_identity_kernel(self):
        """A 1x1 identity filter reproduces the input channel."""
        p = ConvParams(batch=1, ni=1, no=1, ri=4, ci=4, kr=1, kc=1)
        x = np.random.default_rng(2).random(p.input_shape).astype(np.float32)
        w = np.ones(p.weight_shape, np.float32)
        np.testing.assert_allclose(conv2d_reference(x, w, p), x, rtol=1e-6)

    def test_weight_shape_checked(self):
        p = ConvParams(batch=1, ni=1, no=1, ri=4, ci=4, kr=3, kc=3, pad=1)
        with pytest.raises(WorkloadError):
            conv2d_reference(
                np.zeros(p.input_shape, np.float32),
                np.zeros((1, 1, 2, 2), np.float32),
                p,
            )
