"""Tests for the DSL schedule seed (ComputeDef)."""

import pytest

from repro.dsl.compute import ComputeDef, ShiftedDim
from repro.errors import DslError


def gemm_def(m=64, n=64, k=64):
    cd = ComputeDef("gemm")
    cd.axis("M", m)
    cd.axis("N", n)
    cd.axis("K", k, reduction=True)
    cd.tensor("A", ["M", "K"], "input")
    cd.tensor("B", ["K", "N"], "input")
    cd.tensor("C", ["M", "N"], "output")
    cd.define_gemm("C", "A", "B", m="M", n=["N"], k="K")
    return cd


def conv_def():
    cd = ComputeDef("conv")
    cd.axis("B", 2)
    cd.axis("No", 8)
    cd.axis("Ro", 6)
    cd.axis("Co", 6)
    cd.axis("Ni", 4, reduction=True)
    cd.axis("Kr", 3, reduction=True)
    cd.axis("Kc", 3, reduction=True)
    cd.tensor(
        "input", ["B", "Ni", ShiftedDim("Ro", "Kr"), ShiftedDim("Co", "Kc")], "input"
    )
    cd.tensor("weight", ["No", "Ni", "Kr", "Kc"], "weight")
    cd.tensor("out", ["B", "No", "Ro", "Co"], "output")
    cd.define_gemm("out", "weight", "input", m="No", n=["B", "Ro", "Co"], k="Ni")
    return cd


class TestAxes:
    def test_axis_declaration(self):
        cd = ComputeDef("op")
        ax = cd.axis("M", 8)
        assert ax.extent == 8 and ax.kind == "spatial"

    def test_duplicate_axis(self):
        cd = ComputeDef("op")
        cd.axis("M", 8)
        with pytest.raises(DslError):
            cd.axis("M", 8)

    def test_bad_extent(self):
        cd = ComputeDef("op")
        with pytest.raises(DslError):
            cd.axis("M", 0)

    def test_axis_partition(self):
        cd = conv_def()
        assert set(cd.reduction_axes()) == {"Ni", "Kr", "Kc"}
        assert set(cd.spatial_axes()) == {"B", "No", "Ro", "Co"}


class TestTensors:
    def test_unknown_axis_rejected(self):
        cd = ComputeDef("op")
        cd.axis("M", 8)
        with pytest.raises(DslError):
            cd.tensor("T", ["M", "Q"], "input")

    def test_bad_role(self):
        cd = ComputeDef("op")
        cd.axis("M", 8)
        with pytest.raises(DslError):
            cd.tensor("T", ["M"], "scratch")

    def test_shifted_dim_extent(self):
        cd = conv_def()
        # Ri = Ro + Kr - 1 = 6 + 3 - 1 = 8
        assert cd.tensor_shape("input") == (2, 4, 8, 8)

    def test_shifted_dim_kind_checks(self):
        cd = ComputeDef("op")
        cd.axis("Ro", 4)
        cd.axis("Kr", 3, reduction=True)
        cd.axis("X", 4)
        with pytest.raises(DslError):
            cd.tensor("T", [ShiftedDim("Kr", "Kr")], "input")  # base not spatial
        with pytest.raises(DslError):
            cd.tensor("T", [ShiftedDim("Ro", "X")], "input")  # offset not reduction

    def test_duplicate_tensor(self):
        cd = gemm_def()
        with pytest.raises(DslError):
            cd.tensor("A", ["M"], "input")


class TestGemmSpec:
    def test_valid_definitions(self):
        gemm_def().validate()
        conv_def().validate()

    def test_m_axis_must_be_spatial(self):
        cd = ComputeDef("op")
        cd.axis("M", 8)
        cd.axis("K", 8, reduction=True)
        cd.tensor("A", ["M", "K"], "input")
        cd.tensor("C", ["M"], "output")
        with pytest.raises(DslError):
            cd.define_gemm("C", "A", "A", m="K", n=[], k="K")

    def test_k_axis_must_be_reduction(self):
        cd = ComputeDef("op")
        cd.axis("M", 8)
        cd.axis("N", 8)
        cd.tensor("A", ["M", "N"], "input")
        cd.tensor("C", ["M", "N"], "output")
        with pytest.raises(DslError):
            cd.define_gemm("C", "A", "A", m="M", n=["N"], k="N")

    def test_double_definition(self):
        cd = gemm_def()
        with pytest.raises(DslError):
            cd.define_gemm("C", "A", "B", m="M", n=["N"], k="K")

    def test_validate_requires_gemm(self):
        cd = ComputeDef("op")
        with pytest.raises(DslError):
            cd.validate()

    def test_output_role_enforced(self):
        cd = ComputeDef("op")
        cd.axis("M", 8)
        cd.axis("N", 8)
        cd.axis("K", 8, reduction=True)
        cd.tensor("A", ["M", "K"], "input")
        cd.tensor("B", ["K", "N"], "input")
        cd.tensor("C", ["M", "N"], "input")  # wrong role
        cd.define_gemm("C", "A", "B", m="M", n=["N"], k="K")
        with pytest.raises(DslError):
            cd.validate()

    def test_output_cannot_be_indexed_by_reduction(self):
        cd = ComputeDef("op")
        cd.axis("M", 8)
        cd.axis("N", 8)
        cd.axis("K", 8, reduction=True)
        cd.tensor("A", ["M", "K"], "input")
        cd.tensor("B", ["K", "N"], "input")
        cd.tensor("C", ["M", "K"], "output")
        cd.define_gemm("C", "A", "B", m="M", n=["N"], k="K")
        with pytest.raises(DslError):
            cd.validate()

    def test_a_must_see_m_and_k(self):
        cd = ComputeDef("op")
        cd.axis("M", 8)
        cd.axis("N", 8)
        cd.axis("K", 8, reduction=True)
        cd.tensor("A", ["M", "N"], "input")  # no K
        cd.tensor("B", ["K", "N"], "input")
        cd.tensor("C", ["M", "N"], "output")
        cd.define_gemm("C", "A", "B", m="M", n=["N"], k="K")
        with pytest.raises(DslError):
            cd.validate()
