"""Tests for the schedule space."""

import pytest

from repro.dsl.compute import ComputeDef
from repro.dsl.schedule import ScheduleSpace, default_factors
from repro.errors import DslError

from .test_compute import gemm_def


class TestDefaultFactors:
    def test_includes_extent(self):
        assert 100 in default_factors(100)

    def test_vector_aligned_candidates(self):
        cands = default_factors(256)
        assert {4, 8, 16, 32, 64, 128} <= set(cands)

    def test_no_candidate_exceeds_extent(self):
        for extent in (5, 17, 100, 513):
            assert all(c <= extent for c in default_factors(extent))

    def test_bad_extent(self):
        with pytest.raises(DslError):
            default_factors(0)


class TestDeclarations:
    def test_split_unknown_axis(self):
        sp = ScheduleSpace(gemm_def())
        with pytest.raises(DslError):
            sp.split("Q")

    def test_split_twice(self):
        sp = ScheduleSpace(gemm_def())
        sp.split("M")
        with pytest.raises(DslError):
            sp.split("M")

    def test_split_factor_exceeding_extent(self):
        sp = ScheduleSpace(gemm_def(m=32))
        with pytest.raises(DslError):
            sp.split("M", [64])

    def test_reorder_must_be_permutation(self):
        sp = ScheduleSpace(gemm_def())
        with pytest.raises(DslError):
            sp.reorder([("M", "N")])  # missing K
        sp.reorder([("M", "N", "K"), ("N", "M", "K")])

    def test_layout_must_be_permutation(self):
        sp = ScheduleSpace(gemm_def())
        with pytest.raises(DslError):
            sp.layout("A", [(0, 0)])
        sp.layout("A", [(0, 1), (1, 0)])

    def test_layout_unknown_tensor(self):
        sp = ScheduleSpace(gemm_def())
        with pytest.raises(DslError):
            sp.layout("Q", [(0,)])

    def test_vectorize_validation(self):
        sp = ScheduleSpace(gemm_def())
        with pytest.raises(DslError):
            sp.vectorize(["K"])
        sp.vectorize(["M", "N"])

    def test_spm_layout_validation(self):
        sp = ScheduleSpace(gemm_def())
        with pytest.raises(DslError):
            sp.spm_layout("c")
        with pytest.raises(DslError):
            sp.spm_layout("a", ["diagonal"])
        sp.spm_layout("a")

    def test_duplicate_choice(self):
        sp = ScheduleSpace(gemm_def())
        sp.vectorize()
        with pytest.raises(DslError):
            sp.vectorize()


class TestEnumeration:
    def test_size_is_product(self):
        sp = ScheduleSpace(gemm_def())
        sp.split("M", [32, 64])
        sp.split("N", [16, 32, 64])
        sp.vectorize()  # 2 candidates
        assert sp.size() == 2 * 3 * 2

    def test_strategies_cover_space(self):
        sp = ScheduleSpace(gemm_def())
        sp.split("M", [32, 64])
        sp.vectorize()
        strategies = list(sp.strategies())
        assert len(strategies) == 4
        combos = {(s.tile("M"), s["vec_dim"]) for s in strategies}
        assert combos == {(32, "M"), (32, "N"), (64, "M"), (64, "N")}

    def test_strategy_defaults_and_overrides(self):
        sp = ScheduleSpace(gemm_def())
        sp.split("M", [32, 64])
        sp.vectorize()
        s = sp.strategy(tile_M=64, vec_dim="N")
        assert s.tile("M") == 64
        assert s["vec_dim"] == "N"

    def test_strategy_unknown_override(self):
        sp = ScheduleSpace(gemm_def())
        sp.split("M", [32])
        with pytest.raises(DslError):
            sp.strategy(tile_Q=4)

    def test_strategy_accessors(self):
        sp = ScheduleSpace(gemm_def())
        sp.split("M", [32])
        s = sp.strategy()
        assert s.get("missing") is None
        with pytest.raises(DslError):
            s["missing"]
        assert "tile:M=32" in s.describe()
