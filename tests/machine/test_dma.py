"""Tests for the DMA engine: descriptor geometry, transaction-accurate
timing, and functional gather/scatter."""

import numpy as np
import pytest

from repro.errors import DmaError
from repro.machine.config import default_config
from repro.machine.dma import (
    MEM_TO_SPM,
    SPM_TO_MEM,
    DmaDescriptor,
    DmaEngine,
    ReplyWord,
    cg_tile_descriptors,
)
from repro.machine.memory import MainMemory


def make_engine(capacity=1 << 20):
    mem = MainMemory(capacity)
    return mem, DmaEngine(mem)


class TestDescriptor:
    def test_contiguous_blocks(self):
        d = DmaDescriptor(0, 1024, 256, 0, MEM_TO_SPM)
        assert d.blocks() == [(0, 1024)]  # stride 0 -> one run

    def test_strided_blocks(self):
        d = DmaDescriptor(100, 96, 32, 96, MEM_TO_SPM)
        assert d.blocks() == [(100, 32), (228, 32), (356, 32)]

    def test_short_final_block(self):
        d = DmaDescriptor(0, 70, 32, 32, MEM_TO_SPM)
        blocks = d.blocks()
        assert blocks[-1][1] == 70 - 2 * 32
        assert sum(length for _, length in blocks) == 70

    def test_zero_size(self):
        assert DmaDescriptor(0, 0, 32, 0, MEM_TO_SPM).blocks() == []

    def test_validation(self):
        with pytest.raises(DmaError):
            DmaDescriptor(0, 4, 4, 0, "sideways")
        with pytest.raises(DmaError):
            DmaDescriptor(0, 4, 0, 0, MEM_TO_SPM)
        with pytest.raises(DmaError):
            DmaDescriptor(-4, 4, 4, 0, MEM_TO_SPM)
        with pytest.raises(DmaError):
            DmaDescriptor(0, -1, 4, 0, MEM_TO_SPM)


class TestTiming:
    def test_empty_batch_is_free(self):
        _, eng = make_engine()
        assert eng.cost([]).cycles == 0.0

    def test_latency_plus_bandwidth(self):
        cfg = default_config()
        _, eng = make_engine()
        d = DmaDescriptor(0, 128 * 64, 128 * 64, 0, MEM_TO_SPM)
        cost = eng.cost([d])
        expected = (
            cfg.dma_latency_cycles
            + cfg.dma_issue_cycles
            + d.size / cfg.dram_bytes_per_cycle
        )
        assert cost.cycles == pytest.approx(expected)
        assert cost.waste_bytes == 0

    def test_unaligned_access_pays_waste(self):
        _, eng = make_engine()
        aligned = eng.cost([DmaDescriptor(0, 4096, 4096, 0, MEM_TO_SPM)])
        shifted = eng.cost([DmaDescriptor(64, 4096, 4096, 0, MEM_TO_SPM)])
        assert shifted.paid_bytes > aligned.paid_bytes
        assert shifted.cycles > aligned.cycles

    def test_fine_strides_waste_heavily(self):
        """8-byte blocks each pay a 128 B transaction: 16x traffic."""
        _, eng = make_engine()
        d = DmaDescriptor(0, 1024, 8, 504, MEM_TO_SPM)
        cost = eng.cost([d])
        assert cost.paid_bytes == (1024 // 8) * 128
        assert cost.waste_bytes == cost.paid_bytes - 1024

    def test_batch_shares_startup_latency(self):
        cfg = default_config()
        _, eng = make_engine()
        descs = [
            DmaDescriptor(i * 8192, 4096, 4096, 0, MEM_TO_SPM, cpe_id=i)
            for i in range(64)
        ]
        batch = eng.cost(descs)
        single = eng.cost([descs[0]])
        # one latency for the whole batch, not 64
        assert batch.cycles < 64 * single.cycles
        assert batch.payload_bytes == 64 * 4096

    def test_achieved_bandwidth_below_peak(self):
        """The latency term keeps achieved bandwidth below peak; for
        moderate transfers it lands in the ~2/3-of-peak regime the
        paper's 22.6-vs-34 GB/s numbers reflect."""
        cfg = default_config()
        _, eng = make_engine()
        # 64 CPEs x 4 KiB, strided rows typical of a tile load
        descs = [
            DmaDescriptor(i * 4096, 4096, 512, 512, MEM_TO_SPM, cpe_id=i)
            for i in range(64)
        ]
        cost = eng.cost(descs)
        achieved = cost.payload_bytes / cfg.cycles_to_seconds(cost.cycles)
        assert achieved < cfg.dram_peak_bw
        assert achieved > 0.4 * cfg.dram_peak_bw


class TestFunctional:
    def test_gather_contiguous(self):
        mem, eng = make_engine()
        buf = mem.alloc("a", (64,))
        mem.write(buf, np.arange(64, dtype=np.float32))
        d = DmaDescriptor(buf.addr, 64 * 4, 64 * 4, 0, MEM_TO_SPM)
        got = eng.gather(d).view(np.float32)
        np.testing.assert_array_equal(got, np.arange(64, dtype=np.float32))

    def test_gather_strided_extracts_submatrix_column(self):
        """Gathering the first 4 columns of each row of an 8x16 matrix."""
        mem, eng = make_engine()
        buf = mem.alloc("m", (8, 16))
        data = np.arange(128, dtype=np.float32).reshape(8, 16)
        mem.write(buf, data)
        block = 4 * 4  # 4 floats
        stride = 12 * 4  # skip remaining 12 floats of the row
        d = DmaDescriptor(buf.addr, 8 * block, block, stride, MEM_TO_SPM)
        got = eng.gather(d).view(np.float32).reshape(8, 4)
        np.testing.assert_array_equal(got, data[:, :4])

    def test_scatter_roundtrip(self):
        mem, eng = make_engine()
        buf = mem.alloc("m", (8, 16))
        mem.write(buf, np.zeros((8, 16), np.float32))
        payload = np.arange(32, dtype=np.float32)
        block, stride = 4 * 4, 12 * 4
        d = DmaDescriptor(buf.addr, payload.nbytes, block, stride, SPM_TO_MEM)
        eng.scatter(d, payload.view(np.uint8))
        out = mem.read(buf)
        np.testing.assert_array_equal(out[:, :4].ravel(), payload)
        assert (out[:, 4:] == 0).all()

    def test_direction_enforced(self):
        mem, eng = make_engine()
        d_in = DmaDescriptor(0, 16, 16, 0, MEM_TO_SPM)
        d_out = DmaDescriptor(0, 16, 16, 0, SPM_TO_MEM)
        with pytest.raises(DmaError):
            eng.scatter(d_in, np.zeros(16, np.uint8))
        with pytest.raises(DmaError):
            eng.gather(d_out)

    def test_scatter_size_checked(self):
        mem, eng = make_engine()
        d = DmaDescriptor(0, 16, 16, 0, SPM_TO_MEM)
        with pytest.raises(DmaError):
            eng.scatter(d, np.zeros(8, np.uint8))


class TestReplyWord:
    def test_bump_and_satisfied(self):
        rw = ReplyWord()
        assert not rw.satisfied(1)
        rw.bump()
        assert rw.satisfied(1)
        rw.bump(3)
        assert rw.satisfied(4)


class TestCgTileExpansion:
    def test_full_coverage_partition(self):
        """The 64 per-CPE descriptors exactly tile the CG access:
        disjoint and complete (the Sec. 4.5.1 offset arithmetic)."""
        rows, cols, eb = 32, 64, 4
        row_stride = 256 * eb  # tile embedded in a wider matrix
        descs = cg_tile_descriptors(
            0, rows, cols, row_stride, eb, MEM_TO_SPM, grid_rows=8, grid_cols=8
        )
        touched = set()
        for d in descs:
            for addr, length in d.blocks():
                for b in range(addr, addr + length):
                    assert b not in touched, "overlapping descriptors"
                    touched.add(b)
        expected = set()
        for r in range(rows):
            base = r * row_stride
            expected.update(range(base, base + cols * eb))
        assert touched == expected

    def test_paper_example_geometry(self):
        """Sec. 4.5.1: column-major A(M, N) split 8x8 -> block = M/8
        elems, stride = 7M/8 elems, offset = cid*(N/8)*M + rid*M/8.
        Our row-major tile of shape (N, M) gives the same geometry."""
        M, N, eb = 64, 128, 4
        descs = cg_tile_descriptors(
            0, N, M, M * eb, eb, MEM_TO_SPM, grid_rows=8, grid_cols=8
        )
        by_cpe = {d.cpe_id: d for d in descs}
        d = by_cpe[0]
        assert d.block == (M // 8) * eb
        assert d.stride == (M - M // 8) * eb  # 7M/8
        rid, cid = 3, 5
        d = by_cpe[rid * 8 + cid]
        assert d.mem_addr == (rid * (N // 8) * M + cid * (M // 8)) * eb

    def test_small_extents_skip_empty_cpes(self):
        descs = cg_tile_descriptors(
            0, 4, 4, 4 * 4, 4, MEM_TO_SPM, grid_rows=8, grid_cols=8
        )
        # only 4x4 CPEs get non-empty subtiles
        assert len(descs) == 16

    def test_block_wider_than_stride_rejected(self):
        with pytest.raises(DmaError):
            cg_tile_descriptors(
                0, 8, 64, 32 * 4, 4, MEM_TO_SPM, grid_rows=1, grid_cols=1
            )
