"""Tests for the scratch-pad planner."""

import pytest

from repro.errors import SpmCapacityError
from repro.machine.config import default_config
from repro.machine.spm import (
    SpmAllocator,
    SpmBuffer,
    partition_extent,
    tile_bytes_per_cpe,
)


class TestPlanner:
    def test_basic_plan_offsets_disjoint(self):
        plan = SpmAllocator().plan(
            [SpmBuffer("a", 1000), SpmBuffer("b", 2000), SpmBuffer("c", 500)]
        )
        bufs = sorted(plan.buffers.values(), key=lambda b: b.offset)
        for prev, nxt in zip(bufs, bufs[1:]):
            assert prev.offset + prev.reserved_bytes <= nxt.offset

    def test_offsets_vector_aligned(self):
        plan = SpmAllocator().plan([SpmBuffer("a", 3), SpmBuffer("b", 5)])
        align = default_config().vector_bytes
        for buf in plan.buffers.values():
            assert buf.offset % align == 0

    def test_double_buffer_doubles_footprint(self):
        single = SpmAllocator().plan([SpmBuffer("a", 1024)])
        double = SpmAllocator().plan([SpmBuffer("a", 1024, double_buffered=True)])
        assert double.total_bytes == 2 * single.total_bytes

    def test_capacity_enforced(self):
        cap = default_config().spm_bytes
        with pytest.raises(SpmCapacityError):
            SpmAllocator().plan([SpmBuffer("a", cap + 1)])

    def test_exactly_full_is_legal(self):
        cap = default_config().spm_bytes
        plan = SpmAllocator().plan([SpmBuffer("a", cap)])
        assert plan.total_bytes == cap
        assert plan.utilization == 1.0

    def test_double_buffer_can_overflow(self):
        cap = default_config().spm_bytes
        with pytest.raises(SpmCapacityError):
            SpmAllocator().plan([SpmBuffer("a", cap // 2 + 64, double_buffered=True)])

    def test_duplicate_rejected(self):
        with pytest.raises(SpmCapacityError):
            SpmAllocator().plan([SpmBuffer("a", 4), SpmBuffer("a", 4)])

    def test_nonpositive_rejected(self):
        with pytest.raises(SpmCapacityError):
            SpmAllocator().plan([SpmBuffer("a", 0)])

    def test_fits_predicate(self):
        alloc = SpmAllocator()
        cap = default_config().spm_bytes
        assert alloc.fits([SpmBuffer("a", cap // 2)])
        assert not alloc.fits([SpmBuffer("a", cap * 2)])


class TestTileFootprint:
    def test_distributed_tile_divides_by_64(self):
        cfg = default_config()
        # 64x64 f32 tile = 16384 B total -> 256 B per CPE
        assert tile_bytes_per_cpe(64 * 64) == 64 * 64 * 4 // cfg.cpes_per_cg

    def test_distributed_rounds_up(self):
        assert tile_bytes_per_cpe(1) == 1  # ceil(4/64) = 1

    def test_replicated_tile(self):
        assert tile_bytes_per_cpe(100, distributed=False) == 400


class TestPartition:
    def test_even_partition(self):
        parts = partition_extent(64, 8)
        assert parts == [(i * 8, 8) for i in range(8)]

    def test_remainder_to_leading_chunks(self):
        parts = partition_extent(10, 4)
        assert parts == [(0, 3), (3, 3), (6, 2), (8, 2)]
        assert sum(length for _, length in parts) == 10

    def test_extent_smaller_than_parts(self):
        parts = partition_extent(3, 8)
        assert sum(length for _, length in parts) == 3
        assert parts[3:] == [(3, 0)] * 5

    def test_contiguity(self):
        for extent in (1, 7, 63, 64, 65, 200):
            parts = partition_extent(extent, 8)
            pos = 0
            for start, length in parts:
                assert start == pos
                pos += length
            assert pos == extent

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            partition_extent(4, 0)
