"""Unit tests for the machine sanitizer: the opt-in knobs, the
register-communication protocol checker and the SPM plan introspection
the error messages rely on."""

import numpy as np
import pytest

from repro.errors import RegCommError, SanitizerError
from repro.machine.config import default_config
from repro.machine.regcomm import CommPattern, RegCommMesh
from repro.machine.sanitizer import (
    RegCommChecker,
    resolve_sanitize,
    sanitize_default,
    set_sanitize,
)


@pytest.fixture(autouse=True)
def _reset_knob():
    yield
    set_sanitize(None)


def full_grid(value_fn):
    cfg = default_config()
    return [
        [
            np.array([value_fn(r, c)], dtype=np.float32)
            for c in range(cfg.cluster_cols)
        ]
        for r in range(cfg.cluster_rows)
    ]


class TestKnobs:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        set_sanitize(None)
        assert sanitize_default() is False
        assert resolve_sanitize(None) is False

    def test_env_enables(self, monkeypatch):
        set_sanitize(None)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_default() is True
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert sanitize_default() is False

    def test_set_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        set_sanitize(False)
        assert sanitize_default() is False
        set_sanitize(True)
        assert sanitize_default() is True

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        set_sanitize(False)
        assert resolve_sanitize(True) is True
        set_sanitize(True)
        assert resolve_sanitize(False) is False


class TestRegCommChecker:
    def test_double_put_is_deadlock(self):
        chk = RegCommChecker()
        chk.record_put(CommPattern("row", 0))
        with pytest.raises(SanitizerError) as exc:
            chk.record_put(CommPattern("row", 1))
        assert exc.value.check == "regcomm-deadlock"

    def test_get_without_put_is_deadlock(self):
        chk = RegCommChecker()
        with pytest.raises(SanitizerError) as exc:
            chk.record_get(CommPattern("col", 2))
        assert exc.value.check == "regcomm-deadlock"

    def test_mismatched_get_pattern(self):
        chk = RegCommChecker()
        chk.record_put(CommPattern("row", 0))
        with pytest.raises(SanitizerError) as exc:
            chk.record_get(CommPattern("col", 0))
        assert exc.value.check == "regcomm-mismatch"

    def test_matched_put_get_drains(self):
        chk = RegCommChecker()
        p = CommPattern("row", 3)
        chk.record_put(p)
        chk.record_get(p)
        assert chk.outstanding is None
        assert chk.transactions == 2

    def test_mesh_protocol_with_checker(self):
        """The mesh's async put/get drives the checker: a correct
        round-trip works, a protocol violation raises the structured
        sanitizer error before the mesh's own RegCommError."""
        mesh = RegCommMesh(checker=RegCommChecker())
        grid = full_grid(lambda r, c: 10 * r + c)
        p = CommPattern("row", 3)
        mesh.put(grid, p)
        out = mesh.get(p)
        assert out[0][5][0] == 3.0
        mesh.put(grid, p)
        with pytest.raises(SanitizerError):
            mesh.put(grid, p)

    def test_mesh_protocol_without_checker_still_errors(self):
        """Without the sanitizer attached the mesh still refuses the
        deadlock -- as a plain RegCommError."""
        mesh = RegCommMesh()
        grid = full_grid(lambda r, c: 0.0)
        p = CommPattern("row", 0)
        mesh.put(grid, p)
        with pytest.raises(RegCommError):
            mesh.put(grid, p)
        mesh.reset()
        with pytest.raises(RegCommError):
            mesh.get(p)

    def test_broadcast_missing_producer_lane(self):
        chk = RegCommChecker()
        grid = full_grid(lambda r, c: 0.0)
        grid[2][3] = None
        with pytest.raises(SanitizerError) as exc:
            chk.record_broadcast(grid, CommPattern("row", 3), default_config())
        assert exc.value.check == "regcomm-mismatch"

    def test_mesh_broadcast_reports_structured_error_first(self):
        mesh = RegCommMesh(checker=RegCommChecker())
        grid = full_grid(lambda r, c: 0.0)
        grid[2][3] = None
        with pytest.raises(SanitizerError):
            mesh.broadcast(grid, CommPattern("row", 3))


class TestSpmPlanIntrospection:
    def test_buffer_at_maps_offsets_to_names(self):
        from repro.scheduler import lower_strategy, Candidate
        from repro.codegen import compile_candidate
        from repro.dsl import ScheduleSpace
        from ..scheduler.test_lower import gemm_cd

        cd = gemm_cd(64, 64, 64)
        sp = ScheduleSpace(cd)
        sp.split("M", [32]); sp.split("N", [32]); sp.split("K", [32])
        strat = sp.strategy()
        ck = compile_candidate(Candidate(strat, lower_strategy(cd, strat), cd))
        plan = ck.spm_plan
        for name, buf in plan.buffers.items():
            assert plan.buffer_at(buf.offset) == name
            assert plan.buffer_at(buf.offset + buf.reserved_bytes - 1) == name
        end = max(b.offset + b.reserved_bytes for b in plan.buffers.values())
        assert plan.buffer_at(end) is None
        assert plan.buffer_at(-1) is None
