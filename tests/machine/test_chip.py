"""Tests for chip-level sharding and the NoC model."""

import pytest

from repro.machine.chip import Noc, Shard, run_sharded, shard_extent
from repro.machine.config import default_config
from repro.machine.trace import SimReport


class TestSharding:
    def test_even_split(self):
        shards = shard_extent(128)
        assert [s.length for s in shards] == [32, 32, 32, 32]
        assert [s.start for s in shards] == [0, 32, 64, 96]

    def test_remainder_to_leading_cgs(self):
        shards = shard_extent(10)
        assert [s.length for s in shards] == [3, 3, 2, 2]

    def test_batch_one_uses_single_cg(self):
        shards = shard_extent(1)
        assert [s.length for s in shards] == [1, 0, 0, 0]

    def test_run_sharded_makespan_is_max(self):
        def run(shard: Shard) -> SimReport:
            return SimReport(cycles=100.0 * shard.length, flops=shard.length)

        report = run_sharded(10, run)
        assert report.cycles == 300.0  # largest shard has 3 units
        assert report.flops == 10
        assert report.num_cgs_used == 4

    def test_run_sharded_skips_empty(self):
        calls = []

        def run(shard: Shard) -> SimReport:
            calls.append(shard.cg_id)
            return SimReport(cycles=1.0)

        report = run_sharded(2, run)
        assert calls == [0, 1]
        assert report.num_cgs_used == 2

    def test_run_sharded_zero_extent(self):
        report = run_sharded(0, lambda s: SimReport(cycles=1.0))
        assert report.cycles == 0.0


class TestNoc:
    def test_latency_and_bandwidth(self):
        noc = Noc()
        small = noc.transfer_cycles(64)
        big = noc.transfer_cycles(1 << 20)
        assert small >= Noc.LATENCY_CYCLES
        assert big > small

    def test_hops_scale_latency(self):
        noc = Noc()
        assert noc.transfer_cycles(0, hops=3) == 0.0
        assert noc.transfer_cycles(64, hops=3) > noc.transfer_cycles(64, hops=1)

    def test_validation(self):
        noc = Noc()
        with pytest.raises(ValueError):
            noc.transfer_cycles(-1)
        with pytest.raises(ValueError):
            noc.transfer_cycles(64, hops=0)
