"""Tests for traces and simulation reports."""

import pytest

from repro.machine.config import default_config
from repro.machine.trace import SimReport, Trace, TraceEvent


class TestTrace:
    def test_add_and_iterate(self):
        tr = Trace()
        tr.add("dma", 0, 10, bytes_moved=100)
        tr.add("gemm", 10, 30, flops=500)
        assert len(tr) == 2
        assert [e.kind for e in tr] == ["dma", "gemm"]

    def test_filter_by_kind(self):
        tr = Trace()
        tr.add("dma", 0, 5)
        tr.add("gemm", 5, 9)
        tr.add("dma", 9, 12)
        assert len(tr.events("dma")) == 2
        assert tr.total_cycles("dma") == 8.0

    def test_span(self):
        tr = Trace()
        assert tr.span() == 0.0
        tr.add("dma", 5, 10)
        tr.add("gemm", 8, 30)
        assert tr.span() == 25.0

    def test_event_cycles(self):
        assert TraceEvent("dma", 3, 10).cycles == 7


class TestSimReport:
    def test_seconds_and_gflops(self):
        cfg = default_config()
        rep = SimReport(cycles=cfg.clock_hz, flops=int(1e12))  # 1 simulated second
        assert rep.seconds == pytest.approx(1.0)
        assert rep.gflops == pytest.approx(1000.0)

    def test_efficiency_against_used_cgs(self):
        cfg = default_config()
        # one CG at exactly peak for 1000 cycles
        flops = int(cfg.cg_peak_flops * cfg.cycles_to_seconds(1000))
        rep = SimReport(cycles=1000, flops=flops, num_cgs_used=1)
        assert rep.efficiency == pytest.approx(1.0, rel=1e-6)

    def test_zero_cycle_report(self):
        rep = SimReport(cycles=0.0)
        assert rep.gflops == 0.0
        assert rep.efficiency == 0.0

    def test_speedup(self):
        fast = SimReport(cycles=100.0)
        slow = SimReport(cycles=250.0)
        assert fast.speedup_over(slow) == 2.5
        with pytest.raises(ZeroDivisionError):
            SimReport(cycles=0.0).speedup_over(fast)

    def test_overlap_fraction(self):
        # 100 dma + 100 compute fully overlapped into 100 cycles
        rep = SimReport(cycles=100.0, dma_cycles=100.0, compute_cycles=100.0)
        assert rep.overlap_fraction == pytest.approx(0.5)
        serial = SimReport(cycles=200.0, dma_cycles=100.0, compute_cycles=100.0)
        assert serial.overlap_fraction == 0.0

    def test_from_trace(self):
        tr = Trace()
        tr.add("dma", 0, 10, bytes_moved=100, waste_bytes=20)
        tr.add("gemm", 10, 20, flops=1000)
        rep = SimReport.from_trace(tr)
        assert rep.cycles == 20.0
        assert rep.dma_cycles == 10.0
        assert rep.compute_cycles == 10.0
        assert rep.bytes_moved == 100
        assert rep.waste_bytes == 20
        assert rep.flops == 1000

    def test_from_trace_with_makespan(self):
        tr = Trace()
        tr.add("dma", 0, 10)
        rep = SimReport.from_trace(tr, makespan=50.0)
        assert rep.cycles == 50.0

    def test_merge_parallel(self):
        reps = [
            SimReport(cycles=100, flops=10, dma_cycles=5),
            SimReport(cycles=150, flops=20, dma_cycles=7),
        ]
        merged = SimReport.merge_parallel(reps)
        assert merged.cycles == 150
        assert merged.flops == 30
        assert merged.dma_cycles == 12
        assert merged.num_cgs_used == 2

    def test_merge_serial(self):
        reps = [SimReport(cycles=100, flops=10), SimReport(cycles=50, flops=5)]
        merged = SimReport.merge_serial(reps)
        assert merged.cycles == 150
        assert merged.flops == 15

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            SimReport.merge_parallel([])
        with pytest.raises(ValueError):
            SimReport.merge_serial([])


class TestConfig:
    def test_peak_flops_match_paper(self):
        """4 CGs x 64 CPEs x 8 flops/cycle x 1.5 GHz ~ 3.07 TFLOPS,
        the paper's 3.06 TFLOPS peak."""
        cfg = default_config()
        assert cfg.chip_peak_flops == pytest.approx(3.07e12, rel=0.01)

    def test_cycle_second_roundtrip(self):
        cfg = default_config()
        assert cfg.seconds_to_cycles(cfg.cycles_to_seconds(12345)) == pytest.approx(
            12345
        )

    def test_with_overrides_returns_new_config(self):
        cfg = default_config()
        fast = cfg.with_overrides(clock_hz=3.0e9)
        assert fast.clock_hz == 3.0e9
        assert cfg.clock_hz == 1.5e9

    def test_vector_bytes(self):
        assert default_config().vector_bytes == 16
