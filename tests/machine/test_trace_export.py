"""Tests for trace export (Chrome JSON + text timeline)."""

import json

import numpy as np

from repro.machine.trace import Trace
from repro.machine.trace_export import render_timeline, to_chrome_trace


def sample_trace():
    tr = Trace()
    tr.add("dma", 0, 100, detail="A->spm_a", bytes_moved=1024, waste_bytes=16)
    tr.add("gemm", 100, 300, detail="ac_bc_vecm", flops=4096)
    tr.add("dma", 150, 250, detail="B->spm_b", bytes_moved=2048)
    return tr


class TestChromeTrace:
    def test_valid_json_with_events(self):
        payload = json.loads(to_chrome_trace(sample_trace()))
        events = payload["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        assert all(e["dur"] > 0 for e in xs)

    def test_lanes_and_metadata(self):
        payload = json.loads(to_chrome_trace(sample_trace()))
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["args"]["name"] == "DMA engine" for e in meta)
        gemm = next(e for e in events if e.get("cat") == "gemm")
        assert gemm["args"]["flops"] == 4096
        dma = next(e for e in events if e.get("cat") == "dma")
        assert dma["tid"] != gemm["tid"]

    def test_timestamps_in_microseconds(self):
        payload = json.loads(to_chrome_trace(sample_trace()))
        gemm = next(
            e for e in payload["traceEvents"] if e.get("cat") == "gemm"
        )
        # 200 cycles at 1.5 GHz = 0.1333 us
        assert abs(gemm["dur"] - 200 / 1.5e9 * 1e6) < 1e-6


class TestTimeline:
    def test_lanes_rendered(self):
        text = render_timeline(sample_trace(), width=40)
        lines = text.splitlines()
        assert lines[1].startswith("DMA")
        assert lines[2].startswith("compute")
        assert "#" in lines[1]
        assert "=" in lines[2]

    def test_overlap_visible(self):
        """The second DMA overlaps the gemm: both lanes are busy in the
        same column range."""
        text = render_timeline(sample_trace(), width=60)
        dma_line = text.splitlines()[1]
        comp_line = text.splitlines()[2]
        both = [
            i
            for i, (d, c) in enumerate(zip(dma_line, comp_line))
            if d == "#" and c == "="
        ]
        assert both

    def test_empty_trace(self):
        assert "empty" in render_timeline(Trace())

    def test_real_kernel_trace_exports(self):
        """End-to-end: a compiled kernel's trace exports cleanly."""
        from repro.codegen import compile_candidate
        from repro.codegen.executor import _ExecState
        from repro.dsl import ScheduleSpace
        from repro.ops.gemm import make_compute
        from repro.scheduler import Candidate, lower_strategy

        compute = make_compute(128, 128, 128)
        sp = ScheduleSpace(compute)
        sp.split("M", [64]); sp.split("N", [64]); sp.split("K", [32])
        strat = sp.strategy()
        ck = compile_candidate(
            Candidate(strat, lower_strategy(compute, strat), compute)
        )
        rng = np.random.default_rng(0)
        state = _ExecState(
            ck,
            {
                "A": rng.standard_normal((128, 128)).astype(np.float32),
                "B": rng.standard_normal((128, 128)).astype(np.float32),
            },
        )
        state.execute(ck.kernel.body, {})
        payload = json.loads(to_chrome_trace(state.trace))
        assert len(payload["traceEvents"]) > 10
        text = render_timeline(state.trace)
        assert "#" in text and "=" in text
