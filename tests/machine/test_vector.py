"""Tests for the vector ISA helpers."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.machine import vector as V


class TestBuilders:
    def test_load_vector(self):
        ins = V.load_vector("v0", "ptr")
        assert ins.op == "vldd" and ins.dst == "v0" and ins.srcs == ("ptr",)

    def test_store_vector_has_no_dst(self):
        ins = V.store_vector("v0", "ptr")
        assert ins.op == "vstd" and ins.dst is None
        assert "v0" in ins.srcs

    def test_bcast_vector_axes(self):
        assert V.load_bcast_vector("v", "p", "row").op == "vlddr"
        assert V.load_bcast_vector("v", "p", "col").op == "vlddc"
        with pytest.raises(PipelineError):
            V.load_bcast_vector("v", "p", "diag")

    def test_bcast_scalar_axes(self):
        assert V.load_bcast_scalar("v", "p", "row").op == "vldder"
        assert V.load_bcast_scalar("v", "p", "col").op == "vlddec"
        with pytest.raises(PipelineError):
            V.load_bcast_scalar("v", "p", "x")

    def test_vmad_reads_accumulator(self):
        ins = V.vmad("acc", "a", "b")
        assert ins.dst == "acc"
        assert "acc" in ins.srcs  # RAW on the accumulator itself

    def test_loop_control_is_two_ops(self):
        ctrl = V.loop_control("k")
        assert len(ctrl) == 2
        assert all(i.op == "iop" for i in ctrl)


class TestFunctional:
    def test_f_vmad(self):
        acc = np.ones(4, np.float32)
        a = np.arange(4, dtype=np.float32)
        b = np.full(4, 2.0, np.float32)
        np.testing.assert_allclose(V.f_vmad(acc, a, b), acc + a * b)

    def test_f_vmad_shape_checked(self):
        with pytest.raises(PipelineError):
            V.f_vmad(np.ones(3), np.ones(4), np.ones(4))

    def test_f_extend(self):
        v = V.f_extend(2.5)
        assert v.shape == (4,)
        assert (v == np.float32(2.5)).all()

    def test_f_load_vector(self):
        spm = np.arange(16, dtype=np.float32)
        np.testing.assert_array_equal(V.f_load_vector(spm, 4), [4, 5, 6, 7])

    def test_f_load_vector_bounds(self):
        spm = np.arange(6, dtype=np.float32)
        with pytest.raises(PipelineError):
            V.f_load_vector(spm, 4)  # 4..8 exceeds size 6

    def test_extend_matches_broadcast_semantics(self):
        """vldder == load one element then vmad behaves like scalar*vec."""
        spm = np.array([3.0, 0, 0, 0], np.float32)
        ext = V.f_extend(spm[0])
        vec = np.arange(4, dtype=np.float32)
        np.testing.assert_allclose(
            V.f_vmad(np.zeros(4, np.float32), ext, vec), 3.0 * vec
        )


class TestShapes:
    def test_vectorizable(self):
        assert V.vectorizable(8)
        assert not V.vectorizable(6)
        assert V.vectorizable(0)

    def test_vector_chunks(self):
        assert V.vector_chunks(8) == 2
        assert V.vector_chunks(9) == 3
        assert V.vector_chunks(1) == 1
        assert V.vector_chunks(0) == 0
