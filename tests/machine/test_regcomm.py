"""Tests for the register-communication mesh."""

import numpy as np
import pytest

from repro.errors import RegCommError
from repro.machine.config import default_config
from repro.machine.regcomm import CommPattern, RegCommMesh, gemm_broadcast_plan


def full_grid(value_fn):
    cfg = default_config()
    return [
        [np.array([value_fn(r, c)], dtype=np.float32) for c in range(cfg.cluster_cols)]
        for r in range(cfg.cluster_rows)
    ]


class TestPattern:
    def test_bad_axis(self):
        with pytest.raises(RegCommError):
            CommPattern("diagonal", 0)

    def test_bad_producer(self):
        with pytest.raises(RegCommError):
            CommPattern("row", -1)


class TestFunctionalBroadcast:
    def test_row_broadcast_distributes_producer_column(self):
        mesh = RegCommMesh()
        grid = full_grid(lambda r, c: 10 * r + c)
        out = mesh.broadcast(grid, CommPattern("row", 3))
        for r in range(8):
            for c in range(8):
                assert out[r][c][0] == 10 * r + 3

    def test_col_broadcast_distributes_producer_row(self):
        mesh = RegCommMesh()
        grid = full_grid(lambda r, c: 10 * r + c)
        out = mesh.broadcast(grid, CommPattern("col", 5))
        for r in range(8):
            for c in range(8):
                assert out[r][c][0] == 10 * 5 + c

    def test_received_values_are_copies(self):
        mesh = RegCommMesh()
        grid = full_grid(lambda r, c: 1.0)
        out = mesh.broadcast(grid, CommPattern("row", 0))
        out[0][1][0] = 99.0
        assert grid[0][0][0] == 1.0

    def test_missing_producer_data_rejected(self):
        mesh = RegCommMesh()
        grid = full_grid(lambda r, c: 0.0)
        grid[2][3] = None
        with pytest.raises(RegCommError):
            mesh.broadcast(grid, CommPattern("row", 3))

    def test_wrong_grid_shape_rejected(self):
        mesh = RegCommMesh()
        with pytest.raises(RegCommError):
            mesh.broadcast([[np.zeros(1)] * 8] * 7, CommPattern("row", 0))

    def test_producer_out_of_range(self):
        mesh = RegCommMesh()
        grid = full_grid(lambda r, c: 0.0)
        with pytest.raises(RegCommError):
            mesh.broadcast(grid, CommPattern("row", 8))
        with pytest.raises(RegCommError):
            mesh.broadcast(grid, CommPattern("col", 8))


class TestTiming:
    def test_first_burst_pays_switch_and_latency(self):
        cfg = default_config()
        mesh = RegCommMesh()
        cycles = mesh.burst_cycles(32, CommPattern("row", 0))
        expected = (
            32 / cfg.regcomm_bytes_per_cycle
            + cfg.regcomm_switch_cycles
            + cfg.regcomm_latency_cycles
        )
        assert cycles == pytest.approx(expected)

    def test_repeated_pattern_is_pipelined(self):
        cfg = default_config()
        mesh = RegCommMesh()
        mesh.burst_cycles(32, CommPattern("row", 0))
        cycles = mesh.burst_cycles(32, CommPattern("row", 0))
        assert cycles == pytest.approx(32 / cfg.regcomm_bytes_per_cycle)
        assert mesh.switches == 1

    def test_pattern_change_pays_switch_again(self):
        mesh = RegCommMesh()
        mesh.burst_cycles(32, CommPattern("row", 0))
        mesh.burst_cycles(32, CommPattern("col", 0))
        mesh.burst_cycles(32, CommPattern("row", 1))
        assert mesh.switches == 3

    def test_negative_payload_rejected(self):
        with pytest.raises(RegCommError):
            RegCommMesh().burst_cycles(-1, CommPattern("row", 0))

    def test_reset(self):
        mesh = RegCommMesh()
        mesh.burst_cycles(64, CommPattern("row", 0))
        mesh.reset()
        assert mesh.cycles_used == 0.0
        assert mesh.bytes_moved == 0

    def test_aggregate_bandwidth_magnitude(self):
        """Steady-state aggregate bandwidth lands in the multi-hundred
        GB/s range the paper cites (647 GB/s per cluster)."""
        cfg = default_config()
        mesh = RegCommMesh()
        pattern = CommPattern("row", 0)
        for _ in range(10_000):
            mesh.burst_cycles(32, pattern)
        bw = mesh.aggregate_bandwidth(mesh.cycles_used)
        assert 2e11 < bw < 2e13  # hundreds of GB/s aggregated over 64 CPEs

    def test_zero_elapsed_bandwidth(self):
        assert RegCommMesh().aggregate_bandwidth(0.0) == 0.0


class TestBroadcastPlan:
    def test_plan_alternates_axes(self):
        plan = gemm_broadcast_plan(4)
        assert [p.axis for p in plan] == ["row", "col"] * 4

    def test_plan_rotates_producers(self):
        plan = gemm_broadcast_plan(10)
        rows = [p.producer for p in plan if p.axis == "row"]
        assert rows == [k % 8 for k in range(10)]
