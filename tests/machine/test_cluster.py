"""Tests for the CPE, the cluster, and the faithful distributed GEMM."""

import numpy as np
import pytest

from repro.errors import SpmCapacityError
from repro.machine.cluster import CpeCluster, split_tiles
from repro.machine.config import default_config
from repro.machine.cpe import Cpe
from repro.machine.dma import MEM_TO_SPM, SPM_TO_MEM, cg_tile_descriptors
from repro.machine.memory import MainMemory


class TestCpe:
    def test_spm_roundtrip(self):
        cpe = Cpe(2, 3)
        cpe.spm_write(100, np.arange(8, dtype=np.float32))
        np.testing.assert_array_equal(
            cpe.spm_read(100, 8), np.arange(8, dtype=np.float32)
        )

    def test_spm_capacity_is_64kb(self):
        cpe = Cpe(0, 0)
        assert cpe.spm_elems == 64 * 1024 // 4

    def test_out_of_spm_rejected(self):
        cpe = Cpe(0, 0)
        with pytest.raises(SpmCapacityError):
            cpe.spm_write(cpe.spm_elems - 2, np.zeros(4, np.float32))
        with pytest.raises(SpmCapacityError):
            cpe.spm_read(-1, 2)

    def test_cpe_id(self):
        assert Cpe(0, 0).cpe_id == 0
        assert Cpe(1, 0).cpe_id == 8
        assert Cpe(7, 7).cpe_id == 63

    def test_position_validated(self):
        with pytest.raises(ValueError):
            Cpe(8, 0)
        with pytest.raises(ValueError):
            Cpe(0, -1)

    def test_spm_view_aliases(self):
        cpe = Cpe(0, 0)
        view = cpe.spm_view(0, 4)
        view[0] = 7.0
        assert cpe.spm_read(0, 1)[0] == 7.0

    def test_spm_clear(self):
        cpe = Cpe(0, 0)
        cpe.spm_write(0, np.ones(4, np.float32))
        cpe.spm_clear()
        assert (cpe.spm_read(0, 4) == 0).all()


class TestClusterDma:
    def test_dma_in_distributes_tiles(self):
        """A 16x16 matrix DMA'd 8x8: CPE (r,c) receives its 2x2 block."""
        mem = MainMemory(1 << 20)
        cluster = CpeCluster(mem)
        buf = mem.alloc("a", (16, 16))
        data = np.arange(256, dtype=np.float32).reshape(16, 16)
        mem.write(buf, data)
        descs = cg_tile_descriptors(
            buf.addr, 16, 16, 16 * 4, 4, MEM_TO_SPM, grid_rows=8, grid_cols=8
        )
        cluster.dma_in(descs, spm_offset=0)
        for rid in range(8):
            for cid in range(8):
                got = cluster.cpe(rid, cid).spm_read(0, 4).reshape(2, 2)
                np.testing.assert_array_equal(
                    got, data[2 * rid : 2 * rid + 2, 2 * cid : 2 * cid + 2]
                )

    def test_dma_roundtrip_through_spm(self):
        mem = MainMemory(1 << 20)
        cluster = CpeCluster(mem)
        src = mem.alloc("src", (16, 16))
        dst = mem.alloc("dst", (16, 16))
        data = np.random.default_rng(0).random((16, 16)).astype(np.float32)
        mem.write(src, data)
        in_descs = cg_tile_descriptors(
            src.addr, 16, 16, 64, 4, MEM_TO_SPM, grid_rows=8, grid_cols=8
        )
        out_descs = cg_tile_descriptors(
            dst.addr, 16, 16, 64, 4, SPM_TO_MEM, grid_rows=8, grid_cols=8
        )
        cluster.dma_in(in_descs, spm_offset=0)
        cluster.dma_out(out_descs, spm_offset=0)
        np.testing.assert_array_equal(mem.read(dst), data)


class TestSplitTiles:
    def test_split_matches_partition(self):
        mat = np.arange(64 * 32, dtype=np.float32).reshape(64, 32)
        tiles = split_tiles(mat, 8, 8)
        assert len(tiles) == 64
        np.testing.assert_array_equal(tiles[0], mat[:8, :4])
        np.testing.assert_array_equal(tiles[63], mat[56:, 28:])

    def test_reassembly(self):
        mat = np.random.default_rng(1).random((20, 12)).astype(np.float32)
        tiles = split_tiles(mat, 8, 8)
        rows = []
        for r in range(8):
            row = [tiles[r * 8 + c] for c in range(8) if tiles[r * 8 + c].size]
            if row and row[0].shape[0]:
                rows.append(np.concatenate(row, axis=1))
        np.testing.assert_array_equal(np.concatenate(rows, axis=0), mat)


class TestDistributedGemm:
    @pytest.mark.parametrize("m,n,k", [(16, 16, 16), (8, 24, 32), (64, 64, 64)])
    def test_matches_numpy(self, m, n, k):
        rng = np.random.default_rng(42)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        cluster = CpeCluster()
        c = cluster.distributed_gemm(
            split_tiles(a, 8, 8), split_tiles(b, 8, 8), m, n, k
        )
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-4)

    def test_ragged_shapes(self):
        """Extents not divisible by 8 still assemble correctly."""
        rng = np.random.default_rng(7)
        m, n, k = 13, 21, 17
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        cluster = CpeCluster()
        c = cluster.distributed_gemm(
            split_tiles(a, 8, 8), split_tiles(b, 8, 8), m, n, k
        )
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-4)

    def test_mesh_pattern_switches_recorded(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((16, 16)).astype(np.float32)
        b = rng.standard_normal((16, 16)).astype(np.float32)
        cluster = CpeCluster()
        cluster.distributed_gemm(split_tiles(a, 8, 8), split_tiles(b, 8, 8), 16, 16, 16)
        # broadcast() is functional-only; pattern accounting is exercised
        # through burst_cycles in the timing path -- here we just confirm
        # the mesh object is wired into the cluster.
        assert cluster.mesh is not None
