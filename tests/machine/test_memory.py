"""Tests for the byte-addressed main-memory model."""

import numpy as np
import pytest

from repro.errors import MainMemoryError
from repro.machine.config import default_config
from repro.machine.memory import Buffer, MainMemory, transaction_bytes


def test_deprecated_alias_still_catches():
    from repro import errors

    assert errors.MemoryError_ is MainMemoryError
    with pytest.raises(errors.MemoryError_):
        MainMemory(1 << 10).alloc("a", (0,))


class TestAllocation:
    def test_alloc_returns_aligned_address(self):
        mem = MainMemory(1 << 20)
        buf = mem.alloc("a", (3, 5))
        assert buf.addr % default_config().mem_align == 0
        assert buf.shape == (3, 5)
        assert buf.nbytes == 3 * 5 * 4

    def test_successive_allocs_do_not_overlap(self):
        mem = MainMemory(1 << 20)
        a = mem.alloc("a", (100,))
        b = mem.alloc("b", (100,))
        assert b.addr >= a.addr + a.nbytes

    def test_custom_alignment(self):
        mem = MainMemory(1 << 20)
        mem.alloc("pad", (3,), align=4)  # push cursor off 128
        b = mem.alloc("b", (4,), align=4)
        assert b.addr % 4 == 0

    def test_duplicate_name_rejected(self):
        mem = MainMemory(1 << 20)
        mem.alloc("a", (4,))
        with pytest.raises(MainMemoryError):
            mem.alloc("a", (4,))

    def test_zero_extent_rejected(self):
        mem = MainMemory(1 << 20)
        with pytest.raises(MainMemoryError):
            mem.alloc("a", (0, 4))

    def test_out_of_capacity(self):
        mem = MainMemory(1024)
        with pytest.raises(MainMemoryError):
            mem.alloc("big", (1024,))  # 4 KiB > 1 KiB

    def test_lookup(self):
        mem = MainMemory(1 << 20)
        buf = mem.alloc("x", (2, 2))
        assert mem.buffer("x") is buf
        assert "x" in mem
        with pytest.raises(MainMemoryError):
            mem.buffer("y")


class TestFunctionalAccess:
    def test_write_read_roundtrip(self):
        mem = MainMemory(1 << 20)
        buf = mem.alloc("a", (4, 6))
        data = np.arange(24, dtype=np.float32).reshape(4, 6)
        mem.write(buf, data)
        np.testing.assert_array_equal(mem.read(buf), data)

    def test_view_is_zero_copy(self):
        mem = MainMemory(1 << 20)
        buf = mem.alloc("a", (8,))
        view = mem.view(buf)
        view[3] = 42.0
        assert mem.read(buf)[3] == 42.0

    def test_shape_mismatch_rejected(self):
        mem = MainMemory(1 << 20)
        buf = mem.alloc("a", (4,))
        with pytest.raises(MainMemoryError):
            mem.write(buf, np.zeros((5,), np.float32))

    def test_raw_bytes_roundtrip(self):
        mem = MainMemory(4096)
        payload = np.arange(16, dtype=np.uint8)
        mem.write_bytes(100, payload)
        np.testing.assert_array_equal(mem.read_bytes(100, 16), payload)

    def test_raw_bounds_checked(self):
        mem = MainMemory(256)
        with pytest.raises(MainMemoryError):
            mem.read_bytes(250, 16)
        with pytest.raises(MainMemoryError):
            mem.read_bytes(-1, 4)


class TestBufferAddressing:
    def test_elem_addr_row_major(self):
        buf = Buffer("a", 1000, (3, 4), np.dtype(np.float32))
        assert buf.elem_addr((0, 0)) == 1000
        assert buf.elem_addr((0, 1)) == 1004
        assert buf.elem_addr((1, 0)) == 1000 + 4 * 4
        assert buf.elem_addr((2, 3)) == 1000 + (2 * 4 + 3) * 4

    def test_elem_addr_bounds(self):
        buf = Buffer("a", 0, (2, 2), np.dtype(np.float32))
        with pytest.raises(MainMemoryError):
            buf.elem_addr((2, 0))
        with pytest.raises(MainMemoryError):
            buf.elem_addr((0, 0, 0))

    def test_strides(self):
        buf = Buffer("a", 0, (2, 3, 5), np.dtype(np.float32))
        assert buf.strides_elems == (15, 5, 1)


class TestTransactionModel:
    def test_aligned_exact(self):
        paid, waste = transaction_bytes(0, 256, 128)
        assert paid == 256 and waste == 0

    def test_unaligned_start(self):
        paid, waste = transaction_bytes(64, 128, 128)
        assert paid == 256 and waste == 128

    def test_tiny_access_pays_full_transaction(self):
        paid, waste = transaction_bytes(4, 1, 128)
        assert paid == 128 and waste == 127

    def test_zero_size(self):
        assert transaction_bytes(4, 0, 128) == (0, 0)

    def test_waste_never_negative_and_bounded(self):
        for addr in range(0, 300, 7):
            for n in range(1, 300, 11):
                paid, waste = transaction_bytes(addr, n, 128)
                assert paid >= n
                assert 0 <= waste < 2 * 128
