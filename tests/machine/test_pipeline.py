"""Tests for the dual-issue in-order pipeline scheduler."""

import pytest

from repro.errors import PipelineError
from repro.machine.config import default_config
from repro.machine.pipeline import Instr, schedule, steady_state_cycles
from repro.machine import vector as V


def test_single_instruction():
    res = schedule([Instr.make("vmad", "v0", "a", "b", "v0")])
    assert res.cycles == 1
    assert res.records[0].pipe == "p0"


def test_unknown_op_rejected():
    with pytest.raises(PipelineError):
        schedule([Instr.make("bogus", "x")])


def test_independent_ops_dual_issue():
    """A vmad (P0) and a vldd (P1) with no deps issue in the same cycle."""
    res = schedule(
        [
            Instr.make("vmad", "v0", "a", "b", "v0"),
            Instr.make("vldd", "v1", "ptr"),
        ]
    )
    assert res.records[0].cycle == res.records[1].cycle == 0
    assert res.cycles == 1


def test_same_pipe_serializes():
    res = schedule(
        [
            Instr.make("vmad", "v0", "a", "b", "v0"),
            Instr.make("vmad", "v1", "a", "b", "v1"),
        ]
    )
    assert res.records[1].cycle == 1


def test_raw_hazard_stalls_for_latency():
    cfg = default_config()
    res = schedule(
        [
            Instr.make("vmad", "v0", "a", "b", "v0"),
            Instr.make("vmad", "v1", "v0", "b", "v1"),  # consumes v0
        ]
    )
    assert res.records[1].cycle == cfg.latencies["vmad"]


def test_in_order_issue_blocks_younger_instrs():
    """A stalled instruction must delay later ones even on the other pipe."""
    cfg = default_config()
    res = schedule(
        [
            Instr.make("vldd", "v0", "ptr"),
            Instr.make("vmad", "v1", "v0", "b", "v1"),  # waits for the load
            Instr.make("vldd", "v2", "ptr2"),  # independent, but in-order
        ]
    )
    stall_until = cfg.latencies["vldd"]
    assert res.records[1].cycle == stall_until
    assert res.records[2].cycle >= stall_until


def test_any_pipe_op_fills_free_slot():
    res = schedule(
        [
            Instr.make("vmad", "v0", "a", "b", "v0"),  # p0, cycle 0
            Instr.make("iop", "i0"),  # should take p1, cycle 0
        ]
    )
    assert res.records[1].cycle == 0
    assert res.records[1].pipe == "p1"


def test_initial_ready_delays_consumers():
    res = schedule(
        [Instr.make("vmad", "v1", "x", "b", "v1")],
        initial_ready={"x": 5},
    )
    assert res.records[0].cycle == 5


def test_hazard_free_accumulators_reach_one_vmad_per_cycle():
    """16 vmads on 16 distinct accumulators = 16 cycles (Appendix 9)."""
    instrs = [V.vmad(f"c{i}", "a0", "b0") for i in range(16)]
    res = schedule(instrs)
    assert res.cycles == 16
    assert res.stalls() == 0


def test_single_accumulator_is_latency_bound():
    """Repeated vmad on ONE register stalls at the 7-cycle vmad latency --
    the hazard the 4x4 register blocking exists to avoid."""
    cfg = default_config()
    instrs = [V.vmad("c0", "a0", "b0") for _ in range(4)]
    res = schedule(instrs)
    assert res.cycles == 1 + 3 * cfg.latencies["vmad"]


def test_naive_loop_ordering_exposes_load_latency():
    """Loads at the top of the body cannot hide their latency under
    in-order issue: each iteration pays the broadcast-load latency on
    top of the 16 vmads.  This is the hazard hand schedulers remove."""
    body = [
        V.load_bcast_vector("a0", "a_ptr", "row"),
        V.load_bcast_vector("b0", "b_ptr", "col"),
    ] + [V.vmad(f"c{i}", "a0", "b0") for i in range(16)]
    assert steady_state_cycles(body) > 16


def test_software_pipelined_microkernel_reaches_16_cycles():
    """The hand-scheduled form (Appendix 9): loads for the *next*
    k-step are interleaved among the current step's vmads using a
    rotated register set, so steady state is 16 vmads / 16 cycles per
    k-step (32 cycles for the 2-step body)."""
    def step(cur: str, nxt: str):
        instrs = [V.vmad(f"c{i}", f"a{cur}", f"b{cur}") for i in range(16)]
        # interleave next-step loads early in the vmad stream
        instrs.insert(1, V.load_bcast_vector(f"a{nxt}", "a_ptr", "row"))
        instrs.insert(3, V.load_bcast_vector(f"b{nxt}", "b_ptr", "col"))
        return instrs

    body = step("0", "1") + step("1", "0")
    assert steady_state_cycles(body) == 32  # = 16 per k-step


def test_steady_state_memory_bound_loop():
    """A loop issuing more P1 loads than P0 work is P1-bound."""
    body = [V.load_vector(f"v{i}", "p") for i in range(8)] + [
        V.vmad("c0", "v0", "v1")
    ]
    assert steady_state_cycles(body) == 8


def test_steady_state_empty_body():
    assert steady_state_cycles([]) == 0


def test_steady_state_validates_iters():
    with pytest.raises(PipelineError):
        steady_state_cycles([V.vmad("c0", "a", "b")], warmup_iters=0)


def test_ipc_and_records():
    instrs = [V.vmad(f"c{i}", "a", "b") for i in range(4)]
    res = schedule(instrs)
    assert res.ipc == pytest.approx(1.0)
    assert res.issue_cycle(2) == 2
