"""Property-based differential validation: any legal in-space schedule
of any operator family must produce outputs the NumPy reference agrees
with (bit-tolerantly), for GEMM and every convolution method."""

import functools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import CandidatePipeline, validate_candidate
from repro.ops import conv_explicit, conv_implicit, conv_winograd
from repro.ops.conv_common import ConvParams
from repro.ops.gemm import make_compute as gemm_compute
from repro.ops.gemm import make_space as gemm_space

MAX_CANDIDATES = 8


@functools.lru_cache(maxsize=None)
def candidates_for(kind: str):
    """A small pool of legal optimized candidates per operator family
    (cached: the pool is deterministic, hypothesis only picks from it)."""
    if kind == "gemm":
        compute = gemm_compute(48, 40, 56)
        space = gemm_space(compute, quick=True)
    elif kind == "implicit":
        params = ConvParams(batch=2, ni=8, no=8, ri=10, ci=10)
        compute = conv_implicit.make_compute(params)
        space = conv_implicit.make_space(params, quick=True)
    elif kind == "explicit":
        params = ConvParams(batch=1, ni=4, no=8, ri=8, ci=8)
        compute = conv_explicit.make_compute(params)
        space = conv_explicit.make_space(params, quick=True)
    elif kind == "winograd":
        params = ConvParams(batch=1, ni=8, no=8, ri=10, ci=10)
        compute = conv_winograd.make_compute(params)
        space = conv_winograd.make_space(params, quick=True)
    else:  # pragma: no cover - exhaustive kinds above
        raise ValueError(kind)
    pipeline = CandidatePipeline(compute, space)
    pool = list(pipeline.candidates(limit=MAX_CANDIDATES))
    assert pool, f"no legal candidates for {kind}"
    return pool


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kind=st.sampled_from(["gemm", "implicit", "explicit", "winograd"]),
    index=st.integers(min_value=0, max_value=MAX_CANDIDATES - 1),
    seed=st.integers(min_value=0, max_value=3),
)
def test_in_space_strategies_match_reference(kind, index, seed):
    pool = candidates_for(kind)
    candidate = pool[index % len(pool)]
    report = validate_candidate(candidate, seed=seed)
    assert report.max_abs_err <= report.atol + report.rtol
    assert report.cycles > 0
    assert report.tensors
