"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import AffineExpr
from repro.machine.memory import transaction_bytes
from repro.machine.spm import partition_extent
from repro.optimizer.boundary import pad_tensor, pad_up, unpad_tensor
from repro.optimizer.dma_inference import flatten_access
from repro.scheduler.transforms import fuse_extents, split_extent

small_ints = st.integers(min_value=1, max_value=512)


class TestPartitionProperties:
    @given(extent=st.integers(1, 4096), parts=st.integers(1, 64))
    def test_partition_is_exact_cover(self, extent, parts):
        chunks = partition_extent(extent, parts)
        assert len(chunks) == parts
        pos = 0
        for start, length in chunks:
            assert start == pos
            assert length >= 0
            pos += length
        assert pos == extent

    @given(extent=st.integers(1, 4096), parts=st.integers(1, 64))
    def test_partition_is_balanced(self, extent, parts):
        lengths = [l for _, l in partition_extent(extent, parts)]
        assert max(lengths) - min(lengths) <= 1


class TestSplitProperties:
    @given(extent=small_ints, factor=small_ints)
    def test_split_conserves_iterations(self, extent, factor):
        factor = min(factor, extent)
        r = split_extent(extent, factor)
        assert r.full_trips * r.factor + r.tail == extent
        assert 0 <= r.tail < r.factor

    @given(outer=st.integers(1, 64), inner=st.integers(1, 64))
    def test_fuse_then_split_roundtrip(self, outer, inner):
        fused = fuse_extents(outer, inner)
        r = split_extent(fused, inner)
        assert r.full_trips == outer and r.tail == 0


class TestTransactionProperties:
    @given(addr=st.integers(0, 1 << 20), nbytes=st.integers(0, 1 << 16))
    def test_paid_covers_payload(self, addr, nbytes):
        paid, waste = transaction_bytes(addr, nbytes, 128)
        assert paid >= nbytes
        assert waste == paid - nbytes
        assert paid % 128 == 0

    @given(addr=st.integers(0, 1 << 20), nbytes=st.integers(1, 1 << 16))
    def test_aligned_access_is_optimal(self, addr, nbytes):
        aligned_addr = (addr // 128) * 128
        aligned_bytes = -(-nbytes // 128) * 128
        paid, _ = transaction_bytes(aligned_addr, aligned_bytes, 128)
        assert paid == aligned_bytes


class TestAffineProperties:
    @given(
        c1=st.integers(-100, 100),
        c2=st.integers(-100, 100),
        x=st.integers(-50, 50),
        y=st.integers(-50, 50),
    )
    def test_addition_homomorphism(self, c1, c2, x, y):
        e1 = AffineExpr.var("i") * c1 + 3
        e2 = AffineExpr.var("j") * c2 - 7
        env = {"i": x, "j": y}
        assert (e1 + e2).evaluate(env) == e1.evaluate(env) + e2.evaluate(env)

    @given(scale=st.integers(-20, 20), x=st.integers(-50, 50))
    def test_scaling_homomorphism(self, scale, x):
        e = AffineExpr.var("i") + 5
        assert (e * scale).evaluate({"i": x}) == scale * e.evaluate({"i": x})

    @given(x=st.integers(0, 100), sub=st.integers(0, 100))
    def test_substitution_equals_evaluation(self, x, sub):
        e = AffineExpr.var("i") * 3 + AffineExpr.var("j")
        partial = e.substitute({"i": sub})
        assert partial.evaluate({"j": x}) == e.evaluate({"i": sub, "j": x})


class TestFlattenProperties:
    @given(
        shape=st.lists(st.integers(1, 12), min_size=1, max_size=4),
        data=st.data(),
    )
    def test_flatten_conserves_elements(self, shape, data):
        lengths = tuple(
            data.draw(st.integers(1, s), label=f"len{i}")
            for i, s in enumerate(shape)
        )
        flat = flatten_access(lengths, tuple(shape))
        assert flat.elems == int(np.prod(lengths))

    @given(
        shape=st.lists(st.integers(1, 10), min_size=1, max_size=3),
        data=st.data(),
    )
    def test_chunk_offsets_are_disjoint(self, shape, data):
        lengths = tuple(
            data.draw(st.integers(1, s), label=f"len{i}")
            for i, s in enumerate(shape)
        )
        flat = flatten_access(lengths, tuple(shape))
        offs = flat.chunk_offsets()
        assert len(set(offs.tolist())) == len(offs)
        # chunks never overlap: consecutive sorted offsets differ by at
        # least the chunk size
        s = np.sort(offs)
        if len(s) > 1:
            assert int(np.min(np.diff(s))) >= flat.chunk_elems


class TestPaddingProperties:
    @given(extent=st.integers(1, 10_000), multiple=st.integers(1, 512))
    def test_pad_up_properties(self, extent, multiple):
        p = pad_up(extent, multiple)
        assert p >= extent
        assert p % multiple == 0
        assert p - extent < multiple

    @given(
        rows=st.integers(1, 16),
        cols=st.integers(1, 16),
        pr=st.integers(0, 8),
        pc=st.integers(0, 8),
    )
    def test_pad_unpad_roundtrip(self, rows, cols, pr, pc):
        rng = np.random.default_rng(0)
        x = rng.random((rows, cols)).astype(np.float32)
        p = pad_tensor(x, (rows + pr, cols + pc))
        np.testing.assert_array_equal(unpad_tensor(p, (rows, cols)), x)
        # padding adds only zeros (float32 summation order may differ)
        np.testing.assert_allclose(
            np.abs(p).sum(dtype=np.float64), np.abs(x).sum(dtype=np.float64)
        )
