"""Property-based tests on the end-to-end GEMM pipeline: any legal
schedule must compute the exact product, and timing must be positive
and deterministic."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen import compile_candidate
from repro.dsl import ScheduleSpace
from repro.errors import IllegalCandidateError
from repro.ops.gemm import make_compute
from repro.scheduler import Candidate, lower_strategy

dims = st.integers(min_value=5, max_value=96)
tiles = st.integers(min_value=4, max_value=64)


@st.composite
def gemm_case(draw):
    m, n, k = draw(dims), draw(dims), draw(dims)
    tm = min(draw(tiles), m)
    tn = min(draw(tiles), n)
    tk = min(draw(tiles), k)
    vec = draw(st.sampled_from(["M", "N"]))
    a_layout = draw(st.sampled_from(["row_major", "col_major"]))
    b_layout = draw(st.sampled_from(["row_major", "col_major"]))
    return (m, n, k, tm, tn, tk, vec, a_layout, b_layout)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=gemm_case())
def test_any_legal_schedule_is_exact(case):
    m, n, k, tm, tn, tk, vec, a_layout, b_layout = case
    compute = make_compute(m, n, k)
    sp = ScheduleSpace(compute)
    sp.split("M", [tm])
    sp.split("N", [tn])
    sp.split("K", [tk])
    sp.vectorize([vec])
    sp.spm_layout("a", [a_layout])
    sp.spm_layout("b", [b_layout])
    strat = sp.strategy()
    try:
        kernel = lower_strategy(compute, strat)
    except IllegalCandidateError:
        return  # pruned: nothing to check
    ck = compile_candidate(Candidate(strat, kernel, compute))
    rng = np.random.default_rng(hash(case) % (2**32))
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    res = ck.run({"A": a, "B": b})
    np.testing.assert_allclose(
        res.outputs["C"], a @ b, rtol=1e-3, atol=1e-2
    )
    assert res.report.cycles > 0
    # determinism
    again = ck.run({"A": a, "B": b}).report.cycles
    assert again == res.report.cycles
