"""Tests for the operator runner: sharding, correctness, comparisons."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.harness.runner import (
    OperatorRun,
    clip_strategy,
    run_conv_explicit,
    run_conv_implicit,
    run_conv_winograd,
    run_gemm,
    shard_conv,
)
from repro.ops.conv_common import ConvParams
from repro.ops.direct import conv2d_reference
from repro.ops.gemm import make_compute


@pytest.fixture(scope="module")
def conv_case():
    params = ConvParams(batch=8, ni=16, no=16, ri=8, ci=8, kr=3, kc=3, pad=1)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(params.input_shape).astype(np.float32)
    w = rng.standard_normal(params.weight_shape).astype(np.float32)
    return params, x, w, conv2d_reference(x, w, params)


class TestSharding:
    def test_batch_sharding(self):
        p = ConvParams(batch=8, ni=8, no=8, ri=8, ci=8, pad=1)
        shards = shard_conv(p)
        assert len(shards) == 4
        assert all(s.params.batch == 2 for s in shards)
        assert [s.batch for s in shards] == [(0, 2), (2, 2), (4, 2), (6, 2)]

    def test_row_sharding_for_small_batch(self):
        p = ConvParams(batch=1, ni=8, no=8, ri=16, ci=16, pad=1)
        shards = shard_conv(p)
        assert len(shards) == 4
        assert all(s.batch == (0, 1) for s in shards)
        assert sum(s.rows[1] for s in shards) == p.ro
        # each shard's input window covers its rows + halo
        for s in shards:
            assert s.params.ri == s.rows[1] + p.kr - 1

    def test_row_sharding_alignment(self):
        p = ConvParams(batch=1, ni=8, no=8, ri=10, ci=10, pad=1)
        shards = shard_conv(p, row_align=2)
        for s in shards:
            assert s.rows[0] % 2 == 0

    def test_shard_params_have_no_pad(self):
        p = ConvParams(batch=8, ni=8, no=8, ri=8, ci=8, pad=1)
        for s in shard_conv(p):
            assert s.params.pad == 0
            assert s.params.ri == p.padded_ri


class TestClipStrategy:
    def test_tiles_clipped(self):
        from repro.dsl.schedule import ScheduleStrategy

        cd = make_compute(32, 32, 32)
        s = ScheduleStrategy({"tile:M": 128, "tile:N": 16, "order": ("M", "N", "K")})
        c = clip_strategy(s, cd)
        assert c.tile("M") == 32
        assert c.tile("N") == 16


class TestGemmRunner:
    def test_swatop_correct(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((96, 64)).astype(np.float32)
        b = rng.standard_normal((64, 80)).astype(np.float32)
        run = run_gemm(a, b, library="swatop", quick=True)
        np.testing.assert_allclose(run.output, a @ b, rtol=1e-4, atol=1e-3)
        assert run.tuning is not None

    def test_xmath_correct(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((96, 64)).astype(np.float32)
        b = rng.standard_normal((64, 80)).astype(np.float32)
        run = run_gemm(a, b, library="xmath")
        np.testing.assert_allclose(run.output, a @ b, rtol=1e-4, atol=1e-3)

    def test_unknown_library(self):
        with pytest.raises(WorkloadError):
            run_gemm(np.zeros((4, 4)), np.zeros((4, 4)), library="mkl")


class TestConvRunners:
    def test_implicit_swatop(self, conv_case):
        params, x, w, ref = conv_case
        run = run_conv_implicit(params, x, w, library="swatop", quick=True)
        np.testing.assert_allclose(run.output, ref, rtol=1e-3, atol=1e-2)
        assert run.report.num_cgs_used == 4

    def test_winograd_both_libraries(self, conv_case):
        params, x, w, ref = conv_case
        for lib in ("swatop", "manual"):
            run = run_conv_winograd(params, x, w, library=lib, quick=True)
            np.testing.assert_allclose(run.output, ref, rtol=1e-3, atol=1e-2)

    def test_explicit_both_libraries(self, conv_case):
        params, x, w, ref = conv_case
        for lib in ("swatop", "manual"):
            run = run_conv_explicit(params, x, w, library=lib, quick=True)
            np.testing.assert_allclose(run.output, ref, rtol=1e-3, atol=1e-2)

    def test_batch_one_row_sharding_correct(self):
        params = ConvParams(batch=1, ni=16, no=16, ri=12, ci=12, kr=3, kc=3, pad=1)
        rng = np.random.default_rng(3)
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        ref = conv2d_reference(x, w, params)
        for runner in (run_conv_implicit, run_conv_winograd, run_conv_explicit):
            run = runner(params, x, w, library="swatop", quick=True)
            np.testing.assert_allclose(run.output, ref, rtol=1e-3, atol=1e-2)

    def test_collect_output_false_skips_assembly(self, conv_case):
        params, x, w, _ = conv_case
        run = run_conv_implicit(
            params, x, w, library="swatop", quick=True, collect_output=False
        )
        assert run.output is None
        assert run.cycles > 0

    def test_swdnn_rejects_small_batch(self, conv_case):
        params, x, w, _ = conv_case
        with pytest.raises(WorkloadError):
            run_conv_implicit(params, x, w, library="swdnn")

    def test_blackbox_tuner_path(self, conv_case):
        params, x, w, ref = conv_case
        run = run_conv_implicit(
            params, x, w, library="swatop", tuner="blackbox",
            quick=True, blackbox_limit=5,
        )
        np.testing.assert_allclose(run.output, ref, rtol=1e-3, atol=1e-2)
        assert run.tuning.method == "blackbox"
