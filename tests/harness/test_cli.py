"""Tests for the ``python -m repro`` command-line interface."""

import pytest

import repro.__main__ as cli
from repro.harness.scales import Scale

TINY = Scale(
    name="tiny", spatial_scale=16, gemm_scale=16, batches=(32,),
    max_layers=1, max_configs=1, quick=True, blackbox_limit=4,
    max_flops=1e9,
)


class TestTables:
    def test_every_experiment_is_dispatchable(self):
        for name in cli.EXPERIMENTS:
            gen = cli._tables(name, TINY)
            assert gen is not None

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            list(cli._tables("fig99", TINY))

    def test_fig10_renders(self, capsys):
        rc = cli.main(["fig10", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 10" in out
        assert "paper:" in out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["fig5", "--scale", "enormous"])

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_dump_ir_prints_passes_to_stderr(self, capsys):
        from repro.passes import set_dump_ir

        try:
            rc = cli.main(["fig10", "--scale", "smoke", "--dump-ir"])
            assert rc == 0
            captured = capsys.readouterr()
            assert "IR after pass" in captured.err
            assert "IR after pass" not in captured.out
        finally:
            set_dump_ir(None)

    def test_dump_ir_filters_to_named_pass(self, capsys):
        from repro.passes import set_dump_ir

        try:
            rc = cli.main(["fig10", "--scale", "smoke", "--dump-ir", "prefetch"])
            assert rc == 0
            err = capsys.readouterr().err
            assert "IR after pass 'prefetch'" in err
            assert "build-loop-nest" not in err
        finally:
            set_dump_ir(None)

    def test_workers_flag_sets_process_default(self, capsys):
        from repro.engine import default_workers, set_default_workers

        before = default_workers()
        try:
            rc = cli.main(["fig10", "--scale", "smoke", "--workers", "2"])
            assert rc == 0
            assert default_workers() == 2
        finally:
            set_default_workers(before)
