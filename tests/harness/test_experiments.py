"""Smoke tests for the experiment drivers (tiny custom scale)."""

import pytest

from repro.harness import experiments as E
from repro.harness.report import Table, speedup_summary
from repro.harness.scales import SCALES, Scale, get_scale
from repro.errors import WorkloadError

TINY = Scale(
    name="tiny",
    spatial_scale=16,
    gemm_scale=16,
    batches=(1, 32),
    max_layers=1,
    max_configs=2,
    quick=True,
    blackbox_limit=6,
    max_flops=2e9,
)


class TestScales:
    def test_known_scales(self):
        for name in ("smoke", "default", "full"):
            assert get_scale(name).name == name

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_unknown_scale(self):
        with pytest.raises(WorkloadError):
            get_scale("gigantic")

    def test_scales_monotone(self):
        assert SCALES["smoke"].spatial_scale >= SCALES["default"].spatial_scale
        assert SCALES["default"].spatial_scale >= SCALES["full"].spatial_scale


class TestReport:
    def test_table_rendering(self):
        t = Table("T", ["a", "b"])
        t.add(1, 2.5)
        t.add("x", 0.001)
        t.note("note")
        text = t.render()
        assert "T" in text and "note" in text
        assert "0.001" in text

    def test_row_arity_checked(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_speedup_summary(self):
        s = speedup_summary([2.0, 1.5, 0.8])
        assert s["cases"] == 3
        assert s["faster"] == 2 and s["slower"] == 1
        assert s["avg_gain"] == pytest.approx(0.75)
        assert s["avg_loss"] == pytest.approx(0.2)
        assert s["best"] == 2.0

    def test_speedup_summary_empty(self):
        s = speedup_summary([])
        assert s["cases"] == 0 and s["geomean"] == 0.0


class TestDrivers:
    def test_fig5_rows_and_table(self):
        res = E.fig5_implicit_conv(scale=TINY, networks=("vgg16",))
        assert res.rows
        text = res.table().render()
        assert "implicit CONV" in text
        # batch-1 rows exist with no baseline
        assert any(r.batch == 1 and r.speedup is None for r in res.rows)

    def test_fig6_table(self):
        res = E.fig6_winograd_conv(scale=TINY, networks=("vgg16",))
        assert res.rows
        assert all(s > 0 for s in res.speedups())

    def test_fig7_table(self):
        res = E.fig7_explicit_conv(scale=TINY, networks=("vgg16",))
        assert res.rows

    def test_tab1_fig8(self):
        res = E.tab1_fig8_versatility(scale=TINY, methods=("winograd",))
        assert res.rows
        assert "Tab. 1" in res.tab1().render()
        assert "Fig. 8" in res.fig8().render()
        assert all(0 < r.swatop_eff < 1.5 for r in res.rows)

    def test_tab2(self):
        res = E.tab2_gemm(scale=TINY)
        assert res.rows
        assert {r.aligned for r in res.rows} == {True, False}
        assert "Tab. 2" in res.table().render()

    def test_tab3(self):
        res = E.tab3_tuning_time(scale=TINY, networks=("vgg16",))
        assert res.rows
        assert all(r.speedup > 1 for r in res.rows)

    def test_fig9(self):
        res = E.fig9_model_accuracy(scale=TINY)
        assert res.rows
        assert all(0.5 < r.ratio <= 1.0 + 1e-9 for r in res.rows)

    def test_fig10(self):
        res = E.fig10_prefetch(scale=TINY, count=2)
        assert res.rows
        assert all(r.improvement > -0.05 for r in res.rows)

    def test_fig11(self):
        res = E.fig11_padding(scale=TINY, count=2)
        assert res.rows
        for r in res.rows:
            assert r.traditional_overhead > r.lightweight_overhead
