"""Quickstart: tune one GEMM with swATOP and inspect everything.

Walks the full pipeline of Fig. 3 on a single matrix multiplication:

  DSL seed -> schedule space -> scheduler/IR -> IR optimizer ->
  performance-model autotuner -> code generator -> execution on the
  simulated SW26010.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.autotuner import default_coeffs, predict_kernel, tune_with_model
from repro.codegen import emit_c
from repro.codegen.executor import CompiledKernel
from repro.ir import pretty
from repro.machine.config import default_config
from repro.ops.gemm import make_compute, make_space


def main() -> None:
    m, n, k = 512, 384, 640
    print(f"== swATOP quickstart: C[{m},{n}] = A[{m},{k}] @ B[{k},{n}] ==\n")

    # 1. the schedule seed (DSL) and its tunable space
    compute = make_compute(m, n, k)
    space = make_space(compute, quick=True)
    print(f"schedule space: {space.size()} declared strategies "
          f"over decisions {space.decision_keys}\n")

    # 2. the performance-model-based autotuner (Sec. 4.6)
    result = tune_with_model(compute, space, keep_scores=True)
    print(f"tuned in {result.wall_seconds:.2f}s "
          f"({result.legal_count} legal candidates ranked analytically)")
    print(f"best strategy: {result.best.candidate.strategy.describe()}\n")

    # 3. the optimized IR of the winner
    kernel = result.best.candidate.kernel
    print("optimized IR (DMA-inferred, double-buffered):")
    print(pretty(kernel)[:1600], "\n...\n")

    # 4. the generated C (what swATOP hands to the vendor compiler)
    print("generated C (head):")
    print("\n".join(emit_c(kernel).splitlines()[:28]), "\n...\n")

    # 5. run it on the simulated SW26010 and verify against NumPy
    cfg = default_config()
    ck = CompiledKernel(kernel, compute, cfg)
    rng = np.random.default_rng(0)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    run = ck.run({"A": a, "B": b})
    err = float(np.abs(run.outputs["C"] - a @ b).max())
    rep = run.report
    print(f"simulated execution: {rep.cycles:,.0f} cycles "
          f"({rep.seconds * 1e3:.3f} ms at 1.5 GHz)")
    print(f"  DMA busy {rep.dma_cycles:,.0f} cy, compute busy "
          f"{rep.compute_cycles:,.0f} cy, overlap {rep.overlap_fraction:.0%}")
    print(f"  achieved {rep.gflops:.0f} GFLOPS = "
          f"{rep.efficiency:.1%} of one core group's peak")
    print(f"  max |error| vs NumPy: {err:.2e}")

    # 6. the DMA/compute overlap, visualised
    from repro.codegen.executor import _ExecState
    from repro.machine.trace_export import render_timeline

    state = _ExecState(ck, {"A": a, "B": b})
    state.execute(ck.kernel.body, {})
    print()
    print(render_timeline(state.trace))
    print()

    # 7. the static model vs the simulator (the Fig. 9 gap)
    pred = predict_kernel(kernel, default_coeffs(cfg), cfg)
    print(f"\ncost model predicted {pred.total:,.0f} cycles "
          f"({pred.bound}-bound); simulator measured {rep.cycles:,.0f} "
          f"({abs(pred.total - rep.cycles) / rep.cycles:.1%} off)")


if __name__ == "__main__":
    main()
