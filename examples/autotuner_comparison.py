"""Model-based vs black-box autotuning on one convolution layer.

Reproduces the Tab. 3 / Fig. 9 story interactively: the black-box tuner
executes every candidate on the simulated processor; the model-based
tuner ranks the same space analytically in a fraction of the time and
lands within a few percent of the true optimum.

A compact schedule space is used so the full brute force finishes in
under a minute; the Tab. 3 benchmark runs the real per-layer spaces.

Run:  python examples/autotuner_comparison.py
"""

import numpy as np

from repro.autotuner import synthetic_feeds, tune_blackbox, tune_with_model
from repro.codegen.executor import CompiledKernel
from repro.dsl import ScheduleSpace
from repro.machine.config import default_config
from repro.ops import conv_implicit
from repro.ops.conv_common import ConvParams


def compact_space(compute) -> ScheduleSpace:
    sp = ScheduleSpace(compute)
    sp.split("B", [8, 16])
    sp.split("No", [32, 64])
    sp.split("Ni", [32, 64])
    sp.split("Ro", [4, 12])
    sp.split("Co", [4, 12])
    sp.split("Kr", [1])
    sp.split("Kc", [1])
    sp.reorder([("Ro", "Co", "B", "No", "Kr", "Kc", "Ni")])
    sp.layout("input", [(0, 1, 2, 3), (1, 2, 3, 0)])
    sp.layout("weight", [(2, 3, 0, 1)])
    sp.vectorize()
    return sp


def main() -> None:
    params = ConvParams(batch=16, ni=64, no=64, ri=12, ci=12,
                        kr=3, kc=3, pad=1)
    print(f"== tuning implicit conv {params.describe()} ==\n")
    compute = conv_implicit.make_compute(params)
    space = compact_space(compute)
    print(f"declared schedule space: {space.size()} strategies\n")

    model = tune_with_model(compute, space, keep_scores=True)
    print("model-based tuner:", model.summary())

    brute = tune_blackbox(compute, space, keep_scores=True)
    print("black-box tuner:  ", brute.summary())

    ratio = brute.report.cycles / model.report.cycles
    print(f"\nmodel pick reaches {ratio:.1%} of the true optimum "
          f"(paper Fig. 9: avg loss <2%, worst <8%)")
    print(f"tuning-time speedup: "
          f"{brute.wall_seconds / model.wall_seconds:.0f}x "
          f"(paper Tab. 3: 353x-454x per network; grows with space size)")

    print("\ntop-5 by predicted time (predicted -> measured cycles):")
    cfg = default_config()
    feeds = synthetic_feeds(compute)
    for i, s in enumerate(model.scores[:5]):
        ck = CompiledKernel(s.candidate.kernel, compute, cfg)
        meas = ck.run(feeds).report.cycles
        print(f"  #{i + 1}: {s.predicted_cycles:12,.0f} -> {meas:12,.0f}   "
              f"{s.candidate.strategy.describe()[:80]}")


if __name__ == "__main__":
    main()
