"""Tune the convolution layers of VGG16 against the manual libraries.

A per-layer report in the spirit of Fig. 5/6: for each VGG16 conv
layer, swATOP tunes the best applicable method and is compared with the
hand-written baseline.  Shapes are scaled down for the simulator (see
DESIGN.md Sec. 6); pass a scale name to override:

  python examples/tune_vgg16.py [smoke|default|full]
"""

import sys

import numpy as np

from repro.harness.report import Table
from repro.harness.runner import CONV_RUNNERS
from repro.harness.scales import get_scale
from repro.machine.config import default_config
from repro.ops import applicable_methods, select_method
from repro.workloads import conv_layers, network


def main() -> None:
    scale = get_scale(sys.argv[1] if len(sys.argv) > 1 else "smoke")
    batch = 32
    cfg = default_config()
    rng = np.random.default_rng(0)

    table = Table(
        f"VGG16 @ batch {batch} ({scale.name} scale, spatial / "
        f"{scale.spatial_scale})",
        ["layer", "shape", "method", "swATOP", "manual", "speedup", "eff"],
    )
    for spec in network("vgg16"):
        params = spec.params(batch, scale=scale.spatial_scale)
        if params.flops > scale.max_flops:
            continue
        methods = applicable_methods(params)
        if not methods:
            table.add(spec.name, params.describe(), "-", "-", "-", "-", "-")
            continue
        method = select_method(params)
        runner = CONV_RUNNERS[method]
        x = rng.standard_normal(params.input_shape).astype(np.float32)
        w = rng.standard_normal(params.weight_shape).astype(np.float32)
        rs = runner(params, x, w, library="swatop", quick=scale.quick,
                    collect_output=False)
        baseline = "swdnn" if method == "implicit" else "manual"
        try:
            rb = runner(params, x, w, library=baseline, collect_output=False)
            manual = f"{rb.cycles:,.0f}"
            speedup = f"{rb.cycles / rs.cycles:.2f}x"
        except Exception:
            manual, speedup = "n/a", "n/a"
        eff = params.flops / rs.report.seconds / (
            rs.report.num_cgs_used * cfg.cg_peak_flops
        )
        table.add(
            spec.name,
            f"{params.ni}->{params.no} @{params.ro}",
            method,
            f"{rs.cycles:,.0f}",
            manual,
            speedup,
            f"{eff:.0%}",
        )
    table.note("cycles are simulated SW26010 cycles; eff = fraction of "
               "engaged core groups' peak")
    print(table)


if __name__ == "__main__":
    main()
