"""Winograd convolution, stage by stage.

Breaks the F(2x2, 3x3) pipeline (Fig. 2 middle) into its stages and
shows where swATOP's advantage over the per-GEMM manual pipeline comes
from: the 16 small multiplications become one tuned, streamed batched
GEMM instead of 16 separate library calls.

Run:  python examples/winograd_deep_dive.py
"""

import numpy as np

from repro.harness.runner import run_conv_winograd
from repro.machine.config import default_config
from repro.ops import conv_winograd
from repro.ops.conv_common import ConvParams
from repro.ops.direct import conv2d_reference


def main() -> None:
    params = ConvParams(batch=32, ni=128, no=128, ri=14, ci=14,
                        kr=3, kc=3, pad=1)
    cfg = default_config()
    print(f"== Winograd F(2x2,3x3) on {params.describe()} ==\n")

    tr, tc, p = conv_winograd.tile_counts(params)
    print(f"tile grid {tr}x{tc} -> P = {p} tiles per CG shard; "
          f"{conv_winograd.NUM_GEMMS} GEMMs of "
          f"[{params.no} x {params.ni}] @ [{params.ni} x P]")
    direct_flops = params.flops
    wino_flops = 2 * conv_winograd.NUM_GEMMS * params.no * params.ni * p * 4
    print(f"arithmetic reduction vs direct conv: "
          f"{direct_flops / wino_flops:.2f}x\n")

    print("transform-stage costs (one CG shard):")
    shard = params.with_batch(max(1, params.batch // cfg.num_cgs))
    for rep in (
        conv_winograd.filter_transform_report(shard, cfg),
        conv_winograd.input_transform_report(shard, cfg),
        conv_winograd.output_transform_report(shard, cfg),
    ):
        print(f"  {rep.detail:28s} {rep.cycles:12,.0f} cycles "
              f"({rep.bytes_moved / 1e6:.2f} MB moved)")

    rng = np.random.default_rng(0)
    x = rng.standard_normal(params.input_shape).astype(np.float32)
    w = rng.standard_normal(params.weight_shape).astype(np.float32)
    ref = conv2d_reference(x, w, params)

    print("\nend-to-end (chip, 4 CGs):")
    for lib in ("swatop", "manual"):
        run = run_conv_winograd(params, x, w, library=lib, quick=True)
        ok = np.allclose(run.output, ref, rtol=1e-3, atol=1e-2)
        eff = params.flops / run.report.seconds / (
            run.report.num_cgs_used * cfg.cg_peak_flops
        )
        print(f"  {lib:7s}: {run.cycles:12,.0f} cycles, "
              f"effective eff {eff:6.1%}, correct={ok}")

    print("\nF(4x4,3x3) variant (4x multiply reduction, heavier transforms):")
    for variant in ("f22", "f44"):
        run = run_conv_winograd(params, x, w, quick=True, variant=variant,
                                collect_output=False)
        print(f"  {variant}: {run.cycles:12,.0f} cycles")
    print("variant='auto' tunes both and keeps the faster per shape.")

    print("\nthe manual pipeline pays 16 separate kernel launches (DMA "
          "latency + xMath's square-tuned blocking on skinny matrices); "
          "swATOP's batched seed streams all 16 through one tuned, "
          "double-buffered schedule (paper Fig. 6: 2.2-2.35x).")


if __name__ == "__main__":
    main()
