"""Define and tune a *new* operator with the swATOP DSL.

The paper's DSL is not conv/GEMM-specific: any arithmetic-intensive
operator whose core is a tensorized GEMM can be described as a seed +
schedule space.  This example builds a **batched multi-head attention
score** operator -- ``S[h, q, k] = Q[h, q, d] @ K[h, d, k]`` over
``h`` independent heads -- and lets swATOP tune it, demonstrating:

* a user-defined seed with a batch axis the scheduler streams over,
* automatic DMA inference / double buffering on the custom operator,
* the GEMM-batch fusion opportunity the schedule exposes.

Run:  python examples/custom_operator.py
"""

import numpy as np

from repro.autotuner import tune_with_model
from repro.codegen.executor import CompiledKernel
from repro.dsl import ComputeDef, ScheduleSpace
from repro.ir import pretty
from repro.machine.config import default_config


def make_attention_scores(heads: int, seq: int, dim: int):
    """Seed: per-head score matrix S = Q @ K (pre-softmax)."""
    cd = ComputeDef(f"attn_scores_h{heads}_s{seq}_d{dim}")
    cd.axis("H", heads)                 # independent heads: streamed
    cd.axis("Qs", seq)                  # query positions -> GEMM M
    cd.axis("Ks", seq)                  # key positions   -> GEMM N
    cd.axis("D", dim, reduction=True)   # head dim        -> GEMM K
    cd.tensor("Q", ["H", "Qs", "D"], "input")
    cd.tensor("K", ["H", "D", "Ks"], "input")
    cd.tensor("S", ["H", "Qs", "Ks"], "output")
    cd.define_gemm("S", "Q", "K", m="Qs", n=["Ks"], k="D")
    return cd


def make_space(cd: ComputeDef) -> ScheduleSpace:
    sp = ScheduleSpace(cd)
    seq = cd.axes["Qs"].extent
    sp.split("H", [1])  # one head per streamed tile
    sp.split("Qs", [t for t in (64, 128, 256) if t <= seq] or [seq])
    sp.split("Ks", [t for t in (64, 128, 256) if t <= seq] or [seq])
    sp.split("D", [cd.axes["D"].extent])
    sp.vectorize()
    sp.spm_layout("a")
    sp.spm_layout("b")
    return sp


def main() -> None:
    heads, seq, dim = 8, 256, 64
    cd = make_attention_scores(heads, seq, dim)
    sp = make_space(cd)
    print(f"== custom operator: {cd.name} ==")
    print(f"schedule space: {sp.size()} strategies\n")

    result = tune_with_model(cd, sp)
    print(f"tuned in {result.wall_seconds:.2f}s; best: "
          f"{result.best.candidate.strategy.describe()}\n")
    print("optimized IR:")
    print(pretty(result.best.candidate.kernel)[:1400], "\n...\n")

    rng = np.random.default_rng(0)
    q = rng.standard_normal((heads, seq, dim)).astype(np.float32)
    k = rng.standard_normal((heads, dim, seq)).astype(np.float32)
    ck = CompiledKernel(result.best.candidate.kernel, cd, default_config())
    run = ck.run({"Q": q, "K": k})
    ref = np.einsum("hqd,hdk->hqk", q, k)
    err = float(np.abs(run.outputs["S"] - ref).max())
    rep = run.report
    print(f"simulated: {rep.cycles:,.0f} cycles, "
          f"{rep.gflops:.0f} GFLOPS ({rep.efficiency:.1%} of one CG), "
          f"overlap {rep.overlap_fraction:.0%}")
    print(f"max |error| vs NumPy einsum: {err:.2e}")


if __name__ == "__main__":
    main()
