"""Whole-network inference through the online-autotuning library.

Runs the conv layers of VGG16 end to end (exact activations, simulated
timing) through :class:`repro.runtime.AtopLibrary` -- the swCaffe-style
integration the paper targets.  The first pass tunes every layer
(online autotuning); the second pass hits the kernel cache, showing the
offline-compiler deployment mode.

Run:  python examples/network_inference.py [vgg16|resnet|yolo]
"""

import sys
import time

from repro.runtime import AtopLibrary, run_network


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vgg16"
    batch = 8
    lib = AtopLibrary(quick=True)

    print(f"== first pass: online autotuning over {name} ==")
    t0 = time.perf_counter()
    res = run_network(name, batch=batch, library=lib, scale=16, max_layers=8)
    wall1 = time.perf_counter() - t0
    print(res.summary())
    print(f"\nlayers tuned: {lib.stats.tuned}, wall {wall1:.1f}s")
    if res.fallback_fraction() > 0:
        print(f"unported (MPE fallback) share of runtime: "
              f"{res.fallback_fraction():.1%} -- the cost of not porting "
              f"an operator")

    print(f"\n== second pass: warm kernel cache ==")
    t0 = time.perf_counter()
    res2 = run_network(name, batch=batch, library=lib, scale=16, max_layers=8)
    wall2 = time.perf_counter() - t0
    print(f"cache hits: {lib.stats.cache_hits}, wall {wall2:.1f}s "
          f"({wall1 / max(wall2, 1e-9):.1f}x faster than the tuning pass)")
    print(f"simulated network time: {res2.total_seconds * 1e3:.2f} ms "
          f"@ batch {batch} (scaled shapes)")


if __name__ == "__main__":
    main()
