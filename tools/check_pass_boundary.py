#!/usr/bin/env python3
"""Enforce the pass-pipeline import boundary.

``infer_dma`` and ``apply_prefetch`` are pipeline stages: consumers go
through ``repro.passes`` (PassManager + ``optimize_passes()``) so every
kernel inherits per-pass instrumentation and interleaved IR
verification.  A module that imports the raw functions directly
silently opts out of both, which is exactly the class of drift this
check exists to stop.

Allowed importers: ``repro/passes/`` (the pipeline itself) and
``repro/optimizer/`` (where the functions live).

Usage: python tools/check_pass_boundary.py [src-root]
Exits non-zero listing every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

FORBIDDEN = {"infer_dma", "apply_prefetch"}
ALLOWED_PREFIXES = ("repro/passes/", "repro/optimizer/")


def iter_violations(src_root: Path) -> Iterator[Tuple[Path, int, str]]:
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root).as_posix()
        if rel.startswith(ALLOWED_PREFIXES):
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in FORBIDDEN:
                        yield path, node.lineno, alias.name
            elif isinstance(node, ast.Attribute):
                # catches repro.optimizer.infer_dma(...) style access
                if node.attr in FORBIDDEN:
                    yield path, node.lineno, node.attr


def main(argv: List[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    violations = list(iter_violations(src_root))
    for path, lineno, name in violations:
        print(
            f"{path}:{lineno}: direct use of {name!r} outside repro.passes "
            "-- route through optimize_passes()/PassManager instead"
        )
    if violations:
        return 1
    print(f"pass boundary clean ({src_root})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
