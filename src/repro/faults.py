"""Deterministic fault injection for chaos-testing the tuning engine.

Long autotuning sweeps die on rare failures -- a worker process that
crashes mid-candidate, an evaluator that raises on one poisoned
strategy, a hang, a cache file truncated by a killed process.  Those
events are hard to reproduce organically, so this module manufactures
them *deterministically*: a seeded :class:`FaultPlan` decides, per
(site, key, attempt), whether a fault fires, by hashing the decision
coordinates with the seed.  The same plan therefore injects the same
faults in every run, in every process, at any worker count -- which is
what lets the tests assert that the supervised engine recovers to
bit-identical results.

Sites:

``crash``
    The evaluator raises :class:`InjectedCrash`.  Inside a worker
    process the chunk runner converts it into a hard ``os._exit`` (the
    parent sees :class:`~concurrent.futures.process.BrokenProcessPool`,
    exactly like a real segfaulting worker); in the serial path the
    supervisor handles the exception directly under the same policy.
``exception``
    The evaluator raises :class:`InjectedEvaluatorError` -- an ordinary
    in-band evaluation failure.
``hang``
    The evaluator raises :class:`InjectedHang`, which supervision
    classifies exactly like a wall-clock chunk timeout.  This is a
    *virtual-clock* hang: tests exercise the timeout recovery path
    without ever sleeping.
``corrupt``
    :meth:`~repro.engine.evalcache.PersistentEvalStore.flush` truncates
    the freshly written store file, simulating a torn write.

Faults keyed by ``(site, key, attempt)`` are *transient* by
construction: a retry re-draws at the next attempt number, so at rate
``r`` a candidate fails twice in a row with probability ``r**2``.  A
``poison`` prefix, by contrast, is *persistent*: every candidate whose
digest starts with the prefix always raises, on every attempt -- the
supervised engine must bisect it out of its chunk and quarantine it.

Everything is a no-op until :func:`set_fault_plan` installs a plan
(the CLI's ``--inject-faults SPEC`` does this); production code pays
one ``None`` check.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from .errors import ReproError

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "InjectedCrash",
    "InjectedEvaluatorError",
    "InjectedFault",
    "InjectedHang",
    "active_fault_plan",
    "candidate_digest",
    "compute_digest",
    "current_attempt",
    "maybe_corrupt_outputs",
    "set_current_attempt",
    "set_fault_plan",
]

#: the injectable fault sites, in spec order.
FAULT_SITES = ("crash", "exception", "hang", "corrupt")


class InjectedFault(ReproError):
    """Base class of all injected failures (never raised by real code)."""


class InjectedCrash(InjectedFault):
    """Stands in for a hard worker death (converted to ``os._exit`` in
    worker processes)."""


class InjectedEvaluatorError(InjectedFault):
    """An ordinary evaluator exception."""


class InjectedHang(InjectedFault):
    """A virtual-clock hang: supervision treats it as a chunk timeout
    without any wall-clock wait."""


def _draw(seed: int, site: str, key: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one fault decision."""
    h = hashlib.sha256(
        f"{seed}:{site}:{key}:{attempt}".encode()
    ).digest()
    return int.from_bytes(h[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic fault-injection schedule.

    ``crash``/``exception``/``hang`` are per-evaluation firing rates in
    [0, 1]; ``corrupt`` is a per-flush rate for cache-file truncation.
    ``poison`` is a hex digest prefix (see :func:`candidate_digest`):
    matching candidates raise on *every* attempt and can only leave the
    sweep by quarantine.
    """

    seed: int = 0
    crash: float = 0.0
    exception: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    poison: Optional[str] = None

    def is_noop(self) -> bool:
        return (
            not self.poison
            and self.crash <= 0.0
            and self.exception <= 0.0
            and self.hang <= 0.0
            and self.corrupt <= 0.0
        )

    def rate(self, site: str) -> float:
        if site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {site!r}")
        return float(getattr(self, site))

    def should_fire(self, site: str, key: str, attempt: int = 0) -> bool:
        """Did the plan schedule a fault at these coordinates?

        Pure function of ``(seed, site, key, attempt)`` -- the same
        coordinates fire (or don't) identically in every process.
        """
        rate = self.rate(site)
        if rate <= 0.0:
            return False
        return _draw(self.seed, site, key, attempt) < rate

    def is_poison(self, digest: str) -> bool:
        return bool(self.poison) and digest.startswith(self.poison)

    # --- spec round-trip -----------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``--inject-faults`` spec string.

        Comma-separated ``name=value`` pairs: the four site rates,
        ``seed=N`` and ``poison=HEXPREFIX``, e.g.
        ``"crash=0.1,corrupt=0.5,seed=42"``.
        """
        plan = cls()
        if not spec.strip():
            return plan
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, value = item.partition("=")
            name = name.strip()
            value = value.strip()
            if not sep:
                raise ValueError(
                    f"malformed --inject-faults item {item!r} "
                    f"(expected name=value)"
                )
            if name == "seed":
                plan = replace(plan, seed=int(value))
            elif name == "poison":
                plan = replace(plan, poison=value or None)
            elif name in FAULT_SITES:
                rate = float(value)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"fault rate {name}={rate} outside [0, 1]"
                    )
                plan = replace(plan, **{name: rate})
            else:
                raise ValueError(
                    f"unknown --inject-faults field {name!r} "
                    f"(sites: {', '.join(FAULT_SITES)}, plus seed, poison)"
                )
        return plan

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        parts += [
            f"{site}={self.rate(site):g}"
            for site in FAULT_SITES
            if self.rate(site) > 0
        ]
        if self.poison:
            parts.append(f"poison={self.poison}")
        return ",".join(parts)


def candidate_digest(candidate) -> str:
    """Stable cross-process identity of one candidate (compute +
    strategy), used to key fault decisions and poison matching."""
    from .engine.evaluators import compute_signature, strategy_key

    key = (
        compute_signature(candidate.compute),
        strategy_key(candidate.strategy),
    )
    return hashlib.sha256(repr(key).encode()).hexdigest()


def compute_digest(compute) -> str:
    """Stable identity of one compute definition (no strategy).

    Poison prefixes matched against *this* digest corrupt every kernel
    lowered from that operator -- the hook differential validation and
    the sanitizer-era end-to-end tests use to plant a silently wrong
    kernel."""
    from .engine.evaluators import compute_signature

    return hashlib.sha256(
        repr(compute_signature(compute)).encode()
    ).hexdigest()


def maybe_corrupt_outputs(compute, outputs) -> bool:
    """Silently perturb a kernel's outputs when the active plan poisons
    this operator's :func:`compute_digest`.

    Called by the executor after every functional run; the perturbation
    is deterministic and large relative to any dtype tolerance, so
    differential validation *must* catch it.  Returns ``True`` when a
    corruption was applied.  One ``None`` check when no plan is active.
    """
    plan = _ACTIVE_PLAN
    if plan is None or not plan.poison:
        return False
    if not plan.is_poison(compute_digest(compute)):
        return False
    for arr in outputs.values():
        flat = arr.reshape(-1)
        if flat.size:
            flat[0] += max(1.0, abs(float(flat[0])))
    return True


#: attempt number of the evaluation currently running in *this*
#: process.  The supervisor (parent: per-candidate retry loop; worker:
#: chunk runner) sets it before dispatching, so fault draws can be
#: keyed per attempt -- that is what makes injected faults transient.
_CURRENT_ATTEMPT = 0


def set_current_attempt(attempt: int) -> None:
    global _CURRENT_ATTEMPT
    _CURRENT_ATTEMPT = max(0, int(attempt))


def current_attempt() -> int:
    return _CURRENT_ATTEMPT


#: the process-wide plan (None = fault injection disabled).
_ACTIVE_PLAN: Optional[FaultPlan] = None


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install (or clear, with ``None``) the process-wide fault plan.

    The CLI's ``--inject-faults SPEC`` routes here; a no-op plan is
    normalized to ``None``.
    """
    global _ACTIVE_PLAN
    if plan is not None and plan.is_noop():
        plan = None
    _ACTIVE_PLAN = plan
    return _ACTIVE_PLAN


def active_fault_plan() -> Optional[FaultPlan]:
    return _ACTIVE_PLAN


class FaultyEvaluator:
    """Evaluator wrapper that consults a :class:`FaultPlan` before
    delegating to the real evaluator.

    Built by ``evaluate_batch`` when a plan is active; ships to worker
    processes like any evaluator (the plan is a small frozen
    dataclass).  Fault decisions are keyed by the candidate's digest
    and the current attempt number, so they are identical in serial and
    parallel runs of the same plan.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.kind = inner.kind

    def params_key(self):
        return self.inner.params_key()

    def evaluate(self, candidate):
        digest = candidate_digest(candidate)
        attempt = current_attempt()
        if self.plan.is_poison(digest):
            raise InjectedEvaluatorError(
                f"poison candidate {digest[:12]} (always fails)"
            )
        if self.plan.should_fire("crash", digest, attempt):
            raise InjectedCrash(
                f"injected worker crash at candidate {digest[:12]} "
                f"attempt {attempt}"
            )
        if self.plan.should_fire("hang", digest, attempt):
            raise InjectedHang(
                f"injected hang at candidate {digest[:12]} "
                f"attempt {attempt}"
            )
        if self.plan.should_fire("exception", digest, attempt):
            raise InjectedEvaluatorError(
                f"injected evaluator exception at candidate "
                f"{digest[:12]} attempt {attempt}"
            )
        return self.inner.evaluate(candidate)

    def __getattr__(self, name):
        # config, coeffs, feeds... -- callers introspect the wrapped
        # evaluator for report rebuilding and memo keys.
        return getattr(self.inner, name)
