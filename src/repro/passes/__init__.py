"""The verified, instrumented IR pass pipeline.

Every IR transformation in the reproduction -- the lowering stages that
turn a schedule strategy into kernel IR, and the optimizer stages of
Sec. 4.5 (DMA inference/hoisting, automatic latency hiding, boundary
analysis) -- runs as a named :class:`Pass` on a :class:`PassManager`.
The manager times every pass, records IR node-count deltas, feeds the
totals into :class:`~repro.engine.metrics.EngineMetrics`, and runs the
structural :func:`check_kernel` verifier after every stage so a
malformed rewrite is reported at its source
(:class:`~repro.errors.PassVerificationError` names the offending
pass).

Direct imports of ``infer_dma`` / ``apply_prefetch`` outside this
package are rejected by ``tools/check_pass_boundary.py`` (wired into
CI): consumers go through :func:`lowering_passes` /
:func:`optimize_passes` and inherit verification + instrumentation.
"""

from .base import (
    DMA_GEOMETRY,
    SPM_PLANNED,
    FunctionPass,
    Pass,
    PassContext,
    PassRun,
)
from .lowering import (
    BuildLoopNestPass,
    DecodeStrategyPass,
    PlanSpmPass,
    lowering_passes,
)
from .manager import PassManager, set_dump_ir
from .optimize import (
    AnalyzeBoundaryPass,
    HoistDmaPass,
    InferDmaPass,
    PrefetchPass,
    optimize_passes,
)
from .verifier import ALL_INVARIANTS, VerifyPass, check_kernel

__all__ = [
    "Pass",
    "FunctionPass",
    "PassContext",
    "PassRun",
    "PassManager",
    "set_dump_ir",
    "SPM_PLANNED",
    "DMA_GEOMETRY",
    "ALL_INVARIANTS",
    "check_kernel",
    "VerifyPass",
    "DecodeStrategyPass",
    "BuildLoopNestPass",
    "PlanSpmPass",
    "lowering_passes",
    "InferDmaPass",
    "HoistDmaPass",
    "PrefetchPass",
    "AnalyzeBoundaryPass",
    "optimize_passes",
]
