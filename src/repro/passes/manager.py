"""PassManager: ordered pass execution with instrumentation + verification.

The manager is the single entry point every consumer shares (both
autotuners, the harness runner, library replay, the codegen executor):
it runs a named pass list in order, times each pass, records the IR
node-count delta, interleaves the structural verifier after every
stage, and charges the total wall time into the owning
:class:`~repro.engine.metrics.EngineMetrics` stage.

Failure semantics:

* :class:`~repro.errors.IllegalCandidateError` propagates untouched --
  a pruned candidate is expected behaviour during enumeration, not a
  broken pipeline;
* a structural violation raises
  :class:`~repro.errors.PassVerificationError` naming the pass that
  just ran, so a malformed rewrite is caught at its source instead of
  corrupting downstream cost models or the executor.

``--dump-ir`` support lives here too: :func:`set_dump_ir` arms a
module-level dump configuration; the manager renders before/after
snapshots of matching passes through :func:`repro.ir.printer.pretty`.
"""

from __future__ import annotations

import sys
import time
from typing import IO, List, Optional, Sequence

from ..errors import PassVerificationError
from ..ir.nodes import KernelNode
from ..ir.printer import pretty
from ..ir.visitors import count_nodes
from .base import Pass, PassContext, PassRun
from .verifier import check_kernel


class _DumpConfig:
    """Module-level ``--dump-ir`` state (armed once per CLI run)."""

    def __init__(
        self,
        spec: str,
        *,
        limit: int = 2,
        stream: Optional[IO[str]] = None,
    ) -> None:
        self.spec = spec
        self.limit = limit
        self.runs_dumped = 0
        self.stream = stream

    def matches(self, pass_name: str) -> bool:
        return self.spec == "all" or self.spec == pass_name

    def out(self) -> IO[str]:
        return self.stream if self.stream is not None else sys.stderr


_dump: Optional[_DumpConfig] = None


def set_dump_ir(
    spec: Optional[str],
    *,
    limit: int = 2,
    stream: Optional[IO[str]] = None,
) -> None:
    """Arm (or with ``None`` disarm) IR dumping for subsequent manager
    runs.

    ``spec`` is ``"all"`` or a single pass name; ``limit`` caps how many
    manager *runs* get dumped (an autotuning sweep lowers thousands of
    candidates -- dumping the first couple shows the pipeline without
    drowning the terminal).  ``stream`` defaults to stderr so dumps
    never pollute result tables on stdout.
    """
    global _dump
    _dump = None if spec is None else _DumpConfig(spec, limit=limit, stream=stream)


class PassManager:
    """Run an ordered list of passes over one kernel.

    ``stage`` names the :class:`~repro.engine.metrics.EngineMetrics`
    stage ("lowering" or "optimization") charged with the run's total
    wall time; per-pass timings always land in ``metrics.passes`` and in
    :attr:`last_trace`.
    """

    def __init__(
        self,
        passes: Sequence[Pass],
        *,
        verify: bool = True,
        metrics=None,
        stage: Optional[str] = None,
    ) -> None:
        self.passes = list(passes)
        self.verify = verify
        self.metrics = metrics
        self.stage = stage
        self.last_trace: List[PassRun] = []

    @property
    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]

    def run(
        self, ctx: PassContext, kernel: Optional[KernelNode] = None
    ) -> KernelNode:
        self.last_trace = []
        dump = _dump
        # a run only spends dump budget if it contains a matching pass
        # (--dump-ir=prefetch must not be eaten by lowering-only runs)
        dumping = (
            dump is not None
            and dump.runs_dumped < dump.limit
            and any(dump.matches(p.name) for p in self.passes)
        )
        if dumping:
            assert dump is not None
            dump.runs_dumped += 1
        t_run = time.perf_counter()
        try:
            for p in self.passes:
                kernel = self._run_one(p, ctx, kernel, dump if dumping else None)
        finally:
            if self.metrics is not None and self.stage is not None:
                stage = getattr(self.metrics, self.stage)
                stage.add(time.perf_counter() - t_run)
        if kernel is None:
            raise PassVerificationError(
                self.passes[-1].name if self.passes else "<empty>",
                ["pipeline produced no kernel IR"],
            )
        return kernel

    def _run_one(
        self,
        p: Pass,
        ctx: PassContext,
        kernel: Optional[KernelNode],
        dump: Optional[_DumpConfig],
    ) -> Optional[KernelNode]:
        before = count_nodes(kernel) if kernel is not None else 0
        if dump is not None and dump.matches(p.name) and kernel is not None:
            print(
                f"// --- IR before pass {p.name!r} ---\n{pretty(kernel)}",
                file=dump.out(),
            )
        t0 = time.perf_counter()
        # IllegalCandidateError propagates untouched: a pruned candidate
        # is expected during enumeration, not a pipeline defect.
        out = p.run(ctx, kernel)
        kernel = out if out is not None else kernel
        dt = time.perf_counter() - t0
        after = count_nodes(kernel) if kernel is not None else 0

        self.last_trace.append(
            PassRun(name=p.name, seconds=dt, nodes_before=before, nodes_after=after)
        )
        if self.metrics is not None:
            self.metrics.record_pass(p.name, dt)
        ctx.established.update(p.establishes)

        if dump is not None and dump.matches(p.name) and kernel is not None:
            print(
                f"// --- IR after pass {p.name!r} ---\n{pretty(kernel)}",
                file=dump.out(),
            )

        if self.verify and kernel is not None:
            violations = check_kernel(
                kernel,
                compute=ctx.compute,
                config=ctx.config,
                established=ctx.established,
            )
            if violations:
                raise PassVerificationError(p.name, violations)
        return kernel

    def describe(self) -> str:
        """Human-readable trace of the latest run."""
        if not self.last_trace:
            return "(no passes run)"
        return "\n".join(r.describe() for r in self.last_trace)
