"""The `Pass` interface: one named, composable IR transformation.

swATOP's optimizer (Sec. 4) is a sequence of IR transformations --
lowering stages, DMA inference and hoisting, automatic latency hiding,
memory planning.  Each of them is a :class:`Pass`: a named unit that
takes a :class:`PassContext` (everything that parameterizes the
pipeline: compute seed, schedule strategy, machine config, lowering
options) plus the current kernel IR, and returns the (possibly new)
kernel.  A :class:`~repro.passes.manager.PassManager` runs an ordered
list of passes with per-pass instrumentation and interleaved IR
verification.

Passes come in three flavours:

* **lowering stages** run before any IR exists (the first stages
  receive ``kernel=None`` and the builder stage materialises the root
  :class:`~repro.ir.nodes.KernelNode`);
* **transform passes** rewrite the tree (DMA inference/hoisting,
  prefetch) and return the new root;
* **analysis passes** read the tree, record results in
  ``ctx.state``, and return ``None`` (keep the kernel unchanged).

``establishes`` names the invariants a pass guarantees from that point
of the pipeline on (e.g. ``"spm-plan"`` after memory planning,
``"dma-geometry"`` after DMA inference); the verifier only enforces an
invariant once some pass has established it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleStrategy
from ..ir.nodes import KernelNode
from ..machine.config import MachineConfig, default_config
from ..primitives.registry import PrimitiveRegistry
from ..scheduler.lower import LoweringOptions

#: invariant keys the verifier understands (see passes.verifier)
SPM_PLANNED = "spm-plan"
DMA_GEOMETRY = "dma-geometry"


@dataclass
class PassContext:
    """Everything a pass may need besides the IR itself.

    ``state`` is the inter-stage scratchpad (decoded strategy, SPM
    plan, boundary analysis results); ``established`` accumulates the
    invariant keys of every pass run so far, gating what the verifier
    enforces.
    """

    compute: ComputeDef
    config: MachineConfig = field(default_factory=default_config)
    strategy: Optional[ScheduleStrategy] = None
    options: Optional[LoweringOptions] = None
    registry: Optional[PrimitiveRegistry] = None
    state: Dict[str, Any] = field(default_factory=dict)
    established: Set[str] = field(default_factory=set)


class Pass:
    """One named pipeline stage over kernel IR."""

    #: unique, human-readable stage name (used in metrics, diagnostics
    #: and ``--dump-ir=<name>`` filters).
    name: str = "pass"
    #: invariant keys this pass establishes (enforced by the verifier
    #: after this pass and every later one).
    establishes: Tuple[str, ...] = ()

    def run(
        self, ctx: PassContext, kernel: Optional[KernelNode]
    ) -> Optional[KernelNode]:
        """Transform ``kernel``; return the new root, or ``None`` to
        keep the input (analysis passes, pre-IR lowering stages)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionPass(Pass):
    """Adapt a plain ``(ctx, kernel) -> kernel|None`` callable."""

    def __init__(
        self,
        name: str,
        fn: Callable[[PassContext, Optional[KernelNode]], Optional[KernelNode]],
        *,
        establishes: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.fn = fn
        self.establishes = establishes

    def run(
        self, ctx: PassContext, kernel: Optional[KernelNode]
    ) -> Optional[KernelNode]:
        return self.fn(ctx, kernel)


@dataclass(frozen=True)
class PassRun:
    """Instrumentation record of one pass execution."""

    name: str
    seconds: float
    nodes_before: int
    nodes_after: int

    @property
    def delta(self) -> int:
        """IR size change (node count) the pass caused."""
        return self.nodes_after - self.nodes_before

    def describe(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return (
            f"{self.name}: {self.seconds * 1e3:.2f}ms "
            f"{self.nodes_before}->{self.nodes_after} nodes ({sign}{self.delta})"
        )
