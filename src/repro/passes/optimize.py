"""Optimizer stages (Sec. 4.5) on the :class:`Pass` interface.

The former free functions ``infer_dma`` / ``apply_prefetch`` plus the
boundary analysis become named pipeline stages so every consumer runs
them through the instrumented, verified
:class:`~repro.passes.manager.PassManager`:

* ``infer-dma`` -- fill per-CPE descriptor geometry on every DMA node
  (establishes the ``dma-geometry`` invariant);
* ``hoist-dma`` -- move loop-invariant mem->SPM transfers outward
  (redundant-copy elimination);
* ``prefetch`` -- automatic latency hiding: mark streaming loops
  pipelined for double-buffered DMA/compute overlap (Sec. 4.5.2);
* ``analyze-boundary`` -- record boundary GEMM-site and lightweight
  padding statistics (Sec. 4.5.3) into ``ctx.state`` without touching
  the IR.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import LoweringError
from ..ir.nodes import KernelNode
from ..optimizer.boundary import boundary_gemm_sites, lightweight_pad_sites
from ..optimizer.dma_inference import hoist_dma, infer_dma
from ..optimizer.prefetch import apply_prefetch
from .base import DMA_GEOMETRY, Pass, PassContext


def _require_kernel(
    name: str, kernel: Optional[KernelNode]
) -> KernelNode:
    if kernel is None:
        raise LoweringError(f"pass {name!r} needs a lowered kernel")
    return kernel


class InferDmaPass(Pass):
    """Derive per-CPE DMA descriptor geometry (Sec. 4.5.1)."""

    name = "infer-dma"
    establishes = (DMA_GEOMETRY,)

    def run(self, ctx: PassContext, kernel: Optional[KernelNode]):
        kernel = _require_kernel(self.name, kernel)
        return infer_dma(kernel, ctx.compute, ctx.config, hoist=False)


class HoistDmaPass(Pass):
    """Hoist loop-invariant mem->SPM transfers out of loops."""

    name = "hoist-dma"

    def run(self, ctx: PassContext, kernel: Optional[KernelNode]):
        return hoist_dma(_require_kernel(self.name, kernel))


class PrefetchPass(Pass):
    """Automatic latency hiding: pipeline streaming loops (Sec. 4.5.2)."""

    name = "prefetch"

    def run(self, ctx: PassContext, kernel: Optional[KernelNode]):
        return apply_prefetch(_require_kernel(self.name, kernel))


class AnalyzeBoundaryPass(Pass):
    """Record boundary-processing statistics (Sec. 4.5.3) in ctx.state."""

    name = "analyze-boundary"

    def run(self, ctx: PassContext, kernel: Optional[KernelNode]):
        kernel = _require_kernel(self.name, kernel)
        ctx.state["boundary_sites"] = boundary_gemm_sites(kernel)
        ctx.state["pad_sites"] = lightweight_pad_sites(kernel)
        return None


def optimize_passes(*, prefetch: bool = True) -> List[Pass]:
    """The default optimization pipeline over a lowered kernel."""
    passes: List[Pass] = [InferDmaPass(), HoistDmaPass()]
    if prefetch:
        passes.append(PrefetchPass())
    passes.append(AnalyzeBoundaryPass())
    return passes
