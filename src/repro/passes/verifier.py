"""The IR verifier: structural invariants checked between passes.

A growing tuner fleet lowers and rewrites millions of kernels; a pass
that silently produces malformed IR corrupts every downstream stage
(mis-priced candidates, wrong functional results, executor crashes far
from the cause).  The verifier makes the contract explicit: after every
pipeline stage the kernel must satisfy

1. **declared buffers** -- every DMA / GEMM / zero-fill references an
   SPM buffer declared in the kernel's allocs, and every DMA tile
   access names a tensor of the compute seed;
2. **well-formed loop nesting** -- loop variables are not shadowed by
   nested loops, and every variable a DMA offset uses is bound by an
   enclosing loop; SPM allocations appear only at the kernel root;
3. **SPM capacity** (once ``spm-plan`` is established) -- the coalesced
   per-CPE plan of the allocs still fits the 64 KB scratch pad, so no
   optimizer pass grew the footprint past what the scheduler validated;
4. **consistent double-buffer phases** -- a pipelined loop only streams
   into double-buffered buffers, and no buffer is streamed by two
   nested pipelined loops (each buffer has exactly two phase copies);
5. **DMA geometry** (once ``dma-geometry`` is established) -- every DMA
   node carries its inferred per-CPE descriptor geometry.

:func:`check_kernel` returns the violations as strings;
:class:`~repro.passes.manager.PassManager` raises
:class:`~repro.errors.PassVerificationError` naming the offending pass
when the list is non-empty.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

from ..dsl.compute import ComputeDef
from ..errors import SpmCapacityError
from ..ir.nodes import (
    AllocSpmNode,
    DmaCgNode,
    ForNode,
    GemmOpNode,
    KernelNode,
    Node,
    ZeroSpmNode,
)
from ..ir.visitors import walk
from ..machine.config import MachineConfig, default_config
from ..optimizer.memplan import plan_spm
from ..optimizer.prefetch import direct_stream_dmas
from .base import DMA_GEOMETRY, SPM_PLANNED, Pass, PassContext

#: invariants enforced unconditionally when check_kernel is called
#: standalone (a finished kernel should satisfy everything).
ALL_INVARIANTS: FrozenSet[str] = frozenset({SPM_PLANNED, DMA_GEOMETRY})


def check_kernel(
    kernel: KernelNode,
    *,
    compute: Optional[ComputeDef] = None,
    config: Optional[MachineConfig] = None,
    established: Iterable[str] = ALL_INVARIANTS,
) -> List[str]:
    """All structural-invariant violations of a kernel (empty = valid)."""
    cfg = config or default_config()
    held = set(established)
    out: List[str] = []
    out.extend(_check_buffer_refs(kernel, compute))
    out.extend(_check_loop_nesting(kernel))
    out.extend(_check_double_buffer_phases(kernel))
    if SPM_PLANNED in held:
        out.extend(_check_spm_capacity(kernel, cfg))
    if DMA_GEOMETRY in held:
        out.extend(_check_dma_geometry(kernel))
    return out


# ---------------------------------------------------------------------------
# individual invariants
# ---------------------------------------------------------------------------
def _check_buffer_refs(
    kernel: KernelNode, compute: Optional[ComputeDef]
) -> List[str]:
    out: List[str] = []
    allocs = {a.name for a in kernel.allocs}
    for node in walk(kernel.body):
        if isinstance(node, DmaCgNode):
            if node.spm not in allocs:
                out.append(
                    f"DMA targets undeclared SPM buffer {node.spm!r} "
                    f"(allocs: {sorted(allocs)})"
                )
            if compute is not None and node.access.buffer not in compute.tensors:
                out.append(
                    f"DMA accesses unknown tensor {node.access.buffer!r} "
                    f"(tensors: {sorted(compute.tensors)})"
                )
        elif isinstance(node, ZeroSpmNode):
            if node.spm not in allocs:
                out.append(
                    f"zero_spm targets undeclared SPM buffer {node.spm!r}"
                )
        elif isinstance(node, GemmOpNode):
            for role, name in (
                ("A", node.a_spm), ("B", node.b_spm), ("C", node.c_spm)
            ):
                if name not in allocs:
                    out.append(
                        f"gemm_op operand {role} references undeclared "
                        f"SPM buffer {name!r}"
                    )
    return out


def _check_loop_nesting(kernel: KernelNode) -> List[str]:
    out: List[str] = []

    def visit(node: Node, bound: Set[str]) -> None:
        if isinstance(node, AllocSpmNode):
            out.append(
                f"SPM alloc {node.name!r} nested in the kernel body "
                "(allocs belong on the kernel root)"
            )
        if isinstance(node, DmaCgNode):
            free = node.access.variables() - bound
            if free:
                out.append(
                    f"DMA access of {node.access.buffer!r} uses unbound "
                    f"loop variable(s) {sorted(free)}"
                )
        if isinstance(node, ForNode):
            if node.var in bound:
                out.append(
                    f"loop variable {node.var!r} shadowed by a nested loop"
                )
            bound = bound | {node.var}
        for child in node.children():
            visit(child, bound)

    visit(kernel.body, set())
    return out


def _check_spm_capacity(kernel: KernelNode, cfg: MachineConfig) -> List[str]:
    try:
        plan_spm(kernel, cfg)
    except SpmCapacityError as exc:
        return [f"SPM plan violates capacity: {exc}"]
    return []


def _check_double_buffer_phases(kernel: KernelNode) -> List[str]:
    """Double buffering gives each streamed buffer exactly two phase
    copies (one filling, one computing), so:

    * a pipelined loop streams only into double-buffered buffers;
    * one iteration fills each buffer at most once (a second fill
      would clobber the first tile before its GEMM consumes it);
    * no buffer is streamed by two *nested* pipelined loops -- the two
      pipelines' phase assignments would race over the same two
      copies.  Sequential (sibling) pipelined loops are fine: each
      runs its pipeline to completion before the next starts.
    """
    out: List[str] = []
    declared = kernel_alloc_names(kernel)
    double_buffered = {a.name for a in kernel.allocs if a.double_buffered}

    def visit(node: Node, active: dict) -> None:
        if isinstance(node, ForNode) and node.pipelined:
            streamed: dict = {}
            for dma in direct_stream_dmas(node):
                streamed[dma.spm] = streamed.get(dma.spm, 0) + 1
            for spm, fills in streamed.items():
                if spm in declared and spm not in double_buffered:
                    out.append(
                        f"pipelined loop {node.var!r} streams into {spm!r} "
                        "which has no double-buffer reservation"
                    )
                if fills > 1:
                    out.append(
                        f"pipelined loop {node.var!r} fills {spm!r} "
                        f"{fills} times per iteration: no free phase copy "
                        "to prefetch into"
                    )
                if spm in active:
                    out.append(
                        f"buffer {spm!r} streamed by nested pipelined "
                        f"loops ({active[spm]!r} and {node.var!r}): phase "
                        "assignments race"
                    )
            active = {**active, **{s: node.var for s in streamed}}
        for child in node.children():
            visit(child, active)

    visit(kernel.body, {})
    return out


def _check_dma_geometry(kernel: KernelNode) -> List[str]:
    out: List[str] = []
    for node in walk(kernel.body):
        if isinstance(node, DmaCgNode) and node.geometry is None:
            out.append(
                f"DMA of {node.access.buffer!r} -> {node.spm!r} has no "
                "inferred geometry"
            )
    return out


def kernel_alloc_names(kernel: KernelNode) -> Set[str]:
    return {a.name for a in kernel.allocs}


class VerifyPass(Pass):
    """Explicit verification stage (the manager also interleaves the
    same checks automatically after every pass when ``verify=True``)."""

    name = "verify"

    def run(self, ctx: PassContext, kernel: Optional[KernelNode]):
        from ..errors import PassVerificationError

        if kernel is None:
            return None
        violations = check_kernel(
            kernel,
            compute=ctx.compute,
            config=ctx.config,
            established=ctx.established,
        )
        if violations:
            raise PassVerificationError(self.name, violations)
        return None
