"""Lowering as composable pipeline stages.

The 579-line ``scheduler/lower.py`` monolith is split into three named
stages registered on the :class:`~repro.passes.manager.PassManager`:

* ``decode-strategy`` -- validate the seed, decode the strategy's tile
  factors / loop order / layouts / kernel variant, and run every
  strategy-level legality check (loop-order, kernel-axis, primitive
  legality).  Runs before any IR exists; results land in ``ctx.state``.
* ``build-loop-nest`` -- the recursive builder: split every axis, nest
  the loops, peel boundary regions, emit raw DMA + gemm_op leaves, and
  size the SPM allocations.  Produces the root ``KernelNode``.
* ``plan-spm`` -- the coalesced memory plan of Sec. 4.7 over the
  allocs; an over-capacity plan raises
  :class:`~repro.errors.IllegalCandidateError` so the enumerator prunes
  the candidate exactly as before.  Establishes the ``spm-plan``
  invariant the verifier enforces from here on.

The stages call the same helpers (and in the same order) as the frozen
:func:`~repro.scheduler.lower.reference_lower_strategy`, so the lowered
IR is bit-identical -- the golden tests assert it.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..errors import IllegalCandidateError, LoweringError, SpmCapacityError
from ..ir.nodes import KernelNode
from ..machine.spm import SpmAllocator, SpmBuffer
from ..optimizer.memplan import per_cpe_bytes
from ..primitives.microkernel import COL_MAJOR, KernelVariant
from ..primitives.registry import default_registry
from ..scheduler.lower import (
    LoweringOptions,
    _KernelBuilder,
    _check_kernel_axes,
    _check_order_legality,
    _loop_order,
    _tensor_layouts,
    _tile_sizes,
)
from .base import SPM_PLANNED, Pass, PassContext


def _require_strategy(ctx: PassContext):
    if ctx.strategy is None:
        raise LoweringError(
            f"lowering {ctx.compute.name!r} needs a schedule strategy on "
            "the pass context"
        )
    return ctx.strategy


class DecodeStrategyPass(Pass):
    """Strategy -> decoded tiling/order/layout/variant (+ legality)."""

    name = "decode-strategy"

    def run(self, ctx: PassContext, kernel: Optional[KernelNode]):
        compute = ctx.compute
        strategy = _require_strategy(ctx)
        compute.validate()
        gemm = compute.gemm
        assert gemm is not None  # validate() guarantees

        tiles = _tile_sizes(compute, strategy)
        order = _loop_order(compute, strategy)
        _check_order_legality(compute, order)
        _check_kernel_axes(compute, tiles)

        vec_dim = str(strategy.get("vec_dim", "M"))
        a_layout = str(strategy.get("spm_layout:a", COL_MAJOR))
        b_layout = str(strategy.get("spm_layout:b", COL_MAJOR))
        variant = KernelVariant(a_layout, b_layout, vec_dim)
        layouts = _tensor_layouts(compute, strategy)

        m_tile = tiles[gemm.m_axis]
        n_tile = math.prod(tiles[ax] for ax in gemm.n_axes)
        k_tile = tiles[gemm.k_axis]
        reg = ctx.registry or default_registry()
        reg.check_legal(m_tile, n_tile, k_tile, variant)

        ctx.state["tiles"] = tiles
        ctx.state["order"] = order
        ctx.state["variant"] = variant
        ctx.state["layouts"] = layouts
        return None


class BuildLoopNestPass(Pass):
    """Decoded strategy -> raw kernel IR (loops, DMA leaves, allocs)."""

    name = "build-loop-nest"

    def run(self, ctx: PassContext, kernel: Optional[KernelNode]):
        if "tiles" not in ctx.state:
            raise LoweringError(
                "build-loop-nest needs decode-strategy to run first"
            )
        compute = ctx.compute
        opts = ctx.options or LoweringOptions()
        variant: KernelVariant = ctx.state["variant"]
        builder = _KernelBuilder(
            compute=compute,
            tiles=ctx.state["tiles"],
            order=ctx.state["order"],
            layouts=ctx.state["layouts"],
            variant=variant,
            options=opts,
            config=ctx.config,
        )
        body = builder.build()
        allocs = builder.make_allocs()
        return KernelNode(
            name=f"{compute.name}__{variant.name}",
            allocs=allocs,
            body=body,
            tensor_layouts=ctx.state["layouts"],
        )


class PlanSpmPass(Pass):
    """Coalesced SPM planning (Sec. 4.7) as a pipeline stage.

    Overflow raises :class:`IllegalCandidateError` -- the candidate is
    prunable, not broken.  The resulting plan is recorded in
    ``ctx.state['spm_plan']`` and the ``spm-plan`` invariant becomes
    active for the verifier.
    """

    name = "plan-spm"
    establishes = (SPM_PLANNED,)

    def run(self, ctx: PassContext, kernel: Optional[KernelNode]):
        if kernel is None:
            raise LoweringError("plan-spm needs a lowered kernel")
        buffers = [
            SpmBuffer(
                alloc.name,
                per_cpe_bytes(alloc, ctx.config),
                double_buffered=alloc.double_buffered,
            )
            for alloc in kernel.allocs
        ]
        try:
            ctx.state["spm_plan"] = SpmAllocator(ctx.config).plan(buffers)
        except SpmCapacityError as exc:  # candidate pruned
            raise IllegalCandidateError(str(exc)) from exc
        return None


def lowering_passes() -> List[Pass]:
    """The default lowering pipeline (strategy -> raw verified IR)."""
    return [DecodeStrategyPass(), BuildLoopNestPass(), PlanSpmPass()]
