"""Offline calibration of the Eq. (2) GEMM cost model.

The paper fits the linear coefficients "by collecting the execution
time of GEMM operations using different dimension parameters" on the
real processor; we collect the same micro-benchmark surface from the
simulated primitive (:func:`repro.primitives.kernel_cycles`) and fit by
least squares, once per kernel variant.  Coefficients are cached
per-machine-config so tuning stays interactive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CalibrationError
from ..machine.config import MachineConfig, config_signature, default_config
from ..primitives.gemm_kernel import kernel_cycles
from ..primitives.microkernel import ALL_VARIANTS, KernelVariant
from .cost_model import GemmCoeffs, eq2_features

#: micro-benchmark grid: the tile-size range the scheduler actually
#: proposes (per CG-level tile, before the 8x8 cluster split).  Tiny
#: tiles are excluded on purpose: below ~32 the ceil() quantisation of
#: the register blocking flattens the cost surface and a linear Eq. (2)
#: would trade accuracy in the regime that matters for accuracy in a
#: regime the tuner never picks.
DEFAULT_GRID: Tuple[int, ...] = (32, 48, 64, 96, 128, 192, 256, 384, 512)


def calibration_samples(
    variant: KernelVariant,
    grid: Sequence[int] = DEFAULT_GRID,
    config: Optional[MachineConfig] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """(features, measured cycles) of the micro-benchmark sweep."""
    cfg = config or default_config()
    rows: List[Tuple[float, float, float, float]] = []
    times: List[float] = []
    for m in grid:
        for n in grid:
            for k in grid:
                rows.append(eq2_features(m, n, k, variant.vec_dim))
                times.append(kernel_cycles(m, n, k, variant, cfg).total)
    return np.asarray(rows, dtype=np.float64), np.asarray(times, dtype=np.float64)


def fit_variant(
    variant: KernelVariant,
    grid: Sequence[int] = DEFAULT_GRID,
    config: Optional[MachineConfig] = None,
) -> Tuple[float, float, float, float]:
    """Fit (alpha, beta, gamma, delta) for one variant.

    Weighted least squares with 1/measured weights: the tuner ranks
    candidates whose GEMM sites span orders of magnitude, so it is the
    *relative* error that must be uniform across tile sizes, not the
    absolute residual (which a plain fit would spend entirely on the
    largest tiles).
    """
    x, y = calibration_samples(variant, grid, config)
    w = 1.0 / np.maximum(y, 1.0)
    xw = x * w[:, None]
    yw = y * w
    coeffs, _, rank, _ = np.linalg.lstsq(xw, yw, rcond=None)
    if rank < x.shape[1]:
        raise CalibrationError(
            f"degenerate calibration grid for {variant.name!r} (rank {rank})"
        )
    return tuple(float(c) for c in coeffs)  # type: ignore[return-value]


def fit_all(
    grid: Sequence[int] = DEFAULT_GRID,
    config: Optional[MachineConfig] = None,
) -> GemmCoeffs:
    """Fit Eq. (2) for all eight variants."""
    cfg = config or default_config()
    return {v.name: fit_variant(v, grid, cfg) for v in ALL_VARIANTS}


# Keyed on the *full* machine signature, not the config object: the
# dataclass hash ignores the latency/pipe tables, so an lru_cache on
# the config silently returned stale coefficients for configs differing
# only in instruction timing -- and every analytic score downstream
# (including MemoizingEvaluator keys built from those coefficients)
# collided with them.
_FIT_CACHE: Dict[Tuple, Tuple[Tuple[str, Tuple[float, ...]], ...]] = {}


def _cached_fit(config: MachineConfig) -> Tuple[Tuple[str, Tuple[float, ...]], ...]:
    key = config_signature(config)
    hit = _FIT_CACHE.get(key)
    if hit is None:
        coeffs = fit_all(config=config)
        hit = tuple(sorted((k, tuple(v)) for k, v in coeffs.items()))
        _FIT_CACHE[key] = hit
    return hit


def default_coeffs(config: Optional[MachineConfig] = None) -> GemmCoeffs:
    """Cached Eq. (2) coefficients for a machine configuration."""
    cfg = config or default_config()
    return {k: tuple(v) for k, v in _cached_fit(cfg)}  # type: ignore[misc]


def fit_quality(
    variant: KernelVariant,
    grid: Sequence[int] = DEFAULT_GRID,
    config: Optional[MachineConfig] = None,
) -> Dict[str, float]:
    """Relative-error statistics of the fit (diagnostics; the paper's
    'high accuracy of our static performance model')."""
    x, y = calibration_samples(variant, grid, config)
    coeffs = np.asarray(fit_variant(variant, grid, config))
    pred = x @ coeffs
    rel = np.abs(pred - y) / np.maximum(y, 1.0)
    return {
        "mean_rel_err": float(rel.mean()),
        "max_rel_err": float(rel.max()),
        "samples": float(len(y)),
    }
