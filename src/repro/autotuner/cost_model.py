"""The static performance model (Sec. 4.6).

Two analytic sub-models predict a candidate kernel's execution time
without running it:

* **DMA time** -- Eq. (1): a start-up latency plus the transaction-
  padded traffic over peak bandwidth.  The model assumes the first
  block of every transfer is 128-byte aligned and infers the per-block
  waste from the stride (the simulator, by contrast, uses the *actual*
  allocation addresses -- one deliberate source of model error).
* **GEMM primitive time** -- Eq. (2): a per-variant linear function
  ``alpha*K + beta*K*M + gamma*K*M*N + delta`` fitted offline against
  micro-benchmark runs of ``spm_gemm``
  (:mod:`repro.autotuner.calibrate`).  The structural cost has ceil()
  quantisation and pattern-switch terms a linear form cannot express --
  the residual the paper measures in Fig. 9.

Because DMA is asynchronous and swATOP always applies software
prefetching, the total is ``max(T_DMA, T_compute)`` for pipelined
kernels and the plain sum otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import TuningError
from ..ir.nodes import (
    ComputeOpNode,
    DmaCgNode,
    ForNode,
    GemmOpNode,
    IfThenElseNode,
    KernelNode,
    Node,
    SeqNode,
    ZeroSpmNode,
)
from ..machine.config import MachineConfig, default_config
from ..primitives.microkernel import KernelVariant

#: Eq. (2) coefficients: (alpha, beta, gamma, delta) per variant name.
GemmCoeffs = Dict[str, Tuple[float, float, float, float]]


@dataclass(frozen=True)
class PredictedTime:
    """Cost-model output for one candidate."""

    total: float
    dma: float
    compute: float
    pipelined: bool

    @property
    def bound(self) -> str:
        return "dma" if self.dma > self.compute else "compute"


def _effective_extents(
    m: int, n: int, k: int, vec_dim: str, config: Optional[MachineConfig]
) -> Tuple[float, float]:
    """Register-blocking-quantised M and N.

    This is the "prior knowledge of the hardware" the paper bakes into
    its model: each CPE processes the vectorized dimension in blocks of
    4 vectors (16 elements) and the other dimension in blocks of 4, so
    a tile is charged at its quantised extent.  (The paper's
    ``beta*K*M/(vecM*4)`` term plays the same role.)
    """
    from ..primitives.microkernel import BLOCK_SCALARS, BLOCK_VECS

    cfg = config or default_config()
    rows, cols = cfg.cluster_rows, cfg.cluster_cols
    vq = BLOCK_VECS * cfg.vector_lanes

    def quant(extent: int, split: int, q: int) -> float:
        per_cpe = -(-extent // split)
        return float(-(-per_cpe // q) * q * split)

    if vec_dim == "M":
        return quant(m, rows, vq), quant(n, cols, BLOCK_SCALARS)
    return quant(m, rows, BLOCK_SCALARS), quant(n, cols, vq)


def eq2_features(
    m: int,
    n: int,
    k: int,
    vec_dim: str = "M",
    config: Optional[MachineConfig] = None,
) -> Tuple[float, float, float, float]:
    """The Eq. (2) feature vector ``(K, K*V_eff, K*M_eff*N_eff, 1)``.

    V is the vectorized dimension; effective extents are the register-
    blocking-quantised sizes (see :func:`_effective_extents`).  The
    paper's /4 normalisations are absorbed into the per-variant fitted
    coefficients.
    """
    m_eff, n_eff = _effective_extents(m, n, k, vec_dim, config)
    v = m_eff if vec_dim == "M" else n_eff
    return (float(k), float(k) * v, float(k) * m_eff * n_eff, 1.0)


def predict_gemm(
    m: int, n: int, k: int, variant: KernelVariant, coeffs: GemmCoeffs
) -> float:
    try:
        a, b, g, d = coeffs[variant.name]
    except KeyError:
        raise TuningError(
            f"no Eq.(2) coefficients for variant {variant.name!r}; "
            "run autotuner.calibrate first"
        ) from None
    f = eq2_features(m, n, k, variant.vec_dim)
    return a * f[0] + b * f[1] + g * f[2] + d


def predict_dma(
    node: DmaCgNode, config: Optional[MachineConfig] = None
) -> float:
    """Eq. (1) for one CG-level transfer.

    ``block_num``/``block_size`` come from the inferred geometry; waste
    is inferred per block under the aligned-first-block assumption.
    """
    cfg = config or default_config()
    geo = node.geometry
    if geo is None:
        raise TuningError("cost model requires DMA-inferred IR")
    txn = cfg.dram_transaction_bytes
    step = geo.block_bytes + geo.stride_bytes
    eb = cfg.dtype_bytes

    # Each CG-level block is served by the cluster's columns: CPE (rid,
    # cid) transfers its 1/8 column slice as its own descriptor block,
    # and every slice is rounded out to whole DRAM transactions -- the
    # waste term of Eq. (1).  The model assumes the first block is
    # 128-byte aligned and infers per-block drift from the stride (the
    # simulator uses real allocation addresses; the difference is model
    # error by design).
    from ..machine.spm import partition_extent

    block_elems = max(1, geo.block_bytes // eb)
    col_parts = [
        (c0 * eb, cl * eb)
        for c0, cl in partition_extent(block_elems, cfg.cluster_cols)
        if cl > 0
    ]
    # block start offsets drift with period lcm(step, txn) / step
    g = math.gcd(step % txn if step % txn else txn, txn)
    period = txn // g
    sample = min(geo.n_blocks, max(1, period))
    paid = 0
    for i in range(sample):
        base = (i * step) % txn
        for c_off, c_len in col_parts:
            start = base + c_off
            end = start + c_len
            paid += (-(-end // txn)) * txn - (start // txn) * txn
    paid = paid * geo.n_blocks // sample
    cycles = (
        cfg.dma_latency_cycles
        + cfg.dma_issue_cycles * max(1, geo.n_descriptors)
        + paid / cfg.dram_bytes_per_cycle
    )
    return cycles


def predict_kernel(
    kernel: KernelNode,
    coeffs: GemmCoeffs,
    config: Optional[MachineConfig] = None,
) -> PredictedTime:
    """Walk the IR statically, accumulating Eq. (1) and Eq. (2) terms
    weighted by loop trip counts."""
    cfg = config or default_config()
    acc = _Accumulator(cfg, coeffs)
    acc.visit(kernel.body, 1.0, in_pipeline=False)
    pipelined = acc.saw_pipelined
    if pipelined:
        total = max(acc.dma, acc.compute) + acc.serial + acc.startup
    else:
        total = acc.dma + acc.compute + acc.serial + acc.startup
    return PredictedTime(
        total=total, dma=acc.dma, compute=acc.compute, pipelined=pipelined
    )


class _Accumulator:
    """Static IR walk.

    ``dma``/``compute`` collect work that software prefetching can
    overlap (transfers issued inside a pipelined loop against the GEMM
    time); ``serial`` collects transfers outside every pipelined loop
    (hoisted preloads, the C write-back), which stay on the critical
    path even in the overlapped total.
    """

    def __init__(self, cfg: MachineConfig, coeffs: GemmCoeffs) -> None:
        self.cfg = cfg
        self.coeffs = coeffs
        self.dma = 0.0
        self.serial = 0.0
        self.compute = 0.0
        self.startup = 0.0
        self.saw_pipelined = False

    def visit(
        self, node: Node, trips: float, in_pipeline: bool,
        pipe_extent: int = 0,
    ) -> None:
        if isinstance(node, SeqNode):
            for child in node.body:
                self.visit(child, trips, in_pipeline, pipe_extent)
        elif isinstance(node, ForNode):
            if node.pipelined:
                self.saw_pipelined = True
            self.visit(
                node.body,
                trips * node.extent,
                in_pipeline or node.pipelined,
                node.extent if node.pipelined else pipe_extent,
            )
        elif isinstance(node, IfThenElseNode):
            # static model: charge the then-branch (boundary regions are
            # peeled by the lowering, so real kernels rarely carry ifs)
            self.visit(node.then_body, trips, in_pipeline, pipe_extent)
            if node.else_body is not None:
                self.visit(node.else_body, 0.0, in_pipeline, pipe_extent)
        elif isinstance(node, DmaCgNode):
            cost = trips * predict_dma(node, self.cfg)
            if in_pipeline and pipe_extent > 1:
                # a pipeline of E iterations hides (E-1)/E of its
                # traffic behind compute; the fill iteration stays on
                # the critical path
                hidden = (pipe_extent - 1) / pipe_extent
                self.dma += cost * hidden
                self.serial += cost * (1.0 - hidden)
            else:
                self.serial += cost
        elif isinstance(node, GemmOpNode):
            self.compute += trips * predict_gemm(
                node.m, node.n, node.k, node.variant, self.coeffs
            )
        elif isinstance(node, ZeroSpmNode):
            # small vectorised memset, same form the executor charges
            self.compute += trips * 32.0
        elif isinstance(node, ComputeOpNode):
            self.compute += trips * node.cycles
