"""The performance-model-based autotuner (Sec. 4.6).

For every legal candidate the tuner runs the optimizer pipeline (cheap
IR rewrites), evaluates the static cost model, and finally executes
only the predicted-best candidate -- this is what collapses tuning time
from hours (black-box) to seconds/minutes while staying within a few
percent of the true optimum (Fig. 9, Tab. 3).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..dsl.compute import ComputeDef, ROLE_OUTPUT
from ..dsl.schedule import ScheduleSpace
from ..errors import TuningError
from ..machine.config import MachineConfig, default_config
from ..optimizer.dma_inference import infer_dma
from ..optimizer.prefetch import apply_prefetch
from ..scheduler.enumerate import Candidate, EnumerationStats, iter_candidates
from ..scheduler.lower import LoweringOptions
from .calibrate import default_coeffs
from .cost_model import GemmCoeffs, predict_kernel
from .result import CandidateScore, TuningResult


def synthetic_feeds(
    compute: ComputeDef, seed: int = 0
) -> Dict[str, np.ndarray]:
    """Deterministic random inputs for every non-output tensor."""
    rng = np.random.default_rng(seed)
    feeds = {}
    for name, spec in compute.tensors.items():
        if spec.role == ROLE_OUTPUT:
            continue
        shape = compute.tensor_shape(name)
        feeds[name] = rng.standard_normal(shape).astype(np.float32)
    return feeds


def tune_with_model(
    compute: ComputeDef,
    space: ScheduleSpace,
    *,
    coeffs: Optional[GemmCoeffs] = None,
    config: Optional[MachineConfig] = None,
    options: Optional[LoweringOptions] = None,
    prefetch: bool = True,
    run_best: bool = True,
    feeds: Optional[Dict[str, np.ndarray]] = None,
    keep_scores: bool = False,
    top_k: int = 1,
) -> TuningResult:
    """Rank all candidates analytically; execute the best.

    ``top_k > 1`` re-measures the k best predictions and keeps the
    fastest -- the paper's "pick best (or top k)" refinement.
    """
    cfg = config or default_config()
    model = coeffs or default_coeffs(cfg)
    t0 = time.perf_counter()

    stats = EnumerationStats()
    scored: List[CandidateScore] = []
    for cand in iter_candidates(
        compute, space, options=options, config=cfg, stats=stats
    ):
        kernel = infer_dma(cand.kernel, compute, cfg)
        if prefetch:
            kernel = apply_prefetch(kernel)
        pred = predict_kernel(kernel, model, cfg)
        scored.append(
            CandidateScore(
                candidate=Candidate(cand.strategy, kernel, compute),
                predicted_cycles=pred.total,
            )
        )
    if not scored:
        raise TuningError(
            f"schedule space of {compute.name!r} has no legal candidates"
        )
    scored.sort(key=lambda s: s.predicted_cycles or float("inf"))

    finalists = scored[: max(1, top_k)]
    best = finalists[0]
    report = None
    if run_best:
        from ..codegen.executor import CompiledKernel

        data = feeds if feeds is not None else synthetic_feeds(compute)
        reports = {}
        for s in finalists:
            # candidates carry already-optimized IR: bind directly
            ck = CompiledKernel(s.candidate.kernel, compute, cfg)
            rep = ck.run(data).report
            s.measured_cycles = rep.cycles
            reports[id(s)] = rep
        finalists.sort(key=lambda s: s.measured_cycles or float("inf"))
        best = finalists[0]
        report = reports[id(best)]

    wall = time.perf_counter() - t0
    return TuningResult(
        best=best,
        space_size=stats.declared,
        legal_count=stats.legal,
        evaluated=len(scored),
        wall_seconds=wall,
        method="model",
        scores=scored if keep_scores else [],
        report=report,
    )
