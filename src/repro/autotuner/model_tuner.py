"""The performance-model-based autotuner (Sec. 4.6).

For every legal candidate the engine runs the optimizer pipeline (cheap
IR rewrites) and the static cost model; only the predicted-best
candidate(s) are executed -- this is what collapses tuning time from
hours (black-box) to seconds/minutes while staying within a few percent
of the true optimum (Fig. 9, Tab. 3).

Candidate preparation and scoring route through :mod:`repro.engine`:
the :class:`~repro.engine.CandidatePipeline` owns the
enumerate -> optimize loop, evaluators own prediction/execution, and
``evaluate_batch`` fans the work out over ``workers`` processes.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace
from ..errors import SanitizerError, TuningError, ValidationError
from ..machine.config import MachineConfig, default_config
from ..scheduler.lower import LoweringOptions
from ..engine import (
    AnalyticEvaluator,
    CandidatePipeline,
    Evaluator,
    MemoizingEvaluator,
    SimulatorEvaluator,
    ValidatingEvaluator,
    evaluate_batch,
    resolve_validate,
    search_candidates,
    synthetic_feeds,
)
from ..primitives.microkernel import schedule_memo_stats
from .cost_model import GemmCoeffs
from .result import CandidateScore, TuningResult

__all__ = ["synthetic_feeds", "tune_with_model"]


def _memo_salt(options: Optional[LoweringOptions], prefetch: bool):
    """Context that changes the lowered kernel without changing the
    (compute, strategy) pair -- must split memo entries."""
    opts = (
        None
        if options is None
        else (options.double_buffer, options.min_vec_extent)
    )
    return (opts, bool(prefetch))


def tune_with_model(
    compute: ComputeDef,
    space: ScheduleSpace,
    *,
    coeffs: Optional[GemmCoeffs] = None,
    config: Optional[MachineConfig] = None,
    options: Optional[LoweringOptions] = None,
    prefetch: bool = True,
    run_best: bool = True,
    feeds: Optional[Dict[str, np.ndarray]] = None,
    keep_scores: bool = False,
    top_k: int = 1,
    workers: Optional[int] = None,
    memoize: bool = True,
    prune: Optional[bool] = None,
    checkpoint: Union[None, str, Path] = None,
    resume_from: Union[None, str, Path] = None,
    validate: Optional[str] = None,
) -> TuningResult:
    """Rank all candidates analytically; execute the best.

    ``top_k > 1`` re-measures the k best predictions and keeps the
    fastest -- the paper's "pick best (or top k)" refinement.
    ``workers`` parallelizes evaluation (``None`` inherits the
    process-wide default, see ``repro.engine.set_default_workers``);
    ``memoize`` reuses measured runs of strategies already executed
    anywhere in this process.  ``prune`` enables branch-and-bound
    pruning (``None`` inherits the process-wide default, see
    ``repro.engine.set_default_prune``): candidates whose admissible
    cost bound exceeds the ``top_k``-th best prediction so far are
    never lowered or scored.  The winner and the re-measured top-K are
    bit-identical either way; only ``evaluated`` and the stage
    counters change.

    ``checkpoint`` names a sidecar the search updates at every batch
    boundary; ``resume_from`` both names it and restores it, so an
    interrupted ``tune_with_model`` finishes with a bit-identical
    result.  Candidates quarantined by supervision (see
    DESIGN.md "Failure model & recovery") are excluded from ranking;
    tuning only fails if *every* candidate was quarantined.

    ``validate`` selects differential validation (``None`` inherits the
    process-wide default, see ``repro.engine.set_default_validate``):
    ``"winner"`` validates the selected winner against the NumPy
    reference before returning (falling through to the next finalist on
    failure), ``"all"`` validates every measured candidate.  On a
    fault-free space validation never changes the winner -- it is a
    check, not a perturbation.
    """
    cfg = config or default_config()
    mode = resolve_validate(validate)
    t0 = time.perf_counter()
    ukernel_before = schedule_memo_stats().hits
    if resume_from is not None:
        checkpoint, resume = resume_from, True
    else:
        resume = None

    pipeline = CandidatePipeline(
        compute, space, options=options, config=cfg, prefetch=prefetch
    )
    analytic = AnalyticEvaluator(coeffs, cfg)
    pairs = search_candidates(
        pipeline,
        analytic,
        top_k=max(1, top_k),
        workers=workers,
        prune=prune,
        checkpoint=checkpoint,
        resume=resume,
    )
    if not pairs:
        raise TuningError(
            f"schedule space of {compute.name!r} has no legal candidates"
        )
    usable = [(c, e) for c, e in pairs if not e.failed]
    if not usable:
        raise TuningError(
            f"every candidate of {compute.name!r} was quarantined "
            f"({len(pairs)} failures); see the engine events for the "
            f"failure chain"
        )

    scored = [
        CandidateScore(candidate=c, predicted_cycles=e.predicted_cycles)
        for c, e in usable
    ]
    scored.sort(key=lambda s: s.predicted_cycles or float("inf"))

    finalists = scored[: max(1, top_k)]
    best = finalists[0]
    report = None
    if run_best:
        data = feeds if feeds is not None else synthetic_feeds(compute)
        simulator: Evaluator = SimulatorEvaluator(data, cfg)
        if mode == "all":
            simulator = ValidatingEvaluator(simulator, cfg)
        if memoize:
            simulator = MemoizingEvaluator(
                simulator, salt=_memo_salt(options, prefetch)
            )
        measured = evaluate_batch(
            [s.candidate for s in finalists],
            simulator,
            workers=workers,
            metrics=pipeline.metrics,
        )
        if all(evaluation.failed for evaluation in measured):
            raise TuningError(
                f"every finalist of {compute.name!r} was quarantined "
                f"during measurement; see the engine events for the "
                f"failure chain"
            )
        for score, evaluation in zip(finalists, measured):
            if evaluation.failed:
                continue  # keeps measured_cycles None -> sorts last
            score.measured_cycles = evaluation.measured_cycles
            score.report = evaluation.report
        finalists.sort(key=lambda s: s.measured_cycles or float("inf"))
        best = finalists[0]
        report = best.report

    if mode != "off":
        # winner validation: take the best candidate that passes the
        # differential check; with mode "all" + run_best the evaluator
        # wrapper already validated every measured finalist.
        pool = (
            [s for s in finalists if s.measured_cycles is not None]
            if run_best
            else scored
        )
        chosen = None
        for score in pool:
            if run_best and mode == "all":
                chosen = score
                break
            try:
                pipeline.validate(score.candidate)
            except (ValidationError, SanitizerError):
                continue
            chosen = score
            break
        if chosen is None:
            raise TuningError(
                f"every candidate of {compute.name!r} failed "
                f"differential validation; see the engine events for "
                f"the failure chain"
            )
        best = chosen
        report = best.report

    wall = time.perf_counter() - t0
    pipeline.metrics.ukernel_memo_hits += (
        schedule_memo_stats().hits - ukernel_before
    )
    return TuningResult(
        best=best,
        space_size=pipeline.stats.declared,
        legal_count=pipeline.stats.legal,
        evaluated=len(scored),
        wall_seconds=wall,
        method="model",
        scores=scored if keep_scores else [],
        report=report,
        metrics=pipeline.metrics,
    )
