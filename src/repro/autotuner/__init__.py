"""Autotuning (Sec. 4.6): static cost model, calibration, tuners."""

from .blackbox import tune_blackbox
from .calibrate import (
    DEFAULT_GRID,
    calibration_samples,
    default_coeffs,
    fit_all,
    fit_quality,
    fit_variant,
)
from .cost_model import (
    GemmCoeffs,
    PredictedTime,
    eq2_features,
    predict_dma,
    predict_gemm,
    predict_kernel,
)
from .model_tuner import synthetic_feeds, tune_with_model
from .result import CandidateScore, TuningResult

__all__ = [
    "predict_kernel",
    "predict_gemm",
    "predict_dma",
    "eq2_features",
    "PredictedTime",
    "GemmCoeffs",
    "fit_variant",
    "fit_all",
    "fit_quality",
    "default_coeffs",
    "calibration_samples",
    "DEFAULT_GRID",
    "tune_with_model",
    "tune_blackbox",
    "synthetic_feeds",
    "CandidateScore",
    "TuningResult",
]
