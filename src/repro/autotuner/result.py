"""Tuning result records shared by both autotuners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..engine.metrics import EngineMetrics
from ..machine.trace import SimReport
from ..scheduler.enumerate import Candidate


@dataclass
class CandidateScore:
    """One candidate's evaluation.

    The measured :class:`SimReport` (when the candidate was executed)
    travels *on* the score -- keying reports by ``id(score)`` on the
    side, as the model tuner once did, breaks as soon as a score is
    copied or collected.
    """

    candidate: Candidate
    predicted_cycles: Optional[float] = None
    measured_cycles: Optional[float] = None
    report: Optional[SimReport] = None

    @property
    def cycles(self) -> float:
        if self.measured_cycles is not None:
            return self.measured_cycles
        if self.predicted_cycles is not None:
            return self.predicted_cycles
        raise ValueError("candidate was never evaluated")


@dataclass
class TuningResult:
    """Outcome of tuning one operator configuration."""

    best: CandidateScore
    space_size: int          # declared schedule-space size
    legal_count: int         # candidates surviving pruning
    evaluated: int           # candidates actually scored
    wall_seconds: float      # tuning time (the Tab. 3 quantity)
    method: str              # "model" or "blackbox"
    scores: List[CandidateScore] = field(default_factory=list)
    report: Optional[SimReport] = None  # measured run of the winner
    metrics: Optional[EngineMetrics] = None  # per-stage engine accounting

    def summary(self) -> str:
        cyc = (
            f"{self.report.cycles:.3g} cycles (measured)"
            if self.report is not None
            else f"{self.best.cycles:.3g} cycles"
        )
        text = (
            f"[{self.method}] space={self.space_size} legal={self.legal_count} "
            f"evaluated={self.evaluated} wall={self.wall_seconds:.2f}s best={cyc}"
        )
        if self.metrics is not None:
            text += f"\n  engine: {self.metrics.describe()}"
            if self.metrics.events or self.metrics.events_dropped:
                text += f"\n  resilience: {self.metrics.describe_events()}"
        return text
