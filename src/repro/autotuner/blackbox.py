"""The black-box autotuner: brute-force baseline (Sec. 4.6, Tab. 3).

"Generates code for all schedule IRs and picks the best one by
collecting real execution time."  Every legal candidate is compiled and
executed on the simulated machine; the wall-clock cost of doing so is
exactly the tuning-time penalty Tab. 3 quantifies against the
model-based tuner.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..codegen.executor import CompiledKernel
from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace
from ..errors import TuningError
from ..machine.config import MachineConfig, default_config
from ..optimizer.dma_inference import infer_dma
from ..optimizer.prefetch import apply_prefetch
from ..scheduler.enumerate import Candidate, EnumerationStats, iter_candidates
from ..scheduler.lower import LoweringOptions
from .model_tuner import synthetic_feeds
from .result import CandidateScore, TuningResult


def tune_blackbox(
    compute: ComputeDef,
    space: ScheduleSpace,
    *,
    config: Optional[MachineConfig] = None,
    options: Optional[LoweringOptions] = None,
    prefetch: bool = True,
    feeds: Optional[Dict[str, np.ndarray]] = None,
    keep_scores: bool = False,
    limit: Optional[int] = None,
) -> TuningResult:
    """Execute every legal candidate; return the measured best.

    ``limit`` caps the number of executed candidates (used by smoke
    benches; the paper's black-box numbers use the full space).
    """
    cfg = config or default_config()
    data = feeds if feeds is not None else synthetic_feeds(compute)
    t0 = time.perf_counter()

    stats = EnumerationStats()
    scores: List[CandidateScore] = []
    best: Optional[CandidateScore] = None
    best_report = None
    for cand in iter_candidates(
        compute, space, options=options, config=cfg, stats=stats
    ):
        kernel = infer_dma(cand.kernel, compute, cfg)
        if prefetch:
            kernel = apply_prefetch(kernel)
        ck = CompiledKernel(kernel, compute, cfg)
        report = ck.run(data).report
        score = CandidateScore(
            candidate=Candidate(cand.strategy, kernel, compute),
            measured_cycles=report.cycles,
        )
        if keep_scores:
            scores.append(score)
        if best is None or report.cycles < (best.measured_cycles or float("inf")):
            best = score
            best_report = report
        if limit is not None and stats.legal >= limit:
            break
    if best is None:
        raise TuningError(
            f"schedule space of {compute.name!r} has no legal candidates"
        )
    wall = time.perf_counter() - t0
    return TuningResult(
        best=best,
        space_size=stats.declared,
        legal_count=stats.legal,
        evaluated=stats.legal,
        wall_seconds=wall,
        method="blackbox",
        scores=scores,
        report=best_report,
    )
