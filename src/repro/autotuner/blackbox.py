"""The black-box autotuner: brute-force baseline (Sec. 4.6, Tab. 3).

"Generates code for all schedule IRs and picks the best one by
collecting real execution time."  Every legal candidate is compiled and
executed on the simulated machine; the wall-clock cost of doing so is
exactly the tuning-time penalty Tab. 3 quantifies against the
model-based tuner.

Preparation and execution route through :mod:`repro.engine`;
``workers > 1`` fans candidate executions out over worker processes
with order-stable, bit-identical results.  Memoization defaults *off*
here: the black-box tuner exists to measure the true cost of brute
force, and answering from a warm memo would corrupt that measurement
(pass ``memoize=True`` to opt in when the cost is not the point).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace
from ..errors import SanitizerError, TuningError, ValidationError
from ..machine.config import MachineConfig, default_config
from ..scheduler.lower import LoweringOptions
from ..engine import (
    CandidatePipeline,
    Evaluator,
    MemoizingEvaluator,
    SimulatorEvaluator,
    ValidatingEvaluator,
    resolve_validate,
    search_candidates,
    synthetic_feeds,
)
from .model_tuner import _memo_salt
from .result import CandidateScore, TuningResult


def tune_blackbox(
    compute: ComputeDef,
    space: ScheduleSpace,
    *,
    config: Optional[MachineConfig] = None,
    options: Optional[LoweringOptions] = None,
    prefetch: bool = True,
    feeds: Optional[Dict[str, np.ndarray]] = None,
    keep_scores: bool = False,
    limit: Optional[int] = None,
    workers: Optional[int] = None,
    memoize: bool = False,
    prune: bool = False,
    checkpoint: Union[None, str, Path] = None,
    resume_from: Union[None, str, Path] = None,
    validate: Optional[str] = None,
) -> TuningResult:
    """Execute every legal candidate; return the measured best.

    ``limit`` caps the number of executed candidates (used by smoke
    benches; the paper's black-box numbers use the full space).
    ``workers`` parallelizes execution (``None`` inherits the
    process-wide default, see ``repro.engine.set_default_workers``).
    ``prune`` defaults *off* and deliberately ignores the process-wide
    pruning default, for the same reason ``memoize`` does: this tuner
    exists to measure the true cost of brute force.  Opt in explicitly
    when the cost is not the point -- the admissible bound holds
    against measured cycles too, so the winner is unchanged.

    ``checkpoint``/``resume_from`` checkpoint the (pruned) search at
    batch boundaries exactly as in ``tune_with_model``; the exhaustive
    path is a single batch with nothing to resume.  Quarantined
    candidates (see DESIGN.md "Failure model & recovery") are excluded
    from the winner; tuning only fails when *every* candidate was
    quarantined.

    ``validate`` selects differential validation exactly as in
    ``tune_with_model``: ``"winner"`` checks the measured best against
    the NumPy reference before returning (falling through to the next
    score on failure), ``"all"`` validates every execution.
    """
    cfg = config or default_config()
    mode = resolve_validate(validate)
    data = feeds if feeds is not None else synthetic_feeds(compute)
    t0 = time.perf_counter()

    pipeline = CandidatePipeline(
        compute, space, options=options, config=cfg, prefetch=prefetch
    )
    simulator: Evaluator = SimulatorEvaluator(data, cfg)
    if mode == "all":
        simulator = ValidatingEvaluator(simulator, cfg)
    if memoize:
        simulator = MemoizingEvaluator(
            simulator, salt=_memo_salt(options, prefetch)
        )
    if resume_from is not None:
        checkpoint, resume = resume_from, True
    else:
        resume = None
    pairs = search_candidates(
        pipeline,
        simulator,
        workers=workers,
        prune=bool(prune),
        limit=limit,
        checkpoint=checkpoint,
        resume=resume,
    )
    if not pairs:
        raise TuningError(
            f"schedule space of {compute.name!r} has no legal candidates"
        )
    usable = [(c, e) for c, e in pairs if not e.failed]
    if not usable:
        raise TuningError(
            f"every candidate of {compute.name!r} was quarantined "
            f"({len(pairs)} failures); see the engine events for the "
            f"failure chain"
        )

    scores = [
        CandidateScore(
            candidate=c,
            measured_cycles=e.measured_cycles,
            report=e.report,
        )
        for c, e in usable
    ]
    # min() keeps the first of equals -- same tie-break as the seed's
    # strict-less scan, so results are stable across worker counts.
    best = min(scores, key=lambda s: s.measured_cycles or float("inf"))

    if mode == "winner":
        # mode "all" already validated every execution via the wrapper;
        # here only the returned winner needs the differential check,
        # falling through to the next measured score on failure.
        ordered = sorted(
            scores, key=lambda s: s.measured_cycles or float("inf")
        )
        chosen = None
        for score in ordered:
            try:
                pipeline.validate(score.candidate)
            except (ValidationError, SanitizerError):
                continue
            chosen = score
            break
        if chosen is None:
            raise TuningError(
                f"every candidate of {compute.name!r} failed "
                f"differential validation; see the engine events for "
                f"the failure chain"
            )
        best = chosen

    wall = time.perf_counter() - t0
    return TuningResult(
        best=best,
        space_size=pipeline.stats.declared,
        legal_count=pipeline.stats.legal,
        evaluated=len(scores),
        wall_seconds=wall,
        method="blackbox",
        scores=scores if keep_scores else [],
        report=best.report,
        metrics=pipeline.metrics,
    )
