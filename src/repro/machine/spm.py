"""Scratch-pad memory (SPM) planning.

Each CPE owns 64 KB of software-managed SPM.  Real SW26010 kernels plan
their scratch-pad statically: every buffer gets a fixed offset and the
kernel is rejected at build time if the plan overflows.  swATOP's code
generator does the same ("allocates all buffers into a single coalesced
region", Sec. 4.7) and its scheduler uses the plan to prune candidates
whose tiles do not fit.

The plan is per-CPE: a buffer that holds one 8x8-distributed tile of
size ``total`` costs ``total/64`` bytes on each CPE.  Double-buffered
buffers (software prefetching, Sec. 4.5.2) cost twice their size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import SpmCapacityError
from .config import MachineConfig, default_config


@dataclass(frozen=True)
class SpmBuffer:
    """One planned scratch-pad buffer.

    ``bytes_per_cpe`` is the footprint of a *single* copy on one CPE;
    ``double_buffered`` doubles the reserved space.
    """

    name: str
    bytes_per_cpe: int
    double_buffered: bool = False
    offset: int = -1  # assigned by the planner

    @property
    def reserved_bytes(self) -> int:
        return self.bytes_per_cpe * (2 if self.double_buffered else 1)


@dataclass
class SpmPlan:
    """A complete static SPM layout for one kernel."""

    buffers: Dict[str, SpmBuffer] = field(default_factory=dict)
    total_bytes: int = 0
    capacity: int = 64 * 1024

    def offset_of(self, name: str) -> int:
        return self.buffers[name].offset

    def buffer_at(self, byte_offset: int) -> Optional[str]:
        """Name of the buffer whose reserved region contains
        ``byte_offset``, or ``None`` for a gap / past-the-end offset.
        The sanitizer uses this to name the victim of an SPM overflow."""
        for name, buf in self.buffers.items():
            if buf.offset <= byte_offset < buf.offset + buf.reserved_bytes:
                return name
        return None

    def __contains__(self, name: str) -> bool:
        return name in self.buffers

    @property
    def utilization(self) -> float:
        return self.total_bytes / self.capacity if self.capacity else 0.0


class SpmAllocator:
    """Static first-fit (bump) planner for the per-CPE scratch pad.

    Buffers are aligned to the vector width so vector loads never
    straddle; exceeding the 64 KB capacity raises
    :class:`SpmCapacityError`, which the scheduler treats as "candidate
    invalid" rather than as a failure.
    """

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or default_config()

    def plan(self, buffers: Iterable[SpmBuffer]) -> SpmPlan:
        cfg = self.config
        align = cfg.vector_bytes
        offset = 0
        planned: Dict[str, SpmBuffer] = {}
        for buf in buffers:
            if buf.name in planned:
                raise SpmCapacityError(f"duplicate SPM buffer {buf.name!r}")
            if buf.bytes_per_cpe <= 0:
                raise SpmCapacityError(
                    f"SPM buffer {buf.name!r} has non-positive size"
                )
            offset = -(-offset // align) * align
            planned[buf.name] = SpmBuffer(
                name=buf.name,
                bytes_per_cpe=buf.bytes_per_cpe,
                double_buffered=buf.double_buffered,
                offset=offset,
            )
            offset += planned[buf.name].reserved_bytes
        if offset > cfg.spm_bytes:
            raise SpmCapacityError(
                f"SPM plan needs {offset} B/CPE but only "
                f"{cfg.spm_bytes} B available "
                f"(buffers: {', '.join(planned)})"
            )
        return SpmPlan(buffers=planned, total_bytes=offset, capacity=cfg.spm_bytes)

    def fits(self, buffers: Iterable[SpmBuffer]) -> bool:
        """True when the buffers can be planned without overflow."""
        try:
            self.plan(buffers)
            return True
        except SpmCapacityError:
            return False


def tile_bytes_per_cpe(
    tile_elems: int,
    config: Optional[MachineConfig] = None,
    *,
    distributed: bool = True,
) -> int:
    """SPM cost of a tile of ``tile_elems`` elements.

    ``distributed=True`` models the swATOP convention that GEMM operand
    tiles are split 8x8 across the cluster (each CPE holds 1/64); a
    replicated buffer (e.g. a small transform matrix) costs its full
    size on every CPE.  The per-CPE share is rounded *up* -- boundary
    CPEs hold the padded remainder.
    """
    cfg = config or default_config()
    nbytes = tile_elems * cfg.dtype_bytes
    if distributed:
        return -(-nbytes // cfg.cpes_per_cg)
    return nbytes


def partition_extent(extent: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``extent`` into ``parts`` contiguous (start, length) chunks,
    distributing the remainder over the leading chunks (the standard
    8-way row/column partition of cluster GEMM).  Trailing chunks may be
    empty when ``extent < parts``."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    base, rem = divmod(extent, parts)
    chunks: List[Tuple[int, int]] = []
    start = 0
    for p in range(parts):
        length = base + (1 if p < rem else 0)
        chunks.append((start, length))
        start += length
    return chunks
