"""Machine description of the SW26010 many-core processor.

All architectural constants of the simulated target live here, in one
immutable dataclass, so that every layer (primitives, cost model,
executor) reads the *same* machine description.  The defaults reproduce
the SW26010 as described in Sec. 2 of the swATOP paper and in the
benchmarking literature it cites (Xu et al., IPDPSW'17):

* 4 core groups (CGs); each CG = 1 MPE + 8x8 CPE cluster + 1 memory
  controller, peak 3.06 TFLOPS chip-wide;
* 64 KB software-managed scratch pad memory (SPM) per CPE;
* DMA engine for main-memory <-> SPM transfers (fast, ~22.6 GB/s
  achieved) vs. global load/store (slow, 1.48 GB/s);
* DRAM accessed in 128-byte transactions -- a transaction is paid in
  full even if one byte is touched (Sec. 4.6);
* 8x8 mesh register communication between CPEs (row/column broadcast);
* two in-order issue pipelines per CPE: P0 (floating point & vector)
  and P1 (memory); both issue scalar integer ops;
* 256-bit vectors = 4 x float32 lanes in our single-precision setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Mapping

#: Instruction classes understood by the dual-issue pipeline model.
#: "p0" = arithmetic pipe, "p1" = memory pipe, "any" = either pipe.
PIPE_P0 = "p0"
PIPE_P1 = "p1"
PIPE_ANY = "any"


def _default_latencies() -> Mapping[str, int]:
    """Result latency (cycles until a dependent instruction may issue).

    The values follow the SW26010 micro-architecture descriptions used
    by swDNN/xMath: fused vector multiply-add has a long (7-cycle)
    latency, which is exactly why the 4x4 register-blocking scheme is
    needed to keep the pipe hazard-free (Appendix 9).
    """
    return {
        "vmad": 7,    # 256-bit fused multiply-accumulate
        "vadd": 4,
        "vmul": 4,
        "vldd": 4,    # vector load from SPM
        "vstd": 1,    # store: result "ready" immediately for issue purposes
        "vlddr": 5,   # vector load + row broadcast (register comm)
        "vlddc": 5,   # vector load + column broadcast
        "vldder": 6,  # scalar load + extend + row broadcast
        "vlddec": 6,  # scalar load + extend + column broadcast
        "ldd": 3,     # scalar load from SPM
        "std": 1,
        "iop": 1,     # scalar integer op (address arithmetic, branches)
        "getr": 4,    # receive from row bus
        "getc": 4,    # receive from column bus
        "putr": 1,    # send to row bus
        "putc": 1,
    }


def _default_pipes() -> Mapping[str, str]:
    """Which pipeline each instruction class issues on."""
    return {
        "vmad": PIPE_P0,
        "vadd": PIPE_P0,
        "vmul": PIPE_P0,
        "vldd": PIPE_P1,
        "vstd": PIPE_P1,
        "vlddr": PIPE_P1,
        "vlddc": PIPE_P1,
        "vldder": PIPE_P1,
        "vlddec": PIPE_P1,
        "ldd": PIPE_P1,
        "std": PIPE_P1,
        "iop": PIPE_ANY,
        "getr": PIPE_P1,
        "getc": PIPE_P1,
        "putr": PIPE_P1,
        "putc": PIPE_P1,
    }


@dataclass(frozen=True)
class MachineConfig:
    """Immutable architectural description of the simulated SW26010."""

    # --- topology -----------------------------------------------------
    num_cgs: int = 4
    cluster_rows: int = 8
    cluster_cols: int = 8

    # --- clocks & compute ---------------------------------------------
    clock_hz: float = 1.5e9
    #: float32 lanes in a 256-bit vector register.
    vector_lanes: int = 4
    #: vmad = mul+add on `vector_lanes` lanes.
    flops_per_vmad: int = 8

    # --- memory hierarchy ----------------------------------------------
    spm_bytes: int = 64 * 1024
    #: per-CG theoretical peak DRAM bandwidth (chip: 4 x 34 = 136 GB/s).
    dram_peak_bw: float = 34.0e9
    #: DRAM transaction granularity: a touched transaction is paid in full.
    dram_transaction_bytes: int = 128
    #: fixed DMA start-up overhead per descriptor batch, in cycles.
    dma_latency_cycles: int = 1650
    #: per-descriptor issue overhead on the CPE side, in cycles.
    dma_issue_cycles: int = 25
    #: global load/store bandwidth per CPE (the slow path), bytes/s.
    gld_bw: float = 1.48e9
    #: alignment of main-memory allocations, bytes.
    mem_align: int = 128

    # --- register communication -----------------------------------------
    regcomm_latency_cycles: int = 4
    #: payload bytes movable per cycle per CPE on a row or column bus.
    regcomm_bytes_per_cycle: int = 32
    #: cycles lost when the communication pattern (row<->col, producer
    #: set) changes between two bursts (Sec. 4.6: "latency to switch
    #: register communication pattern").
    regcomm_switch_cycles: int = 12

    # --- kernel-call overheads (structural constants of the hand-written
    # --- assembly kernels; see primitives.gemm_kernel) -------------------
    kernel_call_cycles: int = 420
    loop_overhead_cycles: int = 9

    # --- dtype ----------------------------------------------------------
    dtype_bytes: int = 4  # float32

    # --- pipeline model ---------------------------------------------------
    # (excluded from equality/hash so configs stay usable as cache keys;
    # the tables are only ever replaced wholesale in tests)
    latencies: Mapping[str, int] = field(
        default_factory=_default_latencies, compare=False
    )
    pipes: Mapping[str, str] = field(default_factory=_default_pipes, compare=False)

    # ------------------------------------------------------------------
    @property
    def cpes_per_cg(self) -> int:
        return self.cluster_rows * self.cluster_cols

    @property
    def vector_bytes(self) -> int:
        return self.vector_lanes * self.dtype_bytes

    @property
    def cg_peak_flops(self) -> float:
        """Peak single-precision FLOP/s of one core group."""
        return self.cpes_per_cg * self.flops_per_vmad * self.clock_hz

    @property
    def chip_peak_flops(self) -> float:
        return self.num_cgs * self.cg_peak_flops

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Per-CG DRAM bandwidth expressed in bytes per CPE-clock cycle."""
        return self.dram_peak_bw / self.clock_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.clock_hz

    def with_overrides(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given fields replaced (for what-if
        studies and tests)."""
        return replace(self, **kwargs)


def config_signature(config: MachineConfig) -> tuple:
    """Full hashable identity of a machine description.

    Dataclass equality/hash deliberately exclude the ``latencies`` and
    ``pipes`` tables (so configs stay cheap dict keys), which makes the
    *config object itself* unsafe as a cache key: two configs differing
    only in a latency table hash alike and silently share cached cost
    results.  Every cache whose value depends on instruction timing
    (micro-kernel schedules, Eq. (2) calibration fits, evaluation
    memos) must key on this signature instead.
    """
    sig = []
    for f in fields(config):
        value = getattr(config, f.name)
        if isinstance(value, Mapping):
            sig.append((f.name, tuple(sorted(value.items()))))
        else:
            sig.append((f.name, value))
    return tuple(sig)


#: The default machine description used throughout the library.
SW26010 = MachineConfig()


def default_config() -> MachineConfig:
    """Return the canonical SW26010 machine description."""
    return SW26010
