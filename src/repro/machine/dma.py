"""DMA engine of one core group.

CPEs move data between main memory and their SPM through asynchronous
DMA in either *continuous* or *strided* mode (Sec. 4.1): a descriptor
names a main-memory base address, a total size, a contiguous block
size, and a stride (the byte *gap* between consecutive blocks -- e.g.
the paper's column-tile example uses ``block = M/8`` elements and
``stride = 7M/8``).

Timing is DRAM-transaction accurate (Sec. 4.6): memory is read in
128-byte transactions and a touched transaction is paid in full, so a
badly aligned or finely strided access pattern pays real *waste* bytes.
This is exactly the effect Eq. (1) of the cost model approximates, and
keeping the simulator's accounting exact (per actual address) while the
model assumes 128-byte-aligned first blocks is one source of the
model-vs-reality gap measured in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DmaError
from .config import MachineConfig, default_config
from .memory import MainMemory, transaction_bytes

#: transfer directions
MEM_TO_SPM = "mem_to_spm"
SPM_TO_MEM = "spm_to_mem"


@dataclass(frozen=True)
class DmaDescriptor:
    """One CPE's DMA request.

    ``size`` is the total payload in bytes; it is carved into blocks of
    ``block`` bytes placed ``block + stride`` apart in main memory
    (``stride`` = gap).  ``size`` needs not be a multiple of ``block``;
    the final block is short.
    """

    mem_addr: int
    size: int
    block: int
    stride: int
    direction: str
    cpe_id: int = 0

    def __post_init__(self) -> None:
        if self.direction not in (MEM_TO_SPM, SPM_TO_MEM):
            raise DmaError(f"bad direction {self.direction!r}")
        if self.size < 0 or self.block <= 0 or self.stride < 0:
            raise DmaError(
                f"bad geometry size={self.size} block={self.block} "
                f"stride={self.stride}"
            )
        if self.mem_addr < 0:
            raise DmaError("negative main-memory address")

    def blocks(self) -> List[Tuple[int, int]]:
        """(address, length) of each main-memory block touched."""
        if self.size == 0:
            return []
        if self.stride == 0:
            return [(self.mem_addr, self.size)]
        out: List[Tuple[int, int]] = []
        remaining = self.size
        addr = self.mem_addr
        step = self.block + self.stride
        while remaining > 0:
            length = min(self.block, remaining)
            out.append((addr, length))
            remaining -= length
            addr += step
        return out


@dataclass
class ReplyWord:
    """Completion counter a CPE spins on (``swDMAWait``)."""

    count: int = 0

    def bump(self, n: int = 1) -> None:
        self.count += n

    def satisfied(self, times: int) -> bool:
        return self.count >= times


@dataclass(frozen=True)
class DmaCost:
    """Timing outcome of one batch of descriptors."""

    cycles: float
    payload_bytes: int
    paid_bytes: int

    @property
    def waste_bytes(self) -> int:
        return self.paid_bytes - self.payload_bytes


class DmaEngine:
    """Timing + functional model of one CG's DMA path.

    The engine itself is stateless about time: it computes how long a
    batch takes; the executor owns the timeline and decides when the
    reply word fires (that is how asynchronous overlap / double
    buffering is simulated).
    """

    def __init__(
        self,
        memory: MainMemory,
        config: Optional[MachineConfig] = None,
    ) -> None:
        self.memory = memory
        self.config = config or default_config()

    # --- timing ------------------------------------------------------------
    def cost(self, descriptors: Sequence[DmaDescriptor]) -> DmaCost:
        """Cycles for a batch of descriptors issued together.

        All CPEs of a cluster issue their descriptors simultaneously
        (the common case: one ``DMA_CG`` expanded to 64 ``DMA_CPE``), so
        the batch shares one start-up latency; the transmission term is
        the *total* transaction-padded traffic over the CG's memory
        controller at peak bandwidth.
        """
        cfg = self.config
        payload = 0
        paid = 0
        for desc in descriptors:
            for addr, length in desc.blocks():
                p, _ = transaction_bytes(addr, length, cfg.dram_transaction_bytes)
                payload += length
                paid += p
        if paid == 0:
            return DmaCost(0.0, 0, 0)
        cycles = (
            cfg.dma_latency_cycles
            + cfg.dma_issue_cycles
            + paid / cfg.dram_bytes_per_cycle
        )
        return DmaCost(cycles, payload, paid)

    # --- functional ------------------------------------------------------------
    def gather(self, desc: DmaDescriptor) -> np.ndarray:
        """Execute a mem->SPM descriptor; returns the payload bytes in
        SPM order (blocks concatenated)."""
        if desc.direction != MEM_TO_SPM:
            raise DmaError("gather requires a mem_to_spm descriptor")
        parts = [
            self.memory.read_bytes(addr, length) for addr, length in desc.blocks()
        ]
        if not parts:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(parts)

    def scatter(self, desc: DmaDescriptor, payload: np.ndarray) -> None:
        """Execute an SPM->mem descriptor, writing ``payload`` (flat
        bytes in SPM order) back to the strided main-memory pattern."""
        if desc.direction != SPM_TO_MEM:
            raise DmaError("scatter requires a spm_to_mem descriptor")
        payload = np.asarray(payload, dtype=np.uint8).reshape(-1)
        if payload.nbytes != desc.size:
            raise DmaError(
                f"payload of {payload.nbytes} B != descriptor size {desc.size} B"
            )
        offset = 0
        for addr, length in desc.blocks():
            self.memory.write_bytes(addr, payload[offset : offset + length])
            offset += length


def cg_tile_descriptors(
    base_addr: int,
    rows: int,
    cols: int,
    row_stride_bytes: int,
    elem_bytes: int,
    direction: str,
    *,
    grid_rows: int,
    grid_cols: int,
) -> List[DmaDescriptor]:
    """Expand a 2-D CG-level tile access into per-CPE descriptors.

    The ``rows x cols`` tile (element strides: ``row_stride_bytes``
    between rows, contiguous within a row) is partitioned into a
    ``grid_rows x grid_cols`` grid; CPE ``(rid, cid)`` transfers the
    ``(rid, cid)`` sub-tile.  This is the DMA-inference rule of
    Sec. 4.5.1 in executable form; the IR pass emits exactly these
    descriptors.
    """
    from .spm import partition_extent  # local import to avoid cycle

    descs: List[DmaDescriptor] = []
    row_parts = partition_extent(rows, grid_rows)
    col_parts = partition_extent(cols, grid_cols)
    for rid in range(grid_rows):
        r0, rlen = row_parts[rid]
        for cid in range(grid_cols):
            c0, clen = col_parts[cid]
            cpe = rid * grid_cols + cid
            if rlen == 0 or clen == 0:
                continue
            block = clen * elem_bytes
            addr = base_addr + r0 * row_stride_bytes + c0 * elem_bytes
            stride = row_stride_bytes - block
            if stride < 0:
                raise DmaError(
                    f"tile wider than its row stride: block={block} "
                    f"row_stride={row_stride_bytes}"
                )
            descs.append(
                DmaDescriptor(
                    mem_addr=addr,
                    size=rlen * block,
                    block=block,
                    stride=stride,
                    direction=direction,
                    cpe_id=cpe,
                )
            )
    return descs
