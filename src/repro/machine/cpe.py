"""A single computing processing element (CPE).

Holds the per-core state the rest of the stack cares about: the 64 KB
scratch pad (functionally a flat float32 array), the core's (row,
column) position in the 8x8 mesh -- which determines its DMA offsets
and register-communication buses -- and convenience accessors used by
the faithful per-CPE execution mode in tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SpmCapacityError
from .config import MachineConfig, default_config


class Cpe:
    """One CPE: position in the mesh + functional SPM contents."""

    def __init__(
        self,
        rid: int,
        cid: int,
        config: Optional[MachineConfig] = None,
    ) -> None:
        self.config = config or default_config()
        if not (0 <= rid < self.config.cluster_rows):
            raise ValueError(f"row id {rid} out of range")
        if not (0 <= cid < self.config.cluster_cols):
            raise ValueError(f"column id {cid} out of range")
        self.rid = rid
        self.cid = cid
        self._spm = np.zeros(
            self.config.spm_bytes // self.config.dtype_bytes, dtype=np.float32
        )

    @property
    def cpe_id(self) -> int:
        return self.rid * self.config.cluster_cols + self.cid

    @property
    def spm_elems(self) -> int:
        return self._spm.size

    # --- SPM access (element-granular; offsets are in elements) ----------
    def spm_write(self, offset: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float32).reshape(-1)
        self._check(offset, data.size)
        self._spm[offset : offset + data.size] = data

    def spm_read(self, offset: int, count: int) -> np.ndarray:
        self._check(offset, count)
        return self._spm[offset : offset + count].copy()

    def spm_view(self, offset: int, count: int) -> np.ndarray:
        """Zero-copy window (kernel-internal use)."""
        self._check(offset, count)
        return self._spm[offset : offset + count]

    def spm_clear(self) -> None:
        self._spm[:] = 0.0

    def _check(self, offset: int, count: int) -> None:
        if count < 0 or offset < 0 or offset + count > self._spm.size:
            raise SpmCapacityError(
                f"SPM access [{offset}, {offset + count}) outside "
                f"[0, {self._spm.size}) on CPE ({self.rid},{self.cid})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cpe(rid={self.rid}, cid={self.cid})"
