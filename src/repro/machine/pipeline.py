"""In-order dual-issue pipeline model of one CPE.

Each CPE decodes/issues on two pipelines: P0 (floating-point and vector
arithmetic) and P1 (memory); scalar integer ops may issue on either
(Sec. 2).  Issue is in-order: at most one instruction per pipeline per
cycle, and a stalled instruction blocks everything behind it.  A
Read-After-Write hazard stalls until the producing instruction's result
latency has elapsed.

The GEMM micro-kernels (Appendix 9) are *derived* from this model
rather than hard-coded: ``primitives.microkernel`` builds the
instruction sequence of one inner-loop iteration of each of the eight
kernel variants and asks :func:`schedule` for its cycle count.  A
hazard-free 4x4 register-blocked iteration comes out at 16 ``vmad`` in
16 cycles -- the figure the paper quotes -- and unfavourable layouts
come out slower because their extra scalar loads saturate P1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import PipelineError
from .config import PIPE_ANY, PIPE_P0, PIPE_P1, MachineConfig, default_config


@dataclass(frozen=True)
class Instr:
    """One abstract instruction.

    ``op`` must be a key of ``MachineConfig.latencies``; ``dst`` is the
    written register name (or ``None``); ``srcs`` are read registers.
    Register names are free-form strings ("v0", "a_ptr", ...).
    """

    op: str
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()

    @staticmethod
    def make(op: str, dst: Optional[str] = None, *srcs: str) -> "Instr":
        return Instr(op, dst, tuple(srcs))


@dataclass
class IssueRecord:
    """Where/when one instruction issued (for tests and debugging)."""

    instr: Instr
    cycle: int
    pipe: str


@dataclass
class ScheduleResult:
    """Outcome of scheduling an instruction sequence."""

    cycles: int
    records: List[IssueRecord] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return len(self.records) / self.cycles if self.cycles else 0.0

    def issue_cycle(self, index: int) -> int:
        return self.records[index].cycle

    def stalls(self) -> int:
        """Cycles in which nothing issued (bubble count)."""
        busy = {r.cycle for r in self.records}
        return self.cycles - len(busy)


def schedule(
    instrs: Sequence[Instr],
    config: Optional[MachineConfig] = None,
    *,
    initial_ready: Optional[Dict[str, int]] = None,
) -> ScheduleResult:
    """Schedule ``instrs`` on the dual-issue in-order pipeline.

    Returns the cycle count from first issue to the cycle after the
    last *issue* (issue-limited model: write-back drain is charged to
    the consumer via latency, matching how kernel authors count
    steady-state loop cycles).  ``initial_ready`` pre-populates register
    availability, which lets callers model a loop iteration whose
    inputs were produced late in the previous iteration.
    """
    cfg = config or default_config()
    ready: Dict[str, int] = dict(initial_ready or {})
    records: List[IssueRecord] = []
    cycle = 0
    free_pipe = {PIPE_P0: -1, PIPE_P1: -1}  # last cycle each pipe issued

    for instr in instrs:
        if instr.op not in cfg.latencies:
            raise PipelineError(f"unknown instruction class {instr.op!r}")
        pipe_class = cfg.pipes[instr.op]

        # RAW hazard: cannot issue before all sources are ready.
        earliest = cycle
        for src in instr.srcs:
            earliest = max(earliest, ready.get(src, 0))

        # Structural hazard: the target pipe issues one instr/cycle.
        if pipe_class == PIPE_ANY:
            # Greedy: pick the pipe that lets us issue soonest (ties -> P1
            # to keep P0 free for arithmetic, as hand schedulers do).
            cand = []
            for pipe in (PIPE_P1, PIPE_P0):
                cand.append((max(earliest, free_pipe[pipe] + 1), pipe))
            issue_at, pipe = min(cand)
        else:
            pipe = pipe_class
            issue_at = max(earliest, free_pipe[pipe] + 1)

        # In-order issue: later instructions never issue before this one.
        cycle = issue_at
        free_pipe[pipe] = issue_at
        if instr.dst is not None:
            ready[instr.dst] = issue_at + cfg.latencies[instr.op]
        records.append(IssueRecord(instr, issue_at, pipe))

    total = (records[-1].cycle + 1) if records else 0
    return ScheduleResult(cycles=total, records=records)


def steady_state_cycles(
    body: Sequence[Instr],
    config: Optional[MachineConfig] = None,
    *,
    warmup_iters: int = 3,
    probe_iters: int = 2,
    schedule_fn: Optional[Callable[..., ScheduleResult]] = None,
) -> int:
    """Per-iteration cycle cost of ``body`` executed as a loop.

    Schedules ``warmup_iters + probe_iters`` unrolled copies (with
    registers renamed per iteration *not* applied -- loop-carried names
    are kept, so accumulation hazards across iterations are honoured)
    and reports the marginal cost of one steady-state iteration.

    ``schedule_fn`` substitutes for :func:`schedule` (same call
    contract); the micro-kernel layer passes its memoized wrapper here
    so repeated derivations of the same body are answered from cache.
    """
    if not body:
        return 0
    if warmup_iters < 1 or probe_iters < 1:
        raise PipelineError("need at least one warmup and one probe iteration")
    run = schedule_fn or schedule
    seq_a = list(body) * warmup_iters
    seq_b = list(body) * (warmup_iters + probe_iters)
    a = run(seq_a, config).cycles
    b = run(seq_b, config).cycles
    per_iter = (b - a) / probe_iters
    return int(round(per_iter))
