"""SW26010 vector ISA helpers.

The SW instruction set extensions the swATOP kernels rely on
(Appendix 9) are modelled as two things:

* *instruction builders* producing :class:`~.pipeline.Instr` sequences
  for the pipeline scheduler (timing), and
* *functional* NumPy equivalents (semantics), used in tests to check
  that the modelled instructions compute what their names promise.

Two load flavours matter for kernel-variant selection:

* ``vlddr``/``vlddc`` -- load **four contiguous** floats from SPM as one
  vector and broadcast it along the row/column bus.  Requires the
  accessed dimension to be contiguous (leading) in the SPM layout.
* ``vldder``/``vlddec`` -- load **one** float, extend it into a vector of
  four copies, and broadcast.  Works for any layout but moves 4x less
  payload per issue slot, so layouts that force it lose throughput.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import PipelineError
from .pipeline import Instr

VECTOR_LANES = 4


# --------------------------------------------------------------------------
# instruction builders
# --------------------------------------------------------------------------
def load_vector(dst: str, src_ptr: str) -> Instr:
    """Plain vector load from SPM (``vldd``)."""
    return Instr.make("vldd", dst, src_ptr)


def store_vector(src: str, dst_ptr: str) -> Instr:
    """Vector store to SPM (``vstd``)."""
    return Instr.make("vstd", None, src, dst_ptr)


def load_bcast_vector(dst: str, src_ptr: str, axis: str) -> Instr:
    """``vlddr``/``vlddc``: contiguous 4-float load + row/col broadcast."""
    if axis == "row":
        return Instr.make("vlddr", dst, src_ptr)
    if axis == "col":
        return Instr.make("vlddc", dst, src_ptr)
    raise PipelineError(f"broadcast axis must be 'row' or 'col', got {axis!r}")


def load_bcast_scalar(dst: str, src_ptr: str, axis: str) -> Instr:
    """``vldder``/``vlddec``: single-float load + extend + broadcast."""
    if axis == "row":
        return Instr.make("vldder", dst, src_ptr)
    if axis == "col":
        return Instr.make("vlddec", dst, src_ptr)
    raise PipelineError(f"broadcast axis must be 'row' or 'col', got {axis!r}")


def vmad(acc: str, a: str, b: str) -> Instr:
    """Fused vector multiply-add: ``acc += a * b`` (reads acc too)."""
    return Instr.make("vmad", acc, a, b, acc)


def addr_update(ptr: str) -> Instr:
    """Pointer bump (scalar integer op, issues on either pipe)."""
    return Instr.make("iop", ptr, ptr)


def loop_control(counter: str) -> List[Instr]:
    """Decrement-and-branch pair closing a loop."""
    return [Instr.make("iop", counter, counter), Instr.make("iop", None, counter)]


# --------------------------------------------------------------------------
# functional semantics (for tests)
# --------------------------------------------------------------------------
def f_vmad(acc: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Functional ``vmad``: elementwise fused multiply-add on 4 lanes."""
    acc = np.asarray(acc, dtype=np.float32)
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    for v in (acc, a, b):
        if v.shape != (VECTOR_LANES,):
            raise PipelineError(f"vmad operand shape {v.shape} != ({VECTOR_LANES},)")
    return acc + a * b


def f_extend(x: float) -> np.ndarray:
    """Functional scalar extend: one float replicated over 4 lanes."""
    return np.full(VECTOR_LANES, np.float32(x), dtype=np.float32)


def f_load_vector(spm: np.ndarray, offset: int) -> np.ndarray:
    """Functional contiguous 4-float load from a flat SPM array."""
    if offset < 0 or offset + VECTOR_LANES > spm.size:
        raise PipelineError(
            f"vector load [{offset}, {offset + VECTOR_LANES}) outside SPM "
            f"of {spm.size} elements"
        )
    return np.asarray(spm[offset : offset + VECTOR_LANES], dtype=np.float32).copy()


def vectorizable(extent: int, lanes: int = VECTOR_LANES) -> bool:
    """Whether a dimension of the given extent can be fully vectorized
    without boundary handling."""
    return extent % lanes == 0


def vector_chunks(extent: int, lanes: int = VECTOR_LANES) -> int:
    """Number of vector registers needed to cover ``extent`` elements
    (boundary chunk included)."""
    return -(-extent // lanes)
