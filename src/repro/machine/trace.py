"""Event tracing and simulation reports.

The executor and the primitives record *events* (DMA transfers, kernel
invocations, transform stages) onto a :class:`Trace`.  A finished run is
summarised into a :class:`SimReport`, the object every benchmark and
experiment consumes: simulated cycles/seconds, DMA vs. compute
breakdown, bytes moved (including DRAM-transaction waste), achieved
GFLOPS and efficiency against peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .config import MachineConfig, default_config


@dataclass(frozen=True)
class TraceEvent:
    """One timed event on the simulated machine.

    ``kind`` is a small vocabulary: ``"dma"``, ``"gemm"``, ``"transform"``,
    ``"gld"``, ``"overhead"``.  ``start``/``end`` are cycle stamps on the
    owning core group's timeline.
    """

    kind: str
    start: float
    end: float
    detail: str = ""
    bytes_moved: int = 0
    waste_bytes: int = 0
    flops: int = 0

    @property
    def cycles(self) -> float:
        return self.end - self.start


class Trace:
    """Append-only event log for one simulated run on one CG."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    def add(
        self,
        kind: str,
        start: float,
        end: float,
        detail: str = "",
        bytes_moved: int = 0,
        waste_bytes: int = 0,
        flops: int = 0,
    ) -> TraceEvent:
        ev = TraceEvent(kind, start, end, detail, bytes_moved, waste_bytes, flops)
        self.record(ev)
        return ev

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def total_cycles(self, kind: str) -> float:
        """Total *busy* cycles of the given event kind (may overlap other
        kinds, e.g. DMA overlapping compute under double buffering)."""
        return sum(e.cycles for e in self._events if e.kind == kind)

    def span(self) -> float:
        """End-to-end cycle span covered by the trace."""
        if not self._events:
            return 0.0
        return max(e.end for e in self._events) - min(e.start for e in self._events)


@dataclass
class SimReport:
    """Summary of a simulated execution.

    ``cycles`` is the end-to-end makespan (on the critical CG when a
    kernel is sharded across core groups).  ``dma_cycles`` and
    ``compute_cycles`` are busy times and may sum to more than
    ``cycles`` when DMA is overlapped with computation.
    """

    cycles: float
    dma_cycles: float = 0.0
    compute_cycles: float = 0.0
    bytes_moved: int = 0
    waste_bytes: int = 0
    flops: int = 0
    num_cgs_used: int = 1
    detail: str = ""
    config: MachineConfig = field(default_factory=default_config)

    @property
    def seconds(self) -> float:
        return self.config.cycles_to_seconds(self.cycles)

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s (0 when no time elapsed)."""
        if self.cycles <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the peak of the CGs actually used."""
        peak = self.num_cgs_used * self.config.cg_peak_flops
        if self.cycles <= 0 or peak <= 0:
            return 0.0
        return (self.flops / self.seconds) / peak

    @property
    def overlap_fraction(self) -> float:
        """How much of the DMA busy time was hidden behind compute."""
        serial = self.dma_cycles + self.compute_cycles
        if serial <= 0:
            return 0.0
        hidden = max(0.0, serial - self.cycles)
        return hidden / serial

    def speedup_over(self, other: "SimReport") -> float:
        """``other.cycles / self.cycles`` -- >1 means *self* is faster."""
        if self.cycles <= 0:
            raise ZeroDivisionError("report has zero cycles")
        return other.cycles / self.cycles

    @classmethod
    def from_trace(
        cls,
        trace: Trace,
        *,
        makespan: Optional[float] = None,
        num_cgs_used: int = 1,
        config: Optional[MachineConfig] = None,
        detail: str = "",
    ) -> "SimReport":
        cfg = config or default_config()
        events = trace.events()
        return cls(
            cycles=trace.span() if makespan is None else makespan,
            dma_cycles=trace.total_cycles("dma") + trace.total_cycles("gld"),
            compute_cycles=trace.total_cycles("gemm")
            + trace.total_cycles("transform"),
            bytes_moved=sum(e.bytes_moved for e in events),
            waste_bytes=sum(e.waste_bytes for e in events),
            flops=sum(e.flops for e in events),
            num_cgs_used=num_cgs_used,
            config=cfg,
            detail=detail,
        )

    @staticmethod
    def merge_parallel(reports: List["SimReport"], detail: str = "") -> "SimReport":
        """Combine per-CG reports of one kernel sharded across core
        groups: makespan = max, traffic/flops = sum."""
        if not reports:
            raise ValueError("no reports to merge")
        cfg = reports[0].config
        return SimReport(
            cycles=max(r.cycles for r in reports),
            dma_cycles=sum(r.dma_cycles for r in reports),
            compute_cycles=sum(r.compute_cycles for r in reports),
            bytes_moved=sum(r.bytes_moved for r in reports),
            waste_bytes=sum(r.waste_bytes for r in reports),
            flops=sum(r.flops for r in reports),
            num_cgs_used=sum(r.num_cgs_used for r in reports),
            config=cfg,
            detail=detail,
        )

    @staticmethod
    def merge_serial(reports: List["SimReport"], detail: str = "") -> "SimReport":
        """Combine reports of stages executed back-to-back on the same
        CG(s): makespan = sum, traffic/flops = sum."""
        if not reports:
            raise ValueError("no reports to merge")
        cfg = reports[0].config
        return SimReport(
            cycles=sum(r.cycles for r in reports),
            dma_cycles=sum(r.dma_cycles for r in reports),
            compute_cycles=sum(r.compute_cycles for r in reports),
            bytes_moved=sum(r.bytes_moved for r in reports),
            waste_bytes=sum(r.waste_bytes for r in reports),
            flops=sum(r.flops for r in reports),
            num_cgs_used=max(r.num_cgs_used for r in reports),
            config=cfg,
            detail=detail,
        )
