"""The 8x8 CPE cluster of one core group.

Bundles the 64 :class:`~.cpe.Cpe` cores, the register-communication
mesh, and the DMA engine into one object.  Two execution styles use it:

* the **faithful** per-CPE mode (tests): data is genuinely distributed
  over the 64 scratch pads via per-CPE DMA descriptors, GEMM operands
  are exchanged through the register mesh, and results are asserted
  against NumPy -- validating the distribution/offset arithmetic of the
  DMA-inference pass end to end;
* the **fast** CG-level mode (executor, benchmarks): tiles are stored
  as whole arrays, while timing still uses the per-CPE descriptor
  geometry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import DmaError
from .config import MachineConfig, default_config
from .cpe import Cpe
from .dma import MEM_TO_SPM, SPM_TO_MEM, DmaDescriptor, DmaEngine
from .memory import MainMemory
from .regcomm import RegCommMesh
from .sanitizer import RegCommChecker, sanitize_default
from .spm import partition_extent
from .trace import Trace


class CpeCluster:
    """8x8 CPEs + register mesh + DMA engine of one core group."""

    def __init__(
        self,
        memory: Optional[MainMemory] = None,
        config: Optional[MachineConfig] = None,
    ) -> None:
        self.config = config or default_config()
        self.memory = memory or MainMemory(config=self.config)
        self.dma = DmaEngine(self.memory, self.config)
        self.mesh = RegCommMesh(self.config)
        if sanitize_default():
            self.mesh.attach_checker(RegCommChecker())
        self.cpes: List[Cpe] = [
            Cpe(r, c, self.config)
            for r in range(self.config.cluster_rows)
            for c in range(self.config.cluster_cols)
        ]
        self.trace = Trace()

    def cpe(self, rid: int, cid: int) -> Cpe:
        return self.cpes[rid * self.config.cluster_cols + cid]

    # --- faithful per-CPE DMA execution ------------------------------------
    def dma_in(self, descriptors: Sequence[DmaDescriptor], spm_offset: int) -> None:
        """Execute mem->SPM descriptors, landing each CPE's payload at
        ``spm_offset`` (in elements) in that CPE's scratch pad."""
        eb = self.config.dtype_bytes
        for desc in descriptors:
            if desc.direction != MEM_TO_SPM:
                raise DmaError("dma_in needs mem_to_spm descriptors")
            payload = self.dma.gather(desc)
            if payload.nbytes % eb:
                raise DmaError("payload not element aligned")
            self.cpes[desc.cpe_id].spm_write(
                spm_offset, payload.view(np.float32)
            )

    def dma_out(self, descriptors: Sequence[DmaDescriptor], spm_offset: int) -> None:
        """Execute SPM->mem descriptors from each CPE's scratch pad."""
        eb = self.config.dtype_bytes
        for desc in descriptors:
            if desc.direction != SPM_TO_MEM:
                raise DmaError("dma_out needs spm_to_mem descriptors")
            count = desc.size // eb
            data = self.cpes[desc.cpe_id].spm_read(spm_offset, count)
            self.dma.scatter(desc, data.view(np.uint8))

    # --- faithful distributed GEMM reference --------------------------------
    def distributed_gemm(
        self,
        a_tiles: Dict[int, np.ndarray],
        b_tiles: Dict[int, np.ndarray],
        m: int,
        n: int,
        k: int,
    ) -> np.ndarray:
        """Reference cluster GEMM over register communication.

        ``a_tiles[cpe_id]`` holds CPE (rid, cid)'s block of A
        (rows ``rid``-partition of M x cols ``cid``-partition of K);
        ``b_tiles`` likewise blocks of B over (K by rid, N by cid).
        Each k-panel is broadcast: A blocks along rows (producer column
        advances round-robin) and B blocks along columns, after which
        every CPE accumulates its (rid, cid) block of C -- the Fig. 12
        scheme.  Returns the assembled M x N product for comparison
        against ``a @ b``.
        """
        cfg = self.config
        rows, cols = cfg.cluster_rows, cfg.cluster_cols
        m_parts = partition_extent(m, rows)
        n_parts = partition_extent(n, cols)
        k_parts_a = partition_extent(k, cols)  # A's K split over columns
        k_parts_b = partition_extent(k, rows)  # B's K split over rows
        c_blocks = [
            [np.zeros((m_parts[r][1], n_parts[c][1]), dtype=np.float32)
             for c in range(cols)]
            for r in range(rows)
        ]
        # One broadcast round per producer lane: column `p` broadcasts its
        # A panel on the row buses while row `p` broadcasts its B panel on
        # the column buses; the shared K range is their intersection-free
        # pairing because both partitions enumerate K in lane order.
        if rows != cols:
            raise DmaError("distributed_gemm assumes a square mesh")
        for p in range(cols):
            a_grid = [
                [a_tiles[r * cols + c] if c == p else None for c in range(cols)]
                for r in range(rows)
            ]
            a_recv = self.mesh.broadcast(a_grid, pattern=_row_pattern(p))
            b_grid = [
                [b_tiles[r * cols + c] if r == p else None for c in range(cols)]
                for r in range(rows)
            ]
            b_recv = self.mesh.broadcast(b_grid, pattern=_col_pattern(p))
            for r in range(rows):
                for c in range(cols):
                    a_blk = a_recv[r][c]  # (m_r, k_p) slice
                    b_blk = b_recv[r][c]  # (k_p, n_c) slice
                    if a_blk.size and b_blk.size:
                        c_blocks[r][c] += a_blk.astype(np.float32) @ b_blk.astype(
                            np.float32
                        )
        return np.block(c_blocks) if m and n else np.zeros((m, n), np.float32)


def _row_pattern(producer: int):
    from .regcomm import CommPattern

    return CommPattern("row", producer)


def _col_pattern(producer: int):
    from .regcomm import CommPattern

    return CommPattern("col", producer)


def split_tiles(
    mat: np.ndarray,
    grid_rows: int,
    grid_cols: int,
) -> Dict[int, np.ndarray]:
    """Partition a 2-D array into the cluster's (rid, cid) blocks,
    keyed by ``cpe_id`` -- the functional counterpart of
    :func:`~.dma.cg_tile_descriptors`."""
    r_parts = partition_extent(mat.shape[0], grid_rows)
    c_parts = partition_extent(mat.shape[1], grid_cols)
    tiles: Dict[int, np.ndarray] = {}
    for rid, (r0, rl) in enumerate(r_parts):
        for cid, (c0, cl) in enumerate(c_parts):
            tiles[rid * grid_cols + cid] = mat[r0 : r0 + rl, c0 : c0 + cl].copy()
    return tiles
