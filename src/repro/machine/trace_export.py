"""Trace export: Chrome tracing JSON and text timelines.

A :class:`~repro.machine.trace.Trace` can be exported to the Chrome
``chrome://tracing`` / Perfetto event format for visual inspection of
DMA/compute overlap, or rendered as a plain-text timeline for terminals
and docs.  Both views make the double-buffering behaviour of Fig. 10
directly visible.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .config import MachineConfig, default_config
from .trace import Trace

#: trace rows ("threads") per event kind
_LANE = {"dma": 1, "gld": 1, "gemm": 2, "transform": 2, "overhead": 3}
_LANE_NAME = {1: "DMA engine", 2: "CPE compute", 3: "overhead"}


def to_chrome_trace(
    trace: Trace,
    config: Optional[MachineConfig] = None,
    *,
    process_name: str = "SW26010 CG0",
) -> str:
    """Serialise a trace as Chrome tracing JSON (microsecond units)."""
    cfg = config or default_config()
    events: List[Dict] = []
    for lane, name in _LANE_NAME.items():
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": lane,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    events.append(
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    )
    for ev in trace:
        us = 1e6 / cfg.clock_hz
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": _LANE.get(ev.kind, 3),
                "name": ev.detail or ev.kind,
                "cat": ev.kind,
                "ts": ev.start * us,
                "dur": max(ev.cycles * us, 0.001),
                "args": {
                    "bytes_moved": ev.bytes_moved,
                    "waste_bytes": ev.waste_bytes,
                    "flops": ev.flops,
                },
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def render_timeline(
    trace: Trace,
    *,
    width: int = 72,
    max_rows: int = 40,
) -> str:
    """Plain-text two-lane timeline: ``#`` = DMA busy, ``=`` = compute.

    One character per time bucket; overlapping lanes printed on
    separate lines so the Fig. 10 overlap is visible at a glance.
    """
    events = trace.events()
    if not events:
        return "(empty trace)"
    t0 = min(e.start for e in events)
    t1 = max(e.end for e in events)
    span = max(t1 - t0, 1.0)
    scale = width / span

    def lane_chars(kinds: tuple, mark: str) -> str:
        cells = [" "] * width
        for ev in events:
            if ev.kind not in kinds:
                continue
            a = int((ev.start - t0) * scale)
            b = max(a + 1, int((ev.end - t0) * scale))
            for i in range(a, min(b, width)):
                cells[i] = mark
        return "".join(cells)

    lines = [
        f"timeline over {span:,.0f} cycles ('#' = DMA, '=' = compute)",
        "DMA     |" + lane_chars(("dma", "gld"), "#") + "|",
        "compute |" + lane_chars(("gemm", "transform"), "=") + "|",
    ]
    return "\n".join(lines)
