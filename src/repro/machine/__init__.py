"""Simulated SW26010 many-core processor (the substrate).

The hardware the paper measures on is inaccessible; this subpackage is
the deterministic, transaction- and pipeline-accurate stand-in (see
DESIGN.md Sec. 1 for the substitution argument).
"""

from .chip import Noc, Shard, run_sharded, shard_extent
from .cluster import CpeCluster, split_tiles
from .config import SW26010, MachineConfig, default_config
from .cpe import Cpe
from .dma import (
    MEM_TO_SPM,
    SPM_TO_MEM,
    DmaCost,
    DmaDescriptor,
    DmaEngine,
    ReplyWord,
    cg_tile_descriptors,
)
from .memory import Buffer, MainMemory, transaction_bytes
from .pipeline import Instr, ScheduleResult, schedule, steady_state_cycles
from .regcomm import CommPattern, RegCommMesh, gemm_broadcast_plan
from .sanitizer import (
    MachineSanitizer,
    RegCommChecker,
    resolve_sanitize,
    sanitize_default,
    set_sanitize,
)
from .spm import SpmAllocator, SpmBuffer, SpmPlan, partition_extent, tile_bytes_per_cpe
from .trace import SimReport, Trace, TraceEvent
from .trace_export import render_timeline, to_chrome_trace

__all__ = [
    "SW26010",
    "MachineConfig",
    "default_config",
    "MainMemory",
    "Buffer",
    "transaction_bytes",
    "SpmAllocator",
    "SpmBuffer",
    "SpmPlan",
    "partition_extent",
    "tile_bytes_per_cpe",
    "Instr",
    "ScheduleResult",
    "schedule",
    "steady_state_cycles",
    "CommPattern",
    "RegCommMesh",
    "MachineSanitizer",
    "RegCommChecker",
    "set_sanitize",
    "sanitize_default",
    "resolve_sanitize",
    "gemm_broadcast_plan",
    "DmaDescriptor",
    "DmaEngine",
    "DmaCost",
    "ReplyWord",
    "MEM_TO_SPM",
    "SPM_TO_MEM",
    "cg_tile_descriptors",
    "Cpe",
    "CpeCluster",
    "split_tiles",
    "Noc",
    "Shard",
    "shard_extent",
    "run_sharded",
    "SimReport",
    "Trace",
    "TraceEvent",
    "to_chrome_trace",
    "render_timeline",
]
