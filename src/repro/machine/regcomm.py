"""Register communication on the 8x8 CPE mesh.

The CPE cluster provides low-latency register-level data sharing: a CPE
can ``put`` a 256-bit value onto its row or column bus and every CPE in
the same row/column can ``get`` it (aggregate cluster bandwidth
647 GB/s per the benchmark the paper cites).  The cluster GEMM kernels
use it to broadcast A panels along rows and B panels along columns so
that each CPE, holding only 1/64 of the operands, can compute its tile
of C (Fig. 12).

This module gives the mesh a functional model (used by the faithful
per-CPE GEMM reference in tests) and a timing model (cycles per burst,
plus the pattern-switch penalty that appears in the paper's compute
cost discussion, Sec. 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import RegCommError
from .config import MachineConfig, default_config


@dataclass(frozen=True)
class CommPattern:
    """A register-communication pattern: who broadcasts on which bus.

    ``axis`` is ``"row"`` (producer broadcasts to its row) or ``"col"``;
    ``producer`` is the broadcasting lane index within each row/column.
    Changing pattern between bursts costs
    ``config.regcomm_switch_cycles``.
    """

    axis: str
    producer: int

    def __post_init__(self) -> None:
        if self.axis not in ("row", "col"):
            raise RegCommError(f"axis must be 'row' or 'col', got {self.axis!r}")
        if self.producer < 0:
            raise RegCommError("producer index must be non-negative")


class RegCommMesh:
    """Functional + timing model of the cluster's register buses."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *,
        checker=None,
    ) -> None:
        self.config = config or default_config()
        self._last_pattern: Optional[CommPattern] = None
        self.cycles_used: float = 0.0
        self.bytes_moved: int = 0
        self.switches: int = 0
        # optional sanitizer protocol checker (RegCommChecker); the
        # outstanding put/get mailbox is tracked even without one so
        # the async API below has functional semantics either way
        self.checker = checker
        self._outstanding = None

    def attach_checker(self, checker) -> None:
        """Attach a sanitizer :class:`RegCommChecker` (or ``None``)."""
        self.checker = checker

    # --- timing -----------------------------------------------------------
    def burst_cycles(self, payload_bytes: int, pattern: CommPattern) -> float:
        """Cycles for one broadcast burst of ``payload_bytes`` per bus.

        The first burst of a new pattern pays the switch penalty plus the
        wire latency; subsequent bursts of the same pattern are pipelined
        and pay only the throughput term.
        """
        cfg = self.config
        if payload_bytes < 0:
            raise RegCommError("negative payload")
        cycles = payload_bytes / cfg.regcomm_bytes_per_cycle
        if pattern != self._last_pattern:
            cycles += cfg.regcomm_switch_cycles + cfg.regcomm_latency_cycles
            self.switches += 1
            self._last_pattern = pattern
        self.cycles_used += cycles
        self.bytes_moved += payload_bytes
        return cycles

    def reset(self) -> None:
        self._last_pattern = None
        self.cycles_used = 0.0
        self.bytes_moved = 0
        self.switches = 0
        self._outstanding = None

    # --- asynchronous put/get protocol --------------------------------------
    def put(
        self,
        grid: List[List[Optional[np.ndarray]]],
        pattern: CommPattern,
    ) -> None:
        """Producer side of one bus transaction: latch ``grid`` on the
        bus under ``pattern``.  The bus is a one-deep mailbox -- real
        producers block until the matching :meth:`get` drains it, so a
        second ``put`` first is a protocol deadlock."""
        if self.checker is not None:
            self.checker.record_put(pattern)
        if self._outstanding is not None:
            raise RegCommError(
                "put before the previous transaction was drained by get"
            )
        self._outstanding = (grid, pattern)

    def get(self, pattern: CommPattern) -> List[List[np.ndarray]]:
        """Consumer side: drain the outstanding transaction.  The
        declared pattern must match what the producer put."""
        if self.checker is not None:
            self.checker.record_get(pattern)
        if self._outstanding is None:
            raise RegCommError("get with no outstanding put")
        grid, put_pattern = self._outstanding
        if pattern != put_pattern:
            raise RegCommError(
                f"get pattern {pattern} does not match put {put_pattern}"
            )
        self._outstanding = None
        return self.broadcast(grid, pattern)

    # --- functional ---------------------------------------------------------
    def broadcast(
        self,
        grid: List[List[Optional[np.ndarray]]],
        pattern: CommPattern,
    ) -> List[List[np.ndarray]]:
        """Broadcast values over the mesh.

        ``grid[r][c]`` holds the value each CPE *would* put on the bus
        (only the producer lane's value is used).  Returns the full
        received grid: under a ``row`` pattern every CPE in row ``r``
        receives ``grid[r][producer]``; under ``col`` every CPE in
        column ``c`` receives ``grid[producer][c]``.
        """
        cfg = self.config
        rows, cols = cfg.cluster_rows, cfg.cluster_cols
        if self.checker is not None:
            self.checker.record_broadcast(grid, pattern, cfg)
        if len(grid) != rows or any(len(row) != cols for row in grid):
            raise RegCommError(
                f"grid must be {rows}x{cols}, got "
                f"{len(grid)}x{len(grid[0]) if grid else 0}"
            )
        if pattern.axis == "row":
            if pattern.producer >= cols:
                raise RegCommError(
                    f"row-bus producer column {pattern.producer} out of range"
                )
            out = []
            for r in range(rows):
                src = grid[r][pattern.producer]
                if src is None:
                    raise RegCommError(f"producer ({r},{pattern.producer}) has no data")
                out.append([np.array(src, copy=True) for _ in range(cols)])
            return out
        if pattern.producer >= rows:
            raise RegCommError(
                f"col-bus producer row {pattern.producer} out of range"
            )
        out = [[None] * cols for _ in range(rows)]  # type: ignore[list-item]
        for c in range(cols):
            src = grid[pattern.producer][c]
            if src is None:
                raise RegCommError(f"producer ({pattern.producer},{c}) has no data")
            for r in range(rows):
                out[r][c] = np.array(src, copy=True)
        return out  # type: ignore[return-value]

    # --- accounting ----------------------------------------------------------
    def aggregate_bandwidth(self, elapsed_cycles: float) -> float:
        """Achieved aggregate bandwidth in bytes/s over all 64 CPEs
        (each consumer receives the payload, as in the 647 GB/s figure)."""
        cfg = self.config
        if elapsed_cycles <= 0:
            return 0.0
        consumers = cfg.cpes_per_cg
        delivered = self.bytes_moved * consumers
        return delivered / cfg.cycles_to_seconds(elapsed_cycles)


def gemm_broadcast_plan(
    k_steps: int,
    config: Optional[MachineConfig] = None,
) -> List[CommPattern]:
    """The alternating row/column broadcast sequence of the cluster GEMM.

    For each k-step the producing column (for A, row buses) and the
    producing row (for B, column buses) advance round-robin so every
    CPE's local panel gets its turn -- this is what makes the
    pattern-switch penalty a real term in the compute cost model.
    """
    cfg = config or default_config()
    plan: List[CommPattern] = []
    for k in range(k_steps):
        plan.append(CommPattern("row", k % cfg.cluster_cols))
        plan.append(CommPattern("col", k % cfg.cluster_rows))
    return plan
