"""Byte-addressed main memory of one core group.

The SW26010 is cache-free on the CPE side: every main-memory access goes
through the DMA engine (or the slow gld/gst path) in units of 128-byte
DRAM *transactions*.  To model transaction waste faithfully the memory
model is address-accurate: tensors are allocated at real byte offsets in
one flat ``numpy`` byte array, and DMA descriptors operate on those
offsets.  Functional reads/writes are plain NumPy views -- no copies
beyond what the simulated DMA itself performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import MainMemoryError
from .config import MachineConfig, default_config


@dataclass(frozen=True)
class Buffer:
    """A main-memory allocation: a named, typed, shaped window.

    ``addr`` is the byte address of element ``[0, 0, ...]``; the layout
    is row-major over ``shape`` (layout *transformations* are expressed
    by allocating a differently-shaped buffer and storing transposed
    data, exactly like real code does).
    """

    name: str
    addr: int
    shape: Tuple[int, ...]
    dtype: np.dtype

    @property
    def itemsize(self) -> int:
        return int(np.dtype(self.dtype).itemsize)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.itemsize

    @property
    def strides_elems(self) -> Tuple[int, ...]:
        """Row-major strides in *elements*."""
        strides = []
        acc = 1
        for extent in reversed(self.shape):
            strides.append(acc)
            acc *= extent
        return tuple(reversed(strides))

    def elem_addr(self, index: Tuple[int, ...]) -> int:
        """Byte address of the element at ``index``."""
        if len(index) != len(self.shape):
            raise MainMemoryError(
                f"index rank {len(index)} != buffer rank {len(self.shape)}"
            )
        off = 0
        for i, (idx, extent, stride) in enumerate(
            zip(index, self.shape, self.strides_elems)
        ):
            if not (0 <= idx < extent):
                raise MainMemoryError(
                    f"index {idx} out of range [0, {extent}) in dim {i} "
                    f"of buffer {self.name!r}"
                )
            off += idx * stride
        return self.addr + off * self.itemsize


class MainMemory:
    """Flat byte-addressed memory with a bump allocator.

    Allocations are aligned to ``config.mem_align`` (128 B) by default,
    matching how xMath/swDNN allocate tensors; tests also exercise
    deliberately *misaligned* allocations because transaction waste at
    unaligned boundaries is part of the DMA cost model.
    """

    def __init__(
        self,
        capacity_bytes: int = 1 << 30,
        config: Optional[MachineConfig] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise MainMemoryError("memory capacity must be positive")
        self.config = config or default_config()
        self.capacity = int(capacity_bytes)
        self._storage = np.zeros(self.capacity, dtype=np.uint8)
        self._next = 0
        self._buffers: Dict[str, Buffer] = {}

    # --- allocation ----------------------------------------------------
    def alloc(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype=np.float32,
        *,
        align: Optional[int] = None,
    ) -> Buffer:
        """Allocate a row-major tensor and return its :class:`Buffer`."""
        if name in self._buffers:
            raise MainMemoryError(f"buffer {name!r} already allocated")
        if any(int(s) <= 0 for s in shape):
            raise MainMemoryError(f"non-positive extent in shape {shape}")
        alignment = self.config.mem_align if align is None else int(align)
        if alignment <= 0:
            raise MainMemoryError("alignment must be positive")
        addr = -(-self._next // alignment) * alignment
        buf = Buffer(name, addr, tuple(int(s) for s in shape), np.dtype(dtype))
        if addr + buf.nbytes > self.capacity:
            raise MainMemoryError(
                f"out of simulated memory allocating {name!r} "
                f"({buf.nbytes} B at {addr}, capacity {self.capacity} B)"
            )
        self._next = addr + buf.nbytes
        self._buffers[name] = buf
        return buf

    def buffer(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise MainMemoryError(f"unknown buffer {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    @property
    def bytes_allocated(self) -> int:
        return self._next

    # --- functional access ----------------------------------------------
    def view(self, buf: Buffer) -> np.ndarray:
        """Writable NumPy view of the whole buffer (no copy)."""
        raw = self._storage[buf.addr : buf.addr + buf.nbytes]
        return raw.view(buf.dtype).reshape(buf.shape)

    def write(self, buf: Buffer, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=buf.dtype)
        if tuple(data.shape) != buf.shape:
            raise MainMemoryError(
                f"shape mismatch writing {buf.name!r}: "
                f"{data.shape} != {buf.shape}"
            )
        self.view(buf)[...] = data

    def read(self, buf: Buffer) -> np.ndarray:
        """Copy of the buffer contents (callers must not alias storage)."""
        return self.view(buf).copy()

    # --- raw byte access (used by the DMA engine) -------------------------
    def read_bytes(self, addr: int, nbytes: int) -> np.ndarray:
        self._check_range(addr, nbytes)
        return self._storage[addr : addr + nbytes]

    def write_bytes(self, addr: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        self._check_range(addr, data.nbytes)
        self._storage[addr : addr + data.nbytes] = data

    def _check_range(self, addr: int, nbytes: int) -> None:
        if nbytes < 0:
            raise MainMemoryError("negative byte count")
        if addr < 0 or addr + nbytes > self.capacity:
            raise MainMemoryError(
                f"access [{addr}, {addr + nbytes}) outside memory "
                f"[0, {self.capacity})"
            )


def transaction_bytes(addr: int, nbytes: int, txn: int) -> Tuple[int, int]:
    """DRAM traffic actually paid for a contiguous access.

    Returns ``(paid_bytes, waste_bytes)``: the access is rounded out to
    whole ``txn``-byte transactions; the difference is the boundary
    waste the swATOP cost model (Eq. 1) accounts for.
    """
    if nbytes <= 0:
        return 0, 0
    if txn <= 0:
        raise MainMemoryError("transaction size must be positive")
    first = (addr // txn) * txn
    last = -(-(addr + nbytes) // txn) * txn
    paid = last - first
    return paid, paid - nbytes
