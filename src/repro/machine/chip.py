"""Whole-chip model: four core groups.

DL-operator libraries on SW26010 (swDNN, xMath) scale a single-CG
kernel across the four core groups by sharding an outer dimension
(batch for convolutions, M or N for GEMM); each CG streams its shard
from its own memory controller, so there is no bandwidth contention,
and the chip time is the maximum over the shards.  The NoC is crossed
only when a shard's data does not live in its CG's DRAM; we expose a
simple NoC transfer cost for completeness and for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .config import MachineConfig, default_config
from .spm import partition_extent
from .trace import SimReport


@dataclass(frozen=True)
class Shard:
    """One CG's slice of a sharded outer dimension."""

    cg_id: int
    start: int
    length: int


def shard_extent(extent: int, config: Optional[MachineConfig] = None) -> List[Shard]:
    """Split an outer extent across the chip's core groups.

    Remainders go to the leading CGs; CGs whose slice is empty simply
    idle (a batch-1 conv runs on one CG, as in the paper's inference
    cases).
    """
    cfg = config or default_config()
    return [
        Shard(cg, start, length)
        for cg, (start, length) in enumerate(partition_extent(extent, cfg.num_cgs))
    ]


def run_sharded(
    extent: int,
    run_shard: Callable[[Shard], SimReport],
    config: Optional[MachineConfig] = None,
    *,
    detail: str = "",
) -> SimReport:
    """Execute ``run_shard`` for every non-empty shard and merge.

    Chip makespan = max over CGs; traffic and flops are summed;
    ``num_cgs_used`` counts only CGs that did work, so efficiency is
    reported against the peak of the silicon actually engaged (this is
    how the paper reports >2 TFLOPS on big-batch convs while batch-1
    numbers stay meaningful).
    """
    cfg = config or default_config()
    reports: List[SimReport] = []
    for shard in shard_extent(extent, cfg):
        if shard.length == 0:
            continue
        reports.append(run_shard(shard))
    if not reports:
        return SimReport(cycles=0.0, config=cfg, detail=detail)
    return SimReport.merge_parallel(reports, detail=detail)


class Noc:
    """Network-on-chip between the four core groups.

    Only used when data must migrate between CGs (e.g. a tensor
    resident in CG0's DRAM consumed by CG2).  Modelled as a shared ring
    with a fixed per-message latency and a bandwidth cap.
    """

    #: bytes per second of one NoC link (conservative public estimate).
    LINK_BW = 16.0e9
    LATENCY_CYCLES = 300

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or default_config()

    def transfer_cycles(self, nbytes: int, hops: int = 1) -> float:
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if nbytes == 0:
            return 0.0
        cfg = self.config
        bw_per_cycle = self.LINK_BW / cfg.clock_hz
        return self.LATENCY_CYCLES * hops + nbytes / bw_per_cycle
