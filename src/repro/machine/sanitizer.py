"""Machine sanitizer: shadow-state checking of functional execution.

Real SW26010 kernels fail in ways a timing simulator happily ignores: a
DMA descriptor that runs past its SPM buffer silently corrupts the
neighbouring buffer, a compute phase that touches the tile a prefetch
is still streaming into reads half-old data, a ``get`` with no matching
``put`` deadlocks the register mesh.  The sanitizer mirrors ASan/TSan
practice for this simulated machine: it keeps *shadow state* beside the
real functional state -- per-phase written-byte masks for every SPM
buffer, the set of (buffer, phase) pairs with an in-flight DMA, the
main-memory window each tensor is bound to, and the outstanding
register-bus transaction -- and raises a structured
:class:`~repro.errors.SanitizerError` naming the IR node, the buffer
and the byte range the moment an access violates them.

The sanitizer is strictly opt-in (``REPRO_SANITIZE=1`` in the
environment, ``--sanitize`` on the CLI, or ``sanitize=True`` on
:class:`~repro.codegen.executor.CompiledKernel`); when disabled the
executor holds a single ``None`` and pays one identity check per hook
site, so the timing path is untouched.

Checks (the ``check`` field of every :class:`SanitizerError`):

``spm-oob``
    a DMA tile or GEMM view larger than its SPM allocation; the error
    names the neighbouring buffer the overflow would corrupt.
``mem-oob``
    DMA geometry escaping the main-memory window its tensor is bound
    to, reported as an absolute byte range.
``uninit-read``
    a DMA-out or GEMM operand read of an SPM region no DMA, zero or
    GEMM ever wrote (conservatively: only regions *entirely* unwritten
    are flagged, so partially-written boundary tiles never false-positive).
``phase-race``
    compute or a synchronous DMA touching the (buffer, phase) a
    pipelined loop currently has a DMA in flight on.
``regcomm-deadlock`` / ``regcomm-mismatch``
    a second ``put`` before the matching ``get`` drains the bus, a
    ``get`` with nothing outstanding, or a ``get``/broadcast whose
    pattern disagrees with the outstanding ``put``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import SanitizerError

#: process-wide default installed by ``set_sanitize`` (CLI ``--sanitize``);
#: ``None`` defers to the ``REPRO_SANITIZE`` environment variable.
_DEFAULT_SANITIZE: Optional[bool] = None

ENV_SANITIZE = "REPRO_SANITIZE"
ENV_REPORT = "REPRO_SANITIZE_REPORT"


def set_sanitize(enabled: Optional[bool]) -> None:
    """Install the process-wide sanitizer default (``None`` resets to
    the ``REPRO_SANITIZE`` environment variable)."""
    global _DEFAULT_SANITIZE
    _DEFAULT_SANITIZE = None if enabled is None else bool(enabled)


def sanitize_default() -> bool:
    """The effective process-wide default."""
    if _DEFAULT_SANITIZE is not None:
        return _DEFAULT_SANITIZE
    return os.environ.get(ENV_SANITIZE, "").strip() not in ("", "0")


def resolve_sanitize(value: Optional[bool]) -> bool:
    """Resolve a per-call ``sanitize`` argument against the default."""
    return sanitize_default() if value is None else bool(value)


def _report(error: SanitizerError) -> None:
    """Append the failure to the report file (CI artifact), if bound."""
    path = os.environ.get(ENV_REPORT, "").strip()
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(f"{error.check}\t{error}\n")
    except OSError:
        pass  # reporting must never mask the error itself


def fail(
    check: str,
    message: str,
    *,
    node: str = "",
    buffer: str = "",
    byte_range: Optional[Tuple[int, int]] = None,
) -> None:
    """Raise (and report) a structured sanitizer failure."""
    err = SanitizerError(
        check, message, node=node, buffer=buffer, byte_range=byte_range
    )
    _report(err)
    raise err


def describe_node(node) -> str:
    """Stable one-line description of an IR node for error messages."""
    from ..ir.nodes import DmaCgNode, GemmOpNode, ZeroSpmNode
    from .dma import MEM_TO_SPM

    if isinstance(node, DmaCgNode):
        if node.direction == MEM_TO_SPM:
            return f"dma[{node.access.buffer}->spm:{node.spm}]"
        return f"dma[spm:{node.spm}->{node.access.buffer}]"
    if isinstance(node, GemmOpNode):
        return (
            f"gemm[{node.a_spm},{node.b_spm}->{node.c_spm} "
            f"m={node.m} n={node.n} k={node.k}]"
        )
    if isinstance(node, ZeroSpmNode):
        return f"zero[{node.spm}]"
    return type(node).__name__


class MachineSanitizer:
    """Shadow state for one :class:`CompiledKernel` run.

    Built by the executor only when sanitizing is resolved on; every
    executor hook is guarded by ``if self.san is not None`` so the
    disabled path costs nothing.
    """

    def __init__(self, kernel, config, spm_plan, storage_shapes) -> None:
        self.kernel = kernel
        self.config = config
        self.plan = spm_plan
        self.storage_shapes = storage_shapes
        self.checks = 0
        # main-memory windows: tensor -> (base byte addr, byte length)
        self._windows: Dict[str, Tuple[int, int]] = {}
        # shadow written masks per (buffer, phase)
        self._written: Dict[Tuple[str, int], np.ndarray] = {}
        self._phases: Dict[str, int] = {}
        self._dma_in_targets: set = set()
        # (buffer, phase) -> (iteration, issuing-node description)
        self._inflight: Dict[Tuple[str, int], Tuple[int, str]] = {}
        for alloc in kernel.allocs:
            n = 2 if alloc.double_buffered else 1
            self._phases[alloc.name] = n
            for p in range(n):
                self._written[(alloc.name, p)] = np.zeros(
                    alloc.shape, dtype=bool
                )

    # --- binding -----------------------------------------------------------
    def bind_window(self, name: str, addr: int, nbytes: int) -> None:
        self._windows[name] = (int(addr), int(nbytes))

    def set_dma_in_targets(self, targets) -> None:
        self._dma_in_targets = set(targets)

    def _phase(self, name: str, phase: int) -> int:
        return phase % self._phases.get(name, 1)

    # --- in-flight tracking (pipelined loops) ------------------------------
    def mark_inflight(self, spm: str, phase: int, iteration: int, node) -> None:
        self._inflight[(spm, self._phase(spm, phase))] = (
            iteration,
            describe_node(node),
        )

    def complete_iteration(self, iteration: int) -> None:
        self._inflight = {
            key: val
            for key, val in self._inflight.items()
            if val[0] != iteration
        }

    def _check_race(self, name: str, phase: int, kind: str, node) -> None:
        hit = self._inflight.get((name, self._phase(name, phase)))
        if hit is not None:
            iteration, issuer = hit
            fail(
                "phase-race",
                f"{kind} touches SPM buffer {name!r} phase "
                f"{self._phase(name, phase)} while {issuer} issued at "
                f"iteration {iteration} is still in flight",
                node=describe_node(node),
                buffer=name,
            )

    # --- the DMA checks ----------------------------------------------------
    def _check_spm_capacity(self, node, name: str) -> None:
        alloc = self.kernel.alloc(name)
        lengths = node.access.lengths
        for d, (length, cap) in enumerate(zip(lengths, alloc.shape)):
            if length <= cap:
                continue
            # quantify the per-CPE overflow and name the victim buffer
            from .spm import tile_bytes_per_cpe

            need = tile_bytes_per_cpe(
                int(np.prod(lengths, dtype=np.int64)),
                self.config,
                distributed=alloc.distributed,
            )
            planned = self.plan.buffers.get(name)
            detail = f"tile dim {d} has extent {length} > allocated {cap}"
            if planned is not None:
                excess = max(need - planned.bytes_per_cpe, 1)
                end = planned.offset + planned.reserved_bytes
                victim = self.plan.buffer_at(end)
                where = (
                    f"; the overflow would corrupt SPM buffer {victim!r}"
                    if victim is not None
                    else "; the overflow runs past the planned SPM region"
                )
                fail(
                    "spm-oob",
                    f"DMA tile overflows SPM buffer {name!r}: {detail}{where}",
                    node=describe_node(node),
                    buffer=name,
                    byte_range=(end, end + excess),
                )
            fail(
                "spm-oob",
                f"DMA tile overflows SPM buffer {name!r}: {detail}",
                node=describe_node(node),
                buffer=name,
            )

    def _check_mem_window(
        self, node, offs: Sequence[int]
    ) -> None:
        tensor = node.access.buffer
        shape = self.storage_shapes[tensor]
        lengths = node.access.lengths
        window = self._windows.get(tensor)
        bad = any(
            off < 0 or off + length > extent
            for off, length, extent in zip(offs, lengths, shape)
        )
        if not bad:
            return
        # byte range the descriptor would actually span, in absolute
        # main-memory addresses (clamped only for reporting)
        strides = [1] * len(shape)
        for i in range(len(shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * shape[i + 1]
        eb = self.config.dtype_bytes
        first = sum(o * s for o, s in zip(offs, strides))
        last = sum((o + l - 1) * s for o, l, s in zip(offs, lengths, strides))
        addr = window[0] if window is not None else 0
        span = f"[{first}, {last + 1}) of {int(np.prod(shape, dtype=np.int64))}"
        fail(
            "mem-oob",
            f"DMA geometry escapes tensor {tensor!r}: element range "
            f"{span} outside extents {tuple(shape)} "
            f"(offsets {tuple(offs)}, lengths {tuple(lengths)})",
            node=describe_node(node),
            buffer=tensor,
            byte_range=(addr + first * eb, addr + (last + 1) * eb),
        )

    def dma_in(self, node, offs: Sequence[int], phase: int) -> None:
        """Check a mem->SPM transfer, then shadow-mark the tile written."""
        self.checks += 1
        name = node.spm
        p = self._phase(name, phase)
        self._check_race(name, p, "synchronous DMA write", node)
        self._check_spm_capacity(node, name)
        self._check_mem_window(node, offs)
        # the move zeroes the tile then fills the region: whole tile is
        # defined afterwards
        self._written[(name, p)][...] = True

    def dma_out(self, node, offs: Sequence[int], phase: int) -> None:
        """Check an SPM->mem transfer (window, race, definedness)."""
        self.checks += 1
        name = node.spm
        p = self._phase(name, phase)
        self._check_race(name, p, "DMA read", node)
        self._check_spm_capacity(node, name)
        self._check_mem_window(node, offs)
        mask = self._written[(name, p)]
        region = tuple(slice(0, l) for l in node.access.lengths)
        sub = mask[region]
        if sub.size and not sub.any():
            eb = self.config.dtype_bytes
            elems = int(np.prod(node.access.lengths, dtype=np.int64))
            fail(
                "uninit-read",
                f"DMA reads SPM buffer {name!r} phase {p} but no DMA, "
                f"zero or GEMM ever wrote it",
                node=describe_node(node),
                buffer=name,
                byte_range=(0, elems * eb),
            )

    # --- compute checks ----------------------------------------------------
    def _check_read(self, node, name: str, lens, phase: int) -> None:
        p = self._phase(name, phase)
        self._check_race(name, p, "GEMM operand read", node)
        mask = self._written.get((name, p))
        if mask is None:
            return
        region = tuple(
            slice(0, min(l, cap)) for l, cap in zip(lens, mask.shape)
        )
        sub = mask[region]
        if sub.size and not sub.any():
            eb = self.config.dtype_bytes
            elems = int(np.prod([s.stop for s in region], dtype=np.int64))
            fail(
                "uninit-read",
                f"GEMM reads SPM buffer {name!r} phase {p} but no DMA, "
                f"zero or GEMM ever wrote it (unbound feed?)",
                node=describe_node(node),
                buffer=name,
                byte_range=(0, elems * eb),
            )

    def gemm(
        self, node, a_phase: int, b_phase: int, c_phase: int
    ) -> None:
        self.checks += 1
        self._check_read(node, node.a_spm, node.a_lens, a_phase)
        self._check_read(node, node.b_spm, node.b_lens, b_phase)
        cp = self._phase(node.c_spm, c_phase)
        self._check_race(node.c_spm, cp, "GEMM accumulator write", node)
        mask = self._written.get((node.c_spm, cp))
        if mask is not None:
            region = tuple(
                slice(0, min(l, cap))
                for l, cap in zip(node.c_lens, mask.shape)
            )
            mask[region] = True

    def zero(self, node, functional: bool) -> None:
        """A ZeroSpm node.  Only *functional* zeroes (accumulator
        buffers, never DMA-in targets) define bytes; the timing-only
        pad charge on streamed buffers touches nothing."""
        self.checks += 1
        if not functional:
            return
        for p in range(self._phases.get(node.spm, 1)):
            self._check_race(node.spm, p, "SPM zero", node)
            self._written[(node.spm, p)][...] = True

    def summary(self) -> str:
        return f"sanitizer: {self.checks} checks, 0 failures"


class RegCommChecker:
    """Shadow protocol state for the register-communication mesh.

    The real mesh has no flow control: a producer's ``put`` blocks
    until every consumer's ``get`` drains the bus, so a second ``put``
    before the matching ``get`` -- or a ``get`` with nothing
    outstanding, or with a different pattern than the producer used --
    deadlocks the cluster.  The checker models the bus as a one-deep
    mailbox per core group and raises structured errors where real
    hardware would hang.
    """

    def __init__(self) -> None:
        self.outstanding: Optional[object] = None
        self.transactions = 0

    def record_put(self, pattern) -> None:
        self.transactions += 1
        if self.outstanding is not None:
            fail(
                "regcomm-deadlock",
                f"put on {pattern} while put on {self.outstanding} has "
                f"not been drained by a get: producers block forever",
                node="regcomm.put",
            )
        self.outstanding = pattern

    def record_get(self, pattern) -> None:
        self.transactions += 1
        if self.outstanding is None:
            fail(
                "regcomm-deadlock",
                f"get on {pattern} with no outstanding put: "
                f"consumers spin forever",
                node="regcomm.get",
            )
        if pattern != self.outstanding:
            fail(
                "regcomm-mismatch",
                f"get on {pattern} does not match the outstanding "
                f"put on {self.outstanding}",
                node="regcomm.get",
            )
        self.outstanding = None

    def record_broadcast(self, grid, pattern, config) -> None:
        """Mismatched send/receive: the producer lane of the declared
        pattern put nothing on the bus."""
        self.transactions += 1
        rows, cols = config.cluster_rows, config.cluster_cols
        if len(grid) != rows or any(len(row) != cols for row in grid):
            return  # malformed grid: leave it to the mesh's own error
        if pattern.axis == "row":
            if pattern.producer >= cols:
                return
            missing = [
                r for r in range(rows) if grid[r][pattern.producer] is None
            ]
            lane = f"column {pattern.producer}"
        else:
            if pattern.producer >= rows:
                return
            missing = [
                c for c in range(cols) if grid[pattern.producer][c] is None
            ]
            lane = f"row {pattern.producer}"
        if missing:
            fail(
                "regcomm-mismatch",
                f"broadcast on {pattern}: producer {lane} put no data "
                f"on the bus in lanes {missing} (mismatched "
                f"send/receive)",
                node="regcomm.broadcast",
            )


__all__ = [
    "MachineSanitizer",
    "RegCommChecker",
    "set_sanitize",
    "sanitize_default",
    "resolve_sanitize",
    "describe_node",
    "fail",
    "ENV_SANITIZE",
    "ENV_REPORT",
]
