"""Code generation: executable simulation kernels and C source emission."""

from typing import Optional

from ..machine.config import MachineConfig, default_config
from ..passes.base import SPM_PLANNED, PassContext
from ..passes.manager import PassManager
from ..passes.optimize import optimize_passes
from ..scheduler.enumerate import Candidate
from .c_emitter import emit_c
from .executor import CompiledKernel, RunResult


def compile_candidate(
    candidate: Candidate,
    *,
    prefetch: bool = True,
    config: Optional[MachineConfig] = None,
) -> CompiledKernel:
    """Run the optimizer pass pipeline on a raw candidate and bind it
    to the machine: DMA inference (+hoisting), then automatic latency
    hiding -- verified after every stage.

    ``prefetch=False`` builds the Fig. 10 baseline (no double
    buffering); note the candidate must then have been lowered with
    ``LoweringOptions(double_buffer=False)`` for a fair SPM budget.
    """
    cfg = config or default_config()
    ctx = PassContext(compute=candidate.compute, config=cfg)
    ctx.established.add(SPM_PLANNED)  # raw candidates passed plan-spm
    kernel = PassManager(optimize_passes(prefetch=prefetch)).run(
        ctx, candidate.kernel
    )
    return CompiledKernel(kernel, candidate.compute, cfg)


__all__ = [
    "CompiledKernel",
    "RunResult",
    "compile_candidate",
    "emit_c",
]
