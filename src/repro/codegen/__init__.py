"""Code generation: executable simulation kernels and C source emission."""

from typing import Optional

from ..machine.config import MachineConfig, default_config
from ..optimizer.dma_inference import infer_dma
from ..optimizer.prefetch import apply_prefetch
from ..scheduler.enumerate import Candidate
from .c_emitter import emit_c
from .executor import CompiledKernel, RunResult


def compile_candidate(
    candidate: Candidate,
    *,
    prefetch: bool = True,
    config: Optional[MachineConfig] = None,
) -> CompiledKernel:
    """Run the optimizer pipeline on a raw candidate and bind it to the
    machine: DMA inference (+hoisting), then automatic latency hiding.

    ``prefetch=False`` builds the Fig. 10 baseline (no double
    buffering); note the candidate must then have been lowered with
    ``LoweringOptions(double_buffer=False)`` for a fair SPM budget.
    """
    cfg = config or default_config()
    kernel = infer_dma(candidate.kernel, candidate.compute, cfg)
    if prefetch:
        kernel = apply_prefetch(kernel)
    return CompiledKernel(kernel, candidate.compute, cfg)


__all__ = [
    "CompiledKernel",
    "RunResult",
    "compile_candidate",
    "emit_c",
]
