"""Executable kernels: interpret optimized IR on the simulated SW26010.

This is the reproduction's equivalent of the paper's "generate machine
code and run it on the processor": a :class:`CompiledKernel` binds a
kernel IR to the machine model and its :meth:`~CompiledKernel.run`
produces both the *functional* result (exact NumPy arithmetic on the
tiles the DMA engine actually moved) and the *timing* result (a
:class:`~repro.machine.trace.SimReport` from transaction-accurate DMA
costs, structural GEMM cycle counts, and discrete-event overlap of the
DMA engine with compute under double buffering).

Timing model: one compute timeline (``now``) plus one DMA-engine
timeline (``dma_free``) per core group.  Synchronous transfers advance
both; a ``pipelined`` loop issues iteration ``i+1``'s transfers when
iteration ``i`` starts computing, so the makespan of a streaming loop
approaches ``dma(0) + sum(max(compute_i, dma_{i+1}))`` -- the
``max(T_DMA, T_compute)`` behaviour Eq. (1)/(2) of the cost model
approximate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..dsl.compute import ComputeDef, ROLE_OUTPUT
from ..errors import CodegenError
from ..ir.nodes import (
    AllocSpmNode,
    ComputeOpNode,
    DmaCgNode,
    DmaWaitNode,
    ForNode,
    GemmOpNode,
    IfThenElseNode,
    KernelNode,
    Node,
    SeqNode,
    TileAccess,
    ZeroSpmNode,
)
from ..machine.config import MachineConfig, default_config
from ..machine.dma import MEM_TO_SPM
from ..machine.memory import MainMemory
from ..machine.sanitizer import MachineSanitizer, resolve_sanitize
from ..machine.spm import partition_extent
from ..machine.trace import SimReport, Trace
from ..optimizer.dma_inference import flatten_access, storage_shapes
from ..optimizer.memplan import plan_spm
from ..optimizer.prefetch import direct_stream_dmas
from ..primitives.gemm_kernel import kernel_cycles


@dataclass
class RunResult:
    outputs: Dict[str, np.ndarray]
    report: SimReport
    sanitizer_checks: Optional[int] = None  # None when sanitizing was off


class CompiledKernel:
    """An optimized kernel bound to the machine model."""

    def __init__(
        self,
        kernel: KernelNode,
        compute: ComputeDef,
        config: Optional[MachineConfig] = None,
        *,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.kernel = kernel
        self.compute = compute
        self.config = config or default_config()
        self.sanitize = resolve_sanitize(sanitize)
        self.spm_plan = plan_spm(kernel, self.config)  # validates capacity
        self.storage_shapes = storage_shapes(kernel, compute)
        self._validate()

    def _validate(self) -> None:
        from ..ir.visitors import find_all
        from ..passes.verifier import check_kernel

        for dma in find_all(self.kernel, DmaCgNode):
            if dma.geometry is None:
                raise CodegenError(
                    "kernel has un-inferred DMA nodes; run "
                    "the optimizer passes before building a CompiledKernel"
                )
            if dma.access.buffer not in self.compute.tensors:
                raise CodegenError(
                    f"DMA references unknown tensor {dma.access.buffer!r}"
                )
        # full structural verification: an executable kernel must hold
        # every invariant of the pass pipeline
        violations = check_kernel(
            self.kernel, compute=self.compute, config=self.config
        )
        if violations:
            raise CodegenError(
                "kernel fails IR verification: " + "; ".join(violations)
            )

    # ------------------------------------------------------------------
    def run(self, feeds: Dict[str, np.ndarray]) -> RunResult:
        """Execute the kernel.

        ``feeds`` maps every non-output tensor name to an array in the
        seed's *logical* dimension order; the runner packs it into the
        kernel's chosen storage layout (layout conversion is part of
        the operator contract, as in swDNN/xMath).  Output tensors are
        returned in logical order.
        """
        from ..faults import maybe_corrupt_outputs

        state = _ExecState(self, feeds)
        state.execute(self.kernel.body, {})
        outputs = state.collect_outputs()
        maybe_corrupt_outputs(self.compute, outputs)
        report = SimReport.from_trace(
            state.trace,
            makespan=state.now,
            num_cgs_used=1,
            config=self.config,
            detail=self.kernel.name,
        )
        return RunResult(
            outputs=outputs,
            report=report,
            sanitizer_checks=None if state.san is None else state.san.checks,
        )

    def time_only(self, feeds: Dict[str, np.ndarray]) -> SimReport:
        return self.run(feeds).report


class _ExecState:
    """Mutable interpreter state for one kernel run on one CG."""

    def __init__(self, ck: CompiledKernel, feeds: Dict[str, np.ndarray]) -> None:
        self.ck = ck
        self.cfg = ck.config
        self.now = 0.0
        self.dma_free = 0.0
        self.trace = Trace()
        self.memory = MainMemory(config=self.cfg)
        self._storage: Dict[str, np.ndarray] = {}
        self._buffers = {}
        self._spm: Dict[str, List[np.ndarray]] = {}
        self._read_phase: Dict[str, int] = {}
        from ..ir.visitors import find_all

        self._dma_in_targets = {
            d.spm
            for d in find_all(ck.kernel, DmaCgNode)
            if d.direction == MEM_TO_SPM
        }
        # the sanitizer is a single optional object; every hook below is
        # guarded by ``if self.san is not None`` so the disabled path
        # pays nothing beyond one identity check
        self.san: Optional[MachineSanitizer] = (
            MachineSanitizer(
                ck.kernel, self.cfg, ck.spm_plan, ck.storage_shapes
            )
            if ck.sanitize
            else None
        )
        self._bind_tensors(feeds)
        self._bind_spm()
        if self.san is not None:
            self.san.set_dma_in_targets(self._dma_in_targets)
            for name, buf in self._buffers.items():
                self.san.bind_window(name, buf.addr, buf.nbytes)

    # --- setup -------------------------------------------------------------
    def _bind_tensors(self, feeds: Dict[str, np.ndarray]) -> None:
        compute = self.ck.compute
        for name, spec in compute.tensors.items():
            logical_shape = compute.tensor_shape(name)
            perm = self.ck.kernel.tensor_layouts.get(
                name, tuple(range(len(logical_shape)))
            )
            storage_shape = self.ck.storage_shapes[name]
            buf = self.memory.alloc(name, storage_shape)
            view = self.memory.view(buf)
            if spec.role == ROLE_OUTPUT:
                view[...] = 0.0
            else:
                if name not in feeds:
                    raise CodegenError(f"missing feed for tensor {name!r}")
                data = np.asarray(feeds[name], dtype=np.float32)
                if tuple(data.shape) != logical_shape:
                    raise CodegenError(
                        f"feed {name!r} has shape {data.shape}, "
                        f"expected {logical_shape}"
                    )
                view[...] = data.transpose(perm)
            self._buffers[name] = buf
            self._storage[name] = view

    def _bind_spm(self) -> None:
        for alloc in self.ck.kernel.allocs:
            phases = 2 if alloc.double_buffered else 1
            self._spm[alloc.name] = [
                np.zeros(alloc.shape, dtype=np.float32) for _ in range(phases)
            ]
            self._read_phase[alloc.name] = 0

    def collect_outputs(self) -> Dict[str, np.ndarray]:
        out = {}
        for name, spec in self.ck.compute.tensors.items():
            if spec.role != ROLE_OUTPUT:
                continue
            perm = self.ck.kernel.tensor_layouts.get(name)
            arr = self._storage[name]
            if perm is None:
                out[name] = arr.copy()
            else:
                inv = np.argsort(perm)
                out[name] = np.ascontiguousarray(arr.transpose(inv))
        return out

    # --- dispatch -------------------------------------------------------------
    def execute(
        self,
        node: Node,
        env: Dict[str, int],
        skip: Optional[Set[int]] = None,
    ) -> None:
        if skip is not None and id(node) in skip:
            return
        if isinstance(node, SeqNode):
            for child in node.body:
                self.execute(child, env, skip)
        elif isinstance(node, ForNode):
            if node.pipelined:
                self._exec_pipelined(node, env, skip)
            else:
                for i in range(node.extent):
                    self.execute(node.body, {**env, node.var: i}, skip)
        elif isinstance(node, IfThenElseNode):
            if node.cond.evaluate(env):
                self.execute(node.then_body, env, skip)
            elif node.else_body is not None:
                self.execute(node.else_body, env, skip)
        elif isinstance(node, DmaCgNode):
            self._exec_dma_sync(node, env)
        elif isinstance(node, GemmOpNode):
            self._exec_gemm(node)
        elif isinstance(node, ZeroSpmNode):
            self._exec_zero(node)
        elif isinstance(node, ComputeOpNode):
            self.trace.add(
                "transform", self.now, self.now + node.cycles,
                detail=node.name, flops=node.flops,
            )
            self.now += node.cycles
        elif isinstance(node, DmaWaitNode):
            self.now = max(self.now, self.dma_free)
        else:
            raise CodegenError(f"executor cannot handle {type(node).__name__}")

    # --- pipelined loop: the double-buffer overlap -----------------------------
    def _exec_pipelined(
        self,
        node: ForNode,
        env: Dict[str, int],
        skip: Optional[Set[int]],
    ) -> None:
        dmas = direct_stream_dmas(node)
        dma_ids = {id(d) for d in dmas}
        if skip:
            dma_ids |= skip
        pending: Dict[int, float] = {}

        def issue(i: int) -> None:
            it_env = {**env, node.var: i}
            finish = self.now
            for dma in dmas:
                cost, payload, paid = self._dma_cost(dma, it_env)
                start = max(self.now, self.dma_free)
                self.dma_free = start + cost
                self._dma_move_in(dma, it_env, phase=i % 2)
                if self.san is not None:
                    self.san.mark_inflight(dma.spm, i % 2, i, dma)
                self.trace.add(
                    "dma", start, start + cost,
                    detail=f"{dma.access.buffer}->spm:{dma.spm}",
                    bytes_moved=payload, waste_bytes=paid - payload,
                )
                finish = max(finish, start + cost)
            pending[i] = finish

        if node.extent == 0:
            return
        issue(0)
        for i in range(node.extent):
            self.now = max(self.now, pending.pop(i))
            if self.san is not None:
                self.san.complete_iteration(i)
            if i + 1 < node.extent:
                issue(i + 1)
            for dma in dmas:
                self._read_phase[dma.spm] = i % 2
            self.execute(node.body, {**env, node.var: i}, dma_ids)

    # --- DMA -------------------------------------------------------------------
    def _exec_dma_sync(self, node: DmaCgNode, env: Dict[str, int]) -> None:
        cost, payload, paid = self._dma_cost(node, env)
        start = max(self.now, self.dma_free)
        end = start + cost
        self.now = end
        self.dma_free = end
        if node.direction == MEM_TO_SPM:
            self._dma_move_in(node, env, phase=0)
            self._read_phase[node.spm] = 0
            arrow = f"{node.access.buffer}->spm:{node.spm}"
        else:
            self._dma_move_out(node, env)
            arrow = f"spm:{node.spm}->{node.access.buffer}"
        self.trace.add(
            "dma", start, end, detail=arrow,
            bytes_moved=payload, waste_bytes=paid - payload,
        )

    def _access_slices(
        self, access: TileAccess, env: Dict[str, int]
    ) -> Tuple[Tuple[slice, ...], Tuple[int, ...]]:
        offs = []
        shape = self.ck.storage_shapes[access.buffer]
        for d, (off_expr, length) in enumerate(access.dims):
            off = off_expr.evaluate(env)
            if off < 0 or off + length > shape[d]:
                raise CodegenError(
                    f"access [{off}, {off + length}) outside dim {d} "
                    f"(extent {shape[d]}) of {access.buffer!r}"
                )
            offs.append(off)
        slices = tuple(
            slice(off, off + length)
            for off, (_, length) in zip(offs, access.dims)
        )
        return slices, tuple(offs)

    def _dma_move_in(
        self, node: DmaCgNode, env: Dict[str, int], phase: int
    ) -> None:
        if self.san is not None:
            offs = [expr.evaluate(env) for expr, _ in node.access.dims]
            self.san.dma_in(node, offs, phase)
        slices, _ = self._access_slices(node.access, env)
        tile = self._spm[node.spm][phase % len(self._spm[node.spm])]
        # zero first: boundary/padded tiles rely on clean pad lanes
        tile[...] = 0.0
        region = tuple(slice(0, length) for length in node.access.lengths)
        tile[region] = self._storage[node.access.buffer][slices]

    def _dma_move_out(self, node: DmaCgNode, env: Dict[str, int]) -> None:
        if self.san is not None:
            offs = [expr.evaluate(env) for expr, _ in node.access.dims]
            self.san.dma_out(node, offs, self._read_phase[node.spm])
        slices, _ = self._access_slices(node.access, env)
        tile = self._spm[node.spm][self._read_phase[node.spm]]
        region = tuple(slice(0, length) for length in node.access.lengths)
        self._storage[node.access.buffer][slices] = tile[region]

    def _dma_cost(
        self, node: DmaCgNode, env: Dict[str, int]
    ) -> Tuple[float, int, int]:
        """Transaction-accurate cycles of one CG-level transfer."""
        cfg = self.cfg
        access = node.access
        shape = self.ck.storage_shapes[access.buffer]
        flat = flatten_access(access.lengths, shape)
        buf = self._buffers[access.buffer]
        base_elem = 0
        strides = [1] * len(shape)
        for i in range(len(shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * shape[i + 1]
        for (off_expr, _), stride in zip(access.dims, strides):
            base_elem += off_expr.evaluate(env) * stride

        eb = cfg.dtype_bytes
        row_addrs = buf.addr + (base_elem + flat.chunk_offsets()) * eb
        chunk_bytes = flat.chunk_elems * eb
        payload = int(flat.elems) * eb

        # per-CPE split: rows over the 8 cluster rows, the chunk over
        # the 8 cluster columns; total paid traffic is what the memory
        # controller sees.
        txn = cfg.dram_transaction_bytes
        paid = 0
        col_parts = [
            (c0 * eb, cl * eb)
            for c0, cl in partition_extent(flat.chunk_elems, cfg.cluster_cols)
            if cl > 0
        ]
        for c_off, c_len in col_parts:
            addrs = row_addrs + c_off
            first = (addrs // txn) * txn
            last = -(-(addrs + c_len) // txn) * txn
            paid += int(np.sum(last - first))

        descs = node.geometry.n_descriptors if node.geometry else 1
        cycles = (
            cfg.dma_latency_cycles
            + cfg.dma_issue_cycles * max(1, descs)
            + paid / cfg.dram_bytes_per_cycle
        )
        return cycles, payload, paid

    # --- compute ---------------------------------------------------------------
    def _matrix_view(
        self, name: str, lens: Sequence[int], mat_map, writable: bool
    ):
        tile = self._spm[name][self._read_phase[name]]
        if len(lens) != tile.ndim:
            raise CodegenError(
                f"gemm views {name!r} with rank {len(lens)} but buffer "
                f"has rank {tile.ndim}"
            )
        for length, cap in zip(lens, tile.shape):
            if length > cap:
                raise CodegenError(
                    f"gemm view of {name!r} exceeds its SPM allocation "
                    f"({tuple(lens)} > {tile.shape})"
                )
        region = tile[tuple(slice(0, l) for l in lens)]
        rows, cols = mat_map
        perm = tuple(rows) + tuple(cols)
        r = math.prod(lens[i] for i in rows)
        c = math.prod(lens[i] for i in cols)
        t = region.transpose(perm)
        if writable:
            return t, (r, c)  # caller adds a reshaped RHS onto the view
        return np.ascontiguousarray(t).reshape(r, c), (r, c)

    def _exec_gemm(self, node: GemmOpNode) -> None:
        if self.san is not None:
            self.san.gemm(
                node,
                a_phase=self._read_phase[node.a_spm],
                b_phase=self._read_phase[node.b_spm],
                c_phase=self._read_phase[node.c_spm],
            )
        a, (ar, ac) = self._matrix_view(node.a_spm, node.a_lens, node.a_map, False)
        b, (br, bc) = self._matrix_view(node.b_spm, node.b_lens, node.b_map, False)
        if (ar, ac) != (node.m, node.k) or (br, bc) != (node.k, node.n):
            raise CodegenError(
                f"gemm dims mismatch: A{ar, ac} B{br, bc} vs "
                f"(M={node.m}, K={node.k}, N={node.n})"
            )
        result = a @ b
        c_t, (cr, cc) = self._matrix_view(node.c_spm, node.c_lens, node.c_map, True)
        if (cr, cc) != (node.m, node.n):
            raise CodegenError(f"gemm C dims mismatch: {(cr, cc)} vs {(node.m, node.n)}")
        if node.accumulate:
            c_t += result.reshape(c_t.shape)
        else:
            c_t[...] = result.reshape(c_t.shape)
        cost = kernel_cycles(node.m, node.n, node.k, node.variant, self.cfg)
        self.trace.add(
            "gemm", self.now, self.now + cost.total,
            detail=node.variant.name, flops=node.flops,
        )
        self.now += cost.total

    def _exec_zero(self, node: ZeroSpmNode) -> None:
        # Buffers filled by mem->SPM DMA are zeroed at transfer time
        # (see _dma_move_in), so their ZeroSpm is a timing-only pad
        # charge: functionally clearing them here would race the
        # prefetched phases of a pipelined loop.  Accumulator buffers
        # (never DMA-in targets) are genuinely cleared.
        functional = node.spm not in self._dma_in_targets
        if self.san is not None:
            self.san.zero(node, functional)
        if functional:
            for arr in self._spm[node.spm]:
                arr[...] = 0.0
        alloc = self.ck.kernel.alloc(node.spm)
        per_cpe_elems = math.ceil(alloc.elems / self.cfg.cpes_per_cg)
        cycles = math.ceil(per_cpe_elems / self.cfg.vector_lanes) + 10
        self.trace.add("gemm", self.now, self.now + cycles, detail=f"zero:{node.spm}")
        self.now += cycles
