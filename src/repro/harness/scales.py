"""Experiment scaling profiles.

The paper's full evaluation (225 conv configurations x 3 batch sizes x
3 methods, 559 GEMM shapes, black-box sweeps over thousands of
candidates) is hours of simulation.  Every experiment driver accepts a
:class:`Scale`; benches default to ``default`` and honour the
``REPRO_SCALE`` environment variable (``smoke``/``default``/``full``).
Scaling shrinks spatial extents and subsamples sweeps but never removes
a *kind* of case (aligned vs unaligned, batch regimes, channel
configurations), so the paper's comparisons keep their shape.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import WorkloadError


@dataclass(frozen=True)
class Scale:
    name: str
    #: divide network/Listing-1 spatial extents by this factor
    spatial_scale: int
    #: divide Listing-2 GEMM extents by this factor
    gemm_scale: int
    #: batch sizes evaluated (paper: 1, 32, 128)
    batches: Tuple[int, ...]
    #: cap on distinct layers per network (None = all)
    max_layers: Optional[int]
    #: cap on sweep configurations per batch (None = all)
    max_configs: Optional[int]
    #: use reduced schedule spaces
    quick: bool
    #: cap on candidates the black-box tuner executes (None = all)
    blackbox_limit: Optional[int]
    #: skip cases above this many conv FLOPs (simulation budget)
    max_flops: float


SCALES = {
    "smoke": Scale(
        name="smoke",
        spatial_scale=16,
        gemm_scale=16,
        batches=(1, 32),
        max_layers=2,
        max_configs=4,
        quick=True,
        blackbox_limit=12,
        max_flops=3e9,
    ),
    "default": Scale(
        name="default",
        spatial_scale=8,
        gemm_scale=8,
        batches=(1, 32, 128),
        max_layers=4,
        max_configs=9,
        quick=True,
        blackbox_limit=40,
        max_flops=2e10,
    ),
    "full": Scale(
        name="full",
        spatial_scale=4,
        gemm_scale=4,
        batches=(1, 32, 128),
        max_layers=None,
        max_configs=None,
        quick=False,
        blackbox_limit=None,
        max_flops=2e11,
    ),
}


def get_scale(name: Optional[str] = None) -> Scale:
    """Resolve a scale by name, or from ``REPRO_SCALE`` (default:
    ``default``)."""
    key = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[key]
    except KeyError:
        raise WorkloadError(
            f"unknown scale {key!r}; choose from {sorted(SCALES)}"
        ) from None
