"""Experiment harness: runners, drivers per table/figure, reporting."""

from . import experiments
from .report import Table, speedup_summary
from .runner import (
    CONV_RUNNERS,
    OperatorRun,
    run_conv_explicit,
    run_conv_implicit,
    run_conv_winograd,
    run_gemm,
    shard_conv,
)
from .scales import SCALES, Scale, get_scale

__all__ = [
    "experiments",
    "Table",
    "speedup_summary",
    "OperatorRun",
    "run_gemm",
    "run_conv_implicit",
    "run_conv_explicit",
    "run_conv_winograd",
    "CONV_RUNNERS",
    "shard_conv",
    "Scale",
    "SCALES",
    "get_scale",
]
