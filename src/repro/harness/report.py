"""Tabular rendering of experiment results.

Every experiment driver returns rows of plain dataclasses; this module
turns them into aligned text tables with the paper's expected value
printed beside the measured one, so a bench run reads as a direct
paper-vs-reproduction comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..engine.metrics import EngineMetrics


@dataclass
class Table:
    """A rendered experiment table."""

    title: str
    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(c)), *(len(r[i]) for r in cells)) if cells else len(str(c))
            for i, c in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title)]
        out.append(" | ".join(str(c).ljust(w) for c, w in zip(self.columns, widths)))
        out.append(sep)
        for row in cells:
            out.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            out.append(f"  * {note}")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def stage_note(
    metrics: Optional[EngineMetrics], label: str = "engine"
) -> Optional[str]:
    """One table-note line of per-stage engine accounting: counts and
    wall time for enumeration, bounds, lowering, optimization,
    prediction and execution, plus the branch-and-bound prune counters
    (``pruned B/C (+S spm)``) and memo hits when non-zero (the
    where-does-tuning-time-go breakdown behind Tab. 3)."""
    if metrics is None:
        return None
    return f"{label}: {metrics.describe()}"


def resilience_note(
    metrics: Optional[EngineMetrics], label: str = "resilience"
) -> Optional[str]:
    """One table-note line of the supervised-evaluation audit trail:
    degraded batches, retries, quarantines and the per-kind event
    counts.  ``None`` when the run saw no resilience events at all, so
    fault-free tables stay byte-identical."""
    if metrics is None:
        return None
    if not (
        metrics.degraded_batches
        or metrics.retries
        or metrics.quarantined
        or metrics.events
        or metrics.events_dropped
    ):
        return None
    return f"{label}: {metrics.describe_events()}"


def sanitizer_note(
    metrics: Optional[EngineMetrics], label: str = "safety"
) -> Optional[str]:
    """One table-note line of the execution-safety audit: differential
    validations performed (and how many failed) plus sanitizer events.
    ``None`` when the run neither validated nor sanitized anything, so
    tables from an unchecked run stay byte-identical."""
    if metrics is None:
        return None
    counts = metrics.event_counts()
    flagged = counts.get("sanitizer", 0) + counts.get("validation", 0)
    if not (metrics.validation.count or metrics.validation_failures or flagged):
        return None
    parts = [f"validated {metrics.validation.count}"]
    if metrics.validation_failures:
        parts.append(f"{metrics.validation_failures} failed")
    if counts.get("sanitizer"):
        parts.append(f"{counts['sanitizer']} sanitizer event(s)")
    return f"{label}: " + ", ".join(parts)


def speedup_summary(speedups: Iterable[float]) -> Dict[str, float]:
    """The Tab. 1/2 style aggregate: counts and average gains/losses."""
    ups = list(speedups)
    faster = [s for s in ups if s > 1.0]
    slower = [s for s in ups if s < 1.0]
    return {
        "cases": len(ups),
        "faster": len(faster),
        "slower": len(slower),
        "avg_gain": (sum(faster) / len(faster) - 1.0) if faster else 0.0,
        "avg_loss": (1.0 - sum(slower) / len(slower)) if slower else 0.0,
        "best": max(ups) if ups else 0.0,
        "geomean": _geomean(ups),
    }


def _geomean(values: List[float]) -> float:
    if not values:
        return 0.0
    acc = 1.0
    for v in values:
        acc *= v
    return acc ** (1.0 / len(values))
