"""Operator-level runner: tune/fix a schedule, shard across the chip,
execute on the simulator, assemble outputs and chip-level reports.

This is the layer the experiments drive.  Responsibilities:

* spatial/batch **sharding** over the four core groups (each CG streams
  its shard from its own memory controller; chip makespan = slowest
  shard);
* **tuning once per shard shape** and re-lowering the winning strategy
  (with clipped tiles) onto remainder shards;
* running the multi-stage methods (im2col + GEMM; Winograd transforms
  + batched GEMM) with per-stage reports merged serially;
* dispatching to the manual baselines (swDNN / xMath) through the same
  interfaces so comparisons share every piece of machinery except the
  schedule choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autotuner import TuningResult, tune_blackbox, tune_with_model
from ..baselines import swdnn, xmath
from ..codegen.executor import CompiledKernel
from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleStrategy
# candidate preparation/compilation is owned by the engine; the names
# stay importable from here for existing callers
from ..engine import clip_strategy, compile_strategy
from ..errors import TuningError, WorkloadError
from ..machine.config import MachineConfig, default_config
from ..machine.spm import partition_extent
from ..machine.trace import SimReport
from ..ops import conv_explicit, conv_implicit, conv_winograd
from ..ops.conv_common import ConvParams, pad_input
from ..ops.gemm import make_compute as gemm_compute
from ..ops.gemm import make_space as gemm_space

__all__ = [
    "CONV_RUNNERS",
    "OperatorRun",
    "clip_strategy",
    "compile_strategy",
    "run_conv_explicit",
    "run_conv_implicit",
    "run_conv_strided",
    "run_conv_winograd",
    "run_gemm",
    "shard_conv",
]


@dataclass
class OperatorRun:
    """Result of one operator execution on the chip."""

    report: SimReport
    output: Optional[np.ndarray] = None
    tuning: Optional[TuningResult] = None
    #: strategies actually used per phase of a strided decomposition
    #: (None for single-phase runs) -- what the library's strided cache
    #: persists.
    phase_strategies: Optional[List[ScheduleStrategy]] = None
    #: set when this run is a graceful fallback from a quarantined
    #: kernel (sanitizer / validation failure) -- the structured reason.
    fallback_reason: Optional[str] = None

    @property
    def cycles(self) -> float:
        return self.report.cycles


def _tune(
    compute: ComputeDef,
    space,
    tuner: str,
    config: MachineConfig,
    blackbox_limit: Optional[int],
) -> TuningResult:
    if tuner == "model":
        # measure the top-2 predictions and keep the faster one -- the
        # paper's "pick best (or top k)" refinement; two extra simulated
        # runs per operator buy back most residual model error
        return tune_with_model(
            compute, space, config=config, run_best=True, top_k=2
        )
    if tuner == "blackbox":
        return tune_blackbox(compute, space, config=config, limit=blackbox_limit)
    raise TuningError(f"unknown tuner {tuner!r}")


# ---------------------------------------------------------------------------
# sharding helpers
# ---------------------------------------------------------------------------
def _aligned_partition(extent: int, parts: int, align: int) -> List[Tuple[int, int]]:
    """Contiguous partition with every boundary a multiple of ``align``
    (Winograd tile rows must not split a 2-row output tile)."""
    units = math.ceil(extent / align)
    out = []
    for start_u, len_u in partition_extent(units, parts):
        start = start_u * align
        length = min(len_u * align, max(0, extent - start))
        out.append((start, length))
    return out


@dataclass(frozen=True)
class ConvShard:
    params: ConvParams      # pad already folded in (pad == 0)
    batch: Tuple[int, int]  # (start, length) in the batch dim
    rows: Tuple[int, int]   # (start, length) in the *output-row* dim


def shard_conv(
    params: ConvParams,
    config: Optional[MachineConfig] = None,
    *,
    row_align: int = 1,
) -> List[ConvShard]:
    """Split a conv across core groups: by batch when it covers the
    CGs, otherwise by output rows (the inference case)."""
    cfg = config or default_config()
    base = replace(params, ri=params.padded_ri, ci=params.padded_ci, pad=0)
    shards: List[ConvShard] = []
    if params.batch >= cfg.num_cgs:
        for start, length in partition_extent(params.batch, cfg.num_cgs):
            if length == 0:
                continue
            shards.append(
                ConvShard(
                    params=replace(base, batch=length),
                    batch=(start, length),
                    rows=(0, params.ro),
                )
            )
        return shards
    for start, length in _aligned_partition(params.ro, cfg.num_cgs, row_align):
        if length <= 0:
            continue
        shards.append(
            ConvShard(
                params=replace(
                    base, ri=length + params.kr - 1, batch=params.batch
                ),
                batch=(0, params.batch),
                rows=(start, length),
            )
        )
    return shards


def _shard_input(
    xp: np.ndarray, shard: ConvShard, params: ConvParams
) -> np.ndarray:
    b0, bl = shard.batch
    r0, rl = shard.rows
    return np.ascontiguousarray(
        xp[b0 : b0 + bl, :, r0 : r0 + rl + params.kr - 1, :]
    )


# ---------------------------------------------------------------------------
# GEMM
# ---------------------------------------------------------------------------
def run_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    library: str = "swatop",
    tuner: str = "model",
    quick: bool = True,
    config: Optional[MachineConfig] = None,
    blackbox_limit: Optional[int] = None,
) -> OperatorRun:
    """``C = A @ B`` on one core group (GEMM routines, like xMath's, are
    per-CG; multi-CG GEMM is a caller-level shard over M)."""
    cfg = config or default_config()
    a = np.asarray(a, np.float32)
    b = np.asarray(b, np.float32)
    if library == "xmath":
        res = xmath.xmath_gemm(a, b, config=cfg)
        return OperatorRun(report=res.report, output=res.output)
    if library != "swatop":
        raise WorkloadError(f"unknown GEMM library {library!r}")
    m, k = a.shape
    n = b.shape[1]
    compute = gemm_compute(m, n, k)
    space = gemm_space(compute, quick=quick)
    tuning = _tune(compute, space, tuner, cfg, blackbox_limit)
    ck = CompiledKernel(tuning.best.candidate.kernel, compute, cfg)
    res = ck.run({"A": a, "B": b})
    return OperatorRun(report=res.report, output=res.outputs["C"], tuning=tuning)


# ---------------------------------------------------------------------------
# implicit convolution
# ---------------------------------------------------------------------------
def run_conv_implicit(
    params: ConvParams,
    x: np.ndarray,
    w: np.ndarray,
    *,
    library: str = "swatop",
    tuner: str = "model",
    quick: bool = True,
    config: Optional[MachineConfig] = None,
    collect_output: bool = True,
    blackbox_limit: Optional[int] = None,
    strategy: Optional[ScheduleStrategy] = None,
) -> OperatorRun:
    cfg = config or default_config()
    xp = pad_input(np.asarray(x, np.float32), params)
    w = np.asarray(w, np.float32)
    shards = shard_conv(params, cfg)

    tuning: Optional[TuningResult] = None
    if library == "swatop":
        if strategy is None:
            lead = max(shards, key=lambda s: s.params.flops)
            compute = conv_implicit.make_compute(lead.params)
            space = conv_implicit.make_space(lead.params, quick=quick)
            tuning = _tune(compute, space, tuner, cfg, blackbox_limit)
            strategy = tuning.best.candidate.strategy
    elif library == "swdnn":
        if not swdnn.supported(params):
            raise WorkloadError(
                f"swDNN has no implicit-conv kernel for {params.describe()}"
            )
        lead = max(shards, key=lambda s: s.params.flops)
        strategy = swdnn.fixed_strategy(lead.params, cfg, check_support=False)
    else:
        raise WorkloadError(f"unknown implicit-conv library {library!r}")

    out = np.zeros(params.output_shape, np.float32) if collect_output else None
    reports: List[SimReport] = []
    cache: Dict[str, CompiledKernel] = {}
    for shard in shards:
        key = shard.params.describe()
        if key not in cache:
            compute = conv_implicit.make_compute(shard.params)
            cache[key] = compile_strategy(compute, strategy, cfg)
        ck = cache[key]
        res = ck.run({"input": _shard_input(xp, shard, params), "weight": w})
        reports.append(res.report)
        if out is not None:
            b0, bl = shard.batch
            r0, rl = shard.rows
            out[b0 : b0 + bl, :, r0 : r0 + rl, :] = res.outputs["out"]
    report = SimReport.merge_parallel(reports, detail=f"conv_implicit[{library}]")
    return OperatorRun(report=report, output=out, tuning=tuning)


# ---------------------------------------------------------------------------
# explicit convolution
# ---------------------------------------------------------------------------
def run_conv_explicit(
    params: ConvParams,
    x: np.ndarray,
    w: np.ndarray,
    *,
    library: str = "swatop",
    tuner: str = "model",
    quick: bool = True,
    config: Optional[MachineConfig] = None,
    collect_output: bool = True,
    blackbox_limit: Optional[int] = None,
    strategy: Optional[ScheduleStrategy] = None,
) -> OperatorRun:
    cfg = config or default_config()
    xp = pad_input(np.asarray(x, np.float32), params)
    w_mat_full = conv_explicit.weight_matrix(np.asarray(w, np.float32), params)
    shards = shard_conv(params, cfg)

    tuning: Optional[TuningResult] = None
    if library == "swatop":
        if strategy is None:
            lead = max(shards, key=lambda s: s.params.flops)
            compute = conv_explicit.make_compute(lead.params)
            space = conv_explicit.make_space(lead.params, quick=quick)
            tuning = _tune(compute, space, tuner, cfg, blackbox_limit)
            strategy = tuning.best.candidate.strategy
    elif library != "manual":
        raise WorkloadError(f"unknown explicit-conv library {library!r}")

    out = np.zeros(params.output_shape, np.float32) if collect_output else None
    reports: List[SimReport] = []
    for shard in shards:
        sp = shard.params
        xs = _shard_input(xp, shard, params)
        if library == "swatop":
            layout = conv_explicit.col_layout_of(strategy)
            col = conv_explicit.im2col(xs, sp, "kn")  # logical (K, N) feed
            expand = conv_explicit.expand_report(sp, layout, cfg)
            compute = conv_explicit.make_compute(sp)
            ck = compile_strategy(compute, strategy, cfg)
            res = ck.run({"A": w_mat_full, "B": col})
            stage = conv_explicit.ExplicitStages(expand, res.report)
            reports.append(stage.total)
            result_mat = res.outputs["C"]
        else:
            col = conv_explicit.im2col(xs, sp, "kn")
            expand = conv_explicit.expand_report(sp, "kn", cfg)
            g = xmath.xmath_gemm(w_mat_full, col, config=cfg)
            reports.append(
                SimReport.merge_serial([expand, g.report], detail="explicit[manual]")
            )
            result_mat = g.output
        if out is not None:
            folded = conv_explicit.output_from_matrix(result_mat, sp)
            b0, bl = shard.batch
            r0, rl = shard.rows
            out[b0 : b0 + bl, :, r0 : r0 + rl, :] = folded
    report = SimReport.merge_parallel(reports, detail=f"conv_explicit[{library}]")
    return OperatorRun(report=report, output=out, tuning=tuning)


# ---------------------------------------------------------------------------
# Winograd convolution
# ---------------------------------------------------------------------------
def run_conv_winograd(
    params: ConvParams,
    x: np.ndarray,
    w: np.ndarray,
    *,
    library: str = "swatop",
    tuner: str = "model",
    quick: bool = True,
    config: Optional[MachineConfig] = None,
    collect_output: bool = True,
    blackbox_limit: Optional[int] = None,
    strategy: Optional[ScheduleStrategy] = None,
    variant: str = "f22",
) -> OperatorRun:
    """Winograd convolution.

    ``variant`` selects the minimal-filtering instantiation: ``"f22"``
    (the paper's 16-GEMM F(2x2,3x3)), ``"f44"`` (36-GEMM F(4x4,3x3),
    4x multiply reduction), or ``"auto"`` -- tune both and keep the
    faster, the per-shape primitive selection swATOP advertises.
    """
    cfg = config or default_config()
    if not conv_winograd.applicable(params):
        raise WorkloadError(f"winograd not applicable to {params.describe()}")
    if variant == "auto":
        if library != "swatop":
            raise WorkloadError("variant='auto' is a swATOP feature")
        runs = [
            run_conv_winograd(
                params, x, w, library=library, tuner=tuner, quick=quick,
                config=cfg, collect_output=collect_output,
                blackbox_limit=blackbox_limit, variant=name,
            )
            for name in ("f22", "f44")
        ]
        return min(runs, key=lambda r: r.cycles)
    wv = conv_winograd.get_variant(variant)

    xp = pad_input(np.asarray(x, np.float32), params)
    w = np.asarray(w, np.float32)
    u = conv_winograd.filter_transform(w, params, wv)  # (t, t, No, Ni)
    u_mat = np.ascontiguousarray(
        u.reshape(wv.num_gemms, params.no, params.ni)
    )
    shards = shard_conv(params, cfg, row_align=wv.out_tile)

    tuning: Optional[TuningResult] = None
    if library == "swatop":
        if strategy is None:
            lead = max(shards, key=lambda s: s.params.flops)
            compute = conv_winograd.make_compute(lead.params, wv)
            space = conv_winograd.make_space(lead.params, quick=quick, variant=wv)
            tuning = _tune(compute, space, tuner, cfg, blackbox_limit)
            strategy = tuning.best.candidate.strategy
    elif library != "manual":
        raise WorkloadError(f"unknown winograd library {library!r}")

    out = np.zeros(params.output_shape, np.float32) if collect_output else None
    reports: List[SimReport] = []
    for shard in shards:
        sp = shard.params
        xs = _shard_input(xp, shard, params)
        v = conv_winograd.input_transform(xs, sp, wv)  # (t, t, Ni, P)
        _, _, p = conv_winograd.tile_counts(sp, wv)
        v_mat = np.ascontiguousarray(
            v.reshape(wv.num_gemms, params.ni, p)
        )
        stage_reports = [
            conv_winograd.filter_transform_report(sp, cfg, wv),
            conv_winograd.input_transform_report(sp, cfg, wv),
        ]
        if library == "swatop":
            compute = conv_winograd.make_compute(sp, wv)
            ck = compile_strategy(compute, strategy, cfg)
            res = ck.run({"U": u_mat, "V": v_mat})
            stage_reports.append(res.report)
            m_mat = res.outputs["M"]
        else:
            gem_reports = []
            m_mat = np.empty(
                (wv.num_gemms, params.no, p), np.float32
            )
            for t in range(wv.num_gemms):
                g = xmath.xmath_gemm(u_mat[t], v_mat[t], config=cfg)
                gem_reports.append(g.report)
                m_mat[t] = g.output
            stage_reports.append(
                SimReport.merge_serial(gem_reports, detail="winograd[manual] gemms")
            )
        stage_reports.append(conv_winograd.output_transform_report(sp, cfg, wv))
        reports.append(
            SimReport.merge_serial(stage_reports, detail="winograd shard")
        )
        if out is not None:
            y = conv_winograd.output_transform(
                m_mat.reshape(wv.tile, wv.tile, params.no, p), sp, wv
            )
            b0, bl = shard.batch
            r0, rl = shard.rows
            out[b0 : b0 + bl, :, r0 : r0 + rl, :] = y[:, :, :rl, :]
    report = SimReport.merge_parallel(
        reports, detail=f"conv_winograd[{library},{wv.name}]"
    )
    return OperatorRun(report=report, output=out, tuning=tuning)


#: dispatch used by the experiments
CONV_RUNNERS: Dict[str, Callable[..., OperatorRun]] = {
    "implicit": run_conv_implicit,
    "explicit": run_conv_explicit,
    "winograd": run_conv_winograd,
}


# ---------------------------------------------------------------------------
# strided convolution via phase decomposition
# ---------------------------------------------------------------------------
def run_conv_strided(
    params: ConvParams,
    x: np.ndarray,
    w: np.ndarray,
    *,
    library: str = "swatop",
    method: str = "implicit",
    tuner: str = "model",
    quick: bool = True,
    config: Optional[MachineConfig] = None,
    blackbox_limit: Optional[int] = None,
    strategies: Optional[Sequence[ScheduleStrategy]] = None,
) -> OperatorRun:
    """Strided convolution: phase-decompose into unit-stride convs
    (see :mod:`repro.ops.strided`), run each through the tuned
    pipeline, and sum.  Phases execute back to back on the chip, so
    reports merge serially.

    ``strategies`` injects one pre-tuned strategy per phase (the
    library's cached-replay path); the strategies actually used are
    returned on ``OperatorRun.phase_strategies`` either way.
    """
    from ..ops import strided

    cfg = config or default_config()
    if params.stride == 1:
        raise WorkloadError("run_conv_strided needs stride > 1")
    if method not in ("implicit", "explicit"):
        raise WorkloadError(f"strided decomposition over {method!r} unsupported")
    runner = CONV_RUNNERS[method]
    phases = strided.decompose(params)
    if strategies is not None and len(strategies) != len(phases):
        raise WorkloadError(
            f"{len(strategies)} injected strategies for {len(phases)} phases"
        )
    out = np.zeros(params.output_shape, np.float32)
    reports: List[SimReport] = []
    tuning: Optional[TuningResult] = None
    used: List[Optional[ScheduleStrategy]] = []
    for i, phase in enumerate(phases):
        xs = strided.phase_input(x, params, phase)
        ws = strided.phase_weight(w, params, phase)
        injected = strategies[i] if strategies is not None else None
        run = runner(
            phase.params, xs, ws, library=library, tuner=tuner,
            quick=quick, config=cfg, collect_output=True,
            blackbox_limit=blackbox_limit, strategy=injected,
        )
        out += run.output
        reports.append(run.report)
        if injected is not None:
            used.append(injected)
        elif run.tuning is not None:
            used.append(run.tuning.best.candidate.strategy)
        else:
            used.append(None)
        if tuning is None:
            tuning = run.tuning
    return OperatorRun(
        report=SimReport.merge_serial(reports, detail=f"conv_strided[{method}]"),
        output=out,
        tuning=tuning,
        phase_strategies=(
            list(used) if all(s is not None for s in used) else None
        ),
    )
