"""Experiment drivers: one per table/figure of the paper's evaluation.

Each driver runs the comparison its figure reports, on a configurable
:class:`~repro.harness.scales.Scale`, and returns a structured result
whose ``table()`` prints measured values beside the paper's expected
ones.  The benchmarks in ``benchmarks/`` are thin wrappers over these.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autotuner import tune_blackbox, tune_with_model
from ..engine.metrics import EngineMetrics
from ..errors import WorkloadError
from ..machine.config import MachineConfig, default_config
from ..ops import conv_implicit
from ..ops.conv_common import ConvParams
from ..ops.gemm import make_compute as gemm_compute
from ..ops.gemm import make_space as gemm_space
from ..scheduler.lower import LoweringOptions
from ..workloads import (
    conv_layers,
    listing1_configs,
    listing2_shapes,
    subsample,
)
from .runner import (
    CONV_RUNNERS,
    run_conv_explicit,
    run_conv_implicit,
    run_conv_winograd,
    run_gemm,
)
from .report import (
    Table,
    resilience_note,
    sanitizer_note,
    speedup_summary,
    stage_note,
)
from .scales import Scale, get_scale

BASELINE_OF = {"implicit": "swdnn", "winograd": "manual", "explicit": "manual"}


def _feeds(params: ConvParams, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(params.input_shape).astype(np.float32)
    w = rng.standard_normal(params.weight_shape).astype(np.float32)
    return x, w


@dataclass
class ConvComparisonRow:
    network: str
    layer: str
    batch: int
    params: ConvParams
    swatop_cycles: float
    baseline_cycles: Optional[float]
    swatop_eff: float

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline_cycles is None:
            return None
        return self.baseline_cycles / self.swatop_cycles


@dataclass
class ConvComparisonResult:
    method: str
    rows: List[ConvComparisonRow]
    scale: Scale
    paper_note: str

    def speedups(self) -> List[float]:
        return [r.speedup for r in self.rows if r.speedup is not None]

    def table(self) -> Table:
        t = Table(
            f"{self.method} CONV: swATOP vs manual ({self.scale.name} scale)",
            ["net", "layer", "B", "shape", "swATOP eff",
             "speedup vs manual"],
        )
        for r in self.rows:
            t.add(
                r.network, r.layer, r.batch,
                f"Ni{r.params.ni}xNo{r.params.no}x{r.params.ro}",
                f"{r.swatop_eff:.1%}",
                "n/a (no manual kernel)" if r.speedup is None else f"{r.speedup:.2f}x",
            )
        ups = self.speedups()
        if ups:
            t.note(
                f"measured: {sum(u > 1 for u in ups)}/{len(ups)} faster, "
                f"mean speedup {statistics.mean(ups):.2f}"
            )
        t.note(f"paper: {self.paper_note}")
        return t


def _network_comparison(
    method: str,
    networks: Tuple[str, ...],
    scale: Scale,
    config: Optional[MachineConfig],
) -> ConvComparisonResult:
    runner = CONV_RUNNERS[method]
    baseline = BASELINE_OF[method]
    rows: List[ConvComparisonRow] = []
    for net in networks:
        layers = conv_layers(net, method=method)
        if scale.max_layers is not None:
            layers = subsample(layers, scale.max_layers)
        for spec in layers:
            for batch in scale.batches:
                params = spec.params(batch, scale=scale.spatial_scale)
                if params.flops > scale.max_flops:
                    continue
                if method == "implicit" and not conv_implicit.applicable(params):
                    continue
                x, w = _feeds(params)
                rs = runner(
                    params, x, w, library="swatop",
                    quick=scale.quick, collect_output=False, config=config,
                )
                base_cycles: Optional[float] = None
                try:
                    rb = runner(
                        params, x, w, library=baseline,
                        collect_output=False, config=config,
                    )
                    base_cycles = rb.cycles
                except WorkloadError:
                    pass  # e.g. swDNN at batch 1
                eff = params.flops / rs.report.seconds / (
                    rs.report.num_cgs_used
                    * (config or default_config()).cg_peak_flops
                )
                rows.append(
                    ConvComparisonRow(
                        network=net, layer=spec.name, batch=batch,
                        params=params, swatop_cycles=rs.cycles,
                        baseline_cycles=base_cycles, swatop_eff=eff,
                    )
                )
    notes = {
        "implicit": "always faster than swDNN; avg speedup 1.44 (B=32), "
                    "1.32 (B=128); no manual version at B=1",
        "winograd": "avg speedup 2.20/2.35/2.33 for B=1/32/128",
        "explicit": "faster in 40/29/32 of 43 cases (B=1/32/128), "
                    "best 15.2x",
    }
    return ConvComparisonResult(method, rows, scale, notes[method])


def fig5_implicit_conv(
    scale: Optional[Scale] = None,
    networks: Tuple[str, ...] = ("vgg16", "resnet", "yolo"),
    config: Optional[MachineConfig] = None,
) -> ConvComparisonResult:
    """Fig. 5: implicit conv on the three CNNs, swATOP vs swDNN."""
    return _network_comparison("implicit", networks, scale or get_scale(), config)


def fig6_winograd_conv(
    scale: Optional[Scale] = None,
    networks: Tuple[str, ...] = ("vgg16", "resnet", "yolo"),
    config: Optional[MachineConfig] = None,
) -> ConvComparisonResult:
    """Fig. 6: Winograd conv vs the xMath-based manual pipeline."""
    return _network_comparison("winograd", networks, scale or get_scale(), config)


def fig7_explicit_conv(
    scale: Optional[Scale] = None,
    networks: Tuple[str, ...] = ("vgg16", "resnet", "yolo"),
    config: Optional[MachineConfig] = None,
) -> ConvComparisonResult:
    """Fig. 7: explicit conv vs naive im2col + xMath."""
    return _network_comparison("explicit", networks, scale or get_scale(), config)


# ---------------------------------------------------------------------------
# Tab. 1 / Fig. 8: the Listing-1 versatility sweep
# ---------------------------------------------------------------------------
@dataclass
class VersatilityRow:
    method: str
    batch: int
    params: ConvParams
    swatop_cycles: float
    baseline_cycles: Optional[float]
    swatop_eff: float

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline_cycles is None:
            return None
        return self.baseline_cycles / self.swatop_cycles


@dataclass
class VersatilityResult:
    rows: List[VersatilityRow]
    scale: Scale

    def by_method_batch(self) -> Dict[Tuple[str, int], List[VersatilityRow]]:
        out: Dict[Tuple[str, int], List[VersatilityRow]] = {}
        for r in self.rows:
            out.setdefault((r.method, r.batch), []).append(r)
        return out

    def tab1(self) -> Table:
        t = Table(
            f"Tab. 1: versatility sweep ({self.scale.name} scale)",
            ["method", "B", "cases", "faster", "slower",
             "avg gain", "avg loss"],
        )
        for (method, batch), rows in sorted(self.by_method_batch().items()):
            ups = [r.speedup for r in rows if r.speedup is not None]
            s = speedup_summary(ups)
            t.add(
                method, batch, len(rows), s["faster"], s["slower"],
                f"+{s['avg_gain']:.0%}", f"-{s['avg_loss']:.0%}",
            )
        t.note(
            "paper: implicit/winograd faster in all 75 cases per batch "
            "(+44..45% / +295..316%); explicit faster in 54..59 "
            "(+21..26%) vs 16..21 slower (-17..22%)"
        )
        return t

    def fig8(self) -> Table:
        t = Table(
            f"Fig. 8: throughput/efficiency over the sweep "
            f"({self.scale.name} scale)",
            ["method", "B", "mean eff", "min eff", "max eff"],
        )
        for (method, batch), rows in sorted(self.by_method_batch().items()):
            effs = [r.swatop_eff for r in rows]
            t.add(
                method, batch, f"{statistics.mean(effs):.1%}",
                f"{min(effs):.1%}", f"{max(effs):.1%}",
            )
        t.note(
            "paper: implicit ~70% (>2.1 TFLOPS); winograd up to ~120% "
            "effective (direct-conv FLOP normalisation), >=60% training; "
            "explicit lowest"
        )
        return t


def tab1_fig8_versatility(
    scale: Optional[Scale] = None,
    methods: Tuple[str, ...] = ("implicit", "winograd", "explicit"),
    config: Optional[MachineConfig] = None,
) -> VersatilityResult:
    """Tab. 1 + Fig. 8: the 225-configuration sweep of Listing 1."""
    scale = scale or get_scale()
    rows: List[VersatilityRow] = []
    for batch in scale.batches:
        configs = listing1_configs(batch, scale=scale.spatial_scale)
        if scale.max_configs is not None:
            configs = subsample(configs, scale.max_configs)
        for params in configs:
            if params.flops > scale.max_flops:
                continue
            x, w = _feeds(params)
            for method in methods:
                runner = CONV_RUNNERS[method]
                if method == "implicit" and not conv_implicit.applicable(params):
                    continue
                rs = runner(
                    params, x, w, library="swatop",
                    quick=scale.quick, collect_output=False, config=config,
                )
                base: Optional[float] = None
                try:
                    rb = runner(
                        params, x, w, library=BASELINE_OF[method],
                        collect_output=False, config=config,
                    )
                    base = rb.cycles
                except WorkloadError:
                    pass
                eff = params.flops / rs.report.seconds / (
                    rs.report.num_cgs_used
                    * (config or default_config()).cg_peak_flops
                )
                rows.append(
                    VersatilityRow(
                        method=method, batch=batch, params=params,
                        swatop_cycles=rs.cycles, baseline_cycles=base,
                        swatop_eff=eff,
                    )
                )
    return VersatilityResult(rows, scale)


# ---------------------------------------------------------------------------
# Tab. 2: the Listing-2 GEMM sweep
# ---------------------------------------------------------------------------
@dataclass
class GemmRow:
    m: int
    n: int
    k: int
    aligned: bool
    swatop_cycles: float
    xmath_cycles: float

    @property
    def speedup(self) -> float:
        return self.xmath_cycles / self.swatop_cycles


@dataclass
class GemmSweepResult:
    rows: List[GemmRow]
    scale: Scale

    def table(self) -> Table:
        t = Table(
            f"Tab. 2: GEMM vs xMath ({self.scale.name} scale)",
            ["group", "cases", "faster", "avg gain", "slower", "avg loss"],
        )
        for aligned in (True, False):
            rows = [r for r in self.rows if r.aligned == aligned]
            s = speedup_summary(r.speedup for r in rows)
            t.add(
                "aligned" if aligned else "unaligned", len(rows),
                s["faster"], f"+{s['avg_gain']:.1%}",
                s["slower"], f"-{s['avg_loss']:.1%}",
            )
        t.note(
            "paper: aligned 250 faster (+31.6%) / 93 slower (-6.6%); "
            "unaligned 207 faster (+49.8%) / 9 slower (-4.3%)"
        )
        return t


def tab2_gemm(
    scale: Optional[Scale] = None,
    config: Optional[MachineConfig] = None,
) -> GemmSweepResult:
    """Tab. 2: swATOP vs xMath over the Listing-2 shapes."""
    scale = scale or get_scale()
    shapes = listing2_shapes(scale=scale.gemm_scale)
    if scale.max_configs is not None:
        aligned = subsample([s for s in shapes if s.aligned], scale.max_configs)
        unaligned = subsample(
            [s for s in shapes if not s.aligned], scale.max_configs
        )
        shapes = aligned + unaligned
    rows: List[GemmRow] = []
    rng = np.random.default_rng(0)
    for shape in shapes:
        if 2 * shape.m * shape.n * shape.k > scale.max_flops:
            continue
        a = rng.standard_normal((shape.m, shape.k)).astype(np.float32)
        b = rng.standard_normal((shape.k, shape.n)).astype(np.float32)
        rs = run_gemm(a, b, library="swatop", quick=scale.quick, config=config)
        rx = run_gemm(a, b, library="xmath", config=config)
        rows.append(
            GemmRow(
                m=shape.m, n=shape.n, k=shape.k, aligned=shape.aligned,
                swatop_cycles=rs.cycles, xmath_cycles=rx.cycles,
            )
        )
    return GemmSweepResult(rows, scale)


# ---------------------------------------------------------------------------
# Tab. 3: tuning time, black-box vs model-based
# ---------------------------------------------------------------------------
@dataclass
class TuningTimeRow:
    network: str
    layer: str
    space_size: int
    blackbox_seconds: float
    model_seconds: float
    model_metrics: Optional[EngineMetrics] = None

    @property
    def speedup(self) -> float:
        return self.blackbox_seconds / self.model_seconds


@dataclass
class TuningTimeResult:
    rows: List[TuningTimeRow]
    scale: Scale

    def table(self) -> Table:
        t = Table(
            f"Tab. 3: tuning time, implicit conv ({self.scale.name} scale)",
            ["net", "layer", "space", "black-box", "swATOP", "speedup"],
        )
        by_net: Dict[str, List[TuningTimeRow]] = {}
        for r in self.rows:
            by_net.setdefault(r.network, []).append(r)
            t.add(
                r.network, r.layer, r.space_size,
                f"{r.blackbox_seconds:.1f}s", f"{r.model_seconds:.2f}s",
                f"{r.speedup:.0f}x",
            )
        for net, rows in sorted(by_net.items()):
            bb = sum(r.blackbox_seconds for r in rows)
            mm = sum(r.model_seconds for r in rows)
            t.note(
                f"{net}: total space {sum(r.space_size for r in rows)}, "
                f"black-box {bb:.1f}s vs swATOP {mm:.2f}s "
                f"({bb / mm:.0f}x)"
            )
            merged = EngineMetrics.merged(
                r.model_metrics for r in rows if r.model_metrics is not None
            )
            note = stage_note(merged, label=f"{net} model stages")
            if note is not None and merged.enumeration.count:
                t.note(note)
            fault_note = resilience_note(merged, label=f"{net} resilience")
            if fault_note is not None:
                t.note(fault_note)
            safety_note = sanitizer_note(merged, label=f"{net} safety")
            if safety_note is not None:
                t.note(safety_note)
        t.note(
            "paper: spaces 4068/7064/5112; black-box 47h50m/83h6m/60h10m "
            "vs swATOP 6m21s/14m7s/9m53s (454x/353x/365x)"
        )
        return t


def tab3_tuning_time(
    scale: Optional[Scale] = None,
    networks: Tuple[str, ...] = ("vgg16", "resnet", "yolo"),
    batch: int = 32,
    config: Optional[MachineConfig] = None,
) -> TuningTimeResult:
    """Tab. 3: wall-clock tuning cost of both autotuners."""
    scale = scale or get_scale()
    rows: List[TuningTimeRow] = []
    for net in networks:
        layers = conv_layers(net, method="implicit")
        if scale.max_layers is not None:
            layers = subsample(layers, scale.max_layers)
        for spec in layers:
            params = spec.params(batch, scale=scale.spatial_scale)
            if params.flops > scale.max_flops / 4:
                continue
            compute = conv_implicit.make_compute(params)
            space = conv_implicit.make_space(params, quick=scale.quick)
            bb = tune_blackbox(
                compute, space, config=config, limit=scale.blackbox_limit
            )
            mm = tune_with_model(compute, space, config=config, run_best=True)
            # scale the measured black-box time to the full space when a
            # candidate cap was applied (real brute force runs them all)
            bb_seconds = bb.wall_seconds
            if scale.blackbox_limit is not None and bb.evaluated:
                # the model tuner scored every legal candidate it did
                # not prove prunable; legal = scored + bound-pruned
                # (reduces to plain `evaluated` under --no-prune)
                declared_legal = mm.evaluated + (
                    mm.metrics.bound_pruned if mm.metrics is not None else 0
                )
                bb_seconds *= max(1.0, declared_legal / bb.evaluated)
            rows.append(
                TuningTimeRow(
                    network=net, layer=spec.name,
                    space_size=space.size(),
                    blackbox_seconds=bb_seconds,
                    model_seconds=mm.wall_seconds,
                    model_metrics=mm.metrics,
                )
            )
    return TuningTimeResult(rows, scale)


# ---------------------------------------------------------------------------
# Fig. 9: model-picked vs brute-force-best performance
# ---------------------------------------------------------------------------
@dataclass
class ModelAccuracyRow:
    params: ConvParams
    model_cycles: float
    best_cycles: float

    @property
    def ratio(self) -> float:
        """best/model <= 1: fraction of the true optimum achieved."""
        return self.best_cycles / self.model_cycles


@dataclass
class ModelAccuracyResult:
    rows: List[ModelAccuracyRow]
    scale: Scale

    def table(self) -> Table:
        t = Table(
            f"Fig. 9: autotuner accuracy ({self.scale.name} scale)",
            ["shape", "model-picked", "true best", "ratio"],
        )
        for r in self.rows:
            t.add(
                f"Ni{r.params.ni} No{r.params.no} Ro{r.params.ro}",
                f"{r.model_cycles:.3g}", f"{r.best_cycles:.3g}",
                f"{r.ratio:.3f}",
            )
        ratios = [r.ratio for r in self.rows]
        if ratios:
            t.note(
                f"measured: mean loss "
                f"{1 - statistics.mean(ratios):.1%}, worst "
                f"{1 - min(ratios):.1%}"
            )
        t.note("paper: average loss <2%, worst case <8%")
        return t


def fig9_model_accuracy(
    scale: Optional[Scale] = None,
    batch: int = 32,
    config: Optional[MachineConfig] = None,
) -> ModelAccuracyResult:
    """Fig. 9: the model-based pick vs exhaustive search, implicit conv."""
    scale = scale or get_scale()
    configs = listing1_configs(batch, scale=scale.spatial_scale)
    if scale.max_configs is not None:
        configs = subsample(configs, scale.max_configs)
    rows: List[ModelAccuracyRow] = []
    for params in configs:
        if params.flops > scale.max_flops / 4:
            continue
        if not conv_implicit.applicable(params):
            continue
        compute = conv_implicit.make_compute(params)
        space = conv_implicit.make_space(params, quick=scale.quick)
        # top_k=3: the paper's "pick best (or top k)" refinement
        mm = tune_with_model(compute, space, config=config, run_best=True, top_k=3)
        bb = tune_blackbox(compute, space, config=config)
        rows.append(
            ModelAccuracyRow(
                params=params,
                model_cycles=mm.report.cycles,
                best_cycles=bb.report.cycles,
            )
        )
    return ModelAccuracyResult(rows, scale)


# ---------------------------------------------------------------------------
# Fig. 10: auto-prefetching vs no software prefetch
# ---------------------------------------------------------------------------
@dataclass
class PrefetchRow:
    params: ConvParams
    baseline_cycles: float
    prefetch_cycles: float

    @property
    def improvement(self) -> float:
        return self.baseline_cycles / self.prefetch_cycles - 1.0


@dataclass
class PrefetchResult:
    rows: List[PrefetchRow]
    scale: Scale

    def table(self) -> Table:
        t = Table(
            f"Fig. 10: auto-prefetching vs baseline ({self.scale.name} scale)",
            ["shape", "no prefetch", "prefetch", "improvement"],
        )
        for r in self.rows:
            t.add(
                f"Ni{r.params.ni} No{r.params.no} Ro{r.params.ro}",
                f"{r.baseline_cycles:.3g}", f"{r.prefetch_cycles:.3g}",
                f"+{r.improvement:.1%}",
            )
        if self.rows:
            t.note(
                f"measured: mean improvement "
                f"+{statistics.mean(r.improvement for r in self.rows):.1%}"
            )
        t.note("paper: average improvement +65.4% on the 8 best-baseline configs")
        return t


def fig10_prefetch(
    scale: Optional[Scale] = None,
    batch: int = 32,
    count: int = 8,
    config: Optional[MachineConfig] = None,
) -> PrefetchResult:
    """Fig. 10: the latency-hiding pass on/off, same schedules."""
    scale = scale or get_scale()
    configs = [
        p for p in listing1_configs(batch, scale=scale.spatial_scale)
        if conv_implicit.applicable(p) and p.flops <= scale.max_flops / 4
    ]
    configs = subsample(configs, count)
    rows: List[PrefetchRow] = []
    no_pf = LoweringOptions(double_buffer=False)
    for params in configs:
        compute = conv_implicit.make_compute(params)
        space = conv_implicit.make_space(params, quick=scale.quick)
        # both arms tune the same space; the baseline arm lowers and
        # runs without double buffering (and without the 2x SPM
        # reservation, so it is the strongest possible non-prefetching
        # framework), the other with the automatic latency-hiding pass
        base = tune_with_model(
            compute, space, config=config, options=no_pf, prefetch=False,
            run_best=True,
        )
        with_pf = tune_with_model(
            compute, space, config=config, run_best=True,
        )
        rows.append(
            PrefetchRow(
                params=params,
                baseline_cycles=base.report.cycles,
                prefetch_cycles=with_pf.report.cycles,
            )
        )
    return PrefetchResult(rows, scale)


# ---------------------------------------------------------------------------
# Fig. 11: lightweight vs traditional zero-padding
# ---------------------------------------------------------------------------
@dataclass
class PaddingRow:
    m: int
    n: int
    k: int
    aligned_cycles: float      # same schedule, no boundary at all
    lightweight_cycles: float  # swATOP in-kernel boundary handling
    traditional_cycles: float  # full-copy padding + aligned kernel

    @property
    def lightweight_overhead(self) -> float:
        return self.lightweight_cycles / self.aligned_cycles - 1.0

    @property
    def traditional_overhead(self) -> float:
        return self.traditional_cycles / self.aligned_cycles - 1.0


@dataclass
class PaddingResult:
    rows: List[PaddingRow]
    scale: Scale

    def table(self) -> Table:
        t = Table(
            f"Fig. 11: boundary processing overhead ({self.scale.name} scale)",
            ["shape", "lightweight", "traditional"],
        )
        for r in self.rows:
            t.add(
                f"{r.m}x{r.n}x{r.k}",
                f"+{r.lightweight_overhead:.1%}",
                f"+{r.traditional_overhead:.1%}",
            )
        if self.rows:
            t.note(
                f"measured: lightweight mean "
                f"+{statistics.mean(r.lightweight_overhead for r in self.rows):.1%}, "
                f"traditional mean "
                f"+{statistics.mean(r.traditional_overhead for r in self.rows):.1%}"
            )
        t.note("paper: lightweight reduces boundary overhead to <5%")
        return t


def fig11_padding(
    scale: Optional[Scale] = None,
    count: int = 8,
    config: Optional[MachineConfig] = None,
) -> PaddingResult:
    """Fig. 11: unaligned GEMMs, in-kernel boundary handling vs
    traditional whole-tensor padding."""
    from ..optimizer.boundary import pad_up, traditional_pad_cost
    from .runner import compile_strategy
    from ..autotuner.model_tuner import synthetic_feeds

    scale = scale or get_scale()
    cfg = config or default_config()
    shapes = [
        s for s in listing2_shapes(scale=scale.gemm_scale)
        if not s.aligned and 2 * s.m * s.n * s.k <= scale.max_flops
    ]
    shapes = subsample(shapes, count)
    rows: List[PaddingRow] = []
    for shape in shapes:
        m, n, k = shape.m, shape.n, shape.k
        # the schedule is fixed by tuning the *padded* (boundary-free)
        # problem; both padding strategies then serve the unaligned
        # shape under that same schedule -- isolating the boundary
        # mechanism exactly as Fig. 11 does
        mp, np_, kp = pad_up(m, 128), pad_up(n, 128), pad_up(k, 128)
        padded_compute = gemm_compute(mp, np_, kp)
        padded_space = gemm_space(padded_compute, quick=scale.quick)
        tuned = tune_with_model(padded_compute, padded_space, config=cfg, run_best=True)
        strategy = tuned.best.candidate.strategy
        aligned_cycles = tuned.report.cycles

        light_ck = compile_strategy(gemm_compute(m, n, k), strategy, cfg)
        light_cycles = light_ck.run(
            synthetic_feeds(gemm_compute(m, n, k))
        ).report.cycles

        pad_cycles = (
            traditional_pad_cost((m, k), (mp, kp), cfg).cycles
            + traditional_pad_cost((k, n), (kp, np_), cfg).cycles
            + traditional_pad_cost((m, n), (mp, np_), cfg, round_trip=False).cycles
        )
        rows.append(
            PaddingRow(
                m=m, n=n, k=k,
                aligned_cycles=aligned_cycles,
                lightweight_cycles=light_cycles,
                traditional_cycles=aligned_cycles + pad_cycles,
            )
        )
    return PaddingResult(rows, scale)
