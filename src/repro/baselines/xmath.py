"""The xMath GEMM baseline (Jiang et al., ICPP'17).

xMath is the platform's hand-optimised linear-algebra library.  Its
reproduction here captures the behaviours the paper's comparison hinges
on:

* **one expert blocking, tuned for large square matrices**: fixed
  128x128x256 tiles, column-major SPM layouts, vec-M -- excellent in
  its design regime, indifferent elsewhere;
* **a customised special-case kernel** for its sweet spot (square,
  block-aligned shapes): a fused assembly path with lower call/switch
  overhead than the generic template, registered as a *manual-only*
  primitive that swATOP's scheduler cannot use (Sec. 5.1.2: "these
  cases ... just perfectly match the customized optimizations of
  manual version");
* **traditional zero-padding** for unaligned shapes: operands are
  padded to whole blocks in main memory (a full copy through the DMA
  engine) before the aligned kernel runs (the Fig. 11 baseline
  behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..codegen import compile_candidate
from ..dsl.schedule import ScheduleStrategy
from ..errors import WorkloadError
from ..machine.config import MachineConfig, default_config
from ..machine.trace import SimReport
from ..ops.gemm import make_compute
from ..optimizer.boundary import (
    pad_tensor,
    pad_up,
    traditional_pad_cost,
    unpad_tensor,
)
from ..primitives.microkernel import COL_MAJOR
from ..scheduler.enumerate import Candidate
from ..scheduler.lower import lower_strategy

#: xMath's fixed blocking (its DGEMM paper tunes for large square
#: matrices on one CG).
BLOCK_M = 128
BLOCK_N = 128
BLOCK_K = 256

#: cycle advantage of the hand-fused square kernel inside its niche.
SQUARE_KERNEL_SCALE = 0.93


@dataclass
class XmathResult:
    output: np.ndarray
    report: SimReport
    padded: bool


def is_square_sweet_spot(m: int, n: int, k: int) -> bool:
    """Shapes the customised kernel covers: square-ish and whole-block."""
    if m % BLOCK_M or n % BLOCK_N or k % BLOCK_K:
        return False
    ratio = max(m, n, k) / min(m, n, k)
    return ratio <= 2.0


def is_aligned(m: int, n: int, k: int) -> bool:
    return m % BLOCK_M == 0 and n % BLOCK_N == 0 and k % BLOCK_K == 0


#: the customised square kernel uses a larger blocking, hand-scheduled
#: for its exact geometry.
SQUARE_BLOCK = 256


def _fixed_strategy(m: int, n: int, k: int) -> Dict[str, object]:
    if is_square_sweet_spot(m, n, k):
        return {
            "tile:M": min(SQUARE_BLOCK, m),
            "tile:N": min(SQUARE_BLOCK, n),
            "tile:K": min(SQUARE_BLOCK, k),
            "order": ("M", "N", "K"),
            "vec_dim": "M",
            "spm_layout:a": COL_MAJOR,
            "spm_layout:b": COL_MAJOR,
        }
    return {
        "tile:M": min(BLOCK_M, m),
        "tile:N": min(BLOCK_N, n),
        "tile:K": min(BLOCK_K, k),
        "order": ("M", "N", "K"),
        "vec_dim": "M",
        "spm_layout:a": COL_MAJOR,
        "spm_layout:b": COL_MAJOR,
    }


def xmath_gemm(
    a: np.ndarray,
    b: np.ndarray,
    *,
    config: Optional[MachineConfig] = None,
) -> XmathResult:
    """``C = A @ B`` the way the manual library does it on one CG."""
    cfg = config or default_config()
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise WorkloadError(f"bad GEMM operands {a.shape} x {b.shape}")
    m, k = a.shape
    n = b.shape[1]

    if is_aligned(m, n, k):
        return XmathResult(*_run_aligned(a, b, cfg), padded=False)

    # traditional padding path: pad all three dims to whole blocks
    mp, np_, kp = pad_up(m, BLOCK_M), pad_up(n, BLOCK_N), pad_up(k, BLOCK_K)
    ap = pad_tensor(np.asarray(a, np.float32), (mp, kp))
    bp = pad_tensor(np.asarray(b, np.float32), (kp, np_))
    out_p, rep = _run_aligned(ap, bp, cfg)
    pad_cycles = (
        traditional_pad_cost((m, k), (mp, kp), cfg).cycles
        + traditional_pad_cost((k, n), (kp, np_), cfg).cycles
        + traditional_pad_cost((m, n), (mp, np_), cfg, round_trip=False).cycles
    )
    rep = SimReport(
        cycles=rep.cycles + pad_cycles,
        dma_cycles=rep.dma_cycles + pad_cycles,
        compute_cycles=rep.compute_cycles,
        bytes_moved=rep.bytes_moved,
        waste_bytes=rep.waste_bytes,
        flops=rep.flops,
        num_cgs_used=rep.num_cgs_used,
        config=cfg,
        detail="xmath_gemm(padded)",
    )
    return XmathResult(unpad_tensor(out_p, (m, n)), rep, padded=True)


def _run_aligned(
    a: np.ndarray, b: np.ndarray, cfg: MachineConfig
) -> Tuple[np.ndarray, SimReport]:
    m, k = a.shape
    n = b.shape[1]
    compute = make_compute(m, n, k)
    strategy = ScheduleStrategy(_fixed_strategy(m, n, k))
    kernel = lower_strategy(compute, strategy, config=cfg)
    ck = compile_candidate(
        Candidate(strategy, kernel, compute), config=cfg
    )
    res = ck.run({"A": np.asarray(a, np.float32), "B": np.asarray(b, np.float32)})
    report = res.report
    if is_square_sweet_spot(m, n, k):
        # the fused hand-written kernel replaces the generic template's
        # GEMM time inside the niche
        saved = report.compute_cycles * (1.0 - SQUARE_KERNEL_SCALE)
        total = max(report.cycles - saved, report.dma_cycles * 0.5)
        report = SimReport(
            cycles=total,
            dma_cycles=report.dma_cycles,
            compute_cycles=report.compute_cycles * SQUARE_KERNEL_SCALE,
            bytes_moved=report.bytes_moved,
            waste_bytes=report.waste_bytes,
            flops=report.flops,
            num_cgs_used=report.num_cgs_used,
            config=cfg,
            detail="xmath_gemm(square-fused)",
        )
    return res.outputs["C"], report
