"""The swDNN implicit-convolution baseline (Fang et al., IPDPS'17).

swDNN is the hand-optimised DL library the paper compares implicit conv
against.  Reproduced behaviours:

* **one generic expert schedule** rather than per-shape tuning: fixed
  channel blocking (64 x 64), a fixed spatial tile, Alg. 2's loop
  order, vec-M, NCHW layouts, double buffering -- a good schedule
  everywhere, the best schedule almost nowhere;
* **big-batch orientation**: the kernels block the batch dimension by
  32; small batches are not supported ("there is currently no manually
  optimized version" for batch-size 1, Sec. 5.1.1);
* input channels must cover its K blocking, like the real library
  (first network layers are excluded in the paper for this reason).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..dsl.schedule import ScheduleStrategy
from ..errors import WorkloadError
from ..machine.config import MachineConfig, default_config
from ..ops import conv_implicit
from ..ops.conv_common import ConvParams
from ..primitives.microkernel import COL_MAJOR

#: swDNN kernels block the batch by 32 -- smaller batches unsupported.
MIN_BATCH = 32
#: fixed channel blocking of the handwritten kernels (sized for the
#: wide layers of the networks the library was tuned on).
BLOCK_NO = 128
BLOCK_NI = 128
#: fixed spatial tile.
TILE_R = 16
TILE_C = 16
BATCH_TILE = 32


def supported(params: ConvParams) -> bool:
    return (
        conv_implicit.applicable(params)
        and params.batch >= MIN_BATCH
        and params.ni >= 16
    )


#: the library's kernel configurations, preferred first: (spatial tile,
#: channel block).  A real hand-written library ships a small fixed
#: menu and picks the largest configuration whose working set fits the
#: scratch pad.  The batch tile is always the full per-CG batch (capped
#: at 32): the (Ni, Ri, Ci, B) layout keeps the batch innermost, and a
#: partial batch tile would fragment every DMA block.
KERNEL_MENU = (
    (16, 128),
    (8, 128),
    (8, 64),
    (4, 64),
    (4, 32),
    (2, 32),
    (2, 16),
)


def _decisions(params: ConvParams, tile_rc: int, block: int) -> Dict[str, object]:
    return {
        "tile:B": min(BATCH_TILE, params.batch),
        "tile:No": min(block, params.no),
        "tile:Ni": min(block, params.ni),
        "tile:Ro": min(tile_rc, params.ro),
        "tile:Co": min(tile_rc, params.co),
        "tile:Kr": 1,
        "tile:Kc": 1,
        "order": ("Ro", "Co", "B", "No", "Kr", "Kc", "Ni"),  # Alg. 2
        "vec_dim": "M",
        "spm_layout:a": COL_MAJOR,
        "spm_layout:b": COL_MAJOR,
        # swDNN's own (Ni, Ri, Ci, B) data layout: batch contiguous, so
        # the fused GEMM-N dimension DMA-streams in long runs
        "layout:input": (1, 2, 3, 0),
        "layout:out": (1, 2, 3, 0),
        # weights repacked offline to (Kr, Kc, No, Ni), as the manual
        # kernels require
        "layout:weight": (2, 3, 0, 1),
    }


def fixed_strategy(
    params: ConvParams,
    config: Optional[MachineConfig] = None,
    *,
    check_support: bool = True,
) -> ScheduleStrategy:
    """The library's schedule for a layer: the first menu entry whose
    SPM working set fits.  No per-shape search beyond that -- the
    entire point of the comparison.

    ``check_support=False`` skips the batch-size gate: callers that
    already sharded a supported batch across core groups pass the
    per-CG shard here.
    """
    if check_support and not supported(params):
        raise WorkloadError(
            f"swDNN has no implicit-conv kernel for {params.describe()} "
            f"(needs batch >= {MIN_BATCH}, Ni >= 16, stride 1)"
        )
    from ..errors import IllegalCandidateError
    from ..ops.conv_implicit import make_compute
    from ..scheduler.lower import lower_strategy

    cfg = config or default_config()
    compute = make_compute(params)
    last_error: Optional[Exception] = None
    for tile_rc, block in KERNEL_MENU:
        strategy = ScheduleStrategy(_decisions(params, tile_rc, block))
        try:
            lower_strategy(compute, strategy, config=cfg)
        except IllegalCandidateError as exc:
            last_error = exc
            continue
        return strategy
    raise WorkloadError(
        f"no swDNN kernel configuration fits {params.describe()}: {last_error}"
    )
