"""Hand-optimised manual libraries swATOP is compared against."""

from . import swdnn, swtvm, xmath

__all__ = ["swdnn", "swtvm", "xmath"]
