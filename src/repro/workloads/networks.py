"""Convolution layer tables of the paper's three CNNs (Sec. 5.1.1).

Layer shapes are public (VGG16: Simonyan & Zisserman; ResNet: He et
al.; YOLOv1: Redmon et al.).  As in the paper:

* each network's *first* layer (Ni = 3) is excluded from implicit conv
  ("its input channel is too small to be handled by implicit CONV");
* only unit-stride layers feed the tensorized templates (strided
  layers are served by the direct reference);
* repeated identical layers are listed once with a ``count``.

``scale`` shrinks spatial extents (dividing by the factor, floor 4) so
the full evaluation fits a simulation budget while preserving every
channel configuration -- the knob EXPERIMENTS.md documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import WorkloadError
from ..ops.conv_common import ConvParams


@dataclass(frozen=True)
class LayerSpec:
    """One conv layer of a network."""

    name: str
    ni: int
    no: int
    spatial: int     # input rows == cols
    kernel: int = 3
    pad: int = 1
    stride: int = 1
    count: int = 1   # how many times the layer repeats in the net

    def params(self, batch: int, scale: int = 1) -> ConvParams:
        if scale < 1:
            raise WorkloadError("scale must be >= 1")
        spatial = max(4, self.spatial // scale)
        return ConvParams(
            batch=batch,
            ni=self.ni,
            no=self.no,
            ri=spatial,
            ci=spatial,
            kr=self.kernel,
            kc=self.kernel,
            pad=self.pad,
            stride=self.stride,
        )


VGG16: Tuple[LayerSpec, ...] = (
    LayerSpec("conv1_1", 3, 64, 224),
    LayerSpec("conv1_2", 64, 64, 224),
    LayerSpec("conv2_1", 64, 128, 112),
    LayerSpec("conv2_2", 128, 128, 112),
    LayerSpec("conv3_1", 128, 256, 56),
    LayerSpec("conv3_2", 256, 256, 56, count=2),
    LayerSpec("conv4_1", 256, 512, 28),
    LayerSpec("conv4_2", 512, 512, 28, count=2),
    LayerSpec("conv5", 512, 512, 14, count=3),
)

RESNET18: Tuple[LayerSpec, ...] = (
    LayerSpec("conv1", 3, 64, 224, kernel=7, pad=3, stride=2),
    LayerSpec("res2", 64, 64, 56, count=4),
    LayerSpec("res3_down", 64, 128, 56, stride=2),
    LayerSpec("res3", 128, 128, 28, count=3),
    LayerSpec("res4_down", 128, 256, 28, stride=2),
    LayerSpec("res4", 256, 256, 14, count=3),
    LayerSpec("res5_down", 256, 512, 14, stride=2),
    LayerSpec("res5", 512, 512, 7, count=3),
)

YOLO: Tuple[LayerSpec, ...] = (
    LayerSpec("conv1", 3, 64, 448, kernel=7, pad=3, stride=2),
    LayerSpec("conv2", 64, 192, 112),
    LayerSpec("conv3_red", 192, 128, 56, kernel=1, pad=0),
    LayerSpec("conv3", 128, 256, 56),
    LayerSpec("conv3b_red", 256, 256, 56, kernel=1, pad=0),
    LayerSpec("conv3b", 256, 512, 56),
    LayerSpec("conv4_red", 512, 256, 28, kernel=1, pad=0, count=4),
    LayerSpec("conv4", 256, 512, 28, count=4),
    LayerSpec("conv4b_red", 512, 512, 28, kernel=1, pad=0),
    LayerSpec("conv4b", 512, 1024, 28),
    LayerSpec("conv5_red", 1024, 512, 14, kernel=1, pad=0, count=2),
    LayerSpec("conv5", 512, 1024, 14, count=2),
    LayerSpec("conv5b", 1024, 1024, 14),
    LayerSpec("conv5c", 1024, 1024, 14, stride=2),
    LayerSpec("conv6", 1024, 1024, 7, count=2),
)

NETWORKS: Dict[str, Tuple[LayerSpec, ...]] = {
    "vgg16": VGG16,
    "resnet": RESNET18,
    "yolo": YOLO,
}

#: the paper's batch sizes: 1 for inference, 32/128 for training.
BATCH_SIZES = (1, 32, 128)


def network(name: str) -> Tuple[LayerSpec, ...]:
    try:
        return NETWORKS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown network {name!r}; choose from {sorted(NETWORKS)}"
        ) from None


def conv_layers(
    name: str,
    *,
    method: str = "implicit",
    unique: bool = True,
) -> List[LayerSpec]:
    """Layers of a network a tensorized method can serve.

    ``implicit`` drops first layers (Ni < 8) and strided layers (as in
    Fig. 5's caption); ``winograd`` additionally needs 3x3 kernels
    (Fig. 6: "layers which Winograd CONV can be used"); ``explicit``
    needs unit stride only.
    """
    layers = []
    for spec in network(name):
        if spec.stride != 1:
            continue
        if method == "implicit" and spec.ni < 8:
            continue
        if method == "winograd" and spec.kernel != 3:
            continue
        if method == "explicit" and spec.ni < 3:
            continue
        layers.append(spec)
    if not unique:
        layers = [s for s in layers for _ in range(s.count)]
    return layers
