"""Evaluation workloads: CNN layer tables and parameter sweeps."""

from .networks import (
    BATCH_SIZES,
    NETWORKS,
    RESNET18,
    VGG16,
    YOLO,
    LayerSpec,
    conv_layers,
    network,
)
from .sweeps import (
    GemmShape,
    listing1_configs,
    listing2_aligned,
    listing2_shapes,
    listing2_unaligned,
    subsample,
)

__all__ = [
    "LayerSpec",
    "VGG16",
    "RESNET18",
    "YOLO",
    "NETWORKS",
    "BATCH_SIZES",
    "network",
    "conv_layers",
    "GemmShape",
    "listing1_configs",
    "listing2_shapes",
    "listing2_aligned",
    "listing2_unaligned",
    "subsample",
]
