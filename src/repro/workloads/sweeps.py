"""Parameter sweeps of the paper's evaluation (Listings 1 and 2).

Listing 1 (convolution versatility, Tab. 1 / Figs. 8-9):

    for Ni in 64 128 256 384 512; for No in 64 128 256 384 512;
    for Ro in 32 64 128 256; if [Ni >= No] ./test_swATOP $B $Ni $No $Ro

The paper reports "225 parameter configurations" over three batch
sizes, i.e. 75 per batch -- which matches the 25 (Ni, No) pairs x the
three Ro values that run within memory, not the literal 60 of the
``Ni >= No``-filtered script.  We expose both readings:
:func:`listing1_configs` defaults to the 75-per-batch interpretation
and EXPERIMENTS.md records the discrepancy.

Listing 2 (GEMM, Tab. 2): 216 unaligned shapes (M, N, K in {200, 500,
1000, 2000, 4000, 8000}) + 343 aligned ones (in {256, 512, 768, 1024,
2048, 4096, 8192}) = 559, exactly the paper's count.

``scale`` divides every extent (vector-aligned floor) so the full
sweeps fit a simulation budget while keeping the aligned/unaligned and
who-wins structure intact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List

from ..errors import WorkloadError
from ..ops.conv_common import ConvParams

LISTING1_CHANNELS = (64, 128, 256, 384, 512)
LISTING1_RO = (32, 64, 128)
LISTING1_RO_FULL = (32, 64, 128, 256)

LISTING2_UNALIGNED = (200, 500, 1000, 2000, 4000, 8000)
LISTING2_ALIGNED = (256, 512, 768, 1024, 2048, 4096, 8192)


@dataclass(frozen=True)
class GemmShape:
    m: int
    n: int
    k: int
    aligned: bool

    def scaled(self, scale: int) -> "GemmShape":
        """Shrink while preserving what makes the shape aligned or not:
        aligned shapes stay multiples of the manual library's 128/256
        blocking (floored at one block), unaligned shapes stay off it."""
        if scale < 1:
            raise WorkloadError("scale must be >= 1")

        def aligned_dim(v: int, block: int) -> int:
            # aligned values shrink at half the nominal scale so the
            # sweep keeps its shape diversity (a full divide would
            # collapse most of Listing 2's aligned axis onto one block)
            div = max(1, scale // 2)
            return max(block, (v // div) // block * block)

        def unaligned_dim(v: int) -> int:
            # floor at 100 so the scaled pad ratio stays close to the
            # paper's worst case (200 -> 256)
            v = max(100, (v // scale) // 4 * 4)
            if v % 128 == 0:
                v += 4  # keep it unaligned after scaling
            return v

        if self.aligned:
            return GemmShape(
                aligned_dim(self.m, 128),
                aligned_dim(self.n, 128),
                aligned_dim(self.k, 256),
                True,
            )
        return GemmShape(
            unaligned_dim(self.m), unaligned_dim(self.n), unaligned_dim(self.k), False
        )


def listing1_configs(
    batch: int,
    *,
    scale: int = 1,
    literal_script: bool = False,
) -> List[ConvParams]:
    """The Listing-1 convolution configurations for one batch size.

    ``literal_script=True`` applies the script's ``Ni >= No`` filter and
    its fourth Ro value (60 configs); the default reproduces the
    paper's stated 75 per batch.
    """
    if scale < 1:
        raise WorkloadError("scale must be >= 1")
    ros = LISTING1_RO_FULL if literal_script else LISTING1_RO
    out = []
    for ni, no in itertools.product(LISTING1_CHANNELS, LISTING1_CHANNELS):
        if literal_script and ni < no:
            continue
        for ro in ros:
            spatial = max(4, ro // scale)
            out.append(
                ConvParams(
                    batch=batch,
                    ni=ni,
                    no=no,
                    ri=spatial,
                    ci=spatial,
                    kr=3,
                    kc=3,
                    pad=1,
                )
            )
    return out


def listing2_shapes(*, scale: int = 1) -> List[GemmShape]:
    """All 559 GEMM shapes of Listing 2 (216 unaligned + 343 aligned)."""
    shapes = [
        GemmShape(m, n, k, aligned=False)
        for m, n, k in itertools.product(LISTING2_UNALIGNED, repeat=3)
    ] + [
        GemmShape(m, n, k, aligned=True)
        for m, n, k in itertools.product(LISTING2_ALIGNED, repeat=3)
    ]
    if scale > 1:
        shapes = [s.scaled(scale) for s in shapes]
    return shapes


def listing2_unaligned(*, scale: int = 1) -> List[GemmShape]:
    return [s for s in listing2_shapes(scale=scale) if not s.aligned]


def listing2_aligned(*, scale: int = 1) -> List[GemmShape]:
    return [s for s in listing2_shapes(scale=scale) if s.aligned]


def subsample(items: List, limit: int) -> List:
    """Deterministic even subsample used by smoke-scale benches."""
    if limit <= 0:
        raise WorkloadError("limit must be positive")
    if len(items) <= limit:
        return list(items)
    step = len(items) / limit
    return [items[int(i * step)] for i in range(limit)]
