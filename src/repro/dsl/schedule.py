"""The schedule *space*: every tunable decision of a kernel.

Mirrors Fig. 4 (right): ``FactorVar`` declares the candidate tile
factors of a split (swATOP "automatically traverses all valid
candidates of the factor"); ``reorder`` takes explicit candidate orders
(permutation spaces are too large to enumerate blindly); layout and
vectorization choices extend the space further (Secs. 4.3.2, 4.3.3).

A concrete assignment of every decision is a
:class:`ScheduleStrategy`; the scheduler enumerates the whole space and
lowers each strategy to IR, pruning illegal ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import DslError
from .compute import ComputeDef

Choice = Union[int, str, Tuple]


def default_factors(extent: int, *, lanes: int = 4, cap: int = 512) -> List[int]:
    """Candidate tile factors for an axis: vector-friendly sizes up to
    the extent, plus the extent itself (no tiling).

    Non-divisor candidates are deliberately included -- they produce the
    boundary tiles whose handling the paper evaluates (Fig. 11).
    """
    if extent <= 0:
        raise DslError("extent must be positive")
    cands = {extent}
    f = lanes
    while f < min(extent, cap):
        cands.add(f)
        f *= 2
    # a few non-power-of-two, vector-aligned sizes
    for f in (24, 48, 96, 192, 384):
        if lanes <= f < extent and f <= cap:
            cands.add(f)
    return sorted(cands)


@dataclass(frozen=True)
class FactorVar:
    """Tile-factor decision for one axis."""

    axis: str
    candidates: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.candidates:
            raise DslError(f"FactorVar({self.axis!r}) has no candidates")
        if any(c <= 0 for c in self.candidates):
            raise DslError(f"FactorVar({self.axis!r}) has non-positive candidates")

    @property
    def key(self) -> str:
        return f"tile:{self.axis}"


@dataclass(frozen=True)
class ChoiceVar:
    """A categorical decision (loop order, layout, vec dim, ...)."""

    key: str
    candidates: Tuple[Choice, ...]

    def __post_init__(self) -> None:
        if not self.candidates:
            raise DslError(f"ChoiceVar({self.key!r}) has no candidates")


@dataclass(frozen=True)
class ScheduleStrategy:
    """One fully-assigned point in the schedule space."""

    decisions: Mapping[str, Choice]

    def __getitem__(self, key: str) -> Choice:
        try:
            return self.decisions[key]
        except KeyError:
            raise DslError(f"strategy has no decision {key!r}") from None

    def get(self, key: str, default: Optional[Choice] = None) -> Optional[Choice]:
        return self.decisions.get(key, default)

    def tile(self, axis: str) -> int:
        return int(self[f"tile:{axis}"])  # type: ignore[arg-type]

    def describe(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in sorted(self.decisions.items()))


class ScheduleSpace:
    """The Cartesian product of all declared decisions."""

    def __init__(self, compute: ComputeDef) -> None:
        self.compute = compute
        self._factors: Dict[str, FactorVar] = {}
        self._choices: Dict[str, ChoiceVar] = {}

    # --- declaration ----------------------------------------------------------
    def split(
        self, axis: str, candidates: Optional[Sequence[int]] = None
    ) -> FactorVar:
        """Declare a tiling split of ``axis`` (Sec. 4.3.1's Split).

        Default candidates come from :func:`default_factors`; a factor
        equal to the extent means "no split".
        """
        if axis not in self.compute.axes:
            raise DslError(f"split of unknown axis {axis!r}")
        if axis in self._factors:
            raise DslError(f"axis {axis!r} already split")
        extent = self.compute.axes[axis].extent
        cands = (
            tuple(default_factors(extent))
            if candidates is None
            else tuple(int(c) for c in candidates)
        )
        for c in cands:
            if c > extent:
                raise DslError(
                    f"factor {c} exceeds extent {extent} of axis {axis!r}"
                )
        fv = FactorVar(axis, cands)
        self._factors[axis] = fv
        return fv

    def reorder(self, candidates: Sequence[Sequence[str]]) -> ChoiceVar:
        """Declare candidate loop orders (explicit, as in the paper:
        'since there are extremely numerous permutations of a set,
        reorder requires explicit candidates')."""
        orders = []
        axis_set = set(self.compute.axes)
        for cand in candidates:
            order = tuple(cand)
            if set(order) != axis_set or len(order) != len(axis_set):
                raise DslError(
                    f"reorder candidate {order} is not a permutation of the axes"
                )
            orders.append(order)
        return self._add_choice("order", tuple(orders))

    def layout(self, tensor: str, candidates: Sequence[Sequence[int]]) -> ChoiceVar:
        """Declare main-memory layout candidates for a tensor, as
        permutations of its dimensions (Sec. 4.3.2)."""
        if tensor not in self.compute.tensors:
            raise DslError(f"layout of unknown tensor {tensor!r}")
        rank = len(self.compute.tensors[tensor].dims)
        perms = []
        for cand in candidates:
            perm = tuple(int(i) for i in cand)
            if sorted(perm) != list(range(rank)):
                raise DslError(
                    f"layout candidate {perm} is not a permutation of "
                    f"range({rank}) for tensor {tensor!r}"
                )
            perms.append(perm)
        return self._add_choice(f"layout:{tensor}", tuple(perms))

    def vectorize(self, candidates: Sequence[str] = ("M", "N")) -> ChoiceVar:
        """Declare the vectorization-dimension choice (Sec. 4.3.3)."""
        for c in candidates:
            if c not in ("M", "N"):
                raise DslError(f"vectorize candidate must be M or N, got {c!r}")
        return self._add_choice("vec_dim", tuple(candidates))

    def spm_layout(self, operand: str, candidates: Sequence[str] = ("row_major", "col_major")) -> ChoiceVar:
        """Declare the SPM storage order of a GEMM operand tile
        ('a' or 'b') -- together with vec_dim this selects among the
        eight kernel variants."""
        if operand not in ("a", "b"):
            raise DslError("spm_layout operand must be 'a' or 'b'")
        for c in candidates:
            if c not in ("row_major", "col_major"):
                raise DslError(f"bad SPM layout candidate {c!r}")
        return self._add_choice(f"spm_layout:{operand}", tuple(candidates))

    def choice(self, key: str, candidates: Sequence[Choice]) -> ChoiceVar:
        """Escape hatch for operator-specific decisions."""
        return self._add_choice(key, tuple(candidates))

    def _add_choice(self, key: str, candidates: Tuple[Choice, ...]) -> ChoiceVar:
        if key in self._choices:
            raise DslError(f"decision {key!r} already declared")
        cv = ChoiceVar(key, candidates)
        self._choices[key] = cv
        return cv

    # --- enumeration ------------------------------------------------------------
    @property
    def decision_keys(self) -> List[str]:
        return [fv.key for fv in self._factors.values()] + list(self._choices)

    def size(self) -> int:
        n = 1
        for fv in self._factors.values():
            n *= len(fv.candidates)
        for cv in self._choices.values():
            n *= len(cv.candidates)
        return n

    def strategies(self) -> Iterator[ScheduleStrategy]:
        """Enumerate every point of the space (pre-pruning)."""
        keys: List[str] = []
        pools: List[Tuple[Choice, ...]] = []
        for fv in self._factors.values():
            keys.append(fv.key)
            pools.append(fv.candidates)
        for cv in self._choices.values():
            keys.append(cv.key)
            pools.append(cv.candidates)
        for combo in itertools.product(*pools):
            yield ScheduleStrategy(dict(zip(keys, combo)))

    def strategy(self, **overrides: Choice) -> ScheduleStrategy:
        """A single strategy: first candidate of every decision, with
        keyword overrides (``tile_No=32`` targets ``tile:No``)."""
        decisions: Dict[str, Choice] = {}
        for fv in self._factors.values():
            decisions[fv.key] = fv.candidates[0]
        for cv in self._choices.values():
            decisions[cv.key] = cv.candidates[0]
        for key, value in overrides.items():
            norm = key.replace("tile_", "tile:", 1) if key.startswith("tile_") else key
            norm = norm.replace("layout_", "layout:", 1) if norm.startswith("layout_") else norm
            norm = (
                norm.replace("spm_layout_", "spm_layout:", 1)
                if norm.startswith("spm_layout_")
                else norm
            )
            if norm not in decisions:
                raise DslError(f"unknown decision {key!r}")
            decisions[norm] = value
        return ScheduleStrategy(decisions)
