"""The schedule *seed*: tensorized description of a DL operator.

The paper's DSL (Fig. 4, left) is embedded in C++; ours is embedded in
Python with the same vocabulary.  A :class:`ComputeDef` declares

* **axes** -- iteration variables with static extents, marked as
  spatial (appear in the output) or reduction (summed over);
* **tensors** -- multidimensional arrays whose dimensions are indexed
  by one axis each, or by the sum of a spatial and a reduction axis
  (the convolution ``cRi = cRo + cKr`` input pattern);
* one **tensorized GEMM statement** binding axes to the M/N/K roles of
  the micro-kernel (N may fuse several axes, e.g. batch x spatial).

The seed is purely computational: no loops, layouts or tile sizes.
Those belong to the :class:`~repro.dsl.schedule.ScheduleSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import DslError

SPATIAL = "spatial"
REDUCTION = "reduction"


@dataclass(frozen=True)
class Axis:
    """One iteration variable of the operator."""

    name: str
    extent: int
    kind: str = SPATIAL

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise DslError(f"axis {self.name!r} needs a positive extent")
        if self.kind not in (SPATIAL, REDUCTION):
            raise DslError(f"axis kind must be spatial/reduction, got {self.kind!r}")


@dataclass(frozen=True)
class ShiftedDim:
    """A tensor dimension indexed by ``spatial + reduction`` (conv
    input rows/cols: ``cRi = cRo + cKr``)."""

    spatial: str
    kernel: str


#: a tensor dimension is indexed by a single axis name or a shifted pair.
DimIndex = Union[str, ShiftedDim]

ROLE_INPUT = "input"
ROLE_WEIGHT = "weight"
ROLE_OUTPUT = "output"


@dataclass(frozen=True)
class TensorSpec:
    """A main-memory tensor and how the axes index it."""

    name: str
    dims: Tuple[DimIndex, ...]
    role: str

    def __post_init__(self) -> None:
        if self.role not in (ROLE_INPUT, ROLE_WEIGHT, ROLE_OUTPUT):
            raise DslError(f"bad tensor role {self.role!r}")
        if not self.dims:
            raise DslError(f"tensor {self.name!r} needs at least one dimension")


@dataclass(frozen=True)
class GemmSpec:
    """Binding of axes to the tensorized GEMM's M/N/K roles.

    ``n_axes`` is ordered; its axes fuse (row-major) into the GEMM N
    dimension -- the loop-fusion mechanism of Sec. 4.3.1 that merges
    independent multiplications into one larger one.
    """

    c: str
    a: str
    b: str
    m_axis: str
    n_axes: Tuple[str, ...]
    k_axis: str


class ComputeDef:
    """A complete schedule seed."""

    def __init__(self, name: str) -> None:
        if not name:
            raise DslError("operator needs a name")
        self.name = name
        self.axes: Dict[str, Axis] = {}
        self.tensors: Dict[str, TensorSpec] = {}
        self.gemm: Optional[GemmSpec] = None

    # --- construction -------------------------------------------------------
    def axis(self, name: str, extent: int, *, reduction: bool = False) -> Axis:
        if name in self.axes:
            raise DslError(f"axis {name!r} already declared")
        ax = Axis(name, int(extent), REDUCTION if reduction else SPATIAL)
        self.axes[name] = ax
        return ax

    def tensor(
        self, name: str, dims: Sequence[DimIndex], role: str
    ) -> TensorSpec:
        if name in self.tensors:
            raise DslError(f"tensor {name!r} already declared")
        spec = TensorSpec(name, tuple(dims), role)
        for dim in spec.dims:
            self._check_dim(name, dim)
        self.tensors[name] = spec
        return spec

    def define_gemm(
        self,
        c: str,
        a: str,
        b: str,
        *,
        m: str,
        n: Sequence[str],
        k: str,
    ) -> GemmSpec:
        if self.gemm is not None:
            raise DslError("gemm statement already defined")
        for t in (c, a, b):
            if t not in self.tensors:
                raise DslError(f"gemm references unknown tensor {t!r}")
        for ax in (m, k, *n):
            if ax not in self.axes:
                raise DslError(f"gemm references unknown axis {ax!r}")
        if self.axes[m].kind != SPATIAL:
            raise DslError("the GEMM M axis must be spatial")
        if self.axes[k].kind != REDUCTION:
            raise DslError("the GEMM K axis must be a reduction axis")
        for ax in n:
            if self.axes[ax].kind != SPATIAL:
                raise DslError(f"GEMM N axis {ax!r} must be spatial")
        self.gemm = GemmSpec(c, a, b, m, tuple(n), k)
        return self.gemm

    # --- queries ------------------------------------------------------------
    def dim_extent(self, dim: DimIndex) -> int:
        """Storage extent of a tensor dimension."""
        if isinstance(dim, str):
            return self.axes[dim].extent
        return self.axes[dim.spatial].extent + self.axes[dim.kernel].extent - 1

    def tensor_shape(self, name: str) -> Tuple[int, ...]:
        spec = self.tensors[name]
        return tuple(self.dim_extent(d) for d in spec.dims)

    def reduction_axes(self) -> List[str]:
        return [a.name for a in self.axes.values() if a.kind == REDUCTION]

    def spatial_axes(self) -> List[str]:
        return [a.name for a in self.axes.values() if a.kind == SPATIAL]

    def validate(self) -> None:
        """Full structural validation; raises :class:`DslError`."""
        if self.gemm is None:
            raise DslError(f"operator {self.name!r} has no gemm statement")
        g = self.gemm
        if self.tensors[g.c].role != ROLE_OUTPUT:
            raise DslError("gemm C tensor must have the output role")
        out = self.tensors[g.c]
        out_axes = set()
        for dim in out.dims:
            if isinstance(dim, ShiftedDim):
                raise DslError("output tensors cannot have shifted dimensions")
            out_axes.add(dim)
        for ax in (g.m_axis, *g.n_axes):
            if ax not in out_axes:
                raise DslError(
                    f"gemm output axis {ax!r} does not index output "
                    f"tensor {g.c!r}"
                )
        for ax in self.reduction_axes():
            if ax in out_axes:
                raise DslError(f"reduction axis {ax!r} indexes the output")
        # A must see m & k; B must see k & every n-axis or be broadcast
        a_axes = self._tensor_axes(g.a)
        if g.m_axis not in a_axes or g.k_axis not in a_axes:
            raise DslError("gemm A tensor must be indexed by the M and K axes")
        b_axes = self._tensor_axes(g.b)
        if g.k_axis not in b_axes:
            raise DslError("gemm B tensor must be indexed by the K axis")

    def _tensor_axes(self, name: str) -> set:
        axes = set()
        for dim in self.tensors[name].dims:
            if isinstance(dim, ShiftedDim):
                axes.add(dim.spatial)
                axes.add(dim.kernel)
            else:
                axes.add(dim)
        return axes

    def _check_dim(self, tensor: str, dim: DimIndex) -> None:
        if isinstance(dim, str):
            if dim not in self.axes:
                raise DslError(f"tensor {tensor!r} indexes unknown axis {dim!r}")
            return
        if dim.spatial not in self.axes or dim.kernel not in self.axes:
            raise DslError(
                f"tensor {tensor!r} shifted dim references unknown axes "
                f"({dim.spatial!r}, {dim.kernel!r})"
            )
        if self.axes[dim.spatial].kind != SPATIAL:
            raise DslError(f"shifted dim base {dim.spatial!r} must be spatial")
        if self.axes[dim.kernel].kind != REDUCTION:
            raise DslError(f"shifted dim offset {dim.kernel!r} must be reduction")
