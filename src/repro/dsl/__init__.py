"""Tensorized-primitive DSL: schedule seeds and schedule spaces (Sec. 4.2)."""

from .compute import (
    REDUCTION,
    ROLE_INPUT,
    ROLE_OUTPUT,
    ROLE_WEIGHT,
    SPATIAL,
    Axis,
    ComputeDef,
    GemmSpec,
    ShiftedDim,
    TensorSpec,
)
from .schedule import (
    ChoiceVar,
    FactorVar,
    ScheduleSpace,
    ScheduleStrategy,
    default_factors,
)

__all__ = [
    "Axis",
    "ComputeDef",
    "GemmSpec",
    "ShiftedDim",
    "TensorSpec",
    "SPATIAL",
    "REDUCTION",
    "ROLE_INPUT",
    "ROLE_WEIGHT",
    "ROLE_OUTPUT",
    "FactorVar",
    "ChoiceVar",
    "ScheduleSpace",
    "ScheduleStrategy",
    "default_factors",
]
