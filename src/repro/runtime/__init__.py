"""Runtime integration layer: kernel cache, online-autotuning operator
library, and whole-network execution (the paper's "offline compiler /
online autotuning" deployment modes)."""

from .cache import CacheError, KernelCache, TunedEntry
from .library import (
    AtopLibrary,
    KernelFallbackWarning,
    LibraryStats,
    MPE_FALLBACK_FLOPS,
)
from .network import (
    FALLBACK_METHODS,
    LayerResult,
    NetworkResult,
    run_network,
)

__all__ = [
    "KernelCache",
    "TunedEntry",
    "CacheError",
    "AtopLibrary",
    "KernelFallbackWarning",
    "LibraryStats",
    "MPE_FALLBACK_FLOPS",
    "FALLBACK_METHODS",
    "run_network",
    "NetworkResult",
    "LayerResult",
]
