"""Runtime integration layer: kernel cache, online-autotuning operator
library, and whole-network execution (the paper's "offline compiler /
online autotuning" deployment modes)."""

from .cache import CacheError, KernelCache, TunedEntry
from .library import AtopLibrary, LibraryStats
from .network import LayerResult, NetworkResult, run_network

__all__ = [
    "KernelCache",
    "TunedEntry",
    "CacheError",
    "AtopLibrary",
    "LibraryStats",
    "run_network",
    "NetworkResult",
    "LayerResult",
]
