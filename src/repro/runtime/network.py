"""Whole-network forward passes through the tuned operator library.

The swCaffe-style integration the paper targets: run every conv layer
of a CNN through :class:`~repro.runtime.library.AtopLibrary`,
accumulating exact activations and simulated per-layer timing.  Layers
no tensorized method serves (strided convs, tiny channel counts for
implicit-only nets) fall back to the *unported* path: functionally the
direct reference, timed as MPE-side execution -- the slow path whose
existence motivates operator porting in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..machine.config import MachineConfig, default_config
from ..machine.trace import SimReport
from ..ops import applicable_methods, conv2d_reference
from ..ops.conv_common import ConvParams
from ..workloads.networks import LayerSpec, network
# MPE_FALLBACK_FLOPS moved to the library (the quarantine fallback is
# timed at the same rate); re-exported here for older importers.
from .library import AtopLibrary, MPE_FALLBACK_FLOPS

#: layer methods that mean "the tuned kernel did not serve this layer":
#: never-ported layers (``mpe-fallback``) and layers whose cached
#: kernel was quarantined at use time (``validation-fallback``).
FALLBACK_METHODS = ("mpe-fallback", "validation-fallback")


@dataclass
class LayerResult:
    spec: LayerSpec
    params: ConvParams
    method: str            # tensorized method or "mpe-fallback"
    report: SimReport

    @property
    def cycles(self) -> float:
        return self.report.cycles


@dataclass
class NetworkResult:
    name: str
    batch: int
    layers: List[LayerResult]

    @property
    def total_cycles(self) -> float:
        return sum(l.cycles for l in self.layers)

    @property
    def total_seconds(self) -> float:
        return sum(l.report.seconds for l in self.layers)

    @property
    def fallback_layers(self) -> int:
        """How many layers the tuned library did not serve (unported
        or quarantined)."""
        return sum(1 for l in self.layers if l.method in FALLBACK_METHODS)

    def fallback_fraction(self) -> float:
        """Cycle-weighted share of the forward pass spent on fallback
        paths -- unported layers *and* layers whose cached kernel was
        quarantined by the sanitizer / differential validation."""
        fb = sum(l.cycles for l in self.layers if l.method in FALLBACK_METHODS)
        return fb / self.total_cycles if self.total_cycles else 0.0

    def summary(self) -> str:
        lines = [
            f"{self.name} @ batch {self.batch}: "
            f"{self.total_cycles:,.0f} cycles "
            f"({self.total_seconds * 1e3:.2f} ms simulated)"
        ]
        for l in self.layers:
            lines.append(
                f"  {l.spec.name:12s} {l.method:12s} "
                f"{l.cycles:14,.0f} cycles  "
                f"({l.params.ni}->{l.params.no} @{l.params.ro})"
            )
        return "\n".join(lines)


def run_network(
    name: str,
    batch: int,
    *,
    library: Optional[AtopLibrary] = None,
    scale: int = 8,
    config: Optional[MachineConfig] = None,
    seed: int = 0,
    max_layers: Optional[int] = None,
) -> NetworkResult:
    """Forward all conv layers of a network through the library.

    Activations flow layer to layer where shapes chain (channel counts
    match the table); spatial pooling between stages is emulated by
    average-pooling to the next layer's expected input.  ``scale``
    shrinks spatial extents for the simulation budget.
    """
    cfg = config or default_config()
    lib = library or AtopLibrary(cfg)
    rng = np.random.default_rng(seed)
    layers = list(network(name))
    if max_layers is not None:
        layers = layers[:max_layers]

    results: List[LayerResult] = []
    act: Optional[np.ndarray] = None
    for spec in layers:
        params = spec.params(batch, scale=scale)
        x = _fit_activation(act, params, rng)
        w = (rng.standard_normal(params.weight_shape) * 0.05).astype(np.float32)
        from ..ops.conv_implicit import MIN_NI

        methods = applicable_methods(params)
        strided_ok = params.stride > 1 and params.ni >= MIN_NI
        if methods or strided_ok:
            run = lib.conv2d(x, w, params)
            out = run.output
            if run.fallback_reason is not None:
                # the library quarantined a bad kernel mid-pass and
                # served the reference instead -- account it as a
                # fallback layer, not a tuned one.
                method = "validation-fallback"
            elif params.stride > 1:
                method = "strided-implicit"
            else:
                from ..ops.selector import select_method

                method = select_method(params)
            report = run.report
        else:
            out = conv2d_reference(x, w, params)
            seconds = params.flops / MPE_FALLBACK_FLOPS
            report = SimReport(
                cycles=cfg.seconds_to_cycles(seconds),
                compute_cycles=cfg.seconds_to_cycles(seconds),
                flops=params.flops,
                config=cfg,
                detail="mpe-fallback",
            )
            method = "mpe-fallback"
        results.append(
            LayerResult(spec=spec, params=params, method=method, report=report)
        )
        act = np.maximum(out, 0.0)  # ReLU between layers
    return NetworkResult(name=name, batch=batch, layers=results)


def _fit_activation(
    act: Optional[np.ndarray], params: ConvParams, rng: np.random.Generator
) -> np.ndarray:
    """Adapt the previous activation to this layer's expected input
    (pooling between stages changes spatial size; stage boundaries
    change channels)."""
    target = params.input_shape
    if act is None or act.shape[1] != target[1]:
        return (rng.standard_normal(target) * 0.1).astype(np.float32)
    if act.shape == target:
        return act
    b, c, h, w = act.shape
    th, tw = target[2], target[3]
    if h >= th and w >= tw and h % th == 0 and w % tw == 0:
        fh, fw = h // th, w // tw
        pooled = act.reshape(b, c, th, fh, tw, fw).mean(axis=(3, 5))
        return np.ascontiguousarray(pooled, dtype=np.float32)
    return (rng.standard_normal(target) * 0.1).astype(np.float32)
