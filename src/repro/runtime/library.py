"""The online-autotuning operator library.

A swDNN-shaped façade over the whole stack: call
:meth:`AtopLibrary.conv2d` / :meth:`AtopLibrary.gemm` like a DNN
library and get exact results plus simulated timing.  The first call
for a new configuration tunes it (the paper's "online autotuning"
integration mode); later calls hit the kernel cache.  A warmed cache
can be saved and shipped (the "offline compiler" mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..engine import compile_strategy
from ..errors import WorkloadError
from ..harness.runner import (
    CONV_RUNNERS,
    OperatorRun,
    run_gemm,
    shard_conv,
    _shard_input,
)
from ..machine.config import MachineConfig, default_config
from ..ops import select_method
from ..ops.conv_common import ConvParams
from ..ops.gemm import make_compute as gemm_compute
from ..ops.gemm import make_space as gemm_space
from .cache import KernelCache, TunedEntry


@dataclass
class LibraryStats:
    tuned: int = 0
    cache_hits: int = 0
    simulated_cycles: float = 0.0


class AtopLibrary:
    """Tuned-operator library with a persistent kernel cache."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *,
        quick: bool = True,
        cache_path: Optional[Union[str, Path]] = None,
        eval_cache_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.config = config or default_config()
        self.quick = quick
        self.cache_path = Path(cache_path) if cache_path else None
        if self.cache_path and self.cache_path.exists():
            # tolerant load: an online session re-tunes what a corrupt
            # or stale library file lost instead of refusing to start.
            self.cache = KernelCache.load(self.cache_path, strict=False)
        else:
            self.cache = KernelCache()
        # the kernel cache above persists winning *strategies*; the
        # eval cache persists individual candidate *scores*, so even a
        # first-time tuning call warm-starts from earlier processes.
        if eval_cache_path is not None:
            from ..engine import set_eval_cache

            set_eval_cache(eval_cache_path)
        self.stats = LibraryStats()

    # --- keys ------------------------------------------------------------
    @staticmethod
    def conv_key(method: str, params: ConvParams) -> str:
        return f"conv:{method}:{params.describe()}"

    @staticmethod
    def gemm_key(m: int, n: int, k: int) -> str:
        return f"gemm:{m}x{n}x{k}"

    # --- operators ----------------------------------------------------------
    def conv2d(
        self,
        x: np.ndarray,
        w: np.ndarray,
        params: ConvParams,
        *,
        method: Optional[str] = None,
    ) -> OperatorRun:
        """Tuned convolution; method auto-selected per the paper's
        policy unless forced."""
        if params.stride > 1:
            return self._conv2d_strided(x, w, params, method=method)
        method = method or select_method(params)
        if method not in CONV_RUNNERS:
            raise WorkloadError(f"unknown conv method {method!r}")
        key = self.conv_key(method, params)
        entry = self.cache.get(key)
        if entry is None:
            run = CONV_RUNNERS[method](
                params, x, w, library="swatop",
                quick=self.quick, config=self.config,
            )
            assert run.tuning is not None
            self.cache.put(
                key,
                TunedEntry(
                    strategy=run.tuning.best.candidate.strategy,
                    predicted_cycles=run.tuning.best.predicted_cycles,
                    measured_cycles=run.cycles,
                ),
            )
            self.stats.tuned += 1
            self._autosave()
        else:
            self.stats.cache_hits += 1
            run = self._run_cached_conv(method, params, x, w, entry)
        self.stats.simulated_cycles += run.cycles
        return run

    def gemm(self, a: np.ndarray, b: np.ndarray) -> OperatorRun:
        m, k = a.shape
        n = b.shape[1]
        key = self.gemm_key(m, n, k)
        entry = self.cache.get(key)
        if entry is None:
            run = run_gemm(
                a, b, library="swatop", quick=self.quick, config=self.config
            )
            assert run.tuning is not None
            self.cache.put(
                key,
                TunedEntry(
                    strategy=run.tuning.best.candidate.strategy,
                    measured_cycles=run.cycles,
                ),
            )
            self.stats.tuned += 1
            self._autosave()
        else:
            self.stats.cache_hits += 1
            compute = gemm_compute(m, n, k)
            ck = compile_strategy(compute, entry.strategy, self.config)
            res = ck.run({"A": np.asarray(a, np.float32),
                          "B": np.asarray(b, np.float32)})
            run = OperatorRun(report=res.report, output=res.outputs["C"])
        self.stats.simulated_cycles += run.cycles
        return run

    def _conv2d_strided(
        self,
        x: np.ndarray,
        w: np.ndarray,
        params: ConvParams,
        *,
        method: Optional[str] = None,
    ) -> OperatorRun:
        """Strided convolutions go through the phase decomposition
        (:mod:`repro.ops.strided`); each unit-stride phase hits the
        ordinary tuned path.  Implicit needs enough input channels.

        The winning per-phase strategies are cached under
        ``conv:strided:`` keys, so repeat strided calls replay without
        re-tuning, exactly like the unit-stride path.
        """
        from ..harness.runner import run_conv_strided
        from ..ops import strided
        from ..ops.conv_implicit import MIN_NI

        method = method or ("implicit" if params.ni >= MIN_NI else "explicit")
        n_phases = len(strided.decompose(params))
        keys = [
            f"conv:strided:{method}:{params.describe()}:p{i}"
            for i in range(n_phases)
        ]
        entries = [self.cache.get(k) for k in keys]
        if all(e is not None for e in entries):
            run = run_conv_strided(
                params, x, w, library="swatop", method=method,
                quick=self.quick, config=self.config,
                strategies=[e.strategy for e in entries],
            )
            self.stats.cache_hits += 1
        else:
            run = run_conv_strided(
                params, x, w, library="swatop", method=method,
                quick=self.quick, config=self.config,
            )
            if run.phase_strategies is not None:
                for key, strategy in zip(keys, run.phase_strategies):
                    self.cache.put(
                        key, TunedEntry(strategy=strategy), overwrite=True
                    )
                self._autosave()
            self.stats.tuned += 1
        self.stats.simulated_cycles += run.cycles
        return run

    # --- internals -----------------------------------------------------------
    def _run_cached_conv(
        self,
        method: str,
        params: ConvParams,
        x: np.ndarray,
        w: np.ndarray,
        entry: TunedEntry,
    ) -> OperatorRun:
        """Re-run a cached strategy without re-tuning: the runner
        accepts an injected strategy (what an offline-compiled library
        does at load time)."""
        runner = CONV_RUNNERS[method]
        return runner(
            params, x, w, library="swatop", config=self.config,
            strategy=entry.strategy,
        )

    def _autosave(self) -> None:
        if self.cache_path is not None:
            self.cache.save(self.cache_path)

    def save_cache(self, path: Union[str, Path]) -> None:
        self.cache.save(path)
