"""The online-autotuning operator library.

A swDNN-shaped façade over the whole stack: call
:meth:`AtopLibrary.conv2d` / :meth:`AtopLibrary.gemm` like a DNN
library and get exact results plus simulated timing.  The first call
for a new configuration tunes it (the paper's "online autotuning"
integration mode); later calls hit the kernel cache.  A warmed cache
can be saved and shipped (the "offline compiler" mode).

Execution safety (see DESIGN.md "Execution safety model"): cached
kernels are only *trusted* while their recorded validation digest is
fresh.  A hit whose digest is stale (or absent -- older cache files)
is revalidated against the NumPy reference before its output is
believed; a kernel that fails the check -- or trips the machine
sanitizer -- is quarantined from the cache and the call gracefully
falls back to the reference implementation, timed as unported MPE-side
execution.  The caller always gets a correct result; the fallback is
visible in :class:`LibraryStats`, on
:attr:`~repro.harness.runner.OperatorRun.fallback_reason`, and as one
:class:`KernelFallbackWarning` per affected cache key.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..engine import compile_strategy, resolve_validate, validation_digest
from ..engine.validate import compare_tensors
from ..errors import SanitizerError, ValidationError, WorkloadError
from ..harness.runner import (
    CONV_RUNNERS,
    OperatorRun,
    run_gemm,
    shard_conv,
    _shard_input,
)
from ..machine.config import MachineConfig, default_config
from ..machine.sanitizer import set_sanitize
from ..machine.trace import SimReport
from ..ops import conv2d_reference, select_method
from ..ops.conv_common import ConvParams
from ..ops.gemm import make_compute as gemm_compute
from ..ops.gemm import make_space as gemm_space
from .cache import KernelCache, TunedEntry

#: sustained FLOP rate of the unported fallback path: one scalar FMA
#: pipeline at 1.5 GHz with realistic memory stalls.  Both the
#: never-ported layers of :func:`~repro.runtime.network.run_network`
#: and the quarantine fallback here are timed at this rate.
MPE_FALLBACK_FLOPS = 2.2e9

#: library-level differential tolerances -- the operator-level bounds
#: the runtime test-suite has always held tuned kernels to.
CONV_RTOL, CONV_ATOL = 1e-3, 1e-2
GEMM_RTOL, GEMM_ATOL = 1e-4, 1e-3


class KernelFallbackWarning(UserWarning):
    """A cached kernel was quarantined and its call served by the
    reference fallback (emitted once per cache key)."""


@dataclass
class LibraryStats:
    tuned: int = 0
    cache_hits: int = 0
    simulated_cycles: float = 0.0
    #: differential validations actually performed (stale digests)
    validations: int = 0
    #: calls served by the reference fallback after a kernel failure
    fallbacks: int = 0
    #: cache entries dropped because their kernel failed at use time
    quarantined: int = 0


class AtopLibrary:
    """Tuned-operator library with a persistent kernel cache."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        *,
        quick: bool = True,
        cache_path: Optional[Union[str, Path]] = None,
        eval_cache_path: Optional[Union[str, Path]] = None,
        validate: Optional[str] = None,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.config = config or default_config()
        self.quick = quick
        self.cache_path = Path(cache_path) if cache_path else None
        if self.cache_path and self.cache_path.exists():
            # tolerant load: an online session re-tunes what a corrupt
            # or stale library file lost instead of refusing to start.
            self.cache = KernelCache.load(self.cache_path, strict=False)
        else:
            self.cache = KernelCache()
        # the kernel cache above persists winning *strategies*; the
        # eval cache persists individual candidate *scores*, so even a
        # first-time tuning call warm-starts from earlier processes.
        if eval_cache_path is not None:
            from ..engine import set_eval_cache

            set_eval_cache(eval_cache_path)
        #: validation mode for library calls (``None`` inherits the
        #: process-wide default, see ``repro.engine.set_default_validate``)
        self.validate = (
            validate if validate is None else resolve_validate(validate)
        )
        if sanitize is not None:
            # like ``set_eval_cache`` above this installs process-wide
            # state: the executor consults the sanitizer default.
            set_sanitize(bool(sanitize))
        self.stats = LibraryStats()
        self._warned_keys: set = set()

    # --- keys ------------------------------------------------------------
    @staticmethod
    def conv_key(method: str, params: ConvParams) -> str:
        return f"conv:{method}:{params.describe()}"

    @staticmethod
    def gemm_key(m: int, n: int, k: int) -> str:
        return f"gemm:{m}x{n}x{k}"

    # --- operators ----------------------------------------------------------
    def conv2d(
        self,
        x: np.ndarray,
        w: np.ndarray,
        params: ConvParams,
        *,
        method: Optional[str] = None,
    ) -> OperatorRun:
        """Tuned convolution; method auto-selected per the paper's
        policy unless forced.  A cached kernel that fails the sanitizer
        or differential validation is quarantined and the call served
        by the reference fallback."""
        if params.stride > 1:
            return self._conv2d_strided(x, w, params, method=method)
        method = method or select_method(params)
        if method not in CONV_RUNNERS:
            raise WorkloadError(f"unknown conv method {method!r}")
        key = self.conv_key(method, params)
        entry = self.cache.get(key)
        try:
            if entry is None:
                run = CONV_RUNNERS[method](
                    params, x, w, library="swatop",
                    quick=self.quick, config=self.config,
                )
                assert run.tuning is not None
                entry = TunedEntry(
                    strategy=run.tuning.best.candidate.strategy,
                    predicted_cycles=run.tuning.best.predicted_cycles,
                    measured_cycles=run.cycles,
                )
                self.cache.put(key, entry)
                self.stats.tuned += 1
                self._certify(
                    key, entry, run.output,
                    lambda: conv2d_reference(x, w, params),
                    rtol=CONV_RTOL, atol=CONV_ATOL,
                )
                self._autosave()
            else:
                self.stats.cache_hits += 1
                run = self._run_cached_conv(method, params, x, w, entry)
                self._certify(
                    key, entry, run.output,
                    lambda: conv2d_reference(x, w, params),
                    rtol=CONV_RTOL, atol=CONV_ATOL,
                )
        except (SanitizerError, ValidationError) as exc:
            run = self._fallback(
                [key], exc,
                output=conv2d_reference(x, w, params),
                flops=params.flops,
            )
        self.stats.simulated_cycles += run.cycles
        return run

    def gemm(self, a: np.ndarray, b: np.ndarray) -> OperatorRun:
        m, k = a.shape
        n = b.shape[1]
        key = self.gemm_key(m, n, k)
        entry = self.cache.get(key)

        def reference() -> np.ndarray:
            return np.asarray(a, np.float64) @ np.asarray(b, np.float64)

        try:
            if entry is None:
                run = run_gemm(
                    a, b, library="swatop", quick=self.quick,
                    config=self.config,
                )
                assert run.tuning is not None
                entry = TunedEntry(
                    strategy=run.tuning.best.candidate.strategy,
                    measured_cycles=run.cycles,
                )
                self.cache.put(key, entry)
                self.stats.tuned += 1
                self._certify(
                    key, entry, run.output, reference,
                    rtol=GEMM_RTOL, atol=GEMM_ATOL,
                )
                self._autosave()
            else:
                self.stats.cache_hits += 1
                compute = gemm_compute(m, n, k)
                ck = compile_strategy(compute, entry.strategy, self.config)
                res = ck.run({"A": np.asarray(a, np.float32),
                              "B": np.asarray(b, np.float32)})
                run = OperatorRun(report=res.report, output=res.outputs["C"])
                self._certify(
                    key, entry, run.output, reference,
                    rtol=GEMM_RTOL, atol=GEMM_ATOL,
                )
        except (SanitizerError, ValidationError) as exc:
            run = self._fallback(
                [key], exc,
                output=reference().astype(np.float32),
                flops=2.0 * m * n * k,
            )
        self.stats.simulated_cycles += run.cycles
        return run

    def _conv2d_strided(
        self,
        x: np.ndarray,
        w: np.ndarray,
        params: ConvParams,
        *,
        method: Optional[str] = None,
    ) -> OperatorRun:
        """Strided convolutions go through the phase decomposition
        (:mod:`repro.ops.strided`); each unit-stride phase hits the
        ordinary tuned path.  Implicit needs enough input channels.

        The winning per-phase strategies are cached under
        ``conv:strided:`` keys, so repeat strided calls replay without
        re-tuning, exactly like the unit-stride path.  A failing cached
        replay quarantines *all* phase keys (the phases were tuned as
        one decomposition) and falls back to the reference.
        """
        from ..harness.runner import run_conv_strided
        from ..ops import strided
        from ..ops.conv_implicit import MIN_NI

        method = method or ("implicit" if params.ni >= MIN_NI else "explicit")
        n_phases = len(strided.decompose(params))
        keys = [
            f"conv:strided:{method}:{params.describe()}:p{i}"
            for i in range(n_phases)
        ]
        entries = [self.cache.get(k) for k in keys]
        try:
            if all(e is not None for e in entries):
                run = run_conv_strided(
                    params, x, w, library="swatop", method=method,
                    quick=self.quick, config=self.config,
                    strategies=[e.strategy for e in entries],
                )
                self.stats.cache_hits += 1
                self._certify(
                    keys[0], entries[0], run.output,
                    lambda: conv2d_reference(x, w, params),
                    rtol=CONV_RTOL, atol=CONV_ATOL,
                )
            else:
                run = run_conv_strided(
                    params, x, w, library="swatop", method=method,
                    quick=self.quick, config=self.config,
                )
                if run.phase_strategies is not None:
                    for key, strategy in zip(keys, run.phase_strategies):
                        self.cache.put(
                            key, TunedEntry(strategy=strategy), overwrite=True
                        )
                    self._autosave()
                self.stats.tuned += 1
        except (SanitizerError, ValidationError) as exc:
            run = self._fallback(
                keys, exc,
                output=conv2d_reference(x, w, params),
                flops=params.flops,
            )
        self.stats.simulated_cycles += run.cycles
        return run

    # --- internals -----------------------------------------------------------
    def _run_cached_conv(
        self,
        method: str,
        params: ConvParams,
        x: np.ndarray,
        w: np.ndarray,
        entry: TunedEntry,
    ) -> OperatorRun:
        """Re-run a cached strategy without re-tuning: the runner
        accepts an injected strategy (what an offline-compiled library
        does at load time)."""
        runner = CONV_RUNNERS[method]
        return runner(
            params, x, w, library="swatop", config=self.config,
            strategy=entry.strategy,
        )

    def _certify(
        self,
        key: str,
        entry: TunedEntry,
        output: Optional[np.ndarray],
        reference: Callable[[], np.ndarray],
        *,
        rtol: float,
        atol: float,
    ) -> None:
        """Trust gate for a kernel's output.

        No-op when validation is off or the entry's recorded digest is
        fresh (the kernel already proved itself under the current
        strategy and salt).  Otherwise the output is differentially
        compared against the reference: success stamps the digest onto
        the entry (persisted, so the check amortizes to zero), failure
        raises :class:`~repro.errors.ValidationError` for the caller's
        quarantine-and-fall-back path.
        """
        mode = resolve_validate(self.validate)
        if mode == "off" or output is None:
            return
        digest = validation_digest(key, entry.strategy)
        if entry.validation_digest == digest:
            return
        self.stats.validations += 1
        compare_tensors(
            output, reference(), rtol=rtol, atol=atol,
            op=key, tensor="output",
        )
        entry.validation_digest = digest
        self._autosave()

    def _fallback(
        self,
        keys: Sequence[str],
        exc: Exception,
        *,
        output: np.ndarray,
        flops: float,
    ) -> OperatorRun:
        """Quarantine the offending cache entries and serve the call
        from the reference implementation, timed as unported MPE-side
        execution (the honest cost of not trusting the kernel)."""
        for key in keys:
            if self.cache.quarantine(key) is not None:
                self.stats.quarantined += 1
        self.stats.fallbacks += 1
        self._autosave()
        lead = keys[0] if keys else "<unknown>"
        if lead not in self._warned_keys:
            self._warned_keys.add(lead)
            warnings.warn(
                f"kernel {lead!r} quarantined "
                f"({type(exc).__name__}: {exc}); serving the reference "
                f"fallback",
                KernelFallbackWarning,
                stacklevel=3,
            )
        seconds = flops / MPE_FALLBACK_FLOPS
        report = SimReport(
            cycles=self.config.seconds_to_cycles(seconds),
            compute_cycles=self.config.seconds_to_cycles(seconds),
            flops=flops,
            config=self.config,
            detail="validation-fallback",
        )
        return OperatorRun(
            report=report,
            output=output,
            fallback_reason=f"{type(exc).__name__}: {exc}",
        )

    def _autosave(self) -> None:
        if self.cache_path is not None:
            self.cache.save(self.cache_path)

    def save_cache(self, path: Union[str, Path]) -> None:
        self.cache.save(path)
