"""Persistent cache of tuned schedules.

swATOP "can be used as an offline compiler by pre-generating
near-optimal executable code, or be integrated into other frameworks to
provide online autotuning" (Sec. 1).  The cache is what makes both
modes practical: the first encounter of an operator configuration pays
the (seconds-scale) model-based tuning cost; every later encounter
reuses the stored winning strategy.  Entries can be persisted to a JSON
file and shipped like a pre-tuned kernel library.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..dsl.schedule import ScheduleStrategy
from ..errors import ReproError

logger = logging.getLogger(__name__)


class CacheError(ReproError):
    """Malformed cache file or key collision."""


def _encode_value(value):
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_value(v) for v in value["__tuple__"])
    return value


@dataclass
class TunedEntry:
    """One cached tuning outcome."""

    strategy: ScheduleStrategy
    predicted_cycles: Optional[float] = None
    measured_cycles: Optional[float] = None
    #: digest recorded when the kernel last passed differential
    #: validation (see :func:`repro.engine.validation_digest`).  ``None``
    #: (older cache files) or a stale value marks the entry untrusted:
    #: the library revalidates it on the next hit before believing it.
    validation_digest: Optional[str] = None

    def to_json(self) -> Dict:
        data = {
            "decisions": {
                k: _encode_value(v) for k, v in self.strategy.decisions.items()
            },
            "predicted_cycles": self.predicted_cycles,
            "measured_cycles": self.measured_cycles,
        }
        if self.validation_digest is not None:
            data["validation_digest"] = self.validation_digest
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "TunedEntry":
        try:
            decisions = {
                k: _decode_value(v) for k, v in data["decisions"].items()
            }
        except (KeyError, TypeError) as exc:
            raise CacheError(f"malformed cache entry: {data!r}") from exc
        return cls(
            strategy=ScheduleStrategy(decisions),
            predicted_cycles=data.get("predicted_cycles"),
            measured_cycles=data.get("measured_cycles"),
            validation_digest=data.get("validation_digest"),
        )


class KernelCache:
    """String-keyed store of tuned strategies with JSON persistence."""

    VERSION = 1

    def __init__(self) -> None:
        self._entries: Dict[str, TunedEntry] = {}
        self.hits = 0
        self.misses = 0
        #: tolerant-load accounting (``load(strict=False)``)
        self.skipped_entries = 0
        self.quarantined_path: Optional[Path] = None
        #: keys dropped by :meth:`quarantine` (kernel failed the
        #: sanitizer or differential validation at use time)
        self.quarantined_keys: list = []

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[TunedEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(
        self, key: str, entry: TunedEntry, *, overwrite: bool = False
    ) -> None:
        """Store a tuned strategy.

        Re-putting the *same* strategy under a key is always allowed
        (it just refreshes the cycle numbers), but replacing a key with
        a *different* strategy requires ``overwrite=True`` -- two
        concurrent tuning runs racing on one key would otherwise
        silently clobber each other's winners.
        """
        existing = self._entries.get(key)
        if (
            existing is not None
            and not overwrite
            and dict(existing.strategy.decisions) != dict(entry.strategy.decisions)
        ):
            raise CacheError(
                f"cache key {key!r} already holds a different strategy "
                f"(pass overwrite=True to replace it)"
            )
        self._entries[key] = entry

    def keys(self):
        return list(self._entries)

    def quarantine(self, key: str) -> Optional[TunedEntry]:
        """Drop a cached strategy whose kernel failed the sanitizer or
        differential validation at use time; the next call for the key
        re-tunes from scratch.  Returns the dropped entry (``None`` if
        the key was absent) and records the key in
        ``quarantined_keys``."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.quarantined_keys.append(key)
            logger.warning("quarantined kernel cache entry %r", key)
        return entry

    # --- persistence ------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the cache atomically (temp file + rename), so a killed
        process never leaves a half-written library file behind."""
        path = Path(path)
        payload = {
            "version": self.VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "entries": {k: e.to_json() for k, e in self._entries.items()},
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: Union[str, Path], *, strict: bool = True) -> "KernelCache":
        """Read a cache file.

        ``strict`` (the default) raises :class:`CacheError` on any
        corruption -- the offline-compiler mode, where a damaged
        pre-tuned library should stop the build.  ``strict=False`` is
        the online mode (:class:`~repro.runtime.library.AtopLibrary`):
        an unreadable file is quarantined to a ``*.corrupt`` sidecar
        and an empty cache returned, malformed entries are skipped and
        counted in ``skipped_entries``, and the session re-tunes what
        it lost instead of refusing to start.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                raise CacheError(
                    f"kernel cache {path}: top-level JSON is "
                    f"{type(payload).__name__}, not object"
                )
        except (OSError, json.JSONDecodeError) as exc:
            if strict:
                raise CacheError(
                    f"cannot read kernel cache {path}: {exc}"
                ) from exc
            cache = cls()
            from ..engine.evalcache import quarantine_corrupt

            cache.quarantined_path = quarantine_corrupt(
                path, f"unreadable kernel cache ({exc})"
            )
            return cache
        except CacheError as exc:
            if strict:
                raise
            cache = cls()
            from ..engine.evalcache import quarantine_corrupt

            cache.quarantined_path = quarantine_corrupt(path, str(exc))
            return cache
        if payload.get("version") != cls.VERSION:
            if strict:
                raise CacheError(
                    f"kernel cache version {payload.get('version')!r} "
                    f"!= {cls.VERSION}"
                )
            logger.warning(
                "kernel cache %s has version %r != %d; starting empty",
                path,
                payload.get("version"),
                cls.VERSION,
            )
            return cls()
        cache = cls()
        # counters survive the round-trip (older files without them
        # load as zero)
        try:
            cache.hits = int(payload.get("hits", 0))
            cache.misses = int(payload.get("misses", 0))
        except (TypeError, ValueError):
            if strict:
                raise CacheError(f"kernel cache {path}: malformed counters")
            cache.hits = cache.misses = 0
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            if strict:
                raise CacheError(f"kernel cache {path}: malformed entries")
            entries = {}
        for key, data in entries.items():
            try:
                cache._entries[key] = TunedEntry.from_json(data)
            except CacheError:
                if strict:
                    raise
                cache.skipped_entries += 1
        if cache.skipped_entries:
            logger.warning(
                "kernel cache %s: skipped %d malformed entries",
                path,
                cache.skipped_entries,
            )
        return cache
