"""Persistent cache of tuned schedules.

swATOP "can be used as an offline compiler by pre-generating
near-optimal executable code, or be integrated into other frameworks to
provide online autotuning" (Sec. 1).  The cache is what makes both
modes practical: the first encounter of an operator configuration pays
the (seconds-scale) model-based tuning cost; every later encounter
reuses the stored winning strategy.  Entries can be persisted to a JSON
file and shipped like a pre-tuned kernel library.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..dsl.schedule import ScheduleStrategy
from ..errors import ReproError


class CacheError(ReproError):
    """Malformed cache file or key collision."""


def _encode_value(value):
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_value(v) for v in value["__tuple__"])
    return value


@dataclass
class TunedEntry:
    """One cached tuning outcome."""

    strategy: ScheduleStrategy
    predicted_cycles: Optional[float] = None
    measured_cycles: Optional[float] = None

    def to_json(self) -> Dict:
        return {
            "decisions": {
                k: _encode_value(v) for k, v in self.strategy.decisions.items()
            },
            "predicted_cycles": self.predicted_cycles,
            "measured_cycles": self.measured_cycles,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "TunedEntry":
        try:
            decisions = {
                k: _decode_value(v) for k, v in data["decisions"].items()
            }
        except (KeyError, TypeError) as exc:
            raise CacheError(f"malformed cache entry: {data!r}") from exc
        return cls(
            strategy=ScheduleStrategy(decisions),
            predicted_cycles=data.get("predicted_cycles"),
            measured_cycles=data.get("measured_cycles"),
        )


class KernelCache:
    """String-keyed store of tuned strategies with JSON persistence."""

    VERSION = 1

    def __init__(self) -> None:
        self._entries: Dict[str, TunedEntry] = {}
        self.hits = 0
        self.misses = 0

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[TunedEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(
        self, key: str, entry: TunedEntry, *, overwrite: bool = False
    ) -> None:
        """Store a tuned strategy.

        Re-putting the *same* strategy under a key is always allowed
        (it just refreshes the cycle numbers), but replacing a key with
        a *different* strategy requires ``overwrite=True`` -- two
        concurrent tuning runs racing on one key would otherwise
        silently clobber each other's winners.
        """
        existing = self._entries.get(key)
        if (
            existing is not None
            and not overwrite
            and dict(existing.strategy.decisions) != dict(entry.strategy.decisions)
        ):
            raise CacheError(
                f"cache key {key!r} already holds a different strategy "
                f"(pass overwrite=True to replace it)"
            )
        self._entries[key] = entry

    def keys(self):
        return list(self._entries)

    # --- persistence ------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": self.VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "entries": {k: e.to_json() for k, e in self._entries.items()},
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "KernelCache":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CacheError(f"cannot read kernel cache {path}: {exc}") from exc
        if payload.get("version") != cls.VERSION:
            raise CacheError(
                f"kernel cache version {payload.get('version')!r} "
                f"!= {cls.VERSION}"
            )
        cache = cls()
        # counters survive the round-trip (older files without them
        # load as zero)
        cache.hits = int(payload.get("hits", 0))
        cache.misses = int(payload.get("misses", 0))
        for key, data in payload.get("entries", {}).items():
            cache._entries[key] = TunedEntry.from_json(data)
        return cache
