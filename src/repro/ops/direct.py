"""Direct (MAC-based) convolution reference -- Alg. 1.

Two implementations:

* :func:`conv2d_reference` -- vectorized NumPy, used as the functional
  oracle for every tensorized method and every baseline;
* :func:`conv2d_loops` -- the literal 7-level loop nest of Alg. 1,
  exercised on tiny shapes in tests to anchor the vectorized oracle.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .conv_common import ConvParams, pad_input


def conv2d_reference(
    x: np.ndarray, w: np.ndarray, params: ConvParams
) -> np.ndarray:
    """Multi-channel 2-D convolution (cross-correlation, as in DL
    frameworks and the paper's Alg. 1)."""
    if w.shape != params.weight_shape:
        raise WorkloadError(
            f"weight shape {w.shape} does not match {params.weight_shape}"
        )
    xp = pad_input(x, params)
    b, ni, _, _ = xp.shape
    out = np.zeros(params.output_shape, dtype=np.float32)
    s = params.stride
    ro, co = params.ro, params.co
    for kr in range(params.kr):
        for kc in range(params.kc):
            patch = xp[:, :, kr : kr + s * ro : s, kc : kc + s * co : s]
            out += np.einsum(
                "bihw,oi->bohw",
                patch,
                w[:, :, kr, kc],
                optimize=True,
            ).astype(np.float32)
    return out


def conv2d_loops(x: np.ndarray, w: np.ndarray, params: ConvParams) -> np.ndarray:
    """Alg. 1 verbatim: seven nested loops of one MAC statement.

    O(B No Ro Co Kr Kc Ni) Python -- for small test shapes only.
    """
    xp = pad_input(x, params)
    out = np.zeros(params.output_shape, dtype=np.float32)
    s = params.stride
    for cb in range(params.batch):
        for cro in range(params.ro):
            for cco in range(params.co):
                for ckr in range(params.kr):
                    for ckc in range(params.kc):
                        for cno in range(params.no):
                            for cni in range(params.ni):
                                out[cb, cno, cro, cco] += (
                                    xp[cb, cni, s * cro + ckr, s * cco + ckc]
                                    * w[cno, cni, ckr, ckc]
                                )
    return out
