"""Per-shape convolution method selection.

swATOP "dynamically picks the optimal tensorized primitives according
to parameters" (Sec. 5.1.1): for a given layer, the framework chooses
among the three decompositions.  The paper's policy (Fig. 8
discussion): implicit conv is the workhorse; Winograd wins for 3x3
kernels with enough tiles; explicit GEMM is the fallback "for cases
where the other two methods cannot be applied".
"""

from __future__ import annotations

from typing import List

from ..errors import WorkloadError
from . import conv_explicit, conv_implicit, conv_winograd
from .conv_common import ConvParams

METHODS = ("implicit", "winograd", "explicit")


def applicable_methods(params: ConvParams) -> List[str]:
    out = []
    if conv_implicit.applicable(params):
        out.append("implicit")
    if conv_winograd.applicable(params):
        out.append("winograd")
    if conv_explicit.applicable(params):
        out.append("explicit")
    return out


def select_method(params: ConvParams) -> str:
    """The paper's preference order for one layer."""
    methods = applicable_methods(params)
    if not methods:
        raise WorkloadError(
            f"no tensorized method applies to {params.describe()}"
        )
    if "winograd" in methods and params.ro >= 4 and params.co >= 4:
        return "winograd"
    if "implicit" in methods:
        return "implicit"
    return methods[0]
