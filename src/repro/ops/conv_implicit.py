"""Implicit-GEMM convolution (Alg. 2, Fig. 2 right).

Direct convolution whose inner loops are replaced by GEMM primitives:
for each (kr, kc) kernel offset, a GEMM over

* M = output channels (``No``),
* N = batch x spatial tile (``B * Ro_t * Co_t`` -- the loop fusion of
  Sec. 4.3.1),
* K = input channels (``Ni``),

accumulating the output tile in SPM across all reduction loops.

The input tensor must be pre-padded (see
:func:`repro.ops.conv_common.pad_input`); the seed describes the padded
extents with the conv shift ``cRi = cRo + cKr`` as shifted dimensions.
"""

from __future__ import annotations

from typing import List

from ..dsl.compute import ComputeDef, ShiftedDim
from ..dsl.schedule import ScheduleSpace
from ..errors import WorkloadError
from .conv_common import ConvParams

#: implicit conv needs enough input channels to feed the GEMM K
#: dimension; below this the method is not applicable (the paper
#: excludes each network's first layer for exactly this reason).
MIN_NI = 8


def applicable(params: ConvParams) -> bool:
    return params.stride == 1 and params.ni >= MIN_NI


def make_compute(params: ConvParams) -> ComputeDef:
    """Schedule seed over the pre-padded input."""
    if not applicable(params):
        raise WorkloadError(
            f"implicit conv not applicable to {params.describe()} "
            f"(needs stride 1 and Ni >= {MIN_NI})"
        )
    cd = ComputeDef(
        f"conv_implicit_b{params.batch}_ni{params.ni}_no{params.no}"
        f"_r{params.ro}"
    )
    cd.axis("B", params.batch)
    cd.axis("No", params.no)
    cd.axis("Ro", params.ro)
    cd.axis("Co", params.co)
    cd.axis("Ni", params.ni, reduction=True)
    cd.axis("Kr", params.kr, reduction=True)
    cd.axis("Kc", params.kc, reduction=True)
    cd.tensor(
        "input",
        ["B", "Ni", ShiftedDim("Ro", "Kr"), ShiftedDim("Co", "Kc")],
        "input",
    )
    cd.tensor("weight", ["No", "Ni", "Kr", "Kc"], "weight")
    cd.tensor("out", ["B", "No", "Ro", "Co"], "output")
    cd.define_gemm("out", "weight", "input", m="No", n=["B", "Ro", "Co"], k="Ni")
    return cd


def _spatial_tiles(extent: int, quick: bool) -> List[int]:
    cands = [t for t in (4, 8, 16, 32) if t <= extent]
    if not cands:
        cands = [extent]
    if extent <= 32 and extent not in cands:
        cands.append(extent)
    if quick:
        # keep the small end too: large-batch candidates need small
        # spatial tiles to fit the scratch pad
        cands = cands[-3:]
    return sorted(set(cands))


def _channel_tiles(extent: int, quick: bool) -> List[int]:
    cands = [t for t in (16, 32, 64, 128, 256) if t <= extent]
    if not cands:
        cands = [extent]
    if quick:
        cands = cands[-2:]
    return sorted(set(cands))


def _batch_tiles(extent: int, quick: bool) -> List[int]:
    cands = [t for t in (1, 2, 4, 8, 16, 32) if t <= extent]
    if quick:
        cands = cands[-2:]
    return sorted(set(cands))


def make_space(params: ConvParams, *, quick: bool = False) -> ScheduleSpace:
    """The implicit-conv schedule space.

    Loop orders keep the reduction axes (Ni, Kr, Kc) innermost (the
    SPM-accumulation legality rule); layout candidates include the
    canonical NCHW storage and the channels-spatial-batch layout the
    manual swDNN library prefers.
    """
    cd = make_compute(params)
    sp = ScheduleSpace(cd)
    sp.split("B", _batch_tiles(params.batch, quick))
    sp.split("No", _channel_tiles(params.no, quick))
    sp.split("Ni", _channel_tiles(params.ni, quick))
    sp.split("Ro", _spatial_tiles(params.ro, quick))
    sp.split("Co", _spatial_tiles(params.co, quick))
    sp.split("Kr", [1])
    sp.split("Kc", [1])
    orders = [
        ("Ro", "Co", "B", "No", "Kr", "Kc", "Ni"),   # Alg. 2's order
        ("No", "Ro", "Co", "B", "Kr", "Kc", "Ni"),
        ("B", "Ro", "Co", "No", "Kr", "Kc", "Ni"),
    ]
    if not quick:
        orders.append(("Ro", "B", "Co", "No", "Ni", "Kr", "Kc"))
    sp.reorder(orders)
    # NCHW vs (Ni, Ri, Ci, B): batch-contiguous storage makes the fused
    # N dimension of the GEMM a long contiguous DMA run
    layouts = [(0, 1, 2, 3), (1, 2, 3, 0)]
    sp.layout("input", layouts)
    sp.layout("out", layouts)
    # weights repacked (Kr, Kc, No, Ni): each (kr, kc) slice is one
    # contiguous DMA chunk instead of Kr*Kc-strided single elements
    sp.layout("weight", [(2, 3, 0, 1), (0, 1, 2, 3)])
    sp.vectorize()
    return sp
