"""Explicit-GEMM convolution (Fig. 2 left): im2col + one big GEMM.

A two-stage operator:

1. **expand** -- :mod:`repro.ops.im2col` materialises the column matrix
   in main memory (DMA-streamed, transaction-accurate cost);
2. **multiply** -- ``Out[No, B*Ro*Co] = W[No, Ni*Kr*Kc] @ Col`` runs
   through the ordinary tuned GEMM machinery; the column-matrix layout
   chosen in stage 1 becomes the B-tensor layout of the GEMM.

swATOP tunes the GEMM schedule *jointly* with the column layout; the
manual baseline performs a fixed-layout im2col and calls the xMath
routine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace
from ..errors import WorkloadError
from ..machine.config import MachineConfig, default_config
from ..machine.trace import SimReport
from .conv_common import ConvParams
from .gemm import make_compute as make_gemm_compute
from .gemm import make_space as make_gemm_space
from .im2col import LAYOUTS, im2col, im2col_cost


def applicable(params: ConvParams) -> bool:
    return params.stride == 1


def gemm_dims(params: ConvParams) -> Dict[str, int]:
    return {
        "m": params.no,
        "n": params.batch * params.ro * params.co,
        "k": params.ni * params.kr * params.kc,
    }


def make_compute(params: ConvParams) -> ComputeDef:
    """Seed of the stage-2 GEMM (the tensorized part of the method)."""
    if not applicable(params):
        raise WorkloadError(
            f"explicit conv not applicable to {params.describe()}"
        )
    d = gemm_dims(params)
    return make_gemm_compute(d["m"], d["n"], d["k"])


def make_space(params: ConvParams, *, quick: bool = False) -> ScheduleSpace:
    """GEMM space extended with the column-matrix layout choice.

    The ``layout:B`` decision doubles as the im2col output layout:
    identity = ``kn`` (K-major column matrix), transposed = ``nk``.
    """
    cd = make_compute(params)
    sp = make_gemm_space(cd, quick=quick, layouts=not quick)
    sp.layout("B", [(0, 1), (1, 0)])
    return sp


def col_layout_of(strategy) -> str:
    """Which im2col layout a GEMM strategy implies."""
    perm = strategy.get("layout:B", (0, 1))
    return "kn" if tuple(perm) == (0, 1) else "nk"


def weight_matrix(w: np.ndarray, params: ConvParams) -> np.ndarray:
    if w.shape != params.weight_shape:
        raise WorkloadError(
            f"weight shape {w.shape} does not match {params.weight_shape}"
        )
    k = params.ni * params.kr * params.kc
    return np.ascontiguousarray(
        np.asarray(w, dtype=np.float32).reshape(params.no, k)
    )


def output_from_matrix(mat: np.ndarray, params: ConvParams) -> np.ndarray:
    """Fold the GEMM result back into (B, No, Ro, Co)."""
    no = params.no
    expect = (no, params.batch * params.ro * params.co)
    if mat.shape != expect:
        raise WorkloadError(f"result shape {mat.shape} != {expect}")
    return np.ascontiguousarray(
        mat.reshape(no, params.batch, params.ro, params.co).transpose(1, 0, 2, 3)
    )


@dataclass
class ExplicitStages:
    """Per-stage timing of one explicit-conv execution."""

    expand: SimReport
    multiply: SimReport

    @property
    def total(self) -> SimReport:
        return SimReport.merge_serial(
            [self.expand, self.multiply], detail="conv_explicit"
        )


def expand_report(
    params: ConvParams,
    layout: str,
    config: Optional[MachineConfig] = None,
) -> SimReport:
    """The im2col stage as a SimReport (pure data movement)."""
    if layout not in LAYOUTS:
        raise WorkloadError(f"unknown col layout {layout!r}")
    cfg = config or default_config()
    cost = im2col_cost(params, layout, cfg)
    return SimReport(
        cycles=cost.cycles,
        dma_cycles=cost.cycles,
        bytes_moved=cost.bytes_read + cost.bytes_written,
        config=cfg,
        detail=f"im2col[{layout}]",
    )
