"""Shared convolution parameter handling.

The paper's operators (Alg. 1/2, Fig. 2) are unit-stride multi-channel
convolutions; spatial padding is applied to the input ahead of the
kernel (both swATOP and the manual libraries see the same pre-padded
tensor, so comparisons are unaffected).  Strided convolutions are
supported by the direct reference but are outside the tensorized
templates, mirroring the paper's layer selection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from ..errors import WorkloadError


@dataclass(frozen=True)
class ConvParams:
    """One convolution operator configuration.

    ``ri``/``ci`` are the *unpadded* input spatial extents; ``pad`` is
    symmetric spatial zero-padding.  Output: ``ro = ri + 2 pad - kr + 1``
    (unit stride).
    """

    batch: int
    ni: int       # input channels
    no: int       # output channels
    ri: int       # input rows
    ci: int       # input cols
    kr: int = 3
    kc: int = 3
    pad: int = 0
    stride: int = 1

    def __post_init__(self) -> None:
        for field_name in ("batch", "ni", "no", "ri", "ci", "kr", "kc", "stride"):
            if getattr(self, field_name) <= 0:
                raise WorkloadError(f"{field_name} must be positive")
        if self.pad < 0:
            raise WorkloadError("pad must be non-negative")
        if self.ro <= 0 or self.co <= 0:
            raise WorkloadError(
                f"kernel {self.kr}x{self.kc} larger than padded input "
                f"{self.padded_ri}x{self.padded_ci}"
            )

    # --- derived shapes -----------------------------------------------------
    @property
    def padded_ri(self) -> int:
        return self.ri + 2 * self.pad

    @property
    def padded_ci(self) -> int:
        return self.ci + 2 * self.pad

    @property
    def ro(self) -> int:
        return (self.padded_ri - self.kr) // self.stride + 1

    @property
    def co(self) -> int:
        return (self.padded_ci - self.kc) // self.stride + 1

    @property
    def input_shape(self) -> Tuple[int, int, int, int]:
        return (self.batch, self.ni, self.ri, self.ci)

    @property
    def padded_input_shape(self) -> Tuple[int, int, int, int]:
        return (self.batch, self.ni, self.padded_ri, self.padded_ci)

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        return (self.no, self.ni, self.kr, self.kc)

    @property
    def output_shape(self) -> Tuple[int, int, int, int]:
        return (self.batch, self.no, self.ro, self.co)

    @property
    def flops(self) -> int:
        """Direct-convolution FLOPs -- the normalisation the paper uses
        for throughput even when Winograd does less arithmetic."""
        return 2 * self.batch * self.no * self.ro * self.co * self.ni * self.kr * self.kc

    def with_batch(self, batch: int) -> "ConvParams":
        return replace(self, batch=batch)

    def describe(self) -> str:
        return (
            f"B{self.batch} Ni{self.ni} No{self.no} "
            f"{self.ri}x{self.ci} k{self.kr}x{self.kc} p{self.pad} s{self.stride}"
        )


def pad_input(x: np.ndarray, params: ConvParams) -> np.ndarray:
    """Apply the spatial zero padding of ``params`` to an input tensor."""
    if x.shape != params.input_shape:
        raise WorkloadError(
            f"input shape {x.shape} does not match {params.input_shape}"
        )
    if params.pad == 0:
        return np.asarray(x, dtype=np.float32)
    p = params.pad
    return np.pad(
        np.asarray(x, dtype=np.float32),
        ((0, 0), (0, 0), (p, p), (p, p)),
    )
