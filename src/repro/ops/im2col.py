"""im2col: expanding convolution input into a column matrix.

The explicit-GEMM method (Fig. 2 left) first materialises
``col[Ni*Kr*Kc, B*Ro*Co]`` in main memory, then multiplies it with the
filter matrix ``W[No, Ni*Kr*Kc]``.  The expansion itself is a pure
data-movement stage: every output element is read from the (padded)
input and written once, streamed through SPM by the DMA engine.  Its
cost is charged with the same transaction model as every other
transfer, and it depends on the chosen column-matrix layout:

* ``"kn"`` -- rows are K (= Ni*Kr*Kc): writes run along N with
  contiguous spans of ``Co`` (the input's innermost dim), reads are the
  same spans of the input;
* ``"nk"`` -- rows are N: each write is a K-contiguous gather of
  elements that are *strided* in the input, so reads degrade to
  element-granularity transactions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from ..machine.config import MachineConfig, default_config
from ..machine.memory import transaction_bytes
from .conv_common import ConvParams, pad_input

LAYOUTS = ("kn", "nk")


def col_shape(params: ConvParams, layout: str = "kn") -> Tuple[int, int]:
    k = params.ni * params.kr * params.kc
    n = params.batch * params.ro * params.co
    if layout == "kn":
        return (k, n)
    if layout == "nk":
        return (n, k)
    raise WorkloadError(f"unknown im2col layout {layout!r}")


def im2col(x: np.ndarray, params: ConvParams, layout: str = "kn") -> np.ndarray:
    """Functional expansion (on the pre-padded input)."""
    xp = pad_input(x, params)
    s = params.stride
    cols = np.empty(
        (params.ni, params.kr, params.kc, params.batch, params.ro, params.co),
        dtype=np.float32,
    )
    for kr in range(params.kr):
        for kc in range(params.kc):
            patch = xp[
                :, :, kr : kr + s * params.ro : s, kc : kc + s * params.co : s
            ]
            cols[:, kr, kc] = patch.transpose(1, 0, 2, 3)
    k, n = params.ni * params.kr * params.kc, params.batch * params.ro * params.co
    mat = cols.reshape(k, n)
    if layout == "kn":
        return np.ascontiguousarray(mat)
    if layout == "nk":
        return np.ascontiguousarray(mat.T)
    raise WorkloadError(f"unknown im2col layout {layout!r}")


@dataclass(frozen=True)
class Im2colCost:
    cycles: float
    bytes_read: int
    bytes_written: int


def im2col_cost(
    params: ConvParams,
    layout: str = "kn",
    config: Optional[MachineConfig] = None,
) -> Im2colCost:
    """Simulated cost of the expansion on one core group.

    Reads: the input is touched once per (kr, kc) offset, in runs of
    ``Co`` elements (``kn``) or element-by-element (``nk``).  Writes:
    the column matrix is written once, contiguously.  Both directions
    stream through SPM in DMA batches.
    """
    if layout not in LAYOUTS:
        raise WorkloadError(f"unknown im2col layout {layout!r}")
    cfg = config or default_config()
    eb = cfg.dtype_bytes
    k, n = params.ni * params.kr * params.kc, params.batch * params.ro * params.co

    read_run = params.co * eb if layout == "kn" else eb
    reads = (k * n * eb) // read_run
    paid_read = 0
    # a run's alignment drifts with the input row pitch
    pitch = params.padded_ci * eb
    for i in range(min(reads, 64)):
        addr = (i * pitch) % cfg.dram_transaction_bytes
        p, _ = transaction_bytes(addr, read_run, cfg.dram_transaction_bytes)
        paid_read += p
    paid_read = paid_read * reads // max(1, min(reads, 64))

    write_bytes = k * n * eb  # contiguous stream, no waste
    total_paid = paid_read + write_bytes

    stage_bytes = (cfg.spm_bytes // 2) * cfg.cpes_per_cg
    stages = max(1, math.ceil(write_bytes / stage_bytes))
    cycles = (
        2 * stages * (cfg.dma_latency_cycles + cfg.dma_issue_cycles)
        + total_paid / cfg.dram_bytes_per_cycle
    )
    return Im2colCost(
        cycles=cycles, bytes_read=paid_read, bytes_written=write_bytes
    )
