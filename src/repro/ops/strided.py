"""Strided convolution via phase decomposition.

The tensorized templates (Alg. 2's shifted dims) require unit stride,
so strided layers (ResNet downsamples, YOLO's stem) would otherwise
fall off the fast path.  The standard remedy — used by real SW26010
libraries and reproduced here — decomposes a stride-``s`` convolution
into ``s x s`` unit-stride convolutions over *phase-subsampled* inputs:

    out[b, o, i, j] = sum_{r, c} x[b, :, s*i + r, s*j + c] * w[o, :, r, c]

writing ``r = s*a + pr`` and ``c = s*c' + pc`` turns each (pr, pc)
phase into a unit-stride convolution of the subsampled input
``x[:, :, pr::s, pc::s]`` with the subsampled kernel
``w[:, :, pr::s, pc::s]``, and the phase outputs simply sum.  Every
phase then flows through the ordinary tuned implicit/explicit pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import WorkloadError
from .conv_common import ConvParams, pad_input


@dataclass(frozen=True)
class Phase:
    """One (pr, pc) phase of the decomposition."""

    pr: int
    pc: int
    params: ConvParams  # the unit-stride sub-problem


def decompose(params: ConvParams) -> List[Phase]:
    """Split a strided convolution into unit-stride phase convolutions.

    Returns one :class:`Phase` per (pr, pc) with a non-empty subsampled
    kernel.  Each phase's params describe the *pre-padded, subsampled*
    input (``pad == 0``), so callers feed it
    :func:`phase_input` / :func:`phase_weight` slices directly.
    """
    s = params.stride
    if s == 1:
        raise WorkloadError("decompose() is for strided convolutions")
    phases: List[Phase] = []
    for pr in range(s):
        kr_p = _ceil_div(params.kr - pr, s)
        if kr_p <= 0:
            continue
        for pc in range(s):
            kc_p = _ceil_div(params.kc - pc, s)
            if kc_p <= 0:
                continue
            # the unit-stride sub-problem must produce *exactly* the
            # parent's output grid: its input window is pinned to
            # ro + kr_p - 1 rows (the subsample is cropped or
            # zero-grown to fit; rows beyond the window never feed an
            # output)
            sub = ConvParams(
                batch=params.batch,
                ni=params.ni,
                no=params.no,
                ri=params.ro + kr_p - 1,
                ci=params.co + kc_p - 1,
                kr=kr_p,
                kc=kc_p,
                pad=0,
                stride=1,
            )
            phases.append(Phase(pr=pr, pc=pc, params=sub))
    if not phases:
        raise WorkloadError(
            f"degenerate decomposition for {params.describe()}"
        )
    return phases


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def phase_input(x: np.ndarray, params: ConvParams, phase: Phase) -> np.ndarray:
    """The pre-padded, (pr, pc)-subsampled input of one phase, grown
    with zeros to the phase params' expected extents if the subsample
    falls short (happens when the parent output grid overruns)."""
    xp = pad_input(np.asarray(x, np.float32), params)
    sub = xp[:, :, phase.pr :: params.stride, phase.pc :: params.stride]
    want = phase.params.input_shape
    if sub.shape == want:
        return np.ascontiguousarray(sub)
    out = np.zeros(want, np.float32)
    out[:, :, : sub.shape[2], : sub.shape[3]] = sub[
        :, :, : want[2], : want[3]
    ]
    return out


def phase_weight(w: np.ndarray, params: ConvParams, phase: Phase) -> np.ndarray:
    """The (pr, pc)-subsampled kernel taps of one phase."""
    w = np.asarray(w, np.float32)
    if w.shape != params.weight_shape:
        raise WorkloadError(
            f"weight shape {w.shape} != {params.weight_shape}"
        )
    sub = w[:, :, phase.pr :: params.stride, phase.pc :: params.stride]
    if sub.shape != phase.params.weight_shape:
        raise WorkloadError(
            f"phase weight {sub.shape} != {phase.params.weight_shape}"
        )
    return np.ascontiguousarray(sub)


def reference_by_phases(
    x: np.ndarray, w: np.ndarray, params: ConvParams
) -> np.ndarray:
    """Sum of per-phase unit-stride convolutions (a pure-NumPy check of
    the decomposition identity; runners use the tuned pipeline)."""
    from .direct import conv2d_reference

    out = np.zeros(params.output_shape, np.float32)
    for phase in decompose(params):
        out += conv2d_reference(
            phase_input(x, params, phase),
            phase_weight(w, params, phase),
            phase.params,
        )
    return out
