"""The matrix-multiplication operator: seed + schedule space.

GEMM "is naturally suitable to be tensorized into GEMM micro-kernels in
the form of three nested loops" (Sec. 3); its schedule space covers the
tile factors of all three dimensions, the loop order, the main-memory
layouts of A and B, the SPM layouts, and the vectorization dimension.
"""

from __future__ import annotations

from typing import List

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace
from ..errors import WorkloadError


def make_compute(m: int, n: int, k: int) -> ComputeDef:
    """Schedule seed of ``C[M, N] = A[M, K] @ B[K, N]``."""
    if min(m, n, k) <= 0:
        raise WorkloadError(f"non-positive GEMM shape ({m}, {n}, {k})")
    cd = ComputeDef(f"gemm_{m}x{n}x{k}")
    cd.axis("M", m)
    cd.axis("N", n)
    cd.axis("K", k, reduction=True)
    cd.tensor("A", ["M", "K"], "input")
    cd.tensor("B", ["K", "N"], "input")
    cd.tensor("C", ["M", "N"], "output")
    cd.define_gemm("C", "A", "B", m="M", n=["N"], k="K")
    return cd


def tile_candidates(extent: int, *, quick: bool = False) -> List[int]:
    """Tile factors for one GEMM dimension.

    The full set spans the SPM-feasible range; ``quick`` keeps a spread
    of three for smoke-level spaces.
    """
    full = [f for f in (32, 64, 96, 128, 192, 256, 384, 512) if f <= extent]
    if not full:
        full = [extent]
    if extent not in full and extent <= 512:
        full.append(extent)
    if quick:
        # the large-tile end is where the optima live; keep it
        return sorted(set(full[-4:]))
    return sorted(set(full))


def make_space(
    compute: ComputeDef,
    *,
    quick: bool = False,
    layouts: bool = True,
    vectorization: bool = True,
) -> ScheduleSpace:
    """The GEMM schedule space.

    ``layouts=False``/``vectorization=False`` freeze those decision
    axes (used by the ablation benchmarks to isolate each
    transformation's contribution).
    """
    m = compute.axes["M"].extent
    n = compute.axes["N"].extent
    k = compute.axes["K"].extent
    sp = ScheduleSpace(compute)
    sp.split("M", tile_candidates(m, quick=quick))
    sp.split("N", tile_candidates(n, quick=quick))
    sp.split("K", tile_candidates(k, quick=quick))
    sp.reorder([("M", "N", "K"), ("N", "M", "K")])
    if vectorization:
        sp.vectorize()
    if layouts:
        sp.spm_layout("a")
        sp.spm_layout("b")
    return sp
