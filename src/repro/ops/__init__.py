"""DL operators expressed over tensorized primitives (Sec. 3)."""

from . import conv_explicit, conv_implicit, conv_winograd, gemm, im2col
from .conv_common import ConvParams, pad_input
from .direct import conv2d_loops, conv2d_reference
from .selector import METHODS, applicable_methods, select_method

__all__ = [
    "ConvParams",
    "pad_input",
    "conv2d_reference",
    "conv2d_loops",
    "gemm",
    "im2col",
    "conv_implicit",
    "conv_explicit",
    "conv_winograd",
    "METHODS",
    "applicable_methods",
    "select_method",
]
