"""Winograd convolution (Fig. 2 middle): F(2x2, 3x3) and F(4x4, 3x3).

Minimal-filtering convolution over small input tiles (Lavin & Gray).
Pipeline for a variant F(m x m, 3x3) with transformed-tile edge
``t = m + 2``:

1. **filter transform** ``U[xi, nu, No, Ni] = G w G^T``;
2. **input transform** ``V[xi, nu, Ni, P] = B^T d B`` over the
   P = B * ceil(Ro/m) * ceil(Co/m) tiles;
3. **t*t batched GEMMs** ``M[t, No, P] = U[t] @ V[t]`` -- the paper's
   "batch of GEMM operations, i.e. 16 multiplications for 3x3 kernels"
   (36 for the F(4x4) variant).  In swATOP the batch index is just
   another spatial axis of the tensorized seed, so one tuned schedule
   serves the whole batch and the DMA of consecutive slices streams
   through the double buffer;
4. **output transform** ``Y = A^T M A`` folded back to (B, No, Ro, Co).

F(2x2) does 2.25x less multiply work than direct convolution at high
numerical robustness; F(4x4) reaches 4x at larger transform cost and
looser fp32 accuracy -- the classic trade real libraries tune, exposed
here through ``variant="auto"`` (tune both, keep the faster).

Transforms run on the CPEs (vector adds) and stream through DMA; their
costs use the same machine constants as everything else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace
from ..errors import WorkloadError
from ..machine.config import MachineConfig, default_config
from ..machine.trace import SimReport
from .conv_common import ConvParams, pad_input


@dataclass(frozen=True)
class WinogradVariant:
    """One F(m x m, r x r) instantiation."""

    name: str
    out_tile: int                  # m
    tile: int                      # m + r - 1
    bt: Tuple[Tuple[float, ...], ...]
    g: Tuple[Tuple[float, ...], ...]
    at: Tuple[Tuple[float, ...], ...]
    input_xform_ops: int           # fp ops per tile per channel
    output_xform_ops: int
    filter_xform_ops: int

    @property
    def num_gemms(self) -> int:
        return self.tile * self.tile

    @property
    def BT(self) -> np.ndarray:
        return np.asarray(self.bt, dtype=np.float32)

    @property
    def Gm(self) -> np.ndarray:
        return np.asarray(self.g, dtype=np.float32)

    @property
    def AT(self) -> np.ndarray:
        return np.asarray(self.at, dtype=np.float32)


#: F(2x2, 3x3): 4x4 tiles, 16 GEMMs, 2.25x multiply reduction.
F22 = WinogradVariant(
    name="f22",
    out_tile=2,
    tile=4,
    bt=((1, 0, -1, 0), (0, 1, 1, 0), (0, -1, 1, 0), (0, 1, 0, -1)),
    g=((1.0, 0.0, 0.0), (0.5, 0.5, 0.5), (0.5, -0.5, 0.5), (0.0, 0.0, 1.0)),
    at=((1, 1, 1, 0), (0, 1, -1, -1)),
    input_xform_ops=32,
    output_xform_ops=24,
    filter_xform_ops=28,
)

#: F(4x4, 3x3): 6x6 tiles, 36 GEMMs, 4x multiply reduction.
F44 = WinogradVariant(
    name="f44",
    out_tile=4,
    tile=6,
    bt=(
        (4, 0, -5, 0, 1, 0),
        (0, -4, -4, 1, 1, 0),
        (0, 4, -4, -1, 1, 0),
        (0, -2, -1, 2, 1, 0),
        (0, 2, -1, -2, 1, 0),
        (0, 4, 0, -5, 0, 1),
    ),
    g=(
        (1 / 4, 0, 0),
        (-1 / 6, -1 / 6, -1 / 6),
        (-1 / 6, 1 / 6, -1 / 6),
        (1 / 24, 1 / 12, 1 / 6),
        (1 / 24, -1 / 12, 1 / 6),
        (0, 0, 1),
    ),
    at=(
        (1, 1, 1, 1, 1, 0),
        (0, 1, -1, 2, -2, 0),
        (0, 1, 1, 4, 4, 0),
        (0, 1, -1, 8, -8, 1),
    ),
    input_xform_ops=156,
    output_xform_ops=102,
    filter_xform_ops=90,
)

VARIANTS: Dict[str, WinogradVariant] = {"f22": F22, "f44": F44}

# --- backward-compatible module-level aliases (the F22 defaults) --------
G = F22.Gm
BT = F22.BT
AT = F22.AT
TILE = F22.tile
OUT_TILE = F22.out_tile
NUM_GEMMS = F22.num_gemms
INPUT_XFORM_OPS = F22.input_xform_ops
OUTPUT_XFORM_OPS = F22.output_xform_ops
FILTER_XFORM_OPS = F22.filter_xform_ops


def get_variant(variant) -> WinogradVariant:
    if isinstance(variant, WinogradVariant):
        return variant
    if variant is None:
        return F22
    try:
        return VARIANTS[variant]
    except KeyError:
        raise WorkloadError(
            f"unknown Winograd variant {variant!r}; choose from "
            f"{sorted(VARIANTS)}"
        ) from None


def applicable(params: ConvParams) -> bool:
    """Winograd F(m,3) needs a unit-stride 3x3 kernel."""
    return params.stride == 1 and params.kr == 3 and params.kc == 3


def tile_counts(params: ConvParams, variant=None) -> Tuple[int, int, int]:
    """(tiles_r, tiles_c, P) -- spatial tile grid and batched-GEMM N."""
    v = get_variant(variant)
    tr = math.ceil(params.ro / v.out_tile)
    tc = math.ceil(params.co / v.out_tile)
    return tr, tc, params.batch * tr * tc


# ---------------------------------------------------------------------------
# functional pipeline
# ---------------------------------------------------------------------------
def filter_transform(
    w: np.ndarray, params: ConvParams, variant=None
) -> np.ndarray:
    """U[t, t, No, Ni] = G w G^T."""
    v = get_variant(variant)
    if w.shape != params.weight_shape:
        raise WorkloadError(f"weight shape {w.shape} != {params.weight_shape}")
    u = np.einsum("xr,oirc,yc->xyoi", v.Gm, w.astype(np.float32), v.Gm,
                  optimize=True)
    return np.ascontiguousarray(u, dtype=np.float32)


def input_transform(
    x: np.ndarray, params: ConvParams, variant=None
) -> np.ndarray:
    """V[t, t, Ni, P] = B^T d B over all tiles (input pre-padded here)."""
    v = get_variant(variant)
    xp = pad_input(x, params)
    tr, tc, p = tile_counts(params, v)
    need_r = (tr - 1) * v.out_tile + v.tile
    need_c = (tc - 1) * v.out_tile + v.tile
    pr = max(0, need_r - xp.shape[2])
    pc = max(0, need_c - xp.shape[3])
    if pr or pc:
        xp = np.pad(xp, ((0, 0), (0, 0), (0, pr), (0, pc)))
    b, ni = xp.shape[0], xp.shape[1]
    tiles = np.empty((b, ni, tr, tc, v.tile, v.tile), dtype=np.float32)
    for i in range(tr):
        for j in range(tc):
            r0, c0 = i * v.out_tile, j * v.out_tile
            tiles[:, :, i, j] = xp[:, :, r0 : r0 + v.tile, c0 : c0 + v.tile]
    out = np.einsum("xr,bnijrc,yc->xynbij", v.BT, tiles, v.BT, optimize=True)
    return np.ascontiguousarray(
        out.reshape(v.tile, v.tile, ni, p), dtype=np.float32
    )


def output_transform(
    m: np.ndarray, params: ConvParams, variant=None
) -> np.ndarray:
    """Y = A^T M A, cropped to (B, No, Ro, Co)."""
    v = get_variant(variant)
    tr, tc, p = tile_counts(params, v)
    no = params.no
    if m.shape != (v.tile, v.tile, no, p):
        raise WorkloadError(f"M shape {m.shape} != {(v.tile, v.tile, no, p)}")
    mt = m.reshape(v.tile, v.tile, no, params.batch, tr, tc)
    y = np.einsum("ux,xynbij,vy->bnijuv", v.AT, mt, v.AT, optimize=True)
    out = y.transpose(0, 1, 2, 4, 3, 5).reshape(
        params.batch, no, tr * v.out_tile, tc * v.out_tile
    )
    return np.ascontiguousarray(out[:, :, : params.ro, : params.co])


def winograd_reference(
    x: np.ndarray, w: np.ndarray, params: ConvParams, variant=None
) -> np.ndarray:
    """Full functional pipeline (oracle for the tuned path)."""
    v = get_variant(variant)
    u = filter_transform(w, params, v)
    vt = input_transform(x, params, v)
    m = np.einsum("xyoi,xyip->xyop", u, vt, optimize=True)
    return output_transform(m, params, v)


# ---------------------------------------------------------------------------
# the tensorized batched-GEMM stage
# ---------------------------------------------------------------------------
def make_compute(params: ConvParams, variant=None) -> ComputeDef:
    """Seed of stage 3: M[T, No, P] += U[T, No, Ni] @ V[T, Ni, P].

    The batch index T is an ordinary spatial axis with tile factor 1;
    hoisting and double buffering then stream the operand pairs.
    """
    v = get_variant(variant)
    if not applicable(params):
        raise WorkloadError(
            f"winograd not applicable to {params.describe()} "
            "(needs stride 1, 3x3 kernel)"
        )
    _, _, p = tile_counts(params, v)
    cd = ComputeDef(
        f"conv_winograd_{v.name}_b{params.batch}_ni{params.ni}"
        f"_no{params.no}_r{params.ro}"
    )
    cd.axis("T", v.num_gemms)
    cd.axis("No", params.no)
    cd.axis("P", p)
    cd.axis("Ni", params.ni, reduction=True)
    cd.tensor("U", ["T", "No", "Ni"], "weight")
    cd.tensor("V", ["T", "Ni", "P"], "input")
    cd.tensor("M", ["T", "No", "P"], "output")
    cd.define_gemm("M", "U", "V", m="No", n=["P"], k="Ni")
    return cd


def make_space(
    params: ConvParams, *, quick: bool = False, variant=None
) -> ScheduleSpace:
    v = get_variant(variant)
    cd = make_compute(params, v)
    _, _, p = tile_counts(params, v)
    sp = ScheduleSpace(cd)
    sp.split("T", [1])
    no_cands = [t for t in (32, 64, 128, 256) if t <= params.no] or [params.no]
    ni_cands = [t for t in (32, 64, 128, 256) if t <= params.ni] or [params.ni]
    p_cands = [t for t in (64, 128, 256, 512, 1024) if t <= p] or [p]
    if quick:
        no_cands, ni_cands, p_cands = no_cands[-2:], ni_cands[-1:], p_cands[-2:]
    sp.split("No", no_cands)
    sp.split("Ni", ni_cands)
    sp.split("P", p_cands)
    sp.reorder([("T", "No", "P", "Ni"), ("No", "P", "T", "Ni")])
    if not quick:
        sp.vectorize()
    return sp


# ---------------------------------------------------------------------------
# transform-stage costs
# ---------------------------------------------------------------------------
def _stream_cycles(nbytes: int, cfg: MachineConfig) -> float:
    stage = (cfg.spm_bytes // 2) * cfg.cpes_per_cg
    stages = max(1, math.ceil(nbytes / stage))
    return stages * (cfg.dma_latency_cycles + cfg.dma_issue_cycles) + (
        nbytes / cfg.dram_bytes_per_cycle
    )


def _xform_report(
    name: str,
    units: int,
    ops_per_unit: int,
    read_bytes: int,
    write_bytes: int,
    cfg: MachineConfig,
) -> SimReport:
    """A transform stage: vector adds on the CPEs overlapping a DMA
    stream; makespan is whichever dominates plus the fill latency."""
    flops = units * ops_per_unit
    # transforms are add-dominated: one lane-wide op per cycle per CPE
    compute = flops / (cfg.cpes_per_cg * cfg.vector_lanes) * 1.25
    dma = _stream_cycles(read_bytes + write_bytes, cfg)
    return SimReport(
        cycles=max(compute, dma) + cfg.dma_latency_cycles,
        dma_cycles=dma,
        compute_cycles=compute,
        bytes_moved=read_bytes + write_bytes,
        flops=flops,
        config=cfg,
        detail=name,
    )


def input_transform_report(
    params: ConvParams, config: Optional[MachineConfig] = None, variant=None
) -> SimReport:
    v = get_variant(variant)
    cfg = config or default_config()
    _, _, p = tile_counts(params, v)
    units = params.ni * p
    eb = cfg.dtype_bytes
    read = params.batch * params.ni * params.padded_ri * params.padded_ci * eb
    write = v.num_gemms * params.ni * p * eb
    return _xform_report(
        f"winograd_input_xform[{v.name}]", units, v.input_xform_ops,
        read, write, cfg,
    )


def filter_transform_report(
    params: ConvParams, config: Optional[MachineConfig] = None, variant=None
) -> SimReport:
    v = get_variant(variant)
    cfg = config or default_config()
    units = params.no * params.ni
    eb = cfg.dtype_bytes
    read = params.no * params.ni * 9 * eb
    write = v.num_gemms * params.no * params.ni * eb
    return _xform_report(
        f"winograd_filter_xform[{v.name}]", units, v.filter_xform_ops,
        read, write, cfg,
    )


def output_transform_report(
    params: ConvParams, config: Optional[MachineConfig] = None, variant=None
) -> SimReport:
    v = get_variant(variant)
    cfg = config or default_config()
    _, _, p = tile_counts(params, v)
    units = params.no * p
    eb = cfg.dtype_bytes
    read = v.num_gemms * params.no * p * eb
    write = params.batch * params.no * params.ro * params.co * eb
    return _xform_report(
        f"winograd_output_xform[{v.name}]", units, v.output_xform_ops,
        read, write, cfg,
    )
