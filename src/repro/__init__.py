"""swATOP reproduction: autotuned DL operators on a simulated SW26010.

Reproduction of Gao et al., "swATOP: Automatically Optimizing Deep
Learning Operators on SW26010 Many-Core Processor" (ICPP 2019).  See
README.md for a tour, DESIGN.md for the system inventory and the
hardware-substitution argument, and EXPERIMENTS.md for paper-vs-measured
results.

The public API most users want:

* :class:`repro.runtime.AtopLibrary` -- tuned operators with a kernel
  cache (conv2d / gemm);
* :func:`repro.autotuner.tune_with_model` /
  :func:`repro.autotuner.tune_blackbox` -- the two autotuners over a
  DSL-defined schedule space;
* :class:`repro.codegen.CompiledKernel` -- execute an optimized kernel
  on the simulated machine;
* :mod:`repro.harness.experiments` -- regenerate any paper experiment
  (also via ``python -m repro <fig5|...|tab3>``).
"""

from . import (
    autotuner,
    baselines,
    codegen,
    dsl,
    harness,
    ir,
    machine,
    ops,
    optimizer,
    primitives,
    runtime,
    scheduler,
    workloads,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "machine",
    "primitives",
    "dsl",
    "ir",
    "scheduler",
    "optimizer",
    "autotuner",
    "codegen",
    "ops",
    "baselines",
    "workloads",
    "harness",
    "runtime",
    "ReproError",
    "__version__",
]
