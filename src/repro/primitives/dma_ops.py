"""The paper's DMA primitive pair (Sec. 4.1) plus the slow gld/gst path.

``swDMA`` launches an asynchronous transfer described by (count,
blockSize, strideSize, direction) and bumps a reply word on completion;
``swDMAWait`` spins until the reply word reaches the expected count.
The *when* of completion is owned by whoever holds the timeline (the
executor); these wrappers package descriptor construction, functional
data movement, and cost computation into one object so both the
executor and the faithful tests use identical geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import DmaError
from ..machine.config import MachineConfig, default_config
from ..machine.dma import (
    MEM_TO_SPM,
    SPM_TO_MEM,
    DmaCost,
    DmaDescriptor,
    DmaEngine,
    ReplyWord,
)
from ..machine.memory import MainMemory


@dataclass
class DmaTransfer:
    """A prepared (but not yet 'timed') DMA batch with its reply word."""

    descriptors: List[DmaDescriptor]
    reply: ReplyWord
    cost: DmaCost
    direction: str


class DmaUnit:
    """Issues swDMA/swDMAWait against one CG's memory."""

    def __init__(
        self,
        memory: MainMemory,
        config: Optional[MachineConfig] = None,
    ) -> None:
        self.config = config or default_config()
        self.engine = DmaEngine(memory, self.config)

    def sw_dma(
        self,
        mem_addr: int,
        count: int,
        block_size: int,
        stride_size: int,
        direction: str,
        reply: Optional[ReplyWord] = None,
        *,
        cpe_id: int = 0,
    ) -> DmaTransfer:
        """Paper-faithful ``swDMA``: one CPE's descriptor.

        ``count``/``block_size``/``stride_size`` are in bytes;
        ``stride_size`` is the gap between blocks (0 = continuous mode).
        """
        desc = DmaDescriptor(
            mem_addr=mem_addr,
            size=count,
            block=block_size if block_size > 0 else max(count, 1),
            stride=stride_size,
            direction=direction,
            cpe_id=cpe_id,
        )
        return self.batch([desc], reply)

    def batch(
        self,
        descriptors: Sequence[DmaDescriptor],
        reply: Optional[ReplyWord] = None,
    ) -> DmaTransfer:
        """Package a batch of per-CPE descriptors (one DMA_CG worth)."""
        descs = list(descriptors)
        if not descs:
            raise DmaError("empty DMA batch")
        directions = {d.direction for d in descs}
        if len(directions) != 1:
            raise DmaError("mixed directions in one DMA batch")
        return DmaTransfer(
            descriptors=descs,
            reply=reply or ReplyWord(),
            cost=self.engine.cost(descs),
            direction=directions.pop(),
        )

    # --- functional completion -------------------------------------------
    def complete_gather(self, transfer: DmaTransfer) -> List[np.ndarray]:
        """Perform a mem->SPM batch; returns each descriptor's payload
        (float32) and bumps the reply word once per descriptor."""
        if transfer.direction != MEM_TO_SPM:
            raise DmaError("complete_gather needs a mem->spm transfer")
        payloads = []
        for desc in transfer.descriptors:
            payloads.append(self.engine.gather(desc).view(np.float32).copy())
            transfer.reply.bump()
        return payloads

    def complete_scatter(
        self, transfer: DmaTransfer, payloads: Sequence[np.ndarray]
    ) -> None:
        """Perform an SPM->mem batch from per-descriptor payloads."""
        if transfer.direction != SPM_TO_MEM:
            raise DmaError("complete_scatter needs an spm->mem transfer")
        if len(payloads) != len(transfer.descriptors):
            raise DmaError(
                f"{len(payloads)} payloads for {len(transfer.descriptors)} descriptors"
            )
        for desc, payload in zip(transfer.descriptors, payloads):
            self.engine.scatter(
                desc, np.ascontiguousarray(payload, dtype=np.float32).view(np.uint8)
            )
            transfer.reply.bump()

    @staticmethod
    def sw_dma_wait(reply: ReplyWord, reply_times: int) -> None:
        """Paper-faithful ``swDMAWait``: raises if the transfers the
        caller is waiting on were never completed (a programming error
        the real hardware turns into a hang)."""
        if not reply.satisfied(reply_times):
            raise DmaError(
                f"swDMAWait would hang: reply={reply.count} < {reply_times}"
            )

    # --- the slow path ------------------------------------------------------
    def gld_cycles(self, nbytes: int) -> float:
        """Global load/store timing: per-element latency-bound path at
        1.48 GB/s -- two orders below DMA, which is why boundary code
        that falls back to gld/gst is worth engineering away."""
        if nbytes < 0:
            raise DmaError("negative gld size")
        cfg = self.config
        return nbytes / (cfg.gld_bw / cfg.clock_hz)
