"""Assembly-kernel emission for the eight GEMM micro-kernels.

The paper's appendix: "We have adopted a template-based method to
generate eight different optimized assembly kernels."  This module is
that template: it renders each :class:`KernelVariant`'s software-
pipelined inner loop as SW26010 assembly text, annotated with the issue
slot (cycle, pipeline) each instruction gets from the dual-issue
scheduler -- the artifact a kernel engineer would inspect to confirm
the 16-vmad/16-cycle steady state.

The emitted text is genuine output of the same
:func:`repro.machine.pipeline.schedule` model that prices the kernels,
so the listing and the cost model cannot drift apart.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..machine.config import MachineConfig, default_config
from ..machine.pipeline import Instr, IssueRecord, schedule
from .microkernel import (
    ALL_VARIANTS,
    BLOCK_SCALARS,
    BLOCK_VECS,
    KernelVariant,
    _k_step_instrs,
    cycles_per_k_step,
)

#: abstract ops -> SW-flavoured mnemonics
_MNEMONIC = {
    "vmad": "vmad",
    "vldd": "vldd",
    "vstd": "vstd",
    "vlddr": "vlddr",
    "vlddc": "vlddc",
    "vldder": "vldder",
    "vlddec": "vlddec",
    "ldd": "ldd",
    "std": "std",
    "iop": "addl",
    "getr": "getr",
    "getc": "getc",
    "putr": "putr",
    "putc": "putc",
}


def _operand(instr: Instr) -> str:
    parts = []
    if instr.dst is not None:
        parts.append(f"${instr.dst}")
    parts.extend(f"${s}" for s in instr.srcs if s != instr.dst)
    return ", ".join(parts)


def emit_inner_loop(
    variant: KernelVariant,
    config: Optional[MachineConfig] = None,
) -> str:
    """Render one steady-state iteration pair (the two-phase rotated-
    register body) of a variant's inner loop as annotated assembly."""
    cfg = config or default_config()
    body = _k_step_instrs(variant, "e", "o") + _k_step_instrs(variant, "o", "e")
    result = schedule(body, cfg)
    per_k = cycles_per_k_step(variant, cfg)

    lines: List[str] = []
    lines.append(f"/* spm_gemm_{variant.name}: software-pipelined inner loop")
    lines.append(f" * A {variant.a_layout}, B {variant.b_layout}, "
                 f"vectorized along {variant.vec_dim}")
    lines.append(f" * register blocking: {BLOCK_VECS} vectors x "
                 f"{BLOCK_SCALARS} scalars of C")
    lines.append(f" * steady state: {per_k:.1f} cycles per k-step "
                 f"({result.cycles} cycles / 2 steps, "
                 f"{result.stalls()} bubbles) */")
    lines.append(f".Lk_loop_{variant.name}:")
    by_cycle: Dict[int, List[IssueRecord]] = {}
    for rec in result.records:
        by_cycle.setdefault(rec.cycle, []).append(rec)
    for cycle in sorted(by_cycle):
        for rec in by_cycle[cycle]:
            mnem = _MNEMONIC.get(rec.instr.op, rec.instr.op)
            text = f"        {mnem:8s}{_operand(rec.instr)}"
            lines.append(f"{text:52s}# c{cycle:<4d}{rec.pipe.upper()}")
    lines.append(f"        bne     $kcnt, .Lk_loop_{variant.name}")
    return "\n".join(lines) + "\n"


def emit_all_kernels(config: Optional[MachineConfig] = None) -> str:
    """The full eight-kernel template expansion, one listing each."""
    cfg = config or default_config()
    parts = [
        "/* swATOP-repro: template-generated GEMM micro-kernels "
        "(Appendix 9). */",
        "",
    ]
    for variant in ALL_VARIANTS:
        parts.append(emit_inner_loop(variant, cfg))
    return "\n".join(parts)


def kernel_summary(config: Optional[MachineConfig] = None) -> List[dict]:
    """Per-variant digest (used by tests and the docs example)."""
    cfg = config or default_config()
    out = []
    for variant in ALL_VARIANTS:
        body = _k_step_instrs(variant, "e", "o")
        out.append(
            {
                "name": variant.name,
                "cycles_per_k": cycles_per_k_step(variant, cfg),
                "vmads_per_k": sum(1 for i in body if i.op == "vmad"),
                "loads_per_k": sum(
                    1 for i in body
                    if i.op in ("vldd", "vlddr", "vlddc", "vldder", "vlddec", "ldd")
                ),
                "vec_contiguous": variant.vec_operand_contiguous,
            }
        )
    return out
