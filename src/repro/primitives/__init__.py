"""Tensorized primitives: the hardware-dependent layer of swATOP.

Everything above this layer (DSL, scheduler, IR optimizer, autotuner)
is hardware-agnostic; everything below (:mod:`repro.machine`) is the
simulated silicon.  The primitives encapsulate register communication,
dual-pipeline scheduling, vectorization and DMA exactly as the paper's
hand-written assembly kernels do (Sec. 4.1, Appendix 9).
"""

from .asm_emitter import emit_all_kernels, emit_inner_loop, kernel_summary
from .dma_ops import DmaTransfer, DmaUnit
from .gemm_kernel import (
    ALL_VARIANTS,
    COL_MAJOR,
    ROW_MAJOR,
    GemmCost,
    KernelVariant,
    gemm_flops,
    kernel_cycles,
    spm_gemm,
    spm_tile_bytes,
)
from .microkernel import (
    block_drain_cycles,
    block_init_cycles,
    cycles_per_k_step,
)
from .registry import PrimitiveInfo, PrimitiveRegistry, default_registry

__all__ = [
    "emit_all_kernels",
    "emit_inner_loop",
    "kernel_summary",
    "DmaUnit",
    "DmaTransfer",
    "GemmCost",
    "KernelVariant",
    "ALL_VARIANTS",
    "ROW_MAJOR",
    "COL_MAJOR",
    "spm_gemm",
    "kernel_cycles",
    "gemm_flops",
    "spm_tile_bytes",
    "cycles_per_k_step",
    "block_init_cycles",
    "block_drain_cycles",
    "PrimitiveInfo",
    "PrimitiveRegistry",
    "default_registry",
]
