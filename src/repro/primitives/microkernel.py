"""The 4x4 register-blocked GEMM micro-kernel (Appendix 9).

Rather than hard-coding the paper's "16 vmad in 16 cycles", this module
*derives* the per-k-step cycle cost of each kernel variant by building
its software-pipelined instruction sequence and scheduling it on the
dual-issue pipeline model.  The register-blocking scheme:

* 16 vector registers hold a 4-vector x 4-scalar block of C
  (16 x 4 C elements for vec-M, 4 x 16 for vec-N);
* per k-step, the operand supplying the *vectorized* dimension
  contributes 4 vectors (one ``vlddr``/``vlddc`` each when that
  dimension is contiguous in its SPM layout; a slow scalar
  load-and-pack path otherwise), and the other operand contributes 4
  scalars via ``vldder``/``vlddec`` (extend + broadcast);
* the loads for step ``k+1`` are interleaved among step ``k``'s vmads
  with a rotated register set, exactly like the hand-written assembly,
  so a well-laid-out variant sustains one vmad per cycle.

Eight variants (Appendix 9): A stored column- or row-major x B stored
column- or row-major x vectorization along M or N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import PipelineError
from ..machine import vector as V
from ..machine.config import MachineConfig, config_signature, default_config
from ..machine.pipeline import Instr, ScheduleResult, schedule, steady_state_cycles

#: layout tags: which dimension is contiguous (leading) in SPM.
ROW_MAJOR = "row_major"  # innermost = second index (K for A(M,K), N for B(K,N))
COL_MAJOR = "col_major"  # innermost = first index  (M for A,      K for B)

#: register blocking geometry (Appendix 9).
BLOCK_VECS = 4    # vector registers along the vectorized dim
BLOCK_SCALARS = 4  # scalar slots along the other dim


@dataclass(frozen=True)
class KernelVariant:
    """One of the eight hand-written kernel flavours."""

    a_layout: str  # ROW_MAJOR or COL_MAJOR storage of A (M x K) in SPM
    b_layout: str  # ROW_MAJOR or COL_MAJOR storage of B (K x N) in SPM
    vec_dim: str   # "M" or "N"

    def __post_init__(self) -> None:
        if self.a_layout not in (ROW_MAJOR, COL_MAJOR):
            raise PipelineError(f"bad A layout {self.a_layout!r}")
        if self.b_layout not in (ROW_MAJOR, COL_MAJOR):
            raise PipelineError(f"bad B layout {self.b_layout!r}")
        if self.vec_dim not in ("M", "N"):
            raise PipelineError(f"vec_dim must be 'M' or 'N', got {self.vec_dim!r}")

    @property
    def name(self) -> str:
        a = "ac" if self.a_layout == COL_MAJOR else "ar"
        b = "bc" if self.b_layout == COL_MAJOR else "br"
        return f"{a}_{b}_vec{self.vec_dim.lower()}"

    # --- contiguity of the dimensions each operand must serve ------------
    @property
    def vec_operand_contiguous(self) -> bool:
        """Is the vectorized dimension contiguous in its source operand?

        vec-M reads M-vectors from A: contiguous iff A is column-major.
        vec-N reads N-vectors from B: contiguous iff B is row-major.
        """
        if self.vec_dim == "M":
            return self.a_layout == COL_MAJOR
        return self.b_layout == ROW_MAJOR

    @property
    def scalar_operand_adjacent(self) -> bool:
        """Are the 4 scalar-dim elements (fixed k) adjacent in memory?

        vec-M takes scalars along N from B: adjacent iff B row-major.
        vec-N takes scalars along M from A: adjacent iff A column-major.
        """
        if self.vec_dim == "M":
            return self.b_layout == ROW_MAJOR
        return self.a_layout == COL_MAJOR


ALL_VARIANTS: Tuple[KernelVariant, ...] = tuple(
    KernelVariant(a, b, v)
    for a in (COL_MAJOR, ROW_MAJOR)
    for b in (COL_MAJOR, ROW_MAJOR)
    for v in ("M", "N")
)


def _k_step_instrs(variant: KernelVariant, phase: str, other: str) -> List[Instr]:
    """Instruction sequence for one k-step using register set ``phase``
    while prefetching the next step's operands into set ``other``.

    The vectorized operand broadcasts on the row bus when it is A
    (vec-M) and on the column bus when it is B (vec-N); the scalar
    operand uses the opposite bus -- the Fig. 12 exchange.
    """
    vec_axis = "row" if variant.vec_dim == "M" else "col"
    sca_axis = "col" if variant.vec_dim == "M" else "row"

    loads: List[Instr] = []
    if variant.vec_operand_contiguous:
        loads += [
            V.load_bcast_vector(f"va{i}_{other}", "vp", vec_axis)
            for i in range(BLOCK_VECS)
        ]
    else:
        # slow path: gather 4 elements per vector with scalar loads and
        # pack; the packed vector still crosses the bus (one put).
        for i in range(BLOCK_VECS):
            loads += [
                Instr.make("ldd", f"t{i}_{j}_{other}", "vp") for j in range(4)
            ]
            loads.append(
                Instr.make(
                    "iop",
                    f"va{i}_{other}",
                    *[f"t{i}_{j}_{other}" for j in range(4)],
                )
            )
    loads += [
        V.load_bcast_scalar(f"sb{j}_{other}", "sp", sca_axis)
        for j in range(BLOCK_SCALARS)
    ]
    if not variant.scalar_operand_adjacent:
        # extra address arithmetic for strided scalar picks
        loads += [Instr.make("iop", f"addr{j}_{other}") for j in range(BLOCK_SCALARS)]

    mads = [
        V.vmad(f"c{i}_{j}", f"va{i}_{phase}", f"sb{j}_{phase}")
        for i in range(BLOCK_VECS)
        for j in range(BLOCK_SCALARS)
    ]
    # interleave: sprinkle the prefetch loads through the vmad stream so
    # P1 work hides under P0 work, as the hand scheduler does.
    out: List[Instr] = []
    li, mi = 0, 0
    stride = max(1, len(mads) // max(1, len(loads)))
    while mi < len(mads) or li < len(loads):
        for _ in range(stride):
            if mi < len(mads):
                out.append(mads[mi])
                mi += 1
        if li < len(loads):
            out.append(loads[li])
            li += 1
    out += V.loop_control("kcnt")
    return out


# ---------------------------------------------------------------------------
# memoized pipeline scheduling
# ---------------------------------------------------------------------------
# The eight variants' cycle counts are re-derived thousands of times per
# sweep (every calibration sample and every simulated GEMM leaf asks for
# them).  The former per-function ``lru_cache`` keyed on the config
# *object* was both wasteful -- the block-drain sequence is identical
# across all eight variants, yet scheduled eight times -- and wrong:
# dataclass hashing ignores the latency/pipe tables, so configs
# differing only in instruction timing shared cached cycle counts.  The
# memo below keys on (instruction-sequence signature, full machine
# signature) instead.

_SCHEDULE_MEMO: Dict[Tuple, ScheduleResult] = {}


@dataclass
class ScheduleMemoStats:
    """Hit/miss accounting of the micro-kernel schedule memo."""

    hits: int = 0
    misses: int = 0


_MEMO_STATS = ScheduleMemoStats()


def schedule_memo_stats() -> ScheduleMemoStats:
    """A snapshot of the memo's hit/miss counters."""
    return ScheduleMemoStats(_MEMO_STATS.hits, _MEMO_STATS.misses)


def clear_schedule_memo() -> None:
    _SCHEDULE_MEMO.clear()
    _CYCLE_MEMO.clear()
    _MEMO_STATS.hits = 0
    _MEMO_STATS.misses = 0


def memoized_schedule(
    instrs: List[Instr],
    config: Optional[MachineConfig] = None,
    *,
    initial_ready: Optional[Dict[str, int]] = None,
) -> ScheduleResult:
    """:func:`~repro.machine.pipeline.schedule`, memoized.

    The key is (instruction sequence, machine signature, initial
    register readiness); :class:`Instr` is a frozen dataclass, so the
    sequence hashes directly.
    """
    cfg = config or default_config()
    key = (
        tuple(instrs),
        config_signature(cfg),
        tuple(sorted((initial_ready or {}).items())),
    )
    hit = _SCHEDULE_MEMO.get(key)
    if hit is not None:
        _MEMO_STATS.hits += 1
        return hit
    _MEMO_STATS.misses += 1
    result = schedule(instrs, cfg, initial_ready=initial_ready)
    _SCHEDULE_MEMO[key] = result
    return result


_CYCLE_MEMO: Dict[Tuple, float] = {}


def _variant_memo(name: str, variant: KernelVariant, cfg: MachineConfig):
    key = (name, variant, config_signature(cfg))
    hit = _CYCLE_MEMO.get(key)
    if hit is not None:
        _MEMO_STATS.hits += 1
    return key, hit


def cycles_per_k_step(
    variant: KernelVariant, config: Optional[MachineConfig] = None
) -> float:
    """Steady-state cycles of one k-step of the inner loop.

    Derived from the pipeline model over the two-phase (rotated
    register) body; a hazard-free variant comes out at 16 cycles/step
    (one per vmad), matching Appendix 9.
    """
    cfg = config or default_config()
    key, hit = _variant_memo("k_step", variant, cfg)
    if hit is not None:
        return hit
    body = _k_step_instrs(variant, "e", "o") + _k_step_instrs(variant, "o", "e")
    result = (
        steady_state_cycles(body, cfg, schedule_fn=memoized_schedule) / 2.0
    )
    _CYCLE_MEMO[key] = result
    return result


def block_init_cycles(
    variant: KernelVariant, config: Optional[MachineConfig] = None
) -> int:
    """Cycles to load the 16-vector C block and prime the first k-step's
    operands before the steady-state loop starts."""
    cfg = config or default_config()
    key, hit = _variant_memo("block_init", variant, cfg)
    if hit is not None:
        return int(hit)
    instrs = [
        V.load_vector(f"c{i}_{j}", "cp")
        for i in range(BLOCK_VECS)
        for j in range(BLOCK_SCALARS)
    ]
    # prime first operands (sequence identical to a k-step's load set)
    instrs += [ins for ins in _k_step_instrs(variant, "e", "e") if ins.op != "vmad"]
    result = memoized_schedule(instrs, cfg).cycles
    _CYCLE_MEMO[key] = result
    return result


def block_drain_cycles(
    variant: KernelVariant, config: Optional[MachineConfig] = None
) -> int:
    """Cycles to store the C block back to SPM after the last k-step.

    The final vmads are still in flight when the stores begin, so the
    drain is scheduled with the accumulators made ready only after one
    full vmad latency.  The store sequence is variant-independent, so
    all eight variants answer from one memo entry.
    """
    cfg = config or default_config()
    key, hit = _variant_memo("block_drain", variant, cfg)
    if hit is not None:
        return int(hit)
    ready = {
        f"c{i}_{j}": cfg.latencies["vmad"]
        for i in range(BLOCK_VECS)
        for j in range(BLOCK_SCALARS)
    }
    instrs = [
        V.store_vector(f"c{i}_{j}", "cp")
        for i in range(BLOCK_VECS)
        for j in range(BLOCK_SCALARS)
    ]
    result = memoized_schedule(instrs, cfg, initial_ready=ready).cycles
    _CYCLE_MEMO[key] = result
    return result
