"""Tensorized GEMM primitives (``spm_gemm``).

The hardware-dependent building block of swATOP (Sec. 4.1): a cluster
GEMM ``C += alpha * A @ B`` over operands resident in SPM, distributed
8x8 across the CPEs, exchanged through register communication, and
computed with the 4x4 register-blocked micro-kernel.  Eight variants
exist (Appendix 9): A/B each row- or column-major in SPM, vectorization
along M or N.

The primitive has two faces:

* **functional** -- the exact product, computed with NumPy on the tile;
* **timing** -- a structural cycle model assembled from machine
  constants and the pipeline-scheduled micro-kernel: per-CPE block loop
  (init + K x per-k-steady-state + drain + loop overhead), register
  communication pattern switches, and a fixed kernel-call overhead.

The autotuner's Eq. (2) is a *linear fit* to this surface (calibrated
in :mod:`repro.autotuner.calibrate`); the residual between fit and
structure -- ceil() quantisation, switch terms -- is the model error
the paper measures in Fig. 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import MachineError
from ..machine.config import MachineConfig, default_config
from .microkernel import (
    ALL_VARIANTS,
    BLOCK_SCALARS,
    BLOCK_VECS,
    COL_MAJOR,
    ROW_MAJOR,
    KernelVariant,
    block_drain_cycles,
    block_init_cycles,
    cycles_per_k_step,
)

__all__ = [
    "GemmCost",
    "kernel_cycles",
    "spm_gemm",
    "gemm_flops",
    "spm_tile_bytes",
    "ALL_VARIANTS",
    "KernelVariant",
    "ROW_MAJOR",
    "COL_MAJOR",
]


@dataclass(frozen=True)
class GemmCost:
    """Cycle breakdown of one ``spm_gemm`` invocation."""

    total: float
    inner: float      # K-loop steady-state cycles
    init_drain: float
    switches: float
    call_overhead: float

    @property
    def overhead_fraction(self) -> float:
        return 1.0 - self.inner / self.total if self.total else 0.0


def gemm_flops(m: int, n: int, k: int) -> int:
    """Multiply-accumulate FLOPs of one GEMM."""
    return 2 * m * n * k


def spm_tile_bytes(
    m: int, n: int, k: int, config: Optional[MachineConfig] = None
) -> int:
    """Per-CPE SPM bytes of the three distributed tiles of one GEMM
    (A: MxK, B: KxN, C: MxN split 8x8 over the cluster, remainder
    rounded up to the boundary CPEs' share)."""
    cfg = config or default_config()
    rows, cols = cfg.cluster_rows, cfg.cluster_cols

    def per_cpe(r_ext: int, c_ext: int) -> int:
        return math.ceil(r_ext / rows) * math.ceil(c_ext / cols) * cfg.dtype_bytes

    return per_cpe(m, k) + per_cpe(k, n) + per_cpe(m, n)


def kernel_cycles(
    m: int,
    n: int,
    k: int,
    variant: KernelVariant,
    config: Optional[MachineConfig] = None,
) -> GemmCost:
    """Structural cycle count of one cluster ``spm_gemm`` call.

    Geometry: each CPE owns a ceil(M/8) x ceil(N/8) tile of C and walks
    it in register blocks of (4 vectors x 4 scalars); each block runs
    the full K loop.  Register-communication producers rotate once per
    K/8 panel (two pattern switches each: the A row burst and the B
    column burst).
    """
    if m <= 0 or n <= 0 or k <= 0:
        raise MachineError(f"non-positive GEMM shape ({m}, {n}, {k})")
    cfg = config or default_config()
    rows, cols = cfg.cluster_rows, cfg.cluster_cols
    lanes = cfg.vector_lanes

    mc = math.ceil(m / rows)
    nc = math.ceil(n / cols)
    if variant.vec_dim == "M":
        vec_extent, sca_extent = mc, nc
    else:
        vec_extent, sca_extent = nc, mc
    blocks = math.ceil(vec_extent / (BLOCK_VECS * lanes)) * math.ceil(
        sca_extent / BLOCK_SCALARS
    )

    per_k = cycles_per_k_step(variant, cfg)
    init = block_init_cycles(variant, cfg)
    drain = block_drain_cycles(variant, cfg)

    inner = blocks * k * per_k
    init_drain = blocks * (init + drain + cfg.loop_overhead_cycles)
    rotations = min(rows, k)  # one producer rotation per K/8 panel
    switches = blocks * 2 * rotations * cfg.regcomm_switch_cycles
    total = cfg.kernel_call_cycles + inner + init_drain + switches
    return GemmCost(
        total=total,
        inner=inner,
        init_drain=init_drain,
        switches=switches,
        call_overhead=cfg.kernel_call_cycles,
    )


def spm_gemm(
    m: int,
    n: int,
    k: int,
    alpha: float,
    a: np.ndarray,
    lda: int,
    b: np.ndarray,
    ldb: int,
    beta: float,
    c: np.ndarray,
    ldc: int,
    vec_dim: str,
    *,
    a_layout: str = COL_MAJOR,
    b_layout: str = COL_MAJOR,
    config: Optional[MachineConfig] = None,
) -> GemmCost:
    """The paper's ``spm_gemm`` interface (CBLAS-like + ``vec_dim``).

    ``a``/``b``/``c`` are flat SPM arrays holding the tiles in the
    declared layouts with the given leading dimensions; ``c`` is updated
    in place (``C = alpha*A@B + beta*C``).  Returns the cycle cost.

    Layout convention: ``COL_MAJOR`` A means element (i, j) lives at
    ``j * lda + i`` (so ``lda >= m``); ``ROW_MAJOR`` A at ``i * lda + j``
    (``lda >= k``); similarly for B (K x N) and C (always stored with the
    vectorized dimension leading: COL_MAJOR when vec-M, ROW_MAJOR when
    vec-N -- the layout-transformation rule of Sec. 4.3.2).
    """
    variant = KernelVariant(a_layout, b_layout, vec_dim)
    cfg = config or default_config()

    a_mat = _as_matrix(a, m, k, a_layout, lda, "A")
    b_mat = _as_matrix(b, k, n, b_layout, ldb, "B")
    c_layout = COL_MAJOR if vec_dim == "M" else ROW_MAJOR
    c_mat = _as_matrix(c, m, n, c_layout, ldc, "C")

    result = alpha * (a_mat @ b_mat) + beta * c_mat
    _write_matrix(c, result, c_layout, ldc)
    return kernel_cycles(m, n, k, variant, cfg)


def _as_matrix(
    flat: np.ndarray, rows: int, cols: int, layout: str, ld: int, name: str
) -> np.ndarray:
    """View a flat SPM array as the (rows x cols) logical matrix."""
    flat = np.asarray(flat)
    if flat.ndim != 1:
        raise MachineError(f"SPM operand {name} must be flat, got {flat.ndim}-D")
    if layout == COL_MAJOR:
        if ld < rows:
            raise MachineError(f"{name}: leading dim {ld} < rows {rows}")
        need = ld * cols
        if flat.size < need:
            raise MachineError(f"{name}: SPM array too small ({flat.size} < {need})")
        return flat[:need].reshape(cols, ld).T[:rows, :]
    if ld < cols:
        raise MachineError(f"{name}: leading dim {ld} < cols {cols}")
    need = ld * rows
    if flat.size < need:
        raise MachineError(f"{name}: SPM array too small ({flat.size} < {need})")
    return flat[:need].reshape(rows, ld)[:, :cols]


def _write_matrix(flat: np.ndarray, values: np.ndarray, layout: str, ld: int) -> None:
    rows, cols = values.shape
    if layout == COL_MAJOR:
        flat[: ld * cols].reshape(cols, ld).T[:rows, :] = values
    else:
        flat[: ld * rows].reshape(rows, ld)[:, :cols] = values
