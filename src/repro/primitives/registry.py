"""Primitive registry and legality rules.

The scheduler prunes schedule strategies whose GEMM sites cannot be
served by any kernel variant; the rules here encode the constraints the
paper attributes to the hand-written kernels:

* the vectorized dimension of a tile must reach at least one vector
  (4 elements) -- smaller boundaries go through boundary processing;
* operand tiles must fit the SPM plan (checked elsewhere via
  :mod:`repro.machine.spm`);
* layouts must match one of the eight implemented variants (always
  true by construction, but the registry is the single source of truth
  for "what exists", including manual-library-only specials).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import IllegalCandidateError
from ..machine.config import MachineConfig, default_config
from .gemm_kernel import GemmCost, kernel_cycles
from .microkernel import ALL_VARIANTS, KernelVariant


@dataclass(frozen=True)
class PrimitiveInfo:
    """Registry entry for one kernel variant."""

    variant: KernelVariant
    #: available to swATOP's scheduler (False = manual-library special).
    public: bool = True
    #: multiplier on the structural cycle count (manual specials can be
    #: slightly better than the generic template inside their niche).
    cycle_scale: float = 1.0
    min_vec_extent: int = 4


class PrimitiveRegistry:
    """All GEMM primitives known to the system."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or default_config()
        self._entries: Dict[str, PrimitiveInfo] = {
            v.name: PrimitiveInfo(v) for v in ALL_VARIANTS
        }

    def register(self, name: str, info: PrimitiveInfo) -> None:
        if name in self._entries:
            raise IllegalCandidateError(f"primitive {name!r} already registered")
        self._entries[name] = info

    def get(self, name: str) -> PrimitiveInfo:
        try:
            return self._entries[name]
        except KeyError:
            raise IllegalCandidateError(f"unknown primitive {name!r}") from None

    def public_variants(self) -> List[KernelVariant]:
        return [e.variant for e in self._entries.values() if e.public]

    # --- legality -----------------------------------------------------------
    def check_legal(
        self,
        m: int,
        n: int,
        k: int,
        variant: KernelVariant,
        *,
        allow_boundary: bool = True,
    ) -> None:
        """Raise :class:`IllegalCandidateError` if the variant cannot
        serve an (m, n, k) tile.

        With ``allow_boundary`` the vectorized extent may be any
        positive size (boundary processing pads it); without, it must be
        a whole number of vectors -- the constraint the paper notes
        vectorization imposes on loop lengths (Sec. 4.3.3).
        """
        info = self.get(variant.name)
        if m <= 0 or n <= 0 or k <= 0:
            raise IllegalCandidateError(f"empty GEMM tile ({m}, {n}, {k})")
        lanes = self.config.vector_lanes
        vec_extent = m if variant.vec_dim == "M" else n
        if allow_boundary:
            if vec_extent < 1:
                raise IllegalCandidateError("vectorized extent must be positive")
        else:
            if vec_extent < info.min_vec_extent:
                raise IllegalCandidateError(
                    f"vectorized extent {vec_extent} below minimum "
                    f"{info.min_vec_extent} for {variant.name}"
                )
            if vec_extent % lanes:
                raise IllegalCandidateError(
                    f"vectorized extent {vec_extent} not a multiple of "
                    f"{lanes} lanes (boundary processing disabled)"
                )

    def legal_variants(
        self, m: int, n: int, k: int, *, allow_boundary: bool = True
    ) -> List[KernelVariant]:
        out = []
        for variant in self.public_variants():
            try:
                self.check_legal(m, n, k, variant, allow_boundary=allow_boundary)
            except IllegalCandidateError:
                continue
            out.append(variant)
        return out

    def cost(self, m: int, n: int, k: int, variant: KernelVariant) -> GemmCost:
        info = self.get(variant.name)
        base = kernel_cycles(m, n, k, variant, self.config)
        if info.cycle_scale == 1.0:
            return base
        return GemmCost(
            total=base.total * info.cycle_scale,
            inner=base.inner * info.cycle_scale,
            init_drain=base.init_drain * info.cycle_scale,
            switches=base.switches * info.cycle_scale,
            call_overhead=base.call_overhead * info.cycle_scale,
        )

    def best_variant(
        self, m: int, n: int, k: int, *, allow_boundary: bool = True
    ) -> Tuple[KernelVariant, GemmCost]:
        """Cheapest legal public variant for a tile (used by the paper's
        'dynamically picks the optimal tensorized primitives')."""
        best: Optional[Tuple[KernelVariant, GemmCost]] = None
        for variant in self.legal_variants(m, n, k, allow_boundary=allow_boundary):
            cost = self.cost(m, n, k, variant)
            if best is None or cost.total < best[1].total:
                best = (variant, cost)
        if best is None:
            raise IllegalCandidateError(
                f"no legal primitive for GEMM tile ({m}, {n}, {k})"
            )
        return best


_DEFAULT_REGISTRY: Optional[PrimitiveRegistry] = None


def default_registry() -> PrimitiveRegistry:
    """Process-wide registry over the default machine config."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = PrimitiveRegistry()
    return _DEFAULT_REGISTRY
