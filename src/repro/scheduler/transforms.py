"""Loop transformations (Sec. 4.3.1): split, reorder, fuse.

The lowering in :mod:`repro.scheduler.lower` applies split/reorder
implicitly while building the nest; this module provides the
transformations as standalone, testable operations -- including the
GEMM-enlarging *fusion* rule the paper highlights ("if n independent
matrix multiplications share the same input, they can be combined into
one larger matrix multiplication with an output n times larger").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ScheduleError
from ..ir.nodes import ForNode, GemmOpNode, Node, SeqNode
from ..ir.visitors import transform


@dataclass(frozen=True)
class SplitResult:
    """Outcome of splitting an extent by a factor."""

    factor: int
    full_trips: int
    tail: int

    @property
    def trips(self) -> int:
        return self.full_trips + (1 if self.tail else 0)

    @property
    def has_boundary(self) -> bool:
        return self.tail != 0


def split_extent(extent: int, factor: int) -> SplitResult:
    """Split a loop of ``extent`` iterations into outer x inner(factor).

    A non-dividing factor leaves a boundary tail -- the situation the
    boundary-processing machinery (Sec. 4.5.3) exists for.
    """
    if extent <= 0:
        raise ScheduleError(f"cannot split non-positive extent {extent}")
    if not (1 <= factor <= extent):
        raise ScheduleError(f"split factor {factor} outside [1, {extent}]")
    full, tail = divmod(extent, factor)
    return SplitResult(factor=factor, full_trips=full, tail=tail)


def reorder_axes(order: Tuple[str, ...], axes: Tuple[str, ...]) -> Tuple[str, ...]:
    """Validate and return a reordering of ``axes`` (Reorder)."""
    if sorted(order) != sorted(axes):
        raise ScheduleError(f"{order} is not a permutation of {axes}")
    return tuple(order)


def fuse_extents(outer: int, inner: int) -> int:
    """Fuse two adjacent loops into one (the reverse of Split)."""
    if outer <= 0 or inner <= 0:
        raise ScheduleError("fused extents must be positive")
    return outer * inner


# ---------------------------------------------------------------------------
# IR-level GEMM batch fusion
# ---------------------------------------------------------------------------
def fuse_shared_input_gemms(node: Node) -> Node:
    """Merge runs of sibling ``gemm_op`` nodes that share the same A
    operand (and SPM layout/variant) into one call with N enlarged.

    This is legal when the B and C tiles of the fused calls are laid
    out back-to-back in their SPM buffers -- which is how the lowering
    emits batched sites (each call's maps/lens are identical and the
    buffers are sized for the whole batch).  The transformation
    preserves semantics trivially: ``A @ [B1 | B2]`` = ``[C1 | C2]``.
    """

    def rewrite(n: Node) -> Optional[Node]:
        if not isinstance(n, SeqNode):
            return None
        out: List[Node] = []
        run: List[GemmOpNode] = []

        def flush() -> None:
            if not run:
                return
            if len(run) == 1:
                out.append(run[0])
            else:
                first = run[0]
                total_n = sum(g.n for g in run)
                out.append(
                    GemmOpNode(
                        m=first.m,
                        n=total_n,
                        k=first.k,
                        a_spm=first.a_spm,
                        b_spm=first.b_spm,
                        c_spm=first.c_spm,
                        a_map=first.a_map,
                        b_map=first.b_map,
                        c_map=first.c_map,
                        variant=first.variant,
                        accumulate=first.accumulate,
                        a_lens=first.a_lens,
                        b_lens=_scale_cols(first.b_lens, first.b_map, len(run)),
                        c_lens=_scale_cols(first.c_lens, first.c_map, len(run)),
                    )
                )
            run.clear()

        for child in n.body:
            if isinstance(child, GemmOpNode) and (
                not run or _fusable(run[-1], child)
            ):
                run.append(child)
            else:
                flush()
                out.append(child)
        flush()
        return SeqNode(out)

    return transform(node, rewrite)


def _fusable(a: GemmOpNode, b: GemmOpNode) -> bool:
    return (
        a.a_spm == b.a_spm
        and a.b_spm == b.b_spm
        and a.c_spm == b.c_spm
        and a.m == b.m
        and a.k == b.k
        and a.variant == b.variant
        and a.a_map == b.a_map
        and a.b_map == b.b_map
        and a.c_map == b.c_map
        and a.accumulate == b.accumulate
    )


def _scale_cols(lens: Tuple[int, ...], mat_map, times: int) -> Tuple[int, ...]:
    if not lens:
        return lens
    cols = mat_map[1]
    out = list(lens)
    if cols:
        out[cols[0]] *= times  # batch extends the outermost fused col dim
    return tuple(out)


def perfect_nest_depth(node: Node) -> int:
    """Depth of the perfectly-nested loop prefix (diagnostics)."""
    depth = 0
    cur = node
    while True:
        if isinstance(cur, SeqNode) and len(cur.body) == 1:
            cur = cur.body[0]
            continue
        if isinstance(cur, ForNode):
            depth += 1
            cur = cur.body
            continue
        return depth
