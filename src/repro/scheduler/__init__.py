"""Scheduler: schedule-space traversal and strategy lowering (Sec. 4.3)."""

from .enumerate import Candidate, EnumerationStats, enumerate_candidates, iter_candidates
from .lower import (
    LoweringOptions,
    axis_of_dim,
    lower_strategy,
    reference_lower_strategy,
)
from .transforms import (
    SplitResult,
    fuse_extents,
    fuse_shared_input_gemms,
    perfect_nest_depth,
    reorder_axes,
    split_extent,
)

__all__ = [
    "Candidate",
    "EnumerationStats",
    "enumerate_candidates",
    "iter_candidates",
    "LoweringOptions",
    "lower_strategy",
    "reference_lower_strategy",
    "axis_of_dim",
    "SplitResult",
    "split_extent",
    "reorder_axes",
    "fuse_extents",
    "fuse_shared_input_gemms",
    "perfect_nest_depth",
]
