"""Lowering: schedule seed + schedule strategy -> kernel IR.

This is the scheduler's core (Sec. 4.3 + Fig. 4 middle): a concrete
:class:`~repro.dsl.schedule.ScheduleStrategy` is applied to a
:class:`~repro.dsl.compute.ComputeDef`, producing a
:class:`~repro.ir.nodes.KernelNode`:

* every axis is **split** by its tile factor; the outer part becomes a
  loop, the inner part feeds the GEMM dims and tile extents;
* the loop nest follows the strategy's **order** (reduction axes must
  be innermost of the axes they reduce into -- the C tile accumulates
  in SPM across them, exactly like Alg. 2);
* **layout** choices permute main-memory tensors (changing DMA
  geometry) and fix the SPM storage order of the GEMM operands;
* the **vectorization** choice plus the SPM layouts select one of the
  eight kernel variants;
* ragged extents produce *boundary regions*: the split's remainder is
  peeled into epilogue code that either switches the primitive to the
  smaller tail parameters or applies lightweight zero-padding when the
  tail is below the vector width (Sec. 4.5.3);
* SPM capacity is checked against the 64 KB budget (with double
  buffering accounted for), pruning infeasible candidates.

The produced IR is *raw*: DMA nodes carry tile accesses but no per-CPE
geometry, and nothing is hoisted or double-buffered yet -- those are IR
optimizer passes (:mod:`repro.optimizer`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.compute import (
    REDUCTION,
    ComputeDef,
    ShiftedDim,
    TensorSpec,
)
from ..dsl.schedule import ScheduleStrategy
from ..errors import IllegalCandidateError, LoweringError
from ..ir.expr import AffineExpr
from ..ir.nodes import (
    AllocSpmNode,
    DmaCgNode,
    ForNode,
    GemmOpNode,
    KernelNode,
    Node,
    SeqNode,
    TileAccess,
    ZeroSpmNode,
)
from ..machine.config import MachineConfig, default_config
from ..machine.dma import MEM_TO_SPM, SPM_TO_MEM
from ..machine.spm import SpmAllocator, SpmBuffer
from ..primitives.microkernel import COL_MAJOR, ROW_MAJOR, KernelVariant
from ..primitives.registry import PrimitiveRegistry, default_registry


@dataclass
class LoweringOptions:
    """Knobs that are framework policy rather than schedule decisions."""

    #: reserve 2x SPM for the streamed operand tiles (the prefetch pass
    #: will double-buffer them); disable to lower the Fig. 10 baseline.
    double_buffer: bool = True
    #: minimum extent of the vectorized dimension a primitive accepts;
    #: smaller boundary tiles take the lightweight zero-padding path.
    min_vec_extent: int = 4


def axis_of_dim(dim) -> str:
    """The loop axis that drives a tensor dimension (shifted dims are
    driven by their spatial base; the kernel offset is additive)."""
    return dim.spatial if isinstance(dim, ShiftedDim) else dim


def lower_strategy(
    compute: ComputeDef,
    strategy: ScheduleStrategy,
    *,
    options: Optional[LoweringOptions] = None,
    config: Optional[MachineConfig] = None,
    registry: Optional[PrimitiveRegistry] = None,
) -> KernelNode:
    """Apply one schedule strategy to the seed and emit kernel IR.

    Thin wrapper over the verified pass pipeline: runs the
    decode-strategy / build-loop-nest / plan-spm stages on a
    :class:`~repro.passes.manager.PassManager` with interleaved IR
    verification.  Raises :class:`IllegalCandidateError` for strategies
    the scheduler must prune (bad loop order, SPM overflow, no legal
    primitive) and :class:`LoweringError` for structural problems in
    the seed itself.
    """
    # lazy import: repro.passes.lowering imports this module's helpers
    from ..passes.base import PassContext
    from ..passes.lowering import lowering_passes
    from ..passes.manager import PassManager

    ctx = PassContext(
        compute=compute,
        config=config or default_config(),
        strategy=strategy,
        options=options,
        registry=registry,
    )
    return PassManager(lowering_passes()).run(ctx)


def reference_lower_strategy(
    compute: ComputeDef,
    strategy: ScheduleStrategy,
    *,
    options: Optional[LoweringOptions] = None,
    config: Optional[MachineConfig] = None,
    registry: Optional[PrimitiveRegistry] = None,
) -> KernelNode:
    """The frozen pre-pipeline monolithic lowering.

    Kept verbatim as the oracle for the golden tests: the staged
    pipeline behind :func:`lower_strategy` must produce bit-identical
    IR to this function for any strategy.  Not used by any runtime
    consumer.
    """
    compute.validate()
    opts = options or LoweringOptions()
    cfg = config or default_config()
    reg = registry or default_registry()
    gemm = compute.gemm
    assert gemm is not None  # validate() guarantees

    tiles = _tile_sizes(compute, strategy)
    order = _loop_order(compute, strategy)
    _check_order_legality(compute, order)
    _check_kernel_axes(compute, tiles)

    vec_dim = str(strategy.get("vec_dim", "M"))
    a_layout = str(strategy.get("spm_layout:a", COL_MAJOR))
    b_layout = str(strategy.get("spm_layout:b", COL_MAJOR))
    variant = KernelVariant(a_layout, b_layout, vec_dim)

    layouts = _tensor_layouts(compute, strategy)

    # --- tile geometry ----------------------------------------------------
    m_tile = tiles[gemm.m_axis]
    n_tile = math.prod(tiles[ax] for ax in gemm.n_axes)
    k_tile = tiles[gemm.k_axis]
    reg.check_legal(m_tile, n_tile, k_tile, variant)

    builder = _KernelBuilder(
        compute=compute,
        tiles=tiles,
        order=order,
        layouts=layouts,
        variant=variant,
        options=opts,
        config=cfg,
    )
    body = builder.build()

    allocs = builder.make_allocs()
    _check_spm(allocs, cfg, opts)

    return KernelNode(
        name=f"{compute.name}__{variant.name}",
        allocs=allocs,
        body=body,
        tensor_layouts=layouts,
    )


# ---------------------------------------------------------------------------
# strategy decoding & legality
# ---------------------------------------------------------------------------
def _tile_sizes(compute: ComputeDef, strategy: ScheduleStrategy) -> Dict[str, int]:
    tiles: Dict[str, int] = {}
    for name, axis in compute.axes.items():
        tile = strategy.get(f"tile:{name}")
        tiles[name] = axis.extent if tile is None else int(tile)  # type: ignore[arg-type]
        if not (1 <= tiles[name] <= axis.extent):
            raise IllegalCandidateError(
                f"tile {tiles[name]} outside [1, {axis.extent}] for axis {name!r}"
            )
    return tiles


def _loop_order(compute: ComputeDef, strategy: ScheduleStrategy) -> Tuple[str, ...]:
    order = strategy.get("order")
    if order is None:
        spatial = [a for a in compute.axes if compute.axes[a].kind != REDUCTION]
        reduction = [a for a in compute.axes if compute.axes[a].kind == REDUCTION]
        return tuple(spatial + reduction)
    order = tuple(order)  # type: ignore[arg-type]
    if set(order) != set(compute.axes):
        raise IllegalCandidateError(f"order {order} is not a permutation of the axes")
    return order


def _check_order_legality(compute: ComputeDef, order: Sequence[str]) -> None:
    """Reduction axes must come after every spatial axis: the C tile
    lives in SPM across all reduction loops (Alg. 2's accumulation)."""
    seen_reduction = False
    for ax in order:
        if compute.axes[ax].kind == REDUCTION:
            seen_reduction = True
        elif seen_reduction:
            raise IllegalCandidateError(
                f"spatial axis {ax!r} nested inside a reduction loop: "
                "the SPM-resident C tile cannot accumulate correctly"
            )


def _check_kernel_axes(compute: ComputeDef, tiles: Dict[str, int]) -> None:
    """Reduction axes feeding shifted dims must iterate point-wise, or
    the accessed input window would exceed the GEMM extents."""
    for spec in compute.tensors.values():
        for dim in spec.dims:
            if isinstance(dim, ShiftedDim) and tiles[dim.kernel] != 1:
                raise IllegalCandidateError(
                    f"kernel axis {dim.kernel!r} must have tile factor 1 "
                    f"(got {tiles[dim.kernel]})"
                )


def _tensor_layouts(
    compute: ComputeDef, strategy: ScheduleStrategy
) -> Dict[str, Tuple[int, ...]]:
    layouts: Dict[str, Tuple[int, ...]] = {}
    for name, spec in compute.tensors.items():
        perm = strategy.get(f"layout:{name}")
        if perm is None:
            layouts[name] = tuple(range(len(spec.dims)))
        else:
            layouts[name] = tuple(int(i) for i in perm)  # type: ignore[arg-type]
    return layouts


def _padded(extent: int, lanes: int, opts: LoweringOptions) -> int:
    if extent >= opts.min_vec_extent and extent % lanes == 0:
        return extent
    return max(opts.min_vec_extent, -(-extent // lanes) * lanes)


def _check_spm(
    allocs: List[AllocSpmNode], cfg: MachineConfig, opts: LoweringOptions
) -> None:
    from ..optimizer.memplan import per_cpe_bytes

    buffers = [
        SpmBuffer(
            alloc.name,
            per_cpe_bytes(alloc, cfg),
            double_buffered=alloc.double_buffered,
        )
        for alloc in allocs
    ]
    try:
        SpmAllocator(cfg).plan(buffers)
    except Exception as exc:  # SpmCapacityError -> candidate pruned
        raise IllegalCandidateError(str(exc)) from exc


# ---------------------------------------------------------------------------
# the recursive builder
# ---------------------------------------------------------------------------
@dataclass
class _KernelBuilder:
    compute: ComputeDef
    tiles: Dict[str, int]
    order: Tuple[str, ...]
    layouts: Dict[str, Tuple[int, ...]]
    variant: KernelVariant
    options: LoweringOptions
    config: MachineConfig

    #: per-tensor maximum tile lengths seen (storage order), for allocs
    _max_lens: Dict[str, List[int]] = field(default_factory=dict)

    def build(self) -> Node:
        gemm = self.compute.gemm
        assert gemm is not None
        # position in the order where reduction loops begin
        self._red_level = len(self.order)
        for i, ax in enumerate(self.order):
            if self.compute.axes[ax].kind == REDUCTION:
                self._red_level = i
                break
        return self._build_level(0, {}, {})

    # --- loop nest ----------------------------------------------------------
    def _build_level(
        self,
        level: int,
        offsets: Dict[str, AffineExpr],
        lens: Dict[str, int],
    ) -> Node:
        if level == self._red_level:
            return self._build_output_region(level, offsets, lens)
        if level == len(self.order):
            return self._leaf(offsets, lens)
        return self._loop_over_axis(level, offsets, lens)

    def _build_output_region(
        self,
        level: int,
        offsets: Dict[str, AffineExpr],
        lens: Dict[str, int],
    ) -> Node:
        """Zero the C tile, run the reduction loops, write C back --
        the Alg. 2 accumulation structure."""
        gemm = self.compute.gemm
        assert gemm is not None
        if level == len(self.order):
            inner: Node = self._leaf(offsets, lens)
        else:
            inner = self._loop_over_reductions(level, offsets, lens)
        c_access = self._tile_access(gemm.c, offsets, lens)
        return SeqNode(
            [
                ZeroSpmNode("spm_c"),
                inner,
                DmaCgNode(access=c_access, spm="spm_c", direction=SPM_TO_MEM),
            ]
        )

    def _loop_over_reductions(
        self,
        level: int,
        offsets: Dict[str, AffineExpr],
        lens: Dict[str, int],
    ) -> Node:
        if level == len(self.order):
            return self._leaf(offsets, lens)
        return self._loop_over_axis(level, offsets, lens, in_reduction=True)

    def _loop_over_axis(
        self,
        level: int,
        offsets: Dict[str, AffineExpr],
        lens: Dict[str, int],
        *,
        in_reduction: bool = False,
    ) -> Node:
        axis = self.order[level]
        extent = self.compute.axes[axis].extent
        tile = self.tiles[axis]
        full_trips, tail = divmod(extent, tile)
        next_level = (
            self._loop_over_reductions if in_reduction else self._build_level
        )

        nodes: List[Node] = []
        if full_trips > 0:
            var = f"c{axis}"
            off = offsets | {axis: AffineExpr.var(var) * tile}
            body = next_level(level + 1, off, lens | {axis: tile})
            if full_trips == 1:
                # trip-count-1 loops collapse: bind the index to zero
                body = _substitute_var(body, var, 0)
                nodes.append(body)
            else:
                nodes.append(ForNode(var, full_trips, body))
        if tail > 0:
            # boundary region: the peeled remainder iteration
            off = offsets | {axis: AffineExpr(full_trips * tile)}
            nodes.append(next_level(level + 1, off, lens | {axis: tail}))
        if len(nodes) == 1:
            return nodes[0]
        return SeqNode(nodes)

    # --- leaf: DMA in + gemm ---------------------------------------------------
    def _leaf(self, offsets: Dict[str, AffineExpr], lens: Dict[str, int]) -> Node:
        gemm = self.compute.gemm
        assert gemm is not None
        lanes = self.config.vector_lanes

        m = lens[gemm.m_axis]
        n = math.prod(lens[ax] for ax in gemm.n_axes)
        k = lens[gemm.k_axis]

        a_access = self._tile_access(gemm.a, offsets, lens)
        b_access = self._tile_access(gemm.b, offsets, lens)

        a_map, a_lens = self._mat_map(gemm.a, lens, role="a")
        b_map, b_lens = self._mat_map(gemm.b, lens, role="b")
        c_map, c_lens = self._mat_map(gemm.c, lens, role="c")

        # boundary processing: switch parameters, or lightweight-pad the
        # vectorized dim up to a whole vector (Sec. 4.5.3).  Padding is
        # applied to the operand *views*: the buffers are allocated at
        # the padded shape, DMA fills the real region, and the pad is
        # zeroed so the extra lanes contribute nothing.
        gm, gn = m, n
        padded = False
        if self.variant.vec_dim == "M":
            gm = _padded(m, lanes, self.options)
            if gm != m:
                padded = True
                a_lens = _inflate_m(a_lens, a_map, gm)
                c_lens = _inflate_m(c_lens, c_map, gm)
        else:
            gn_target = _padded(n, lanes, self.options)
            if gn_target != n:
                padded = True
                b_lens = _inflate_last_col(b_lens, b_map, gn_target)
                c_lens = _inflate_last_col(c_lens, c_map, gn_target)
                gn = math.prod(b_lens[i] for i in b_map[1])

        # allocs must cover the padded views
        self._note_lens(gemm.a, list(a_lens))
        self._note_lens(gemm.b, list(b_lens))
        self._note_lens(gemm.c, list(c_lens))

        body: List[Node] = []
        if padded:
            # stale data in the pad region would corrupt the product
            pad_buf = "spm_a" if self.variant.vec_dim == "M" else "spm_b"
            body.append(ZeroSpmNode(pad_buf))
        body.append(DmaCgNode(access=a_access, spm="spm_a", direction=MEM_TO_SPM))
        body.append(DmaCgNode(access=b_access, spm="spm_b", direction=MEM_TO_SPM))
        body.append(
            GemmOpNode(
                m=gm,
                n=gn,
                k=k,
                a_spm="spm_a",
                b_spm="spm_b",
                c_spm="spm_c",
                a_map=a_map,
                b_map=b_map,
                c_map=c_map,
                variant=self.variant,
                accumulate=True,
                a_lens=a_lens,
                b_lens=b_lens,
                c_lens=c_lens,
            )
        )
        return SeqNode(body)

    # --- tensor access -----------------------------------------------------------
    def _tile_access(
        self,
        tensor: str,
        offsets: Dict[str, AffineExpr],
        lens: Dict[str, int],
    ) -> TileAccess:
        spec = self.compute.tensors[tensor]
        perm = self.layouts[tensor]
        dims: List[Tuple[AffineExpr, int]] = []
        logical: List[Tuple[AffineExpr, int]] = []
        for dim in spec.dims:
            if isinstance(dim, ShiftedDim):
                off = offsets[dim.spatial] + offsets[dim.kernel]
                length = lens[dim.spatial] + lens[dim.kernel] - 1
            else:
                off = offsets[dim]
                length = lens[dim]
            logical.append((off, length))
        for i in perm:
            dims.append(logical[i])
        self._note_lens(tensor, [length for _, length in dims])
        return TileAccess(buffer=tensor, dims=tuple(dims))

    def _note_lens(self, tensor: str, lens: List[int]) -> None:
        cur = self._max_lens.setdefault(tensor, [0] * len(lens))
        for i, length in enumerate(lens):
            cur[i] = max(cur[i], length)

    # --- gemm operand maps ----------------------------------------------------------
    def _mat_map(
        self, tensor: str, lens: Dict[str, int], *, role: str
    ) -> Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], Tuple[int, ...]]:
        """How the tile (in storage order) reshapes into the GEMM matrix.

        Returns ``((row_dims, col_dims), tile_lens)`` with dims referring
        to positions in the *storage-order* tile; N-side columns are
        listed in the seed's ``n_axes`` fusion order so B and C flatten
        identically.
        """
        gemm = self.compute.gemm
        assert gemm is not None
        spec = self.compute.tensors[tensor]
        perm = self.layouts[tensor]
        axes_in_storage = [axis_of_dim(spec.dims[i]) for i in perm]
        tile_lens = []
        for i in perm:
            dim = spec.dims[i]
            if isinstance(dim, ShiftedDim):
                tile_lens.append(lens[dim.spatial] + lens[dim.kernel] - 1)
            else:
                tile_lens.append(lens[dim])

        if role == "a":
            row_axis, col_spec = gemm.m_axis, (gemm.k_axis,)
        elif role == "b":
            row_axis, col_spec = gemm.k_axis, gemm.n_axes
        else:
            row_axis, col_spec = gemm.m_axis, gemm.n_axes

        rows = tuple(
            i for i, ax in enumerate(axes_in_storage) if ax == row_axis
        )
        cols: List[int] = []
        for ax in col_spec:
            cols.extend(i for i, a in enumerate(axes_in_storage) if a == ax)
        used = set(rows) | set(cols)
        for i, length in enumerate(tile_lens):
            if i in used:
                continue
            if length != 1:
                raise LoweringError(
                    f"tensor {tensor!r} dim {i} (axis {axes_in_storage[i]!r}) "
                    f"is outside the GEMM mapping but has tile length {length}"
                )
            cols.append(i)  # singleton: flattens harmlessly
        if not rows:
            raise LoweringError(
                f"tensor {tensor!r} has no dimension for GEMM role {role!r}"
            )
        return ((rows, tuple(cols)), tuple(tile_lens))

    # --- allocations --------------------------------------------------------------
    def make_allocs(self) -> List[AllocSpmNode]:
        """SPM buffers sized to the largest (padded) tile each leaf
        views; the streamed A/B operands reserve double-buffer space
        when the prefetch pass is expected to run."""
        gemm = self.compute.gemm
        assert gemm is not None
        allocs = []
        for spm_name, tensor in (
            ("spm_a", gemm.a),
            ("spm_b", gemm.b),
            ("spm_c", gemm.c),
        ):
            shape = tuple(self._max_lens[tensor])
            layout = (
                self.variant.a_layout
                if spm_name == "spm_a"
                else self.variant.b_layout
                if spm_name == "spm_b"
                else (COL_MAJOR if self.variant.vec_dim == "M" else ROW_MAJOR)
            )
            allocs.append(
                AllocSpmNode(
                    name=spm_name,
                    shape=shape,
                    matrix_layout=layout,
                    double_buffered=(
                        self.options.double_buffer and spm_name != "spm_c"
                    ),
                )
            )
        return allocs


def _inflate_m(
    lens: Tuple[int, ...], mat_map, target: int
) -> Tuple[int, ...]:
    """Grow the (single) row dim of a map so the matrix reaches
    ``target`` rows (vec-M boundary padding)."""
    rows = mat_map[0]
    out = list(lens)
    cur = math.prod(out[i] for i in rows)
    if cur < target:
        out[rows[-1]] = -(-target * out[rows[-1]] // cur)
    return tuple(out)


def _inflate_last_col(
    lens: Tuple[int, ...], mat_map, target: int
) -> Tuple[int, ...]:
    """Grow the innermost fused column dim so the flattened column
    extent reaches at least ``target`` (vec-N boundary padding).  The
    pad interleaves through the flattened N, which is harmless: the pad
    region is zeroed before the product and never written back."""
    cols = mat_map[1]
    out = list(lens)
    cur = math.prod(out[i] for i in cols)
    if cur < target:
        last = cols[-1] if cols else None
        if last is None:
            raise LoweringError("cannot pad a matrix with no column dims")
        others = cur // out[last]
        out[last] = -(-target // max(1, others))
    return tuple(out)


def _substitute_var(node: Node, var: str, value: int) -> Node:
    """Bind a loop variable to a constant throughout a subtree (used
    when collapsing trip-count-1 loops)."""
    from ..ir.visitors import transform

    def rewrite(n: Node):
        if isinstance(n, DmaCgNode):
            dims = tuple(
                (off.substitute({var: value}), length)
                for off, length in n.access.dims
            )
            return DmaCgNode(
                access=TileAccess(n.access.buffer, dims),
                spm=n.spm,
                direction=n.direction,
                reply=n.reply,
                geometry=n.geometry,
                phase_var=n.phase_var,
            )
        return None

    return transform(node, rewrite)
