"""Schedule-space enumeration: the Scheduler of Fig. 3.

Traverses every strategy in a :class:`~repro.dsl.schedule.ScheduleSpace`,
lowers it to IR, and keeps the legal ones as :class:`Candidate` objects.
Illegal strategies (bad loop order, SPM overflow, no legal primitive)
are pruned silently -- they are part of the declared space but not of
the *valid* schedule space the autotuner ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace, ScheduleStrategy
from ..errors import IllegalCandidateError, TuningError
from ..ir.nodes import KernelNode
from ..machine.config import MachineConfig, default_config
from ..primitives.registry import PrimitiveRegistry, default_registry
from .lower import LoweringOptions, lower_strategy


@dataclass
class Candidate:
    """One legal schedule strategy with its raw (unoptimized) kernel IR."""

    strategy: ScheduleStrategy
    kernel: KernelNode
    compute: ComputeDef

    def describe(self) -> str:
        return self.strategy.describe()


@dataclass
class EnumerationStats:
    """Bookkeeping the tuning-time experiments report (Tab. 3)."""

    declared: int = 0
    legal: int = 0
    pruned: int = 0


def iter_candidates(
    compute: ComputeDef,
    space: ScheduleSpace,
    *,
    options: Optional[LoweringOptions] = None,
    config: Optional[MachineConfig] = None,
    registry: Optional[PrimitiveRegistry] = None,
    stats: Optional[EnumerationStats] = None,
    lower: Optional[Callable[..., KernelNode]] = None,
) -> Iterator[Candidate]:
    """Lazily lower every legal strategy of the space.

    ``lower`` overrides how a strategy becomes IR (the engine passes
    its instrumented pass-manager run here); it is called as
    ``lower(compute, strategy, options=..., config=..., registry=...)``
    and defaults to :func:`~repro.scheduler.lower.lower_strategy`.
    """
    cfg = config or default_config()
    reg = registry or default_registry()
    do_lower = lower or lower_strategy
    for strategy in space.strategies():
        if stats is not None:
            stats.declared += 1
        try:
            kernel = do_lower(
                compute, strategy, options=options, config=cfg, registry=reg
            )
        except IllegalCandidateError:
            if stats is not None:
                stats.pruned += 1
            continue
        if stats is not None:
            stats.legal += 1
        yield Candidate(strategy=strategy, kernel=kernel, compute=compute)


def enumerate_candidates(
    compute: ComputeDef,
    space: ScheduleSpace,
    *,
    options: Optional[LoweringOptions] = None,
    config: Optional[MachineConfig] = None,
    registry: Optional[PrimitiveRegistry] = None,
    limit: Optional[int] = None,
) -> List[Candidate]:
    """Materialise the legal schedule space (optionally capped).

    Raises :class:`TuningError` when the space prunes to nothing --
    an operator/space mismatch the caller should hear about rather than
    silently tune over zero candidates.
    """
    stats = EnumerationStats()
    out: List[Candidate] = []
    for cand in iter_candidates(
        compute,
        space,
        options=options,
        config=config,
        registry=registry,
        stats=stats,
    ):
        out.append(cand)
        if limit is not None and len(out) >= limit:
            return out
    if not out:
        raise TuningError(
            f"schedule space of {compute.name!r} pruned to zero candidates "
            f"({stats.declared} declared)"
        )
    return out
