"""Persistent on-disk evaluation cache.

The in-process shared memo (:mod:`repro.engine.evaluators`) already
guarantees that a strategy scored anywhere in one process is never
re-simulated; this module extends the same guarantee *across*
processes: repeated harness runs, CI benches and
:class:`~repro.runtime.library.AtopLibrary` sessions warm-start from a
versioned JSON store instead of re-measuring strategies that were
already scored yesterday.

Design points:

* **Keys** are the existing :meth:`MemoizingEvaluator.key` tuples,
  digested with SHA-256 of their ``repr`` -- the tuples are built from
  primitives (strings, ints, floats, nested tuples) whose ``repr`` is
  stable across processes, unlike ``hash()`` under ``PYTHONHASHSEED``.
* **Values** store the predicted/measured cycle counts plus the
  numeric ``SimReport`` summary (cycles breakdown, bytes, flops --
  everything the harness tables read).  The report is rebuilt on a hit
  with the *requesting* evaluator's machine config, which is sound
  because the key already pins ``config_signature``: only a
  signature-identical config can reach the entry.
* A **code-version salt** is written into the file header; loading a
  store whose salt differs from the running code discards it wholesale.
  Bump :data:`CODE_SALT` whenever lowering, the optimizer pipeline or
  the cost model change in a way that moves scores.
* Writes are **atomic** (temp file + rename) and deferred: callers
  flush at batch boundaries (``evaluate_batch`` does this), so a tuning
  loop is never slowed by per-candidate disk traffic.
* Loading is **corruption-safe**: a truncated file (a process killed
  mid-write on a filesystem without atomic rename, a torn copy) gives
  up only the *unparseable suffix* -- the valid prefix of entries is
  recovered, still subject to the per-file version/salt check.  Each
  surviving entry is validated individually; malformed entries are
  skipped and counted.  An unrecoverable file is quarantined to a
  ``*.corrupt`` sidecar with a logged reason so the evidence survives
  for diagnosis instead of being overwritten on the next flush.

``set_eval_cache`` installs a process-wide default store (the CLI's
``--eval-cache PATH`` and ``AtopLibrary(eval_cache_path=...)`` both
route here); every :class:`MemoizingEvaluator` without an explicit
``disk`` argument picks it up.
"""

from __future__ import annotations

import hashlib
import json
import logging
import numbers
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..machine.config import MachineConfig, default_config
from ..machine.trace import SimReport
from .evaluators import Evaluation

__all__ = [
    "CODE_SALT",
    "EVAL_CACHE_VERSION",
    "PersistentEvalStore",
    "atomic_write_json",
    "default_eval_store",
    "quarantine_corrupt",
    "recover_truncated_json",
    "set_eval_cache",
]

logger = logging.getLogger(__name__)

#: bump on incompatible changes to the on-disk layout.
EVAL_CACHE_VERSION = 2

#: identity of the scoring code; a mismatch invalidates the whole
#: store.  Bump when lowering / optimizer passes / cost model change
#: the scores a key maps to.
CODE_SALT = "swatop-pr3"

#: the numeric SimReport fields persisted alongside the cycle counts
#: (the ``config`` field is rebuilt from the requesting evaluator).
_REPORT_FIELDS = (
    "cycles",
    "dma_cycles",
    "compute_cycles",
    "bytes_moved",
    "waste_bytes",
    "flops",
    "num_cgs_used",
    "detail",
)


def report_to_dict(report: Optional[SimReport]) -> Optional[dict]:
    if report is None:
        return None
    return {name: getattr(report, name) for name in _REPORT_FIELDS}


def report_from_dict(
    raw: Optional[dict], config: Optional[MachineConfig]
) -> Optional[SimReport]:
    if raw is None:
        return None
    return SimReport(
        config=config or default_config(),
        **{name: raw[name] for name in _REPORT_FIELDS if name in raw},
    )


# private aliases kept for older call sites
_report_to_dict = report_to_dict
_report_from_dict = report_from_dict


# --- shared persistence helpers ---------------------------------------
def atomic_write_json(path: Union[str, Path], payload: dict) -> None:
    """Write JSON via temp-file-then-rename so readers never observe a
    partial file (shared by the eval store, the kernel cache and the
    search checkpoints)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def quarantine_corrupt(path: Union[str, Path], reason: str) -> Optional[Path]:
    """Move an unreadable persistence file to a ``*.corrupt`` sidecar
    and log why.  An existing sidecar is never clobbered -- repeated
    corruption of the same path lands in ``*.corrupt.1``,
    ``*.corrupt.2``, ... so every piece of post-mortem evidence
    survives.  Returns the sidecar path, or ``None`` when the move
    itself failed."""
    path = Path(path)
    sidecar = path.with_name(path.name + ".corrupt")
    n = 0
    while sidecar.exists():
        n += 1
        sidecar = path.with_name(f"{path.name}.corrupt.{n}")
    try:
        os.replace(path, sidecar)
    except OSError as exc:
        logger.warning(
            "could not quarantine corrupt file %s (%s): %s", path, reason, exc
        )
        return None
    logger.warning("quarantined corrupt file %s -> %s: %s", path, sidecar, reason)
    return sidecar


def _skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i] in " \t\r\n":
        i += 1
    return i


def _skip_ws_comma(text: str, i: int) -> int:
    i = _skip_ws(text, i)
    if i < len(text) and text[i] == ",":
        i = _skip_ws(text, i + 1)
    return i


def recover_truncated_json(text: str) -> Dict:
    """Best-effort parse of a truncated single-object JSON document.

    Walks the top-level object key by key with
    :meth:`json.JSONDecoder.raw_decode`; for an ``"entries"`` object
    every fully-parsed ``key: value`` pair is kept and parsing stops at
    the first incomplete one.  Anything recovered before the
    truncation point (including the ``version``/``salt`` header, which
    the flush layout writes first) survives.
    """
    dec = json.JSONDecoder()
    out: Dict = {}
    try:
        i = _skip_ws(text, 0)
        if text[i] != "{":
            return out
        i += 1
        while True:
            i = _skip_ws_comma(text, i)
            if text[i] == "}":
                break
            key, i = dec.raw_decode(text, i)
            i = _skip_ws(text, i)
            if text[i] != ":":
                break
            i = _skip_ws(text, i + 1)
            if key == "entries" and i < len(text) and text[i] == "{":
                entries: Dict = {}
                out["entries"] = entries
                i += 1
                while True:
                    i = _skip_ws_comma(text, i)
                    if text[i] == "}":
                        i += 1
                        break
                    ekey, i = dec.raw_decode(text, i)
                    i = _skip_ws(text, i)
                    if text[i] != ":":
                        raise ValueError("truncated entry")
                    i = _skip_ws(text, i + 1)
                    value, i = dec.raw_decode(text, i)
                    entries[ekey] = value
            else:
                value, i = dec.raw_decode(text, i)
                out[key] = value
            i = _skip_ws(text, i)
            if i >= len(text):
                break
            if text[i] == "}":
                break
    except (ValueError, IndexError):
        pass  # truncation point reached: keep what was fully parsed
    return out


def _valid_number(value) -> bool:
    return value is None or (
        isinstance(value, numbers.Real) and not isinstance(value, bool)
    )


class PersistentEvalStore:
    """A versioned JSON store of evaluation outcomes."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        salt: str = CODE_SALT,
    ) -> None:
        self.path = Path(path)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        #: corruption-recovery accounting of the initial load
        self.recovered = False
        self.invalid_entries = 0
        self.quarantined_path: Optional[Path] = None
        self._entries: Dict[
            str, Tuple[Optional[float], Optional[float], Optional[dict]]
        ] = {}
        self._dirty = False
        self._flush_seq = 0
        self._load()

    # --- persistence ---------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            text = self.path.read_text()
        except OSError as exc:
            logger.warning("eval cache %s unreadable: %s", self.path, exc)
            return
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raw = recover_truncated_json(text)
            if not isinstance(raw.get("entries"), dict):
                # nothing salvageable: keep the evidence, start empty
                self.quarantined_path = quarantine_corrupt(
                    self.path, f"unparseable JSON ({exc})"
                )
                self._dirty = True
                return
            self.recovered = True
            logger.warning(
                "eval cache %s is truncated (%s); recovered the valid "
                "prefix of %d entries",
                self.path,
                exc,
                len(raw["entries"]),
            )
        if not isinstance(raw, dict):
            self.quarantined_path = quarantine_corrupt(
                self.path, f"top-level JSON is {type(raw).__name__}, not object"
            )
            self._dirty = True
            return
        if (
            raw.get("version") != EVAL_CACHE_VERSION
            or raw.get("salt") != self.salt
        ):
            self._dirty = True  # stale store: rewrite on next flush
            return
        entries = raw.get("entries", {})
        if not isinstance(entries, dict):
            entries = {}
        for digest, value in entries.items():
            entry = self._validate_entry(digest, value)
            if entry is None:
                self.invalid_entries += 1
                continue
            self._entries[digest] = entry
        if self.invalid_entries:
            self._dirty = True  # rewrite without the bad entries
            logger.warning(
                "eval cache %s: skipped %d malformed entries",
                self.path,
                self.invalid_entries,
            )
        if self.recovered:
            self._dirty = True  # persist the recovered prefix cleanly

    @staticmethod
    def _validate_entry(digest, value):
        """One entry's schema check: (predicted, measured, report)."""
        if not isinstance(digest, str):
            return None
        if not isinstance(value, (list, tuple)) or len(value) != 3:
            return None
        pred, meas, report = value
        if not _valid_number(pred) or not _valid_number(meas):
            return None
        if report is not None and not isinstance(report, dict):
            return None
        return (pred, meas, report)

    def flush(self) -> None:
        """Atomically write pending entries to disk (no-op when clean)."""
        if not self._dirty:
            return
        payload = {
            "version": EVAL_CACHE_VERSION,
            "salt": self.salt,
            "entries": {d: list(v) for d, v in self._entries.items()},
        }
        atomic_write_json(self.path, payload)
        self._dirty = False
        self._inject_flush_faults()
        self._flush_seq += 1

    def _inject_flush_faults(self) -> None:
        """Chaos hook: an active ``corrupt`` fault truncates the file
        just written, simulating a torn write the next load must
        survive."""
        from ..faults import active_fault_plan

        plan = active_fault_plan()
        if plan is None:
            return
        if not plan.should_fire(
            "corrupt", f"{self.path.name}:{self._flush_seq}"
        ):
            return
        try:
            data = self.path.read_bytes()
            cut = max(1, int(len(data) * 0.6))
            self.path.write_bytes(data[:cut])
            self._dirty = True  # in-memory entries still pending
            logger.warning(
                "fault injection: truncated %s to %d/%d bytes (flush #%d)",
                self.path,
                cut,
                len(data),
                self._flush_seq,
            )
        except OSError:  # pragma: no cover - injection is best-effort
            pass

    # --- mapping -------------------------------------------------------
    @staticmethod
    def digest(key: Tuple) -> str:
        """Stable cross-process digest of a memo key tuple."""
        return hashlib.sha256(repr(key).encode()).hexdigest()

    def get(
        self, key: Tuple, *, config: Optional[MachineConfig] = None
    ) -> Optional[Evaluation]:
        """Look up a key; ``config`` rebuilds the persisted report's
        machine context (the key already guarantees it is
        signature-identical to the one that produced the entry)."""
        entry = self._entries.get(self.digest(key))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        predicted, measured, report = entry
        return Evaluation(
            predicted_cycles=predicted,
            measured_cycles=measured,
            report=report_from_dict(report, config),
            memoized=True,
        )

    def put(self, key: Tuple, evaluation: Evaluation) -> None:
        if evaluation.failed:
            return  # quarantined candidates never reach the disk store
        if (
            evaluation.predicted_cycles is None
            and evaluation.measured_cycles is None
        ):
            return  # nothing worth persisting
        digest = self.digest(key)
        entry = (
            evaluation.predicted_cycles,
            evaluation.measured_cycles,
            report_to_dict(evaluation.report),
        )
        if self._entries.get(digest) == entry:
            return
        self._entries[digest] = entry
        self._dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> str:
        text = (
            f"{len(self._entries)} entries at {self.path} "
            f"({self.hits} hits / {self.misses} misses)"
        )
        if self.recovered:
            text += " [recovered from truncated file]"
        if self.invalid_entries:
            text += f" [{self.invalid_entries} malformed entries skipped]"
        if self.quarantined_path is not None:
            text += f" [corrupt original at {self.quarantined_path}]"
        return text


#: the process-wide default store (None = persistence disabled).
_DEFAULT_STORE: Optional[PersistentEvalStore] = None


def set_eval_cache(
    target: Union[None, str, Path, PersistentEvalStore]
) -> Optional[PersistentEvalStore]:
    """Install (or clear, with ``None``) the process-wide eval cache.

    Accepts a path (a store is created/loaded there) or a ready-made
    :class:`PersistentEvalStore`.  Returns the installed store so
    callers can inspect or flush it.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is not None and _DEFAULT_STORE is not target:
        _DEFAULT_STORE.flush()
    if target is None or isinstance(target, PersistentEvalStore):
        _DEFAULT_STORE = target
    else:
        _DEFAULT_STORE = PersistentEvalStore(target)
    return _DEFAULT_STORE


def default_eval_store() -> Optional[PersistentEvalStore]:
    return _DEFAULT_STORE
