"""Persistent on-disk evaluation cache.

The in-process shared memo (:mod:`repro.engine.evaluators`) already
guarantees that a strategy scored anywhere in one process is never
re-simulated; this module extends the same guarantee *across*
processes: repeated harness runs, CI benches and
:class:`~repro.runtime.library.AtopLibrary` sessions warm-start from a
versioned JSON store instead of re-measuring strategies that were
already scored yesterday.

Design points:

* **Keys** are the existing :meth:`MemoizingEvaluator.key` tuples,
  digested with SHA-256 of their ``repr`` -- the tuples are built from
  primitives (strings, ints, floats, nested tuples) whose ``repr`` is
  stable across processes, unlike ``hash()`` under ``PYTHONHASHSEED``.
* **Values** store the predicted/measured cycle counts plus the
  numeric ``SimReport`` summary (cycles breakdown, bytes, flops --
  everything the harness tables read).  The report is rebuilt on a hit
  with the *requesting* evaluator's machine config, which is sound
  because the key already pins ``config_signature``: only a
  signature-identical config can reach the entry.
* A **code-version salt** is written into the file header; loading a
  store whose salt differs from the running code discards it wholesale.
  Bump :data:`CODE_SALT` whenever lowering, the optimizer pipeline or
  the cost model change in a way that moves scores.
* Writes are **atomic** (temp file + rename) and deferred: callers
  flush at batch boundaries (``evaluate_batch`` does this), so a tuning
  loop is never slowed by per-candidate disk traffic.

``set_eval_cache`` installs a process-wide default store (the CLI's
``--eval-cache PATH`` and ``AtopLibrary(eval_cache_path=...)`` both
route here); every :class:`MemoizingEvaluator` without an explicit
``disk`` argument picks it up.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..machine.config import MachineConfig, default_config
from ..machine.trace import SimReport
from .evaluators import Evaluation

__all__ = [
    "CODE_SALT",
    "EVAL_CACHE_VERSION",
    "PersistentEvalStore",
    "default_eval_store",
    "set_eval_cache",
]

#: bump on incompatible changes to the on-disk layout.
EVAL_CACHE_VERSION = 2

#: identity of the scoring code; a mismatch invalidates the whole
#: store.  Bump when lowering / optimizer passes / cost model change
#: the scores a key maps to.
CODE_SALT = "swatop-pr3"

#: the numeric SimReport fields persisted alongside the cycle counts
#: (the ``config`` field is rebuilt from the requesting evaluator).
_REPORT_FIELDS = (
    "cycles",
    "dma_cycles",
    "compute_cycles",
    "bytes_moved",
    "waste_bytes",
    "flops",
    "num_cgs_used",
    "detail",
)


def _report_to_dict(report: Optional[SimReport]) -> Optional[dict]:
    if report is None:
        return None
    return {name: getattr(report, name) for name in _REPORT_FIELDS}


def _report_from_dict(
    raw: Optional[dict], config: Optional[MachineConfig]
) -> Optional[SimReport]:
    if raw is None:
        return None
    return SimReport(
        config=config or default_config(),
        **{name: raw[name] for name in _REPORT_FIELDS if name in raw},
    )


class PersistentEvalStore:
    """A versioned JSON store of evaluation outcomes."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        salt: str = CODE_SALT,
    ) -> None:
        self.path = Path(path)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self._entries: Dict[
            str, Tuple[Optional[float], Optional[float], Optional[dict]]
        ] = {}
        self._dirty = False
        self._load()

    # --- persistence ---------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return  # unreadable/corrupt: start empty, overwrite on flush
        if (
            raw.get("version") != EVAL_CACHE_VERSION
            or raw.get("salt") != self.salt
        ):
            self._dirty = True  # stale store: rewrite on next flush
            return
        for digest, (pred, meas, report) in raw.get("entries", {}).items():
            self._entries[digest] = (pred, meas, report)

    def flush(self) -> None:
        """Atomically write pending entries to disk (no-op when clean)."""
        if not self._dirty:
            return
        payload = {
            "version": EVAL_CACHE_VERSION,
            "salt": self.salt,
            "entries": {d: list(v) for d, v in self._entries.items()},
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False

    # --- mapping -------------------------------------------------------
    @staticmethod
    def digest(key: Tuple) -> str:
        """Stable cross-process digest of a memo key tuple."""
        return hashlib.sha256(repr(key).encode()).hexdigest()

    def get(
        self, key: Tuple, *, config: Optional[MachineConfig] = None
    ) -> Optional[Evaluation]:
        """Look up a key; ``config`` rebuilds the persisted report's
        machine context (the key already guarantees it is
        signature-identical to the one that produced the entry)."""
        entry = self._entries.get(self.digest(key))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        predicted, measured, report = entry
        return Evaluation(
            predicted_cycles=predicted,
            measured_cycles=measured,
            report=_report_from_dict(report, config),
            memoized=True,
        )

    def put(self, key: Tuple, evaluation: Evaluation) -> None:
        if (
            evaluation.predicted_cycles is None
            and evaluation.measured_cycles is None
        ):
            return  # nothing worth persisting
        digest = self.digest(key)
        entry = (
            evaluation.predicted_cycles,
            evaluation.measured_cycles,
            _report_to_dict(evaluation.report),
        )
        if self._entries.get(digest) == entry:
            return
        self._entries[digest] = entry
        self._dirty = True

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> str:
        return (
            f"{len(self._entries)} entries at {self.path} "
            f"({self.hits} hits / {self.misses} misses)"
        )


#: the process-wide default store (None = persistence disabled).
_DEFAULT_STORE: Optional[PersistentEvalStore] = None


def set_eval_cache(
    target: Union[None, str, Path, PersistentEvalStore]
) -> Optional[PersistentEvalStore]:
    """Install (or clear, with ``None``) the process-wide eval cache.

    Accepts a path (a store is created/loaded there) or a ready-made
    :class:`PersistentEvalStore`.  Returns the installed store so
    callers can inspect or flush it.
    """
    global _DEFAULT_STORE
    if _DEFAULT_STORE is not None and _DEFAULT_STORE is not target:
        _DEFAULT_STORE.flush()
    if target is None or isinstance(target, PersistentEvalStore):
        _DEFAULT_STORE = target
    else:
        _DEFAULT_STORE = PersistentEvalStore(target)
    return _DEFAULT_STORE


def default_eval_store() -> Optional[PersistentEvalStore]:
    return _DEFAULT_STORE
