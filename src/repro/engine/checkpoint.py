"""Checkpoint/resume for the branch-and-bound search.

An interrupted sweep used to lose everything: thousands of lowered and
scored candidates, the incumbent top-K, the prune counters.  The
search driver (:func:`repro.engine.search.search_candidates`) now
writes a versioned JSON sidecar at every batch boundary -- atomically,
via temp-file-then-rename -- holding the incumbent heap, the
evaluated-position cursor, every scored outcome (including quarantined
failures) and the prune counters.  Resuming restores that state and
continues the sweep; because strategy enumeration, bound computation
and the bound-sorted order are all deterministic, the resumed run's
final winner and top-K are bit-identical to an uninterrupted one
(tested in ``tests/engine/test_checkpoint.py``).

A checkpoint is only trusted when its ``version``, code ``salt`` and
``space`` digest (compute signature + strategy count + search
parameters + evaluator fingerprint) all match the running search; a
mismatch starts fresh, and an unparseable file is quarantined to a
``*.corrupt`` sidecar like every other persistence file.

``set_default_checkpoint`` is the process-wide knob behind the CLI's
``--checkpoint DIR`` / ``--resume`` flags: experiment sweeps run many
searches, so the default names one file per search digest inside the
directory.  ``tune_with_model(..., resume_from=PATH)`` and
``tune_blackbox(..., resume_from=PATH)`` target one explicit file
instead.
"""

from __future__ import annotations

import hashlib
import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .evalcache import (
    CODE_SALT,
    atomic_write_json,
    quarantine_corrupt,
    report_from_dict,
    report_to_dict,
)
from .evaluators import Evaluation, FailedEvaluation
from .metrics import PruneBatch

__all__ = [
    "CHECKPOINT_VERSION",
    "SearchCheckpoint",
    "default_checkpoint_policy",
    "search_digest",
    "set_default_checkpoint",
]

logger = logging.getLogger(__name__)

#: bump on incompatible changes to the sidecar layout.
CHECKPOINT_VERSION = 1


def search_digest(
    compute_sig: Tuple,
    n_strategies: int,
    top_k: int,
    batch: int,
    evaluator,
) -> str:
    """Identity of one search problem: only a checkpoint written by a
    bit-identical search (same space, same parameters, same evaluator
    family and fitted parameters) may be resumed."""
    params = None
    params_key = getattr(evaluator, "params_key", None)
    if callable(params_key):
        params = params_key()
    fingerprint = (
        compute_sig,
        int(n_strategies),
        int(top_k),
        int(batch),
        getattr(evaluator, "kind", "?"),
        repr(params),
    )
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()


def _eval_to_dict(evaluation: Evaluation) -> Dict:
    if evaluation.failed:
        assert isinstance(evaluation, FailedEvaluation)
        return {
            "failed": True,
            "site": evaluation.site,
            "error_type": evaluation.error_type,
            "error_message": evaluation.error_message,
            "error_chain": list(evaluation.error_chain),
            "attempts": evaluation.attempts,
        }
    return {
        "predicted": evaluation.predicted_cycles,
        "measured": evaluation.measured_cycles,
        "report": report_to_dict(evaluation.report),
    }


def _eval_from_dict(raw: Dict, config) -> Evaluation:
    if raw.get("failed"):
        return FailedEvaluation(
            site=str(raw.get("site", "exception")),
            error_type=str(raw.get("error_type", "")),
            error_message=str(raw.get("error_message", "")),
            error_chain=tuple(raw.get("error_chain", ())),
            attempts=int(raw.get("attempts", 0)),
        )
    return Evaluation(
        predicted_cycles=raw.get("predicted"),
        measured_cycles=raw.get("measured"),
        report=report_from_dict(raw.get("report"), config),
    )


@dataclass
class SearchCheckpoint:
    """Resumable state of one branch-and-bound sweep.

    ``pos`` is the cursor into the bound-sorted order (the evaluated
    set is exactly the positions below it -- the driver consumes the
    order as a contiguous prefix).  ``scored`` maps enumeration index
    -> serialized evaluation for every candidate that was realized and
    scored (quarantined failures included, so a resumed sweep reports
    them identically).  ``worst_k`` is the incumbent max-heap (negated
    scores) that prunes the remaining space; the counters and batch
    trace reproduce the run's accounting.
    """

    space: str
    pos: int = 0
    worst_k: List[float] = field(default_factory=list)
    scored: List[Tuple[int, Dict]] = field(default_factory=list)
    bound_pruned: int = 0
    spm_pruned: int = 0
    quarantined: int = 0
    prune_batches: List[PruneBatch] = field(default_factory=list)
    complete: bool = False

    # --- (de)serialization --------------------------------------------
    def payload(self) -> Dict:
        return {
            "version": CHECKPOINT_VERSION,
            "salt": CODE_SALT,
            "space": self.space,
            "pos": self.pos,
            "worst_k": list(self.worst_k),
            "scored": [[idx, raw] for idx, raw in self.scored],
            "counters": {
                "bound_pruned": self.bound_pruned,
                "spm_pruned": self.spm_pruned,
                "quarantined": self.quarantined,
            },
            "prune_batches": [
                [b.considered, b.pruned, b.lowered]
                for b in self.prune_batches
            ],
            "complete": self.complete,
        }

    def save(self, path: Union[str, Path]) -> None:
        atomic_write_json(path, self.payload())

    @classmethod
    def load(
        cls, path: Union[str, Path], *, expect_space: str
    ) -> Optional["SearchCheckpoint"]:
        """Read a checkpoint; ``None`` when absent, stale or untrusted.

        A file that fails to parse or validate is quarantined to a
        ``*.corrupt`` sidecar; a version/salt/space mismatch is left in
        place (it may belong to another code version or search) and
        simply ignored.
        """
        path = Path(path)
        if not path.exists():
            return None
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            quarantine_corrupt(path, f"unparseable checkpoint ({exc})")
            return None
        if not isinstance(raw, dict):
            quarantine_corrupt(path, "checkpoint is not a JSON object")
            return None
        if (
            raw.get("version") != CHECKPOINT_VERSION
            or raw.get("salt") != CODE_SALT
            or raw.get("space") != expect_space
        ):
            logger.warning(
                "checkpoint %s does not match this search "
                "(version/salt/space); starting fresh",
                path,
            )
            return None
        try:
            counters = raw.get("counters", {})
            state = cls(
                space=raw["space"],
                pos=int(raw["pos"]),
                worst_k=[float(v) for v in raw.get("worst_k", [])],
                scored=[
                    (int(idx), dict(entry))
                    for idx, entry in raw.get("scored", [])
                ],
                bound_pruned=int(counters.get("bound_pruned", 0)),
                spm_pruned=int(counters.get("spm_pruned", 0)),
                quarantined=int(counters.get("quarantined", 0)),
                prune_batches=[
                    PruneBatch(int(c), int(p), int(lw))
                    for c, p, lw in raw.get("prune_batches", [])
                ],
                complete=bool(raw.get("complete", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            quarantine_corrupt(path, f"malformed checkpoint fields ({exc})")
            return None
        if state.pos < 0 or len(state.scored) > max(state.pos, 0):
            quarantine_corrupt(
                path, "inconsistent checkpoint (scored beyond cursor)"
            )
            return None
        return state

    # --- evaluation payload helpers -----------------------------------
    @staticmethod
    def pack_eval(evaluation: Evaluation) -> Dict:
        return _eval_to_dict(evaluation)

    @staticmethod
    def unpack_eval(raw: Dict, config) -> Evaluation:
        return _eval_from_dict(raw, config)


@dataclass(frozen=True)
class CheckpointPolicy:
    """Process-wide default checkpointing: a directory that receives
    one ``search-<digest>.json`` per distinct search, plus whether
    existing checkpoints should be resumed."""

    directory: Path
    resume: bool = False

    def path_for(self, digest: str) -> Path:
        return self.directory / f"search-{digest[:16]}.json"


_DEFAULT_POLICY: Optional[CheckpointPolicy] = None


def set_default_checkpoint(
    directory: Union[None, str, Path], *, resume: bool = False
) -> Optional[CheckpointPolicy]:
    """Install (or clear, with ``None``) the process-wide checkpoint
    directory (the CLI's ``--checkpoint DIR`` / ``--resume``)."""
    global _DEFAULT_POLICY
    if directory is None:
        _DEFAULT_POLICY = None
    else:
        _DEFAULT_POLICY = CheckpointPolicy(Path(directory), resume=resume)
    return _DEFAULT_POLICY


def default_checkpoint_policy() -> Optional[CheckpointPolicy]:
    return _DEFAULT_POLICY
