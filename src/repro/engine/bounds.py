"""Admissible strategy-level lower bounds, computed before any IR exists.

The branch-and-bound driver (:mod:`repro.engine.search`) wants to skip
the lower -> optimize -> predict pipeline for candidates that provably
cannot beat the incumbent.  That is only sound if the bound is
*admissible*: for every strategy the bound must not exceed the score
the full pipeline would produce, otherwise a potential winner could be
pruned and the search would no longer return bit-identical results to
the exhaustive walk.  Two bounds are combined (see DESIGN.md, "Bound
admissibility"):

* **DMA traffic bound** -- Eq. (1) with every waste term zeroed: each
  tensor is moved at most once per execution of its innermost
  materialized indexing loop (assuming maximal hoisting, which the
  hoist-dma pass approaches but never beats), each transfer pays the
  fixed descriptor overheads once, and all bytes stream at the peak
  DRAM bandwidth with no transaction padding.
* **Compute bound** -- the kernel's FLOPs retired at the throughput of
  the strategy's *own* kernel variant (the vec_dim/spm_layout decisions
  fully determine it before lowering), with zero init/drain/loop/call
  overhead.  The variant's steady-state k-step cost comes from the
  pipeline model, but is normalized by the *ideal* 16-cycle step even
  though every real variant needs >= 17 cycles -- a built-in >= 6%
  margin below the structural floor that absorbs the Eq. (2) fit's
  local undershoot.

A pipelined kernel can at best fully overlap the two, so the bound is
their ``max()`` -- never their sum.  Any strategy the decoder cannot
interpret gets the vacuous bound 0.0, which never prunes.

The same pre-IR decode also yields :func:`definitely_infeasible`: a
*conservative* floor on the per-CPE SPM footprint (perfect 8x8 split,
no padding, no alignment).  When even that floor overflows the 64 KB
pad, lowering is guaranteed to raise ``IllegalCandidateError`` at the
plan-spm stage -- so the strategy can be counted as pruned without
building its loop nest at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..dsl.compute import REDUCTION, ComputeDef, ShiftedDim
from ..dsl.schedule import ScheduleStrategy
from ..machine.config import MachineConfig, default_config
from ..primitives.microkernel import (
    BLOCK_SCALARS,
    BLOCK_VECS,
    COL_MAJOR,
    KernelVariant,
    cycles_per_k_step,
)
from ..scheduler.lower import LoweringOptions

__all__ = [
    "BOUND_SAFETY",
    "StrategyBound",
    "definitely_infeasible",
    "strategy_bound",
]

#: Relative slack applied when comparing a bound against the incumbent.
#: On candidates where the bound is exactly tight (zero waste in the
#: real kernel too) float summation order can leave the bound a few ulp
#: *above* the model's score; scaling by (1 - 1e-9) absorbs that while
#: costing nothing measurable in pruning power.
BOUND_SAFETY = 1.0 - 1e-9


@dataclass(frozen=True)
class StrategyBound:
    """Lower bound on the cost of one schedule strategy."""

    dma_cycles: float
    compute_cycles: float
    transfers: int
    dma_bytes: float

    @property
    def cycles(self) -> float:
        """The admissible bound: DMA and compute fully overlapped."""
        return max(self.dma_cycles, self.compute_cycles)


#: The never-prunes bound returned for undecodable strategies.
VACUOUS = StrategyBound(0.0, 0.0, 0, 0.0)


def _decode(
    compute: ComputeDef, strategy: ScheduleStrategy
) -> Optional[Tuple[Dict[str, int], Tuple[str, ...]]]:
    """Mirror of the decode-strategy pass's tile/order extraction.

    Tiles are clipped into [1, extent] (an out-of-range tile would make
    the candidate illegal anyway); ``None`` means the strategy carries
    decisions this cheap decoder does not understand -- the caller must
    fall back to the vacuous bound.
    """
    tiles: Dict[str, int] = {}
    for name, axis in compute.axes.items():
        tile = strategy.get(f"tile:{name}")
        if tile is None:
            tiles[name] = axis.extent
            continue
        try:
            tiles[name] = max(1, min(int(tile), axis.extent))
        except (TypeError, ValueError):
            return None

    order = strategy.get("order")
    if order is None:
        spatial = [a for a in compute.axes if compute.axes[a].kind != REDUCTION]
        reduction = [a for a in compute.axes if compute.axes[a].kind == REDUCTION]
        return tiles, tuple(spatial + reduction)
    order = tuple(order)
    if set(order) != set(compute.axes):
        return None
    return tiles, order


def _indexing_axes(spec) -> set:
    """Loop axes whose value changes which elements of the tensor a
    tile touches.  A shifted dim is driven by both its spatial base and
    its kernel offset."""
    axes = set()
    for dim in spec.dims:
        if isinstance(dim, ShiftedDim):
            axes.add(dim.spatial)
            axes.add(dim.kernel)
        else:
            axes.add(dim)
    return axes


#: cycles of one 4x4-block k-step at one vmad per cycle -- the ideal
#: the hand-written kernels aspire to; the pipeline model's real
#: variants all come out >= 17.
_IDEAL_K_STEP = float(BLOCK_VECS * BLOCK_SCALARS)


def _variant_step_scale(
    strategy: ScheduleStrategy, cfg: MachineConfig
) -> float:
    """Slowdown of the strategy's kernel variant relative to the ideal
    16-cycle k-step (>= 1 for every real variant; 1.0 -- the peak
    fallback -- when the decisions do not name a valid variant)."""
    try:
        variant = KernelVariant(
            str(strategy.get("spm_layout:a", COL_MAJOR)),
            str(strategy.get("spm_layout:b", COL_MAJOR)),
            str(strategy.get("vec_dim", "M")),
        )
    except Exception:
        return 1.0
    return max(1.0, cycles_per_k_step(variant, cfg) / _IDEAL_K_STEP)


def strategy_bound(
    compute: ComputeDef,
    strategy: ScheduleStrategy,
    config: Optional[MachineConfig] = None,
) -> StrategyBound:
    """Admissible cost lower bound for one strategy of ``compute``.

    For every tensor, the innermost *materialized* loop (trip count
    > 1) that indexes it determines how often its tile must be
    (re-)transferred; loops outside that tensor's indexing set multiply
    its total traffic (the tile is re-loaded although the data did not
    change -- even a perfect hoist cannot avoid that).  Un-tiled axes
    produce no loop and therefore no re-transfers, matching what the
    hoist pass achieves on the real IR.
    """
    cfg = config or default_config()
    decoded = _decode(compute, strategy)
    if decoded is None:
        return VACUOUS
    tiles, order = decoded

    trips = {
        name: -(-axis.extent // tiles[name])
        for name, axis in compute.axes.items()
    }
    loops = [a for a in order if trips[a] > 1]

    transfers = 0
    total_bytes = 0.0
    for name, spec in compute.tensors.items():
        indexing = _indexing_axes(spec)
        last = -1
        for i, axis in enumerate(loops):
            if axis in indexing:
                last = i
        prefix = loops[: last + 1]
        execs = 1
        replication = 1
        for axis in prefix:
            execs *= trips[axis]
            if axis not in indexing:
                replication *= trips[axis]
        tensor_elems = math.prod(compute.tensor_shape(name))
        transfers += execs
        total_bytes += tensor_elems * cfg.dtype_bytes * replication

    dma_cycles = (
        transfers * (cfg.dma_latency_cycles + cfg.dma_issue_cycles)
        + total_bytes / cfg.dram_bytes_per_cycle
    )

    flops = 2.0 * math.prod(a.extent for a in compute.axes.values())
    compute_cycles = (
        flops
        / (cfg.cpes_per_cg * cfg.flops_per_vmad)
        * _variant_step_scale(strategy, cfg)
    )

    return StrategyBound(
        dma_cycles=dma_cycles,
        compute_cycles=compute_cycles,
        transfers=transfers,
        dma_bytes=total_bytes,
    )


def definitely_infeasible(
    compute: ComputeDef,
    strategy: ScheduleStrategy,
    config: Optional[MachineConfig] = None,
    options: Optional[LoweringOptions] = None,
) -> bool:
    """True when lowering is *guaranteed* to prune this strategy.

    The check is a strict under-estimate of the SPM plan: each GEMM
    operand tile split perfectly 8x8 (``elems/64`` per CPE, no
    boundary rounding), no vector padding, no alignment gaps, with the
    double-buffer reservation the lowering applies to the streamed
    operands.  If even this floor exceeds the scratch-pad capacity the
    plan-spm stage must overflow too, so skipping the strategy cannot
    change the legal candidate set.  ``False`` never implies legality.
    """
    cfg = config or default_config()
    opts = options or LoweringOptions()
    gemm = compute.gemm
    if gemm is None:
        return False
    decoded = _decode(compute, strategy)
    if decoded is None:
        return False
    tiles, _ = decoded

    floor_bytes = 0.0
    for tensor in (gemm.a, gemm.b, gemm.c):
        spec = compute.tensors.get(tensor)
        if spec is None:
            return False
        elems = 1
        for dim in spec.dims:
            if isinstance(dim, ShiftedDim):
                elems *= tiles[dim.spatial]
            else:
                elems *= tiles[dim]
        per_cpe = (
            elems
            * cfg.dtype_bytes
            / (cfg.cluster_rows * cfg.cluster_cols)
        )
        if opts.double_buffer and tensor != gemm.c:
            per_cpe *= 2
        floor_bytes += per_cpe
    return floor_bytes > cfg.spm_bytes
