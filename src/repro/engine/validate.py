"""Differential kernel validation against a NumPy reference.

A lowered kernel can be *timed* perfectly and still compute the wrong
numbers -- a mis-inferred DMA offset, a phase race the timing model
never sees, or a corrupted cache entry all produce plausible cycle
counts over garbage tensors.  swTVM validates its generated Sunway code
against reference outputs for exactly this reason, and simulator-backed
tuning is only trustworthy when functional execution is checked, not
just timed.

This module derives the reference directly from the operator's
:class:`~repro.dsl.compute.ComputeDef`: the single tensorized-GEMM
statement plus the shifted-dimension indexing covers GEMM, explicit /
implicit / Winograd convolution and every polyphase slice of a strided
convolution uniformly -- the reference loops over the shift (kernel
window) offsets and accumulates one ``einsum`` per offset in float64.
Tolerances are dtype-aware: proportional to the machine epsilon of the
kernel dtype and the square root of the total reduction length (the
random-walk error growth of a summation).

Three entry points:

* :func:`validate_candidate` -- compile + run + compare one candidate;
  raises :class:`~repro.errors.ValidationError`.
* :class:`ValidatingEvaluator` -- evaluator wrapper for ``--validate=all``:
  every measured candidate is validated, failures become
  :class:`~repro.engine.evaluators.FailedEvaluation` (site
  ``validation``) so supervision, memoization and the tuners treat a
  wrong kernel exactly like a crashed one.
* :func:`validation_digest` -- the cache-entry digest recorded by
  :class:`~repro.runtime.cache.TunedEntry`; a hit whose stored digest
  is stale (or missing) revalidates before the entry is trusted.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import string
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..dsl.compute import ComputeDef, ROLE_OUTPUT, ShiftedDim
from ..errors import SanitizerError, ValidationError
from ..machine.config import MachineConfig
from ..machine.sanitizer import sanitize_default
from .evaluators import (
    Evaluation,
    Evaluator,
    FailedEvaluation,
    strategy_key,
    synthetic_feeds,
)

#: bump when validation semantics change: stale digests force
#: revalidation of every cached entry recorded under the old scheme.
VALIDATION_SALT = "swatop-validate-1"

VALIDATE_MODES = ("off", "winner", "all")

#: process-wide default installed by ``set_default_validate`` (CLI
#: ``--validate``); ``None`` defers to the environment.
_DEFAULT_MODE: Optional[str] = None


def _check_mode(mode: str) -> str:
    if mode not in VALIDATE_MODES:
        raise ValueError(
            f"validate mode must be one of {VALIDATE_MODES}, got {mode!r}"
        )
    return mode


def set_default_validate(mode: Optional[str]) -> None:
    """Install the process-wide validation mode (``None`` resets)."""
    global _DEFAULT_MODE
    _DEFAULT_MODE = None if mode is None else _check_mode(mode)


def default_validate() -> str:
    """The effective process-wide default mode.  ``REPRO_SANITIZE=1``
    forces ``all`` so the CI sanitize job exercises validation on every
    measured candidate."""
    if _DEFAULT_MODE is not None:
        return _DEFAULT_MODE
    return "all" if sanitize_default() else "off"


def resolve_validate(mode: Optional[str]) -> str:
    """Resolve a per-call ``validate`` argument against the default."""
    return default_validate() if mode is None else _check_mode(mode)


# --- the NumPy reference ---------------------------------------------------
def reference_outputs(
    compute: ComputeDef, feeds: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Evaluate the operator's defining GEMM statement directly in
    NumPy (float64 accumulation), independent of any schedule.

    Shifted dimensions (``cRi = cRo + cKr``) are handled by looping
    over the kernel-axis offsets and slicing the shifted tensors; all
    remaining reduction axes are summed by ``einsum``.
    """
    g = compute.gemm
    if g is None:
        raise ValidationError(
            "compute definition has no gemm statement to validate against",
            op=compute.name,
        )
    out_spec = compute.tensors[g.c]
    letters: Dict[str, str] = {}

    def letter(axis: str) -> str:
        if axis not in letters:
            letters[axis] = string.ascii_lowercase[len(letters)]
        return letters[axis]

    if not all(isinstance(d, str) for d in out_spec.dims):
        raise ValidationError(
            "output tensor with shifted dimensions is not supported "
            "by the reference evaluator",
            op=compute.name,
            tensor=g.c,
        )
    out_labels = "".join(letter(d) for d in out_spec.dims)
    shift_axes = sorted(
        {
            d.kernel
            for spec in compute.tensors.values()
            for d in spec.dims
            if isinstance(d, ShiftedDim)
        }
    )
    out = np.zeros(compute.tensor_shape(g.c), dtype=np.float64)
    offsets_space = itertools.product(
        *[range(compute.axes[k].extent) for k in shift_axes]
    )
    for combo in offsets_space:
        offsets = dict(zip(shift_axes, combo))
        operands = []
        subs = []
        for tname in (g.a, g.b):
            spec = compute.tensors[tname]
            arr = np.asarray(feeds[tname], dtype=np.float64)
            index = []
            labels = []
            for d in spec.dims:
                if isinstance(d, ShiftedDim):
                    k0 = offsets[d.kernel]
                    index.append(
                        slice(k0, k0 + compute.axes[d.spatial].extent)
                    )
                    labels.append(letter(d.spatial))
                elif d in offsets:
                    index.append(offsets[d])  # kernel axis: fixed offset
                else:
                    index.append(slice(None))
                    labels.append(letter(d))
            operands.append(arr[tuple(index)])
            subs.append("".join(labels))
        out += np.einsum(f"{subs[0]},{subs[1]}->{out_labels}", *operands)
    return {g.c: out}


def tolerance_for(
    compute: ComputeDef, dtype=np.float32
) -> Tuple[float, float]:
    """Dtype-aware ``(rtol, atol)`` for comparing a kernel output
    against the float64 reference: scaled by sqrt of the total
    reduction length (random-walk growth of summation error)."""
    eps = float(np.finfo(dtype).eps)
    k = 1
    for name in compute.reduction_axes():
        k *= compute.axes[name].extent
    rtol = max(64.0 * eps * math.sqrt(k), 1e-5)
    return rtol, rtol


def compare_tensors(
    actual: np.ndarray,
    reference: np.ndarray,
    *,
    rtol: float,
    atol: float,
    op: str = "",
    tensor: str = "",
) -> float:
    """Elementwise ``|a - r| <= atol + rtol * |r|`` check; raises a
    structured :class:`ValidationError` and returns the max abs error
    on success."""
    act = np.asarray(actual, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if act.shape != ref.shape:
        raise ValidationError(
            f"output shape {act.shape} != reference shape {ref.shape}",
            op=op,
            tensor=tensor,
        )
    err = np.abs(act - ref)
    bound = atol + rtol * np.abs(ref)
    bad = err > bound
    count = int(bad.sum())
    if count:
        worst = int(np.argmax(np.where(bad, err, 0.0).reshape(-1)))
        raise ValidationError(
            "kernel output disagrees with the NumPy reference",
            op=op,
            tensor=tensor,
            mismatches=count,
            max_abs_err=float(err.reshape(-1)[worst]),
            tolerance=float(bound.reshape(-1)[worst]),
        )
    return float(err.max()) if err.size else 0.0


# --- validation of compiled kernels / candidates ---------------------------
@dataclass(frozen=True)
class ValidationReport:
    """Evidence of one successful differential validation."""

    op: str
    tensors: Tuple[str, ...]
    max_abs_err: float
    rtol: float
    atol: float
    cycles: float


def validate_kernel(
    ck, *, feeds: Optional[Dict[str, np.ndarray]] = None, seed: int = 0
) -> ValidationReport:
    """Run a :class:`~repro.codegen.executor.CompiledKernel` on seeded
    feeds and compare every output against the NumPy reference."""
    compute = ck.compute
    if feeds is None:
        feeds = synthetic_feeds(compute, seed)
    result = ck.run(feeds)
    refs = reference_outputs(compute, feeds)
    rtol, atol = tolerance_for(compute)
    worst = 0.0
    names = []
    for name, spec in compute.tensors.items():
        if spec.role != ROLE_OUTPUT:
            continue
        ref = refs.get(name)
        if ref is None:
            continue
        worst = max(
            worst,
            compare_tensors(
                result.outputs[name],
                ref,
                rtol=rtol,
                atol=atol,
                op=compute.name,
                tensor=name,
            ),
        )
        names.append(name)
    if not names:
        raise ValidationError(
            "kernel produced no output tensor the reference covers",
            op=compute.name,
        )
    return ValidationReport(
        op=compute.name,
        tensors=tuple(names),
        max_abs_err=worst,
        rtol=rtol,
        atol=atol,
        cycles=result.report.cycles,
    )


def validate_candidate(
    candidate,
    config: Optional[MachineConfig] = None,
    *,
    feeds: Optional[Dict[str, np.ndarray]] = None,
    seed: int = 0,
    sanitize: Optional[bool] = None,
) -> ValidationReport:
    """Differentially validate one prepared (optimized) candidate.

    Raises :class:`ValidationError` on a numeric mismatch and lets any
    :class:`~repro.errors.SanitizerError` from a sanitized run
    propagate -- both mean the kernel must not be trusted.
    """
    from ..codegen.executor import CompiledKernel

    ck = CompiledKernel(
        candidate.kernel, candidate.compute, config, sanitize=sanitize
    )
    return validate_kernel(ck, feeds=feeds, seed=seed)


def validation_digest(key: str, strategy) -> str:
    """Digest recorded on a cache entry when its kernel validated.

    Folds the operator cache key, the winning strategy and
    :data:`VALIDATION_SALT`; a stored digest that no longer matches
    (different strategy, older salt, or absent entirely) marks the
    entry *stale* and forces revalidation on the next cache hit.
    """
    payload = (VALIDATION_SALT, str(key), strategy_key(strategy))
    return hashlib.sha256(repr(payload).encode()).hexdigest()


class ValidatingEvaluator(Evaluator):
    """Evaluator wrapper that differentially validates every candidate
    the inner evaluator scores (the ``--validate=all`` path).

    A validation or sanitizer failure is returned as a
    :class:`FailedEvaluation` with site ``"validation"`` rather than
    raised: supervision would otherwise burn retries on a
    deterministic failure, and the memo layer already skips failed
    results, so a wrong kernel is simply never a winner.
    """

    def __init__(
        self,
        inner: Evaluator,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.config = config if config is not None else getattr(
            inner, "config", None
        )
        self.seed = seed
        self.kind = f"{inner.kind}+validate"
        self.validations = 0
        self.failures = 0

    def params_key(self):
        return (self.inner.params_key(), "validate", self.seed)

    def evaluate(self, candidate) -> Evaluation:
        result = self.inner.evaluate(candidate)
        if result.failed:
            return result
        try:
            self.validations += 1
            validate_candidate(
                candidate, self.config, seed=self.seed
            )
        except (ValidationError, SanitizerError) as exc:
            self.failures += 1
            return FailedEvaluation.from_exception(
                exc, site="validation", attempts=1
            )
        return result

    def __getattr__(self, name):
        return getattr(self.inner, name)


__all__ = [
    "VALIDATE_MODES",
    "VALIDATION_SALT",
    "ValidatingEvaluator",
    "ValidationReport",
    "compare_tensors",
    "default_validate",
    "reference_outputs",
    "resolve_validate",
    "set_default_validate",
    "tolerance_for",
    "validate_candidate",
    "validate_kernel",
    "validation_digest",
]
