"""Per-stage instrumentation of the evaluation engine.

Tab. 3's headline (model-based tuning beats black-box by 350-450x) is
entirely a statement about where candidate-evaluation time goes, so the
engine accounts for every stage it owns: enumeration (strategy walk +
lowering, including pruned strategies), optimization (DMA inference +
prefetch), prediction (cost-model evaluation) and execution (simulated
runs).  A single :class:`EngineMetrics` instance is threaded through a
tuning run and surfaces in :class:`~repro.autotuner.result.TuningResult`
and the harness tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass
class StageStats:
    """Invocation count and wall time of one engine stage."""

    count: int = 0
    seconds: float = 0.0

    def add(self, seconds: float, count: int = 1) -> None:
        self.count += count
        self.seconds += seconds

    def merge(self, other: "StageStats") -> None:
        self.count += other.count
        self.seconds += other.seconds

    def describe(self) -> str:
        return f"{self.count} ({self.seconds:.3f}s)"


@dataclass
class PruneBatch:
    """Outcome of one branch-and-bound batch (a progress trace of the
    search: early batches lower everything, late batches almost
    nothing)."""

    considered: int
    pruned: int
    lowered: int


@dataclass
class EngineEvent:
    """One explicit resilience event (degradation, retry, bisection,
    quarantine, checkpoint restore, cache quarantine) -- the audit
    trail that replaces silent fallback."""

    kind: str
    detail: str


#: events kept per EngineMetrics instance; chaos runs can emit many
#: thousands, and the trace only needs to show the shape of a run.
MAX_EVENTS = 256


@dataclass
class EngineMetrics:
    """Stage-by-stage accounting of one (or several merged) tuning runs.

    ``enumeration.count`` counts *declared* strategies (legal + pruned)
    and its time is the pure space walk; ``bounds`` is the strategy-level
    lower-bound computation of the branch-and-bound search; ``lowering``
    is the pass pipeline that turns each strategy into raw IR
    (previously folded into enumeration, mis-charging replay compiles);
    ``optimization``/``prediction``/``execution`` count candidates that
    actually went through the respective stage.  ``memo_hits`` counts
    evaluations answered from the shared memo instead of a stage;
    ``ukernel_memo_hits`` counts micro-kernel pipeline schedules
    answered from the schedule memo.  ``bound_pruned`` counts strategies
    skipped because their bound exceeded the incumbent, ``spm_pruned``
    those skipped by the SPM-infeasibility prefilter (a subset of
    ``EnumerationStats.pruned``).  ``passes`` breaks lowering +
    optimization down per named IR pass.

    The resilience counters account for the supervised evaluation
    path: ``degraded_batches`` counts batches that fell back from
    parallel to serial dispatch (pool creation / pickling failure),
    ``retries`` counts re-dispatched chunks or candidates, and
    ``quarantined`` counts candidates that exhausted their retries and
    were reported as
    :class:`~repro.engine.evaluators.FailedEvaluation` instead of
    aborting the sweep.  ``events`` is the explicit audit trail of
    every such decision (capped at :data:`MAX_EVENTS`;
    ``events_dropped`` counts the overflow).
    """

    enumeration: StageStats = field(default_factory=StageStats)
    bounds: StageStats = field(default_factory=StageStats)
    lowering: StageStats = field(default_factory=StageStats)
    optimization: StageStats = field(default_factory=StageStats)
    prediction: StageStats = field(default_factory=StageStats)
    execution: StageStats = field(default_factory=StageStats)
    validation: StageStats = field(default_factory=StageStats)
    validation_failures: int = 0
    memo_hits: int = 0
    ukernel_memo_hits: int = 0
    bound_pruned: int = 0
    spm_pruned: int = 0
    workers: int = 1
    degraded_batches: int = 0
    retries: int = 0
    quarantined: int = 0
    events_dropped: int = 0
    prune_batches: List[PruneBatch] = field(default_factory=list)
    events: List[EngineEvent] = field(default_factory=list)
    passes: Dict[str, StageStats] = field(default_factory=dict)

    def stage_for(self, kind: str) -> StageStats:
        """The stage an evaluator of the given kind reports into."""
        return self.prediction if kind == "analytic" else self.execution

    def record_pass(self, name: str, seconds: float) -> None:
        """Credit one execution of a named IR pass."""
        self.passes.setdefault(name, StageStats()).add(seconds)

    def record_prune_batch(
        self, considered: int, pruned: int, lowered: int
    ) -> None:
        """Log one batch of the branch-and-bound search."""
        self.prune_batches.append(PruneBatch(considered, pruned, lowered))

    def record_event(self, kind: str, detail: str) -> None:
        """Append one resilience event to the audit trail."""
        if len(self.events) >= MAX_EVENTS:
            self.events_dropped += 1
            return
        self.events.append(EngineEvent(kind, detail))

    def event_counts(self) -> Dict[str, int]:
        """Events aggregated by kind (for table notes and artifacts)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def merge(self, other: "EngineMetrics") -> None:
        self.enumeration.merge(other.enumeration)
        self.bounds.merge(other.bounds)
        self.lowering.merge(other.lowering)
        self.optimization.merge(other.optimization)
        self.prediction.merge(other.prediction)
        self.execution.merge(other.execution)
        self.validation.merge(other.validation)
        self.validation_failures += other.validation_failures
        self.memo_hits += other.memo_hits
        self.ukernel_memo_hits += other.ukernel_memo_hits
        self.bound_pruned += other.bound_pruned
        self.spm_pruned += other.spm_pruned
        self.workers = max(self.workers, other.workers)
        self.degraded_batches += other.degraded_batches
        self.retries += other.retries
        self.quarantined += other.quarantined
        self.prune_batches.extend(other.prune_batches)
        keep = MAX_EVENTS - len(self.events)
        self.events.extend(other.events[:keep])
        self.events_dropped += (
            other.events_dropped + max(0, len(other.events) - keep)
        )
        for name, stats in other.passes.items():
            self.passes.setdefault(name, StageStats()).merge(stats)

    @classmethod
    def merged(cls, many: Iterable["EngineMetrics"]) -> "EngineMetrics":
        out = cls()
        for m in many:
            out.merge(m)
        return out

    def describe(self) -> str:
        parts = [f"enum {self.enumeration.describe()}"]
        if self.bounds.count:
            parts.append(f"bounds {self.bounds.describe()}")
        parts += [
            f"lower {self.lowering.describe()}",
            f"opt {self.optimization.describe()}",
            f"predict {self.prediction.describe()}",
            f"execute {self.execution.describe()}",
        ]
        if self.validation.count or self.validation_failures:
            note = f"validate {self.validation.describe()}"
            if self.validation_failures:
                note += f" ({self.validation_failures} failed)"
            parts.append(note)
        if self.bound_pruned or self.spm_pruned:
            considered = sum(b.considered for b in self.prune_batches)
            note = f"pruned {self.bound_pruned}/{considered}"
            if self.spm_pruned:
                note += f" (+{self.spm_pruned} spm)"
            if self.prune_batches:
                note += f" in {len(self.prune_batches)} batches"
            parts.append(note)
        if self.memo_hits:
            parts.append(f"memo {self.memo_hits}")
        if self.ukernel_memo_hits:
            parts.append(f"ukernel-memo {self.ukernel_memo_hits}")
        if self.workers > 1:
            parts.append(f"workers {self.workers}")
        if self.degraded_batches:
            parts.append(f"degraded {self.degraded_batches}")
        if self.retries:
            parts.append(f"retries {self.retries}")
        if self.quarantined:
            parts.append(f"quarantined {self.quarantined}")
        return " | ".join(parts)

    def describe_events(self) -> str:
        """The resilience audit trail, aggregated by kind."""
        counts = self.event_counts()
        if not counts:
            return "(no resilience events)"
        text = " | ".join(
            f"{kind} {count}" for kind, count in sorted(counts.items())
        )
        if self.events_dropped:
            text += f" | (+{self.events_dropped} dropped)"
        return text

    def describe_passes(self) -> str:
        """Per-pass breakdown of the lowering/optimization pipelines."""
        if not self.passes:
            return "(no passes recorded)"
        return " | ".join(
            f"{name} {stats.describe()}"
            for name, stats in self.passes.items()
        )
