"""Parallel, order-stable batch evaluation.

Candidate evaluations are independent, so a batch can fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (chunked, to amortize
per-task pickling of kernel IR).  Results are always returned in input
order and are bit-identical to a serial run -- the simulator is
deterministic and workers only differ in *where* a candidate is scored,
never in *how*.

Fallback rules: ``workers<=1`` (or a single pending candidate) runs
serially in-process; if the pool cannot be created or breaks (platforms
without usable multiprocessing, unpicklable state), the batch silently
degrades to the serial path rather than failing the tuning run.

``set_default_workers`` is the process-wide knob the CLI's
``--workers`` flag sets; call sites that pass ``workers=None`` inherit
it, so parallelism reaches every tuner without threading a parameter
through the whole harness.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, List, Optional, Sequence, Tuple

from ..scheduler.enumerate import Candidate
from .evaluators import Evaluation, Evaluator, MemoizingEvaluator
from .metrics import EngineMetrics

_DEFAULT_WORKERS = 1


def set_default_workers(workers: int) -> None:
    """Set the process-wide default worker count (used by ``--workers``)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(1, int(workers))


def default_workers() -> int:
    return _DEFAULT_WORKERS


def resolve_workers(workers: Optional[int]) -> int:
    return _DEFAULT_WORKERS if workers is None else max(1, int(workers))


# The evaluator is shipped to each worker once (pool initializer), not
# per task; tasks then carry only (index, candidate) chunks.
_WORKER_EVALUATOR: Optional[Evaluator] = None


def _init_worker(evaluator: Evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_chunk(
    chunk: Sequence[Tuple[int, Candidate]]
) -> List[Tuple[int, Evaluation]]:
    assert _WORKER_EVALUATOR is not None
    return [(i, _WORKER_EVALUATOR.evaluate(c)) for i, c in chunk]


def _run_parallel(
    todo: Sequence[Tuple[int, Candidate]],
    evaluator: Evaluator,
    workers: int,
    chunk_size: Optional[int],
) -> Optional[List[Tuple[int, Evaluation]]]:
    """Pool dispatch; ``None`` means "fall back to serial"."""
    try:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        nw = min(workers, len(todo))
        # one chunk per worker: candidate costs within a batch are
        # near-uniform (same compute, same pipeline), so finer-grained
        # chunks only multiply pickling traffic without better balance.
        size = chunk_size or max(1, math.ceil(len(todo) / nw))
        chunks = [
            todo[i : i + size] for i in range(0, len(todo), size)
        ]
        with ProcessPoolExecutor(
            max_workers=nw,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(evaluator,),
        ) as pool:
            futures = [pool.submit(_evaluate_chunk, ch) for ch in chunks]
            out: List[Tuple[int, Evaluation]] = []
            for fut in futures:
                out.extend(fut.result())
        return out
    except (BrokenProcessPool, OSError, ImportError, pickle.PicklingError):
        return None


def evaluate_batch(
    candidates: Iterable[Candidate],
    evaluator: Evaluator,
    *,
    workers: Optional[int] = None,
    metrics: Optional[EngineMetrics] = None,
    chunk_size: Optional[int] = None,
) -> List[Evaluation]:
    """Score every candidate; ``results[i]`` belongs to ``candidates[i]``.

    A :class:`MemoizingEvaluator` is split around the dispatch: hits are
    answered in-process before any fan-out, misses are evaluated (in
    parallel when ``workers > 1``) with the inner evaluator and written
    back to the memo afterwards, so the memo stays coherent in the
    parent even though workers cannot share it.
    """
    cands = list(candidates)
    n = resolve_workers(workers)
    memo = evaluator if isinstance(evaluator, MemoizingEvaluator) else None
    inner = memo.inner if memo is not None else evaluator

    results: List[Optional[Evaluation]] = [None] * len(cands)
    todo: List[Tuple[int, Candidate]] = []
    for i, cand in enumerate(cands):
        hit = memo.lookup(cand) if memo is not None else None
        if hit is not None:
            results[i] = hit
        else:
            todo.append((i, cand))
    if metrics is not None and memo is not None:
        metrics.memo_hits += len(cands) - len(todo)

    t0 = time.perf_counter()
    if todo:
        done = None
        if n > 1 and len(todo) > 1:
            done = _run_parallel(todo, inner, n, chunk_size)
        if done is None:
            done = [(i, inner.evaluate(c)) for i, c in todo]
        for i, evaluation in done:
            results[i] = evaluation
            if memo is not None:
                memo.remember(cands[i], evaluation)
        if memo is not None:
            memo.flush()  # persist new scores at the batch boundary
    if metrics is not None:
        metrics.stage_for(inner.kind).add(
            time.perf_counter() - t0, count=len(todo)
        )
        metrics.workers = max(metrics.workers, n)
    return results  # type: ignore[return-value]
