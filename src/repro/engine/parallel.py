"""Supervised, order-stable parallel batch evaluation.

Candidate evaluations are independent, so a batch can fan out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (chunked, to amortize
per-task pickling of kernel IR).  Results are always returned in input
order and are bit-identical to a serial run -- the simulator is
deterministic and workers only differ in *where* a candidate is scored,
never in *how*.

Failure model (see DESIGN.md "Failure model & recovery"):

* **Supervision, not silent fallback.**  A worker crash, an evaluator
  exception, a hang (wall-clock chunk timeout or an injected
  virtual-clock one) never aborts the batch and never silently re-runs
  everything serially.  The failing chunk is retried up to
  ``SupervisionPolicy.max_retries`` times, then *bisected* so the
  poison candidate is isolated; a candidate that still fails alone is
  quarantined and reported as a structured
  :class:`~repro.engine.evaluators.FailedEvaluation` carrying the
  exception chain.  Every decision (retry, bisect, quarantine, pool
  rebuild) is an explicit :class:`~repro.engine.metrics.EngineEvent`.
* **Exact attribution.**  A broken pool or a timeout cannot name the
  guilty chunk (every in-flight future fails together), so the first
  such failure switches the batch into *isolation mode*: chunks are
  re-dispatched one at a time, where a failure is exactly
  attributable.  Ordinary exceptions are always future-specific and
  never need isolation.
* **Serial degradation is loud.**  Only pool *creation* failures and
  pickling errors fall back to the (still supervised) serial path, and
  doing so warns once per cause and counts ``degraded_batches``.

``set_default_workers`` is the process-wide knob the CLI's
``--workers`` flag sets; call sites that pass ``workers=None`` inherit
it, so parallelism reaches every tuner without threading a parameter
through the whole harness.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import pickle
import time
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..faults import (
    FaultyEvaluator,
    InjectedCrash,
    InjectedHang,
    active_fault_plan,
    set_current_attempt,
)
from ..scheduler.enumerate import Candidate
from .evaluators import (
    Evaluation,
    Evaluator,
    FailedEvaluation,
    MemoizingEvaluator,
)
from .metrics import EngineMetrics

_DEFAULT_WORKERS = 1


def set_default_workers(workers: int) -> None:
    """Set the process-wide default worker count (used by ``--workers``)."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(1, int(workers))


def default_workers() -> int:
    return _DEFAULT_WORKERS


def resolve_workers(workers: Optional[int]) -> int:
    return _DEFAULT_WORKERS if workers is None else max(1, int(workers))


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the batch supervisor reacts to failing evaluations.

    ``chunk_timeout`` is wall-clock seconds allowed per dispatched
    chunk (``None`` disables the timeout; injected virtual-clock hangs
    are handled regardless).  ``max_retries`` is how many failed
    attempts one chunk (or, serially, one candidate) gets before the
    supervisor escalates: a multi-candidate chunk is bisected to
    isolate the poison, a single candidate is quarantined as a
    :class:`~repro.engine.evaluators.FailedEvaluation`.
    """

    chunk_timeout: Optional[float] = None
    max_retries: int = 2


_DEFAULT_POLICY = SupervisionPolicy()


def set_default_policy(policy: Optional[SupervisionPolicy]) -> None:
    """Set the process-wide supervision policy (``None`` restores the
    built-in defaults)."""
    global _DEFAULT_POLICY
    _DEFAULT_POLICY = policy if policy is not None else SupervisionPolicy()


def default_policy() -> SupervisionPolicy:
    return _DEFAULT_POLICY


def resolve_policy(policy: Optional[SupervisionPolicy]) -> SupervisionPolicy:
    return _DEFAULT_POLICY if policy is None else policy


# The evaluator is shipped to each worker once (pool initializer), not
# per task; tasks then carry only (index, candidate) chunks.
_WORKER_EVALUATOR: Optional[Evaluator] = None


def _init_worker(evaluator: Evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _evaluate_chunk(
    chunk: Sequence[Tuple[int, Candidate]], attempt: int = 0
) -> List[Tuple[int, Evaluation]]:
    assert _WORKER_EVALUATOR is not None
    set_current_attempt(attempt)
    try:
        return [(i, _WORKER_EVALUATOR.evaluate(c)) for i, c in chunk]
    except InjectedCrash:
        # simulate a hard worker death: the parent observes a
        # BrokenProcessPool exactly as for a real segfault/OOM kill.
        os._exit(93)
    finally:
        set_current_attempt(0)


@dataclass
class _Chunk:
    """One dispatch unit: (index, candidate) pairs plus its failed
    attempt count (carried across retries and into fault draws)."""

    items: Tuple[Tuple[int, Candidate], ...]
    attempts: int = 0


def _classify(exc: BaseException) -> str:
    """Failure site of one supervision-visible exception."""
    if isinstance(exc, (InjectedHang, FuturesTimeout, TimeoutError)):
        return "hang"
    if isinstance(exc, (InjectedCrash, BrokenProcessPool)):
        return "crash"
    return "exception"


def _is_dispatch_degradation(exc: BaseException) -> bool:
    """Failures of the *dispatch machinery* (not of a candidate):
    unpicklable tasks or a platform without usable multiprocessing.
    These degrade the batch to serial instead of burning retries."""
    if isinstance(exc, (pickle.PicklingError, ImportError)):
        return True
    return isinstance(exc, (TypeError, AttributeError)) and "pickle" in str(
        exc
    ).lower()


_DEGRADE_WARNED: set = set()


def reset_degradation_warnings() -> None:
    """Re-arm the once-per-cause degradation warning (test hook)."""
    _DEGRADE_WARNED.clear()


def _warn_degraded(cause: BaseException, metrics: EngineMetrics) -> None:
    """Loudly degrade one batch to the serial path (satellite of the
    old silent ``except: return None``)."""
    metrics.degraded_batches += 1
    metrics.record_event(
        "degraded", f"parallel dispatch unavailable: {cause!r}"
    )
    marker = type(cause).__name__
    if marker not in _DEGRADE_WARNED:
        _DEGRADE_WARNED.add(marker)
        warnings.warn(
            f"parallel candidate evaluation degraded to serial: "
            f"{type(cause).__name__}: {cause} (reported once per cause; "
            f"the batch still completes in-process)",
            RuntimeWarning,
            stacklevel=3,
        )


class _SerialFallback(Exception):
    """Internal: unwind the pool dispatch and re-run the batch serially."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when workers are stuck: terminate the
    processes first, then release the executor's bookkeeping."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except OSError:  # pragma: no cover - already dead
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - interpreter teardown races
        pass


def _make_pool(workers: int, evaluator: Evaluator) -> ProcessPoolExecutor:
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else None)
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=ctx,
        initializer=_init_worker,
        initargs=(evaluator,),
    )


def _handle_chunk_failure(
    chunk: _Chunk,
    exc: BaseException,
    policy: SupervisionPolicy,
    metrics: EngineMetrics,
    pending: "deque[_Chunk]",
    out: List[Tuple[int, Evaluation]],
) -> None:
    """Retry, bisect or quarantine one failed chunk (exact attribution
    already established by the caller)."""
    site = _classify(exc)
    attempts = chunk.attempts + 1
    indices = [i for i, _ in chunk.items]
    if attempts <= policy.max_retries:
        metrics.retries += 1
        metrics.record_event(
            "retry",
            f"{site} on chunk {indices} (attempt {attempts}): {exc!r}",
        )
        pending.append(_Chunk(chunk.items, attempts))
    elif len(chunk.items) > 1:
        mid = len(chunk.items) // 2
        metrics.record_event(
            "bisect",
            f"{site} persists on chunk {indices}; splitting "
            f"{indices[:mid]} / {indices[mid:]}",
        )
        pending.append(_Chunk(chunk.items[:mid], 0))
        pending.append(_Chunk(chunk.items[mid:], 0))
    else:
        index, _ = chunk.items[0]
        failure = FailedEvaluation.from_exception(
            exc, site=site, attempts=attempts
        )
        metrics.quarantined += 1
        metrics.record_event(
            "quarantine", f"candidate {index}: {failure.describe()}"
        )
        out.append((index, failure))


def _run_parallel(
    todo: Sequence[Tuple[int, Candidate]],
    evaluator: Evaluator,
    workers: int,
    chunk_size: Optional[int],
    policy: SupervisionPolicy,
    metrics: EngineMetrics,
) -> Optional[List[Tuple[int, Evaluation]]]:
    """Supervised pool dispatch; ``None`` means "degrade to serial"
    (pool creation or pickling failure -- already warned and counted).
    """
    nw = min(workers, len(todo))
    # one chunk per worker: candidate costs within a batch are
    # near-uniform (same compute, same pipeline), so finer-grained
    # chunks only multiply pickling traffic without better balance.
    size = chunk_size or max(1, math.ceil(len(todo) / nw))
    pending: "deque[_Chunk]" = deque(
        _Chunk(tuple(todo[i : i + size]))
        for i in range(0, len(todo), size)
    )
    out: List[Tuple[int, Evaluation]] = []
    pool: Optional[ProcessPoolExecutor] = None
    # isolation mode: after a pool-wide failure (broken pool, timeout)
    # attribution is ambiguous, so dispatch one chunk at a time until
    # the batch drains.
    isolate = False
    try:
        while pending:
            if pool is None:
                try:
                    pool = _make_pool(nw, evaluator)
                except (OSError, ImportError, ValueError) as exc:
                    _warn_degraded(exc, metrics)
                    return None
            if isolate:
                batch = [pending.popleft()]
            else:
                batch = list(pending)
                pending.clear()
            futures = [
                (pool.submit(_evaluate_chunk, c.items, c.attempts), c)
                for c in batch
            ]
            for j, (fut, chunk) in enumerate(futures):
                try:
                    out.extend(fut.result(timeout=policy.chunk_timeout))
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    if _is_dispatch_degradation(exc):
                        raise _SerialFallback(exc) from exc
                    pool_wide = isinstance(
                        exc, (BrokenProcessPool, FuturesTimeout, TimeoutError)
                    ) and not isinstance(exc, InjectedHang)
                    if not pool_wide:
                        # future-specific failure: the pool is healthy
                        # and attribution is exact.
                        _handle_chunk_failure(
                            chunk, exc, policy, metrics, pending, out
                        )
                        continue
                    # pool-wide failure: kill the pool, salvage the
                    # finished futures, requeue everything else and
                    # switch to isolation mode.  Attempts are only
                    # charged when the chunk failed *alone*, so an
                    # innocent bystander is never bisected or
                    # quarantined by a neighbour's crash.
                    _kill_pool(pool)
                    pool = None
                    metrics.record_event(
                        "pool-rebuild",
                        f"{_classify(exc)} broke the worker pool "
                        f"({exc!r}); re-dispatching in isolation",
                    )
                    if isolate:
                        _handle_chunk_failure(
                            chunk, exc, policy, metrics, pending, out
                        )
                    else:
                        pending.append(chunk)
                    for fut2, chunk2 in futures[j + 1 :]:
                        if (
                            fut2.done()
                            and not fut2.cancelled()
                            and fut2.exception() is None
                        ):
                            out.extend(fut2.result())
                        else:
                            fut2.cancel()
                            pending.append(chunk2)
                    isolate = True
                    break
    except _SerialFallback as fallback:
        _warn_degraded(fallback.cause, metrics)
        return None
    finally:
        if pool is not None:
            pool.shutdown()
    return out


def _run_serial(
    todo: Sequence[Tuple[int, Candidate]],
    evaluator: Evaluator,
    policy: SupervisionPolicy,
    metrics: EngineMetrics,
) -> List[Tuple[int, Evaluation]]:
    """The in-process path, under the same supervision policy: failing
    candidates are retried then quarantined, never allowed to abort
    the batch."""
    out: List[Tuple[int, Evaluation]] = []
    try:
        for index, candidate in todo:
            attempts = 0
            while True:
                set_current_attempt(attempts)
                try:
                    out.append((index, evaluator.evaluate(candidate)))
                    break
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    site = _classify(exc)
                    attempts += 1
                    if attempts <= policy.max_retries:
                        metrics.retries += 1
                        metrics.record_event(
                            "retry",
                            f"{site} on candidate {index} "
                            f"(attempt {attempts}): {exc!r}",
                        )
                        continue
                    failure = FailedEvaluation.from_exception(
                        exc, site=site, attempts=attempts
                    )
                    metrics.quarantined += 1
                    metrics.record_event(
                        "quarantine",
                        f"candidate {index}: {failure.describe()}",
                    )
                    out.append((index, failure))
                    break
    finally:
        set_current_attempt(0)
    return out


def evaluate_batch(
    candidates: Iterable[Candidate],
    evaluator: Evaluator,
    *,
    workers: Optional[int] = None,
    metrics: Optional[EngineMetrics] = None,
    chunk_size: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> List[Evaluation]:
    """Score every candidate; ``results[i]`` belongs to ``candidates[i]``.

    A :class:`MemoizingEvaluator` is split around the dispatch: hits are
    answered in-process before any fan-out, misses are evaluated (in
    parallel when ``workers > 1``) with the inner evaluator and written
    back to the memo afterwards, so the memo stays coherent in the
    parent even though workers cannot share it.

    Evaluation is *supervised* (see the module docstring): a crashing
    worker, a raising evaluator or a hang yields a
    :class:`FailedEvaluation` at that candidate's position after
    retries and bisection, never an aborted or silently-serialized
    batch.  When a :mod:`repro.faults` plan is active the dispatched
    evaluator is wrapped to inject the planned faults.
    """
    cands = list(candidates)
    n = resolve_workers(workers)
    sup = resolve_policy(policy)
    memo = evaluator if isinstance(evaluator, MemoizingEvaluator) else None
    inner = memo.inner if memo is not None else evaluator
    plan = active_fault_plan()
    dispatch = (
        FaultyEvaluator(inner, plan) if plan is not None else inner
    )

    results: List[Optional[Evaluation]] = [None] * len(cands)
    todo: List[Tuple[int, Candidate]] = []
    for i, cand in enumerate(cands):
        hit = memo.lookup(cand) if memo is not None else None
        if hit is not None:
            results[i] = hit
        else:
            todo.append((i, cand))
    if metrics is not None and memo is not None:
        metrics.memo_hits += len(cands) - len(todo)

    # supervision always records somewhere; callers that care pass
    # their own metrics and get the events/counters back.
    m = metrics if metrics is not None else EngineMetrics()
    t0 = time.perf_counter()
    if todo:
        done = None
        if n > 1 and len(todo) > 1:
            done = _run_parallel(todo, dispatch, n, chunk_size, sup, m)
        if done is None:
            done = _run_serial(todo, dispatch, sup, m)
        for i, evaluation in done:
            results[i] = evaluation
            if memo is not None and not evaluation.failed:
                memo.remember(cands[i], evaluation)
        if memo is not None:
            memo.flush()  # persist new scores at the batch boundary
    if metrics is not None:
        metrics.stage_for(inner.kind).add(
            time.perf_counter() - t0, count=len(todo)
        )
        metrics.workers = max(metrics.workers, n)
    return results  # type: ignore[return-value]
