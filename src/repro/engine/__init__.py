"""The candidate-evaluation engine.

Single owner of candidate preparation (enumerate -> optimize -> lower)
and evaluation (cost model or simulated execution, optionally memoized
and fanned out over worker processes).  Both autotuners, the operator
runners and the runtime library route through this package; see
DESIGN.md Sec. 2 ("Evaluation engine").
"""

from .evaluators import (
    AnalyticEvaluator,
    Evaluation,
    Evaluator,
    MemoizingEvaluator,
    SimulatorEvaluator,
    clear_shared_memo,
    compute_signature,
    shared_memo_size,
    strategy_key,
    synthetic_feeds,
)
from .metrics import EngineMetrics, StageStats
from .parallel import (
    default_workers,
    evaluate_batch,
    resolve_workers,
    set_default_workers,
)
from .pipeline import CandidatePipeline, clip_strategy, compile_strategy

__all__ = [
    "AnalyticEvaluator",
    "CandidatePipeline",
    "EngineMetrics",
    "Evaluation",
    "Evaluator",
    "MemoizingEvaluator",
    "SimulatorEvaluator",
    "StageStats",
    "clear_shared_memo",
    "clip_strategy",
    "compile_strategy",
    "compute_signature",
    "default_workers",
    "evaluate_batch",
    "resolve_workers",
    "set_default_workers",
    "shared_memo_size",
    "strategy_key",
    "synthetic_feeds",
]
