"""The candidate-evaluation engine.

Single owner of candidate preparation (enumerate -> optimize -> lower)
and evaluation (cost model or simulated execution, optionally memoized
and fanned out over worker processes).  Both autotuners, the operator
runners and the runtime library route through this package; see
DESIGN.md Sec. 2 ("Evaluation engine").

The branch-and-bound layer (:mod:`~repro.engine.bounds` +
:mod:`~repro.engine.search`) sits between the two halves: strategies
are given an admissible pre-IR cost bound and only the ones that could
still beat the incumbent are lowered and scored; the rest are pruned
without ever existing as IR.

Evaluation is supervised (:mod:`~repro.engine.parallel`): worker
failures are retried, bisected to the failing candidate and quarantined
as :class:`FailedEvaluation` records instead of aborting the sweep, and
the branch-and-bound driver checkpoints its state at batch boundaries
(:mod:`~repro.engine.checkpoint`) so an interrupted sweep resumes to a
bit-identical result.  See DESIGN.md "Failure model & recovery".
"""

from .bounds import (
    BOUND_SAFETY,
    StrategyBound,
    definitely_infeasible,
    strategy_bound,
)
from .checkpoint import (
    SearchCheckpoint,
    default_checkpoint_policy,
    search_digest,
    set_default_checkpoint,
)
from .evalcache import (
    PersistentEvalStore,
    atomic_write_json,
    default_eval_store,
    quarantine_corrupt,
    recover_truncated_json,
    set_eval_cache,
)
from .evaluators import (
    AnalyticEvaluator,
    Evaluation,
    Evaluator,
    FailedEvaluation,
    MemoizingEvaluator,
    SimulatorEvaluator,
    clear_feeds_cache,
    clear_shared_memo,
    compute_signature,
    shared_memo_size,
    strategy_key,
    synthetic_feeds,
)
from .metrics import EngineEvent, EngineMetrics, PruneBatch, StageStats
from .parallel import (
    SupervisionPolicy,
    default_workers,
    evaluate_batch,
    reset_degradation_warnings,
    resolve_policy,
    resolve_workers,
    set_default_policy,
    set_default_workers,
)
from .pipeline import CandidatePipeline, clip_strategy, compile_strategy
from .search import (
    default_prune,
    resolve_prune,
    search_candidates,
    set_default_prune,
)
from .validate import (
    VALIDATE_MODES,
    ValidatingEvaluator,
    ValidationReport,
    compare_tensors,
    default_validate,
    reference_outputs,
    resolve_validate,
    set_default_validate,
    tolerance_for,
    validate_candidate,
    validate_kernel,
    validation_digest,
)

__all__ = [
    "AnalyticEvaluator",
    "BOUND_SAFETY",
    "CandidatePipeline",
    "EngineEvent",
    "EngineMetrics",
    "Evaluation",
    "Evaluator",
    "FailedEvaluation",
    "MemoizingEvaluator",
    "PersistentEvalStore",
    "PruneBatch",
    "SearchCheckpoint",
    "SimulatorEvaluator",
    "StageStats",
    "StrategyBound",
    "SupervisionPolicy",
    "VALIDATE_MODES",
    "ValidatingEvaluator",
    "ValidationReport",
    "atomic_write_json",
    "compare_tensors",
    "clear_feeds_cache",
    "clear_shared_memo",
    "clip_strategy",
    "compile_strategy",
    "compute_signature",
    "default_checkpoint_policy",
    "default_eval_store",
    "default_prune",
    "default_validate",
    "default_workers",
    "definitely_infeasible",
    "evaluate_batch",
    "quarantine_corrupt",
    "recover_truncated_json",
    "reference_outputs",
    "reset_degradation_warnings",
    "resolve_policy",
    "resolve_prune",
    "resolve_validate",
    "resolve_workers",
    "search_candidates",
    "search_digest",
    "set_default_checkpoint",
    "set_default_policy",
    "set_default_prune",
    "set_default_validate",
    "set_default_workers",
    "set_eval_cache",
    "shared_memo_size",
    "strategy_key",
    "strategy_bound",
    "synthetic_feeds",
    "tolerance_for",
    "validate_candidate",
    "validate_kernel",
    "validation_digest",
]
