"""The candidate-evaluation engine.

Single owner of candidate preparation (enumerate -> optimize -> lower)
and evaluation (cost model or simulated execution, optionally memoized
and fanned out over worker processes).  Both autotuners, the operator
runners and the runtime library route through this package; see
DESIGN.md Sec. 2 ("Evaluation engine").

The branch-and-bound layer (:mod:`~repro.engine.bounds` +
:mod:`~repro.engine.search`) sits between the two halves: strategies
are given an admissible pre-IR cost bound and only the ones that could
still beat the incumbent are lowered and scored; the rest are pruned
without ever existing as IR.
"""

from .bounds import (
    BOUND_SAFETY,
    StrategyBound,
    definitely_infeasible,
    strategy_bound,
)
from .evalcache import (
    PersistentEvalStore,
    default_eval_store,
    set_eval_cache,
)
from .evaluators import (
    AnalyticEvaluator,
    Evaluation,
    Evaluator,
    MemoizingEvaluator,
    SimulatorEvaluator,
    clear_feeds_cache,
    clear_shared_memo,
    compute_signature,
    shared_memo_size,
    strategy_key,
    synthetic_feeds,
)
from .metrics import EngineMetrics, PruneBatch, StageStats
from .parallel import (
    default_workers,
    evaluate_batch,
    resolve_workers,
    set_default_workers,
)
from .pipeline import CandidatePipeline, clip_strategy, compile_strategy
from .search import (
    default_prune,
    resolve_prune,
    search_candidates,
    set_default_prune,
)

__all__ = [
    "AnalyticEvaluator",
    "BOUND_SAFETY",
    "CandidatePipeline",
    "EngineMetrics",
    "Evaluation",
    "Evaluator",
    "MemoizingEvaluator",
    "PersistentEvalStore",
    "PruneBatch",
    "SimulatorEvaluator",
    "StageStats",
    "StrategyBound",
    "clear_feeds_cache",
    "clear_shared_memo",
    "clip_strategy",
    "compile_strategy",
    "compute_signature",
    "default_eval_store",
    "default_prune",
    "default_workers",
    "definitely_infeasible",
    "evaluate_batch",
    "resolve_prune",
    "resolve_workers",
    "search_candidates",
    "set_default_prune",
    "set_default_workers",
    "set_eval_cache",
    "shared_memo_size",
    "strategy_key",
    "strategy_bound",
    "synthetic_feeds",
]
