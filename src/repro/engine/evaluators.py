"""Pluggable candidate evaluators behind one interface.

Both autotuners reduce to "score a batch of prepared candidates"; the
difference is *how* a candidate is scored:

* :class:`AnalyticEvaluator` -- the Eq. (1)/(2) static cost model, the
  cheap path that makes model-based tuning hundreds of times faster
  than brute force (Tab. 3);
* :class:`SimulatorEvaluator` -- compile and execute on the simulated
  SW26010 (the paper's "collect real execution time");
* :class:`MemoizingEvaluator` -- wraps either one with a
  process-lifetime memo keyed by (compute signature, strategy
  decisions, machine config, evaluator parameters), so a strategy that
  was already scored anywhere -- either tuner, a sweep bench, or
  :class:`~repro.runtime.library.AtopLibrary` -- is never re-simulated.

Simulated timing is data-independent (DMA cost depends on shapes and
addresses, GEMM cost on tile dims), which is what makes memoizing
measured runs across different input tensors sound: the ranking
quantity (cycles) is identical for any feed values of the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, MutableMapping, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..autotuner.cost_model import GemmCoeffs

from ..dsl.compute import ComputeDef, ROLE_OUTPUT, ShiftedDim
from ..dsl.schedule import ScheduleStrategy
from ..machine.config import MachineConfig, default_config
from ..machine.trace import SimReport
from ..scheduler.enumerate import Candidate


def synthetic_feeds(
    compute: ComputeDef, seed: int = 0
) -> Dict[str, np.ndarray]:
    """Deterministic random inputs for every non-output tensor."""
    rng = np.random.default_rng(seed)
    feeds = {}
    for name, spec in compute.tensors.items():
        if spec.role == ROLE_OUTPUT:
            continue
        shape = compute.tensor_shape(name)
        feeds[name] = rng.standard_normal(shape).astype(np.float32)
    return feeds


@dataclass(frozen=True)
class Evaluation:
    """Outcome of evaluating one candidate."""

    predicted_cycles: Optional[float] = None
    measured_cycles: Optional[float] = None
    report: Optional[SimReport] = None
    memoized: bool = False

    @property
    def cycles(self) -> float:
        if self.measured_cycles is not None:
            return self.measured_cycles
        if self.predicted_cycles is not None:
            return self.predicted_cycles
        raise ValueError("candidate was never evaluated")


def _dim_key(dim):
    if isinstance(dim, ShiftedDim):
        return ("shift", dim.spatial, dim.kernel)
    return dim


def compute_signature(compute: ComputeDef) -> Tuple:
    """Hashable identity of a schedule seed (axes, tensors, gemm)."""
    axes = tuple((a.name, a.extent, a.kind) for a in compute.axes.values())
    tensors = tuple(
        (t.name, tuple(_dim_key(d) for d in t.dims), t.role)
        for t in compute.tensors.values()
    )
    g = compute.gemm
    gemm = None if g is None else (g.c, g.a, g.b, g.m_axis, g.n_axes, g.k_axis)
    return (compute.name, axes, tensors, gemm)


def strategy_key(strategy: ScheduleStrategy) -> Tuple:
    """Hashable identity of one schedule-space point."""
    return tuple(sorted(strategy.decisions.items()))


class Evaluator:
    """Scores one prepared (already optimized) candidate."""

    #: evaluator family; selects the metrics stage it reports into.
    kind = "abstract"

    def evaluate(self, candidate: Candidate) -> Evaluation:
        raise NotImplementedError

    def params_key(self) -> Optional[Tuple]:
        """Hashable identity of evaluator parameters that change the
        score (folded into memo keys)."""
        return None


class AnalyticEvaluator(Evaluator):
    """Static cost model (Sec. 4.6, Eq. (1)/(2))."""

    kind = "analytic"

    def __init__(
        self,
        coeffs: Optional["GemmCoeffs"] = None,
        config: Optional[MachineConfig] = None,
    ) -> None:
        # deferred import: repro.autotuner's package init imports the
        # tuners, which import this package -- a top-level import here
        # would close that cycle.
        from ..autotuner.calibrate import default_coeffs

        self.config = config or default_config()
        self.coeffs = coeffs or default_coeffs(self.config)

    def evaluate(self, candidate: Candidate) -> Evaluation:
        from ..autotuner.cost_model import predict_kernel

        pred = predict_kernel(candidate.kernel, self.coeffs, self.config)
        return Evaluation(predicted_cycles=pred.total)

    def params_key(self) -> Tuple:
        return tuple(sorted(self.coeffs.items()))


class SimulatorEvaluator(Evaluator):
    """Compile and run on the simulated machine.

    ``feeds=None`` generates deterministic synthetic inputs per compute.
    ``executions`` counts real simulated runs on *this* instance (in
    parallel batches the counting happens in worker processes, so use
    the batch metrics there instead).
    """

    kind = "simulator"

    def __init__(
        self,
        feeds: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
    ) -> None:
        self.feeds = feeds
        self.config = config or default_config()
        self.seed = seed
        self.executions = 0

    def evaluate(self, candidate: Candidate) -> Evaluation:
        from ..codegen.executor import CompiledKernel

        feeds = (
            self.feeds
            if self.feeds is not None
            else synthetic_feeds(candidate.compute, self.seed)
        )
        ck = CompiledKernel(candidate.kernel, candidate.compute, self.config)
        self.executions += 1
        report = ck.run(feeds).report
        return Evaluation(measured_cycles=report.cycles, report=report)


#: process-lifetime memo shared by every MemoizingEvaluator without an
#: explicit store -- the "repeated strategies across tuners/benches/
#: library never re-simulate" guarantee.
_SHARED_MEMO: Dict[Tuple, Evaluation] = {}


def clear_shared_memo() -> None:
    _SHARED_MEMO.clear()


def shared_memo_size() -> int:
    return len(_SHARED_MEMO)


class MemoizingEvaluator(Evaluator):
    """Memo layer over another evaluator.

    The key covers everything that determines a score: the compute
    signature, the strategy decisions, the machine config, the inner
    evaluator's parameters, plus a caller-supplied ``salt`` for context
    the candidate itself cannot express (lowering options, prefetch
    on/off -- the same (compute, strategy) pair lowers to a different
    kernel under different options, see the Fig. 10 baseline).
    """

    def __init__(
        self,
        inner: Evaluator,
        *,
        store: Optional[MutableMapping[Tuple, Evaluation]] = None,
        salt: Optional[Tuple] = None,
    ) -> None:
        self.inner = inner
        self.kind = inner.kind
        self.store = _SHARED_MEMO if store is None else store
        self.salt = salt
        self.hits = 0

    def key(self, candidate: Candidate) -> Tuple:
        return (
            self.kind,
            self.inner.params_key(),
            self.salt,
            getattr(self.inner, "config", None),
            compute_signature(candidate.compute),
            strategy_key(candidate.strategy),
        )

    def lookup(self, candidate: Candidate) -> Optional[Evaluation]:
        hit = self.store.get(self.key(candidate))
        if hit is None:
            return None
        self.hits += 1
        return replace(hit, memoized=True)

    def remember(self, candidate: Candidate, evaluation: Evaluation) -> None:
        self.store[self.key(candidate)] = replace(evaluation, memoized=False)

    def evaluate(self, candidate: Candidate) -> Evaluation:
        hit = self.lookup(candidate)
        if hit is not None:
            return hit
        evaluation = self.inner.evaluate(candidate)
        self.remember(candidate, evaluation)
        return evaluation
