"""Pluggable candidate evaluators behind one interface.

Both autotuners reduce to "score a batch of prepared candidates"; the
difference is *how* a candidate is scored:

* :class:`AnalyticEvaluator` -- the Eq. (1)/(2) static cost model, the
  cheap path that makes model-based tuning hundreds of times faster
  than brute force (Tab. 3);
* :class:`SimulatorEvaluator` -- compile and execute on the simulated
  SW26010 (the paper's "collect real execution time");
* :class:`MemoizingEvaluator` -- wraps either one with a
  process-lifetime memo keyed by (compute signature, strategy
  decisions, machine config, evaluator parameters), so a strategy that
  was already scored anywhere -- either tuner, a sweep bench, or
  :class:`~repro.runtime.library.AtopLibrary` -- is never re-simulated.

Simulated timing is data-independent (DMA cost depends on shapes and
addresses, GEMM cost on tile dims), which is what makes memoizing
measured runs across different input tensors sound: the ranking
quantity (cycles) is identical for any feed values of the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, MutableMapping, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..autotuner.cost_model import GemmCoeffs

from ..dsl.compute import ComputeDef, ROLE_OUTPUT, ShiftedDim
from ..dsl.schedule import ScheduleStrategy
from ..machine.config import MachineConfig, config_signature, default_config
from ..machine.trace import SimReport
from ..scheduler.enumerate import Candidate

#: generated input tensors, keyed by (compute signature, seed).  Feed
#: generation used to re-run the RNG for every simulated candidate --
#: pure overhead, since simulated timing is data-independent and every
#: candidate of one compute receives identical feeds anyway.  Cached
#: arrays are frozen (writes would leak between candidates).
_FEEDS_CACHE: Dict[Tuple, Dict[str, np.ndarray]] = {}


def clear_feeds_cache() -> None:
    _FEEDS_CACHE.clear()


def synthetic_feeds(
    compute: ComputeDef, seed: int = 0
) -> Dict[str, np.ndarray]:
    """Deterministic random inputs for every non-output tensor.

    Returns a fresh dict of read-only arrays answered from a
    process-lifetime cache; callers may add/remove entries but must not
    write into the arrays.
    """
    key = (compute_signature(compute), int(seed))
    hit = _FEEDS_CACHE.get(key)
    if hit is not None:
        return dict(hit)
    rng = np.random.default_rng(seed)
    feeds = {}
    for name, spec in compute.tensors.items():
        if spec.role == ROLE_OUTPUT:
            continue
        shape = compute.tensor_shape(name)
        arr = rng.standard_normal(shape).astype(np.float32)
        arr.setflags(write=False)
        feeds[name] = arr
    _FEEDS_CACHE[key] = feeds
    return dict(feeds)


@dataclass(frozen=True)
class Evaluation:
    """Outcome of evaluating one candidate."""

    predicted_cycles: Optional[float] = None
    measured_cycles: Optional[float] = None
    report: Optional[SimReport] = None
    memoized: bool = False

    #: overridden by :class:`FailedEvaluation`; callers filter on it.
    failed = False

    @property
    def cycles(self) -> float:
        if self.measured_cycles is not None:
            return self.measured_cycles
        if self.predicted_cycles is not None:
            return self.predicted_cycles
        raise ValueError("candidate was never evaluated")


@dataclass(frozen=True)
class FailedEvaluation(Evaluation):
    """A candidate whose evaluation was quarantined by supervision.

    Carries the full diagnosis (failure site, exception chain, attempt
    count) instead of aborting the sweep or silently serializing the
    batch.  ``cycles`` is ``inf`` so a failed candidate can never win
    or enter the top-K; tuners and the branch-and-bound incumbent both
    skip entries with ``failed`` set.
    """

    site: str = "exception"  # "crash" | "exception" | "hang"
    error_type: str = ""
    error_message: str = ""
    error_chain: Tuple[str, ...] = ()
    attempts: int = 0

    failed = True

    @property
    def cycles(self) -> float:
        return float("inf")

    def describe(self) -> str:
        return (
            f"[{self.site}] {self.error_type}: {self.error_message} "
            f"(after {self.attempts} attempts)"
        )

    @classmethod
    def from_exception(
        cls, exc: BaseException, *, site: str, attempts: int
    ) -> "FailedEvaluation":
        """Capture an exception (and its cause/context chain) as a
        structured failure record."""
        chain = []
        seen = set()
        e: Optional[BaseException] = exc
        while e is not None and id(e) not in seen and len(chain) < 10:
            seen.add(id(e))
            chain.append(f"{type(e).__name__}: {e}")
            e = e.__cause__ or e.__context__
        return cls(
            site=site,
            error_type=type(exc).__name__,
            error_message=str(exc),
            error_chain=tuple(chain),
            attempts=attempts,
        )


def _dim_key(dim):
    if isinstance(dim, ShiftedDim):
        return ("shift", dim.spatial, dim.kernel)
    return dim


def compute_signature(compute: ComputeDef) -> Tuple:
    """Hashable identity of a schedule seed (axes, tensors, gemm)."""
    axes = tuple((a.name, a.extent, a.kind) for a in compute.axes.values())
    tensors = tuple(
        (t.name, tuple(_dim_key(d) for d in t.dims), t.role)
        for t in compute.tensors.values()
    )
    g = compute.gemm
    gemm = None if g is None else (g.c, g.a, g.b, g.m_axis, g.n_axes, g.k_axis)
    return (compute.name, axes, tensors, gemm)


def strategy_key(strategy: ScheduleStrategy) -> Tuple:
    """Hashable identity of one schedule-space point."""
    return tuple(sorted(strategy.decisions.items()))


class Evaluator:
    """Scores one prepared (already optimized) candidate."""

    #: evaluator family; selects the metrics stage it reports into.
    kind = "abstract"

    def evaluate(self, candidate: Candidate) -> Evaluation:
        raise NotImplementedError

    def params_key(self) -> Optional[Tuple]:
        """Hashable identity of evaluator parameters that change the
        score (folded into memo keys)."""
        return None


class AnalyticEvaluator(Evaluator):
    """Static cost model (Sec. 4.6, Eq. (1)/(2))."""

    kind = "analytic"

    def __init__(
        self,
        coeffs: Optional["GemmCoeffs"] = None,
        config: Optional[MachineConfig] = None,
    ) -> None:
        # deferred import: repro.autotuner's package init imports the
        # tuners, which import this package -- a top-level import here
        # would close that cycle.
        from ..autotuner.calibrate import default_coeffs

        self.config = config or default_config()
        self.coeffs = coeffs or default_coeffs(self.config)

    def evaluate(self, candidate: Candidate) -> Evaluation:
        from ..autotuner.cost_model import predict_kernel

        pred = predict_kernel(candidate.kernel, self.coeffs, self.config)
        return Evaluation(predicted_cycles=pred.total)

    def params_key(self) -> Tuple:
        return tuple(sorted(self.coeffs.items()))


class SimulatorEvaluator(Evaluator):
    """Compile and run on the simulated machine.

    ``feeds=None`` generates deterministic synthetic inputs per compute.
    ``executions`` counts real simulated runs on *this* instance (in
    parallel batches the counting happens in worker processes, so use
    the batch metrics there instead).
    """

    kind = "simulator"

    def __init__(
        self,
        feeds: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[MachineConfig] = None,
        seed: int = 0,
    ) -> None:
        self.feeds = feeds
        self.config = config or default_config()
        self.seed = seed
        self.executions = 0

    def evaluate(self, candidate: Candidate) -> Evaluation:
        from ..codegen.executor import CompiledKernel

        feeds = (
            self.feeds
            if self.feeds is not None
            else synthetic_feeds(candidate.compute, self.seed)
        )
        ck = CompiledKernel(candidate.kernel, candidate.compute, self.config)
        self.executions += 1
        report = ck.run(feeds).report
        return Evaluation(measured_cycles=report.cycles, report=report)


#: process-lifetime memo shared by every MemoizingEvaluator without an
#: explicit store -- the "repeated strategies across tuners/benches/
#: library never re-simulate" guarantee.
_SHARED_MEMO: Dict[Tuple, Evaluation] = {}


def clear_shared_memo() -> None:
    _SHARED_MEMO.clear()


def shared_memo_size() -> int:
    return len(_SHARED_MEMO)


#: "disk not specified" marker: resolved to the process-wide default
#: store (see :func:`repro.engine.evalcache.set_eval_cache`) at lookup
#: time, so installing a cache after evaluators were built still works.
_DEFAULT_DISK = object()


class MemoizingEvaluator(Evaluator):
    """Memo layer over another evaluator.

    The key covers everything that determines a score: the compute
    signature, the strategy decisions, the *full* machine signature
    (``config_signature`` -- the dataclass's own hash ignores the
    latency/pipe tables, so keying on the object silently collided
    configs that differ only in instruction timing, and with them the
    Eq. (2) coefficients fitted from those timings), the inner
    evaluator's parameters (for the analytic evaluator that is the
    fitted coefficients themselves), plus a caller-supplied ``salt`` for
    context the candidate itself cannot express (lowering options,
    prefetch on/off -- the same (compute, strategy) pair lowers to a
    different kernel under different options, see the Fig. 10 baseline).

    Lookup is tiered: the in-process ``store`` first, then the optional
    persistent ``disk`` store (:class:`~repro.engine.evalcache
    .PersistentEvalStore`); disk hits are promoted into the in-process
    store so they pay the digest cost once.
    """

    def __init__(
        self,
        inner: Evaluator,
        *,
        store: Optional[MutableMapping[Tuple, Evaluation]] = None,
        salt: Optional[Tuple] = None,
        disk=_DEFAULT_DISK,
    ) -> None:
        self.inner = inner
        self.kind = inner.kind
        self.store = _SHARED_MEMO if store is None else store
        self.salt = salt
        self._disk = disk
        self.hits = 0
        self.disk_hits = 0

    @property
    def disk(self):
        if self._disk is not _DEFAULT_DISK:
            return self._disk
        from .evalcache import default_eval_store

        return default_eval_store()

    def key(self, candidate: Candidate) -> Tuple:
        config = getattr(self.inner, "config", None)
        return (
            self.kind,
            self.inner.params_key(),
            self.salt,
            None if config is None else config_signature(config),
            compute_signature(candidate.compute),
            strategy_key(candidate.strategy),
        )

    def lookup(self, candidate: Candidate) -> Optional[Evaluation]:
        key = self.key(candidate)
        hit = self.store.get(key)
        if hit is not None:
            self.hits += 1
            return replace(hit, memoized=True)
        disk = self.disk
        if disk is not None:
            found = disk.get(key, config=getattr(self.inner, "config", None))
            if found is not None:
                self.hits += 1
                self.disk_hits += 1
                self.store[key] = replace(found, memoized=False)
                return found
        return None

    def remember(self, candidate: Candidate, evaluation: Evaluation) -> None:
        if evaluation.failed:
            return  # quarantined candidates must never poison the memo
        key = self.key(candidate)
        self.store[key] = replace(evaluation, memoized=False)
        disk = self.disk
        if disk is not None:
            disk.put(key, evaluation)

    def flush(self) -> None:
        """Persist pending disk-store entries (no-op without a disk)."""
        disk = self.disk
        if disk is not None:
            disk.flush()

    def evaluate(self, candidate: Candidate) -> Evaluation:
        hit = self.lookup(candidate)
        if hit is not None:
            return hit
        evaluation = self.inner.evaluate(candidate)
        self.remember(candidate, evaluation)
        return evaluation
