"""Candidate preparation: the single owner of enumerate -> lower -> optimize.

Before this layer existed, ``autotuner/model_tuner.py`` and
``autotuner/blackbox.py`` each hand-rolled the same
``iter_candidates`` -> ``infer_dma`` -> ``apply_prefetch`` loop and
``harness/runner.py`` re-implemented the compile path on the side.
:class:`CandidatePipeline` is now the one place a schedule strategy
becomes an optimized, executable kernel; every caller (both tuners, the
operator runners, the runtime library's cached-replay path) routes
through it.

Both halves run on :class:`~repro.passes.manager.PassManager`
instances -- the lowering stages (decode-strategy / build-loop-nest /
plan-spm) and the optimizer stages (infer-dma / hoist-dma / prefetch /
analyze-boundary) -- so every consumer inherits per-pass timing and the
interleaved structural verifier.  Wall time lands in distinct
:class:`~repro.engine.metrics.EngineMetrics` stages: ``enumeration``
(the pure space walk), ``lowering`` (strategy -> raw IR, including
pruned strategies) and ``optimization``.
"""

from __future__ import annotations

import numbers
import time
from typing import Iterator, Optional

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace, ScheduleStrategy
from ..errors import IllegalCandidateError, TuningError
from ..machine.config import MachineConfig, default_config
from ..passes.base import SPM_PLANNED, PassContext
from ..passes.lowering import lowering_passes
from ..passes.manager import PassManager
from ..passes.optimize import optimize_passes
from ..primitives.registry import PrimitiveRegistry
from ..scheduler.enumerate import Candidate, EnumerationStats
from ..scheduler.lower import LoweringOptions
from .bounds import StrategyBound, definitely_infeasible, strategy_bound
from .metrics import EngineMetrics


def clip_strategy(
    strategy: ScheduleStrategy, compute: ComputeDef
) -> ScheduleStrategy:
    """Clip tile decisions to a (smaller) shard's extents.

    Non-integer tile decisions (a symbolic placeholder, a stray string)
    are left untouched -- the lowering's own legality checks own those.
    A tile decision naming an axis the compute does not have is a
    caller bug (wrong strategy replayed onto the wrong operator) and
    raises :class:`TuningError` instead of silently surviving the clip.
    """
    decisions = dict(strategy.decisions)
    for key, value in strategy.decisions.items():
        if not key.startswith("tile:"):
            continue
        axis = key[len("tile:"):]
        if axis not in compute.axes:
            raise TuningError(
                f"strategy tile decision {key!r} names no axis of "
                f"{compute.name!r} (axes: {sorted(compute.axes)})"
            )
        if not isinstance(value, numbers.Integral) or isinstance(value, bool):
            continue
        decisions[key] = min(int(value), compute.axes[axis].extent)
    return ScheduleStrategy(decisions)


class CandidatePipeline:
    """Prepares candidates of one operator: enumerate legal strategies,
    lower them through the verified pass pipeline, run the optimizer
    passes (DMA inference + hoisting, automatic latency hiding)."""

    def __init__(
        self,
        compute: ComputeDef,
        space: Optional[ScheduleSpace] = None,
        *,
        options: Optional[LoweringOptions] = None,
        config: Optional[MachineConfig] = None,
        registry: Optional[PrimitiveRegistry] = None,
        prefetch: bool = True,
        metrics: Optional[EngineMetrics] = None,
    ) -> None:
        self.compute = compute
        self.space = space
        self.options = options
        self.config = config or default_config()
        self.registry = registry
        self.prefetch = prefetch
        self.metrics = EngineMetrics() if metrics is None else metrics
        self.stats = EnumerationStats()
        self.lowerer = PassManager(
            lowering_passes(), metrics=self.metrics, stage="lowering"
        )
        self.optimizer = PassManager(
            optimize_passes(prefetch=prefetch),
            metrics=self.metrics,
            stage="optimization",
        )

    def _context(self, strategy: Optional[ScheduleStrategy]) -> PassContext:
        return PassContext(
            compute=self.compute,
            config=self.config,
            strategy=strategy,
            options=self.options,
            registry=self.registry,
        )

    def _lower(self, strategy: ScheduleStrategy):
        """Strategy -> raw kernel IR via the lowering manager (charges
        ``metrics.lowering``, also for strategies that prune)."""
        return self.lowerer.run(self._context(strategy))

    # --- single-strategy paths -------------------------------------------
    def optimize(self, candidate: Candidate) -> Candidate:
        """Optimizer passes over a raw lowered candidate; returns a new
        candidate whose kernel is ready for prediction or execution."""
        ctx = self._context(candidate.strategy)
        # lowered candidates already passed SPM planning
        ctx.established.add(SPM_PLANNED)
        kernel = self.optimizer.run(ctx, candidate.kernel)
        return Candidate(candidate.strategy, kernel, candidate.compute)

    def prepare(
        self, strategy: ScheduleStrategy, *, clip: bool = False
    ) -> Candidate:
        """Lower + optimize one explicit strategy (the cached-replay
        path: re-materialize a stored winner without enumeration)."""
        if clip:
            strategy = clip_strategy(strategy, self.compute)
        kernel = self._lower(strategy)
        return self.optimize(Candidate(strategy, kernel, self.compute))

    # --- space enumeration ------------------------------------------------
    def strategies(self) -> Iterator[ScheduleStrategy]:
        """Lazily walk every declared strategy of the space (legal or
        not -- legality is only known after :meth:`realize`).  Charges
        the pure walk to ``metrics.enumeration`` and counts
        ``stats.declared``."""
        if self.space is None:
            raise TuningError(
                f"pipeline for {self.compute.name!r} has no schedule space"
            )
        it = self.space.strategies()
        sentinel = object()
        while True:
            t0 = time.perf_counter()
            strategy = next(it, sentinel)
            dt = time.perf_counter() - t0
            if strategy is sentinel:
                self.metrics.enumeration.add(dt, count=0)
                return
            self.stats.declared += 1
            self.metrics.enumeration.add(dt)
            yield strategy  # type: ignore[misc]

    def bound_for(self, strategy: ScheduleStrategy) -> StrategyBound:
        """Admissible pre-lowering cost bound (charges ``metrics.bounds``)."""
        t0 = time.perf_counter()
        bound = strategy_bound(self.compute, strategy, self.config)
        self.metrics.bounds.add(time.perf_counter() - t0)
        return bound

    def realize(
        self, strategy: ScheduleStrategy, *, prefilter: bool = False
    ) -> Optional[Candidate]:
        """Lower + optimize one declared strategy; ``None`` if illegal.

        With ``prefilter`` the conservative SPM floor check runs first:
        a strategy it rejects is *guaranteed* to fail SPM planning, so
        the loop nest is never built (counted into ``stats.pruned`` and
        ``metrics.spm_pruned``; the legal candidate set is unchanged).
        """
        if prefilter and definitely_infeasible(
            self.compute, strategy, self.config, self.options
        ):
            self.stats.pruned += 1
            self.metrics.spm_pruned += 1
            return None
        try:
            kernel = self._lower(strategy)
        except IllegalCandidateError:
            self.stats.pruned += 1
            return None
        self.stats.legal += 1
        return self.optimize(Candidate(strategy, kernel, self.compute))

    def candidates(self, limit: Optional[int] = None) -> Iterator[Candidate]:
        """Lazily yield every legal, optimized candidate of the space
        (at most ``limit`` of them)."""
        legal = 0
        for strategy in self.strategies():
            candidate = self.realize(strategy)
            if candidate is None:
                continue
            legal += 1
            yield candidate
            if limit is not None and legal >= limit:
                return

    # --- differential validation ------------------------------------------
    def validate(self, candidate: Candidate, *, seed: int = 0):
        """Differentially validate one prepared candidate against the
        NumPy reference (charges ``metrics.validation``; failures also
        count into ``metrics.validation_failures`` and the event trail
        before re-raising)."""
        from ..errors import SanitizerError, ValidationError
        from .validate import validate_candidate

        t0 = time.perf_counter()
        try:
            report = validate_candidate(candidate, self.config, seed=seed)
        except (ValidationError, SanitizerError) as exc:
            self.metrics.validation_failures += 1
            kind = (
                "sanitizer" if isinstance(exc, SanitizerError) else "validation"
            )
            self.metrics.record_event(kind, str(exc))
            raise
        finally:
            self.metrics.validation.add(time.perf_counter() - t0)
        return report


def compile_strategy(
    compute: ComputeDef,
    strategy: ScheduleStrategy,
    config: Optional[MachineConfig] = None,
    *,
    options: Optional[LoweringOptions] = None,
    prefetch: bool = True,
    clip: bool = True,
    sanitize: Optional[bool] = None,
):
    """One strategy -> executable kernel (clipped to the compute's
    extents by default, as the sharded runners need)."""
    from ..codegen.executor import CompiledKernel

    pipeline = CandidatePipeline(
        compute, options=options, config=config, prefetch=prefetch
    )
    candidate = pipeline.prepare(strategy, clip=clip)
    return CompiledKernel(
        candidate.kernel, compute, pipeline.config, sanitize=sanitize
    )
