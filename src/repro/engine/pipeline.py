"""Candidate preparation: the single owner of enumerate -> optimize.

Before this layer existed, ``autotuner/model_tuner.py`` and
``autotuner/blackbox.py`` each hand-rolled the same
``iter_candidates`` -> ``infer_dma`` -> ``apply_prefetch`` loop and
``harness/runner.py`` re-implemented the compile path on the side.
:class:`CandidatePipeline` is now the one place a schedule strategy
becomes an optimized, executable kernel; every caller (both tuners, the
operator runners, the runtime library's cached-replay path) routes
through it, and it times each stage into an
:class:`~repro.engine.metrics.EngineMetrics`.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

from ..dsl.compute import ComputeDef
from ..dsl.schedule import ScheduleSpace, ScheduleStrategy
from ..errors import TuningError
from ..machine.config import MachineConfig, default_config
from ..optimizer.dma_inference import infer_dma
from ..optimizer.prefetch import apply_prefetch
from ..primitives.registry import PrimitiveRegistry
from ..scheduler.enumerate import Candidate, EnumerationStats, iter_candidates
from ..scheduler.lower import LoweringOptions, lower_strategy
from .metrics import EngineMetrics


def clip_strategy(
    strategy: ScheduleStrategy, compute: ComputeDef
) -> ScheduleStrategy:
    """Clip tile decisions to a (smaller) shard's extents."""
    decisions = dict(strategy.decisions)
    for name, axis in compute.axes.items():
        key = f"tile:{name}"
        if key in decisions:
            decisions[key] = min(int(decisions[key]), axis.extent)  # type: ignore[arg-type]
    return ScheduleStrategy(decisions)


class CandidatePipeline:
    """Prepares candidates of one operator: enumerate legal strategies,
    lower them, run the optimizer passes (DMA inference + hoisting,
    automatic latency hiding)."""

    def __init__(
        self,
        compute: ComputeDef,
        space: Optional[ScheduleSpace] = None,
        *,
        options: Optional[LoweringOptions] = None,
        config: Optional[MachineConfig] = None,
        registry: Optional[PrimitiveRegistry] = None,
        prefetch: bool = True,
        metrics: Optional[EngineMetrics] = None,
    ) -> None:
        self.compute = compute
        self.space = space
        self.options = options
        self.config = config or default_config()
        self.registry = registry
        self.prefetch = prefetch
        self.metrics = EngineMetrics() if metrics is None else metrics
        self.stats = EnumerationStats()

    # --- single-strategy paths -------------------------------------------
    def optimize(self, candidate: Candidate) -> Candidate:
        """Optimizer passes over a raw lowered candidate; returns a new
        candidate whose kernel is ready for prediction or execution."""
        t0 = time.perf_counter()
        kernel = infer_dma(candidate.kernel, candidate.compute, self.config)
        if self.prefetch:
            kernel = apply_prefetch(kernel)
        self.metrics.optimization.add(time.perf_counter() - t0)
        return Candidate(candidate.strategy, kernel, candidate.compute)

    def prepare(
        self, strategy: ScheduleStrategy, *, clip: bool = False
    ) -> Candidate:
        """Lower + optimize one explicit strategy (the cached-replay
        path: re-materialize a stored winner without enumeration)."""
        if clip:
            strategy = clip_strategy(strategy, self.compute)
        t0 = time.perf_counter()
        kernel = lower_strategy(
            self.compute, strategy, options=self.options,
            config=self.config, registry=self.registry,
        )
        self.metrics.enumeration.add(time.perf_counter() - t0)
        return self.optimize(Candidate(strategy, kernel, self.compute))

    # --- space enumeration ------------------------------------------------
    def candidates(self, limit: Optional[int] = None) -> Iterator[Candidate]:
        """Lazily yield every legal, optimized candidate of the space
        (at most ``limit`` of them)."""
        if self.space is None:
            raise TuningError(
                f"pipeline for {self.compute.name!r} has no schedule space"
            )
        it = iter_candidates(
            self.compute, self.space, options=self.options,
            config=self.config, registry=self.registry, stats=self.stats,
        )
        declared_seen = 0
        legal = 0
        sentinel = object()
        while True:
            t0 = time.perf_counter()
            raw = next(it, sentinel)
            self.metrics.enumeration.add(
                time.perf_counter() - t0,
                count=self.stats.declared - declared_seen,
            )
            declared_seen = self.stats.declared
            if raw is sentinel:
                return
            legal += 1
            yield self.optimize(raw)
            if limit is not None and legal >= limit:
                return


def compile_strategy(
    compute: ComputeDef,
    strategy: ScheduleStrategy,
    config: Optional[MachineConfig] = None,
    *,
    options: Optional[LoweringOptions] = None,
    prefetch: bool = True,
    clip: bool = True,
):
    """One strategy -> executable kernel (clipped to the compute's
    extents by default, as the sharded runners need)."""
    from ..codegen.executor import CompiledKernel

    pipeline = CandidatePipeline(
        compute, options=options, config=config, prefetch=prefetch
    )
    candidate = pipeline.prepare(strategy, clip=clip)
    return CompiledKernel(candidate.kernel, compute, pipeline.config)
