"""Branch-and-bound candidate search.

The profile of a full-space tuning run is dominated by per-candidate
IR work: at a 512^3 GEMM's 8192-strategy space, the walk costs ~0.01 s
and bound computation ~0.1 s, while lowering + optimizing + predicting
cost >11 s.  Every candidate whose *admissible* pre-IR bound
(:mod:`repro.engine.bounds`) already exceeds the k-th best score found
so far can skip all three stages without changing the outcome: the
bound never exceeds the true score, so a pruned candidate can neither
win nor enter the top-K.

The driver is best-bound-first: all strategies are bounded up front
(cheap), sorted by bound, and processed in fixed-size batches from the
most promising end.  That finds a near-optimal incumbent in the first
batch, and because bounds are sorted, the first bound above the
incumbent threshold proves *every* remaining strategy prunable -- the
search stops in one step instead of trickling through the tail.

Determinism guarantees (tested in ``tests/engine/test_search.py``):

* results are returned in enumeration order, so the caller's stable
  sort breaks score ties exactly as the exhaustive walk does;
* the batch size is a constant (not derived from the worker count), so
  the set of evaluated candidates -- and therefore every counter and
  the winner -- is identical at any ``--workers`` setting;
* the pruning threshold is strict (``bound * BOUND_SAFETY >
  threshold``), so candidates tying the k-th best score are always
  evaluated and the returned top-K matches the exhaustive one
  bit-for-bit.

Resilience (see DESIGN.md "Failure model & recovery"):

* a candidate whose evaluation was quarantined comes back as a
  :class:`~repro.engine.evaluators.FailedEvaluation`; it is reported
  in the results (so callers can audit it) but never enters the
  incumbent heap, so it cannot distort the pruning threshold;
* with a checkpoint path (explicit argument, or the process-wide
  ``--checkpoint`` directory), the driver atomically saves its state
  -- incumbent heap, evaluated-position cursor, scored outcomes, prune
  counters -- at every batch boundary; ``resume`` restores an
  interrupted sweep and finishes it with a bit-identical final result
  (``tests/engine/test_checkpoint.py``).

``set_default_prune`` is the process-wide knob behind the CLI's
``--no-prune`` escape hatch, mirroring ``set_default_workers``.  With
pruning off the search degrades to exactly the pre-bound behaviour:
realize every candidate in enumeration order, score them in one batch.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..scheduler.enumerate import Candidate
from .bounds import BOUND_SAFETY
from .checkpoint import (
    SearchCheckpoint,
    default_checkpoint_policy,
    search_digest,
)
from .evaluators import Evaluation, Evaluator, compute_signature
from .parallel import evaluate_batch
from .pipeline import CandidatePipeline

__all__ = [
    "PRUNE_BATCH",
    "default_prune",
    "resolve_prune",
    "search_candidates",
    "set_default_prune",
]

#: strategies realized + scored per branch-and-bound step.  A constant
#: on purpose: deriving it from the worker count would make the set of
#: evaluated candidates depend on the machine the search runs on.
PRUNE_BATCH = 64

_DEFAULT_PRUNE = True


def set_default_prune(prune: bool) -> None:
    """Set the process-wide pruning default (used by ``--no-prune``)."""
    global _DEFAULT_PRUNE
    _DEFAULT_PRUNE = bool(prune)


def default_prune() -> bool:
    return _DEFAULT_PRUNE


def resolve_prune(prune: Optional[bool]) -> bool:
    return _DEFAULT_PRUNE if prune is None else bool(prune)


def _exhaustive(
    pipeline: CandidatePipeline,
    evaluator: Evaluator,
    workers: Optional[int],
    limit: Optional[int],
) -> List[Tuple[Candidate, Evaluation]]:
    """The prune-off path: realize everything, score in one batch."""
    cands = list(pipeline.candidates(limit=limit))
    if not cands:
        return []
    evals = evaluate_batch(
        cands, evaluator, workers=workers, metrics=pipeline.metrics
    )
    return list(zip(cands, evals))


def _resolve_checkpoint(
    checkpoint: Union[None, str, Path],
    resume: Optional[bool],
    digest: str,
) -> Tuple[Optional[Path], bool]:
    """Explicit path beats the process-wide directory policy."""
    if checkpoint is not None:
        return Path(checkpoint), bool(resume)
    policy = default_checkpoint_policy()
    if policy is None:
        return None, False
    return (
        policy.path_for(digest),
        policy.resume if resume is None else bool(resume),
    )


def _restore(
    state: SearchCheckpoint,
    pipeline: CandidatePipeline,
    evaluator: Evaluator,
    strategies,
) -> Optional[List[Tuple[int, Candidate, Evaluation]]]:
    """Re-materialize the scored candidates of a checkpoint.

    Lowering is deterministic, so realizing a previously-scored
    strategy again yields the same kernel; the stored evaluation is
    attached without re-scoring.  ``None`` (reject the checkpoint) if
    any stored index no longer realizes -- that means the checkpoint
    does not belong to this space after all.
    """
    scored: List[Tuple[int, Candidate, Evaluation]] = []
    config = getattr(evaluator, "config", None)
    if config is None:
        config = getattr(getattr(evaluator, "inner", None), "config", None)
    for idx, raw in state.scored:
        if not 0 <= idx < len(strategies):
            return None
        candidate = pipeline.realize(strategies[idx], prefilter=True)
        if candidate is None:
            return None
        scored.append(
            (idx, candidate, SearchCheckpoint.unpack_eval(raw, config))
        )
    return scored


def search_candidates(
    pipeline: CandidatePipeline,
    evaluator: Evaluator,
    *,
    top_k: int = 1,
    workers: Optional[int] = None,
    prune: Optional[bool] = None,
    batch_size: Optional[int] = None,
    limit: Optional[int] = None,
    checkpoint: Union[None, str, Path] = None,
    resume: Optional[bool] = None,
) -> List[Tuple[Candidate, Evaluation]]:
    """Score the legal candidates of ``pipeline``'s space.

    Returns ``(candidate, evaluation)`` pairs in enumeration order.
    With pruning the list covers every candidate that could possibly
    rank among the ``top_k`` best (plus whatever else was scored before
    the bound threshold tightened); without, it covers the entire legal
    space.  Either way, stably sorting the result by
    ``evaluation.cycles`` yields an identical winner and top-K.

    ``limit`` (first N legal candidates, a blackbox-tuner notion whose
    meaning depends on enumeration order) forces the exhaustive path.

    ``checkpoint`` names a JSON sidecar updated atomically at every
    batch boundary; with ``resume`` the driver restores a matching
    checkpoint and continues instead of restarting (checkpointing
    applies to the branch-and-bound path -- the exhaustive path is a
    single batch with nothing to resume).
    """
    do_prune = resolve_prune(prune)
    if not do_prune or limit is not None:
        return _exhaustive(pipeline, evaluator, workers, limit)

    strategies = list(pipeline.strategies())
    bounds = [pipeline.bound_for(s) for s in strategies]
    order = sorted(range(len(strategies)), key=lambda i: (bounds[i].cycles, i))

    metrics = pipeline.metrics
    keep = max(1, int(top_k))
    batch = max(1, int(batch_size)) if batch_size else PRUNE_BATCH

    digest = search_digest(
        compute_signature(pipeline.compute),
        len(strategies),
        keep,
        batch,
        evaluator,
    )
    ckpt_path, do_resume = _resolve_checkpoint(checkpoint, resume, digest)

    worst_k: List[float] = []  # max-heap (negated) of the k best scores
    threshold = float("inf")
    scored: List[Tuple[int, Candidate, Evaluation]] = []
    pos = 0
    # counter baselines: the checkpoint stores this search's own
    # counters, not whatever the caller accumulated before it.
    bp0, sp0, q0 = metrics.bound_pruned, metrics.spm_pruned, metrics.quarantined
    pb0 = len(metrics.prune_batches)

    if ckpt_path is not None and do_resume:
        state = SearchCheckpoint.load(ckpt_path, expect_space=digest)
        if state is not None:
            restored = _restore(state, pipeline, evaluator, strategies)
            if restored is None:
                metrics.record_event(
                    "checkpoint-reject",
                    f"{ckpt_path}: scored indices do not realize; "
                    f"starting fresh",
                )
            else:
                scored = restored
                pos = state.pos
                worst_k = list(state.worst_k)
                if len(worst_k) == keep:
                    threshold = -worst_k[0]
                metrics.bound_pruned += state.bound_pruned
                metrics.spm_pruned += state.spm_pruned
                metrics.quarantined += state.quarantined
                metrics.prune_batches.extend(state.prune_batches)
                metrics.record_event(
                    "checkpoint-resume",
                    f"{ckpt_path}: resumed at position {pos}/{len(order)} "
                    f"with {len(scored)} scored",
                )

    def _save(complete: bool) -> None:
        if ckpt_path is None:
            return
        SearchCheckpoint(
            space=digest,
            pos=pos,
            worst_k=list(worst_k),
            scored=[
                (idx, SearchCheckpoint.pack_eval(e))
                for idx, _, e in scored
            ],
            bound_pruned=metrics.bound_pruned - bp0,
            spm_pruned=metrics.spm_pruned - sp0,
            quarantined=metrics.quarantined - q0,
            prune_batches=list(metrics.prune_batches[pb0:]),
            complete=complete,
        ).save(ckpt_path)

    while pos < len(order):
        if bounds[order[pos]].cycles * BOUND_SAFETY > threshold:
            # bounds are sorted: everything from here on is prunable.
            tail = len(order) - pos
            metrics.bound_pruned += tail
            metrics.record_prune_batch(considered=tail, pruned=tail, lowered=0)
            pos = len(order)
            break
        # truncate the batch at the first bound above the threshold:
        # bounds are sorted, so the next loop iteration's head check
        # prunes everything from the cut onwards in one step.
        end = min(pos + batch, len(order))
        cut = pos + 1
        while (
            cut < end
            and bounds[order[cut]].cycles * BOUND_SAFETY <= threshold
        ):
            cut += 1
        take = order[pos:cut]
        pos = cut

        spm_before = metrics.spm_pruned
        realized: List[Tuple[int, Candidate]] = []
        for idx in take:
            candidate = pipeline.realize(strategies[idx], prefilter=True)
            if candidate is not None:
                realized.append((idx, candidate))
        metrics.record_prune_batch(
            considered=len(take),
            pruned=0,
            lowered=len(take) - (metrics.spm_pruned - spm_before),
        )
        if not realized:
            _save(complete=False)
            continue

        evals = evaluate_batch(
            [c for _, c in realized],
            evaluator,
            workers=workers,
            metrics=metrics,
        )
        for (idx, candidate), evaluation in zip(realized, evals):
            scored.append((idx, candidate, evaluation))
            if evaluation.failed:
                continue  # quarantined: must not distort the incumbent
            cycles = evaluation.cycles
            if len(worst_k) < keep:
                heapq.heappush(worst_k, -cycles)
            elif cycles < -worst_k[0]:
                heapq.heapreplace(worst_k, -cycles)
        if len(worst_k) == keep:
            threshold = -worst_k[0]
        _save(complete=False)

    _save(complete=True)
    scored.sort(key=lambda item: item[0])
    return [(candidate, evaluation) for _, candidate, evaluation in scored]
