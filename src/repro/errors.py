"""Exception hierarchy for the swATOP reproduction.

Every layer of the stack raises a subclass of :class:`ReproError` so that
callers (tuners, harnesses) can distinguish "this candidate is illegal"
from genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class MachineError(ReproError):
    """Violation of a hardware constraint in the simulated SW26010."""


class SpmCapacityError(MachineError):
    """A kernel's scratch-pad plan exceeds the 64 KB per-CPE SPM."""


class MainMemoryError(MachineError):
    """Main-memory allocation or out-of-bounds access failure."""


#: deprecated alias -- the old name shadowed the builtin with a
#: trailing-underscore hack; new code should catch MainMemoryError.
MemoryError_ = MainMemoryError


class DmaError(MachineError):
    """Malformed DMA descriptor (bad stride/block/bounds/reply word)."""


class RegCommError(MachineError):
    """Illegal register-communication operation on the CPE mesh."""


class PipelineError(MachineError):
    """Malformed instruction sequence given to the pipeline scheduler."""


class DslError(ReproError):
    """Invalid DSL construction (bad axis, tensor, or schedule space)."""


class IrError(ReproError):
    """Structurally invalid IR or illegal IR mutation."""


class PassVerificationError(IrError):
    """The IR verifier found a structural invariant violated after a
    pass ran.

    ``pass_name`` names the offending pass, ``violations`` lists every
    broken invariant the verifier saw -- a pass produced IR the rest of
    the pipeline cannot trust, which is a bug in the pass (or in a
    hand-built kernel), never a prunable candidate condition.
    """

    def __init__(self, pass_name: str, violations):
        self.pass_name = pass_name
        self.violations = list(violations)
        detail = "; ".join(self.violations)
        super().__init__(
            f"IR verifier failed after pass {pass_name!r}: {detail}"
        )


class ScheduleError(ReproError):
    """A schedule strategy is invalid for the given compute seed."""


class IllegalCandidateError(ScheduleError):
    """Candidate violates a primitive legality rule or SPM capacity.

    The scheduler raises (and the enumerator catches) this to prune the
    schedule space, mirroring swATOP's validity filtering.
    """


class LoweringError(ReproError):
    """Failure while lowering a schedule strategy to IR."""


class CodegenError(ReproError):
    """Failure while emitting C code or building an executable kernel."""


class SanitizerError(MachineError, CodegenError):
    """The machine sanitizer caught an unsafe access during execution.

    Raised only when sanitizing is enabled (``REPRO_SANITIZE=1``,
    ``--sanitize`` or an explicit ``sanitize=True``); the same program
    without the sanitizer would silently corrupt simulated machine
    state.  Structured fields name the failed ``check`` (``spm-oob``,
    ``mem-oob``, ``uninit-read``, ``phase-race``, ``regcomm-deadlock``,
    ``regcomm-mismatch``), the IR ``node``, the ``buffer`` involved,
    and -- where meaningful -- the offending ``byte_range``.

    Also a :class:`CodegenError`: sanitizer failures happen while
    executing a compiled kernel, so callers that already treat
    CodegenError as "this kernel is bad" (tuner supervision, executor
    tests) keep working with the sanitizer switched on.
    """

    def __init__(
        self,
        check: str,
        message: str,
        *,
        node: str = "",
        buffer: str = "",
        byte_range=None,
    ) -> None:
        self.check = str(check)
        self.node = str(node)
        self.buffer = str(buffer)
        self.byte_range = tuple(byte_range) if byte_range is not None else None
        parts = [f"[{self.check}] {message}"]
        if self.node:
            parts.append(f"node={self.node}")
        if self.buffer:
            parts.append(f"buffer={self.buffer!r}")
        if self.byte_range is not None:
            lo, hi = self.byte_range
            parts.append(f"bytes=[{lo}, {hi})")
        super().__init__(" ".join(parts))


class ValidationError(ReproError):
    """Differential validation found the kernel's output wrong.

    The lowered kernel ran to completion but its output disagrees with
    the NumPy reference beyond the dtype-aware tolerance -- the kernel
    computes the wrong numbers and must never be served from a cache.
    """

    def __init__(
        self,
        message: str,
        *,
        op: str = "",
        tensor: str = "",
        mismatches: int = 0,
        max_abs_err: float = 0.0,
        tolerance: float = 0.0,
    ) -> None:
        self.op = str(op)
        self.tensor = str(tensor)
        self.mismatches = int(mismatches)
        self.max_abs_err = float(max_abs_err)
        self.tolerance = float(tolerance)
        parts = [message]
        if self.op:
            parts.append(f"op={self.op}")
        if self.tensor:
            parts.append(f"tensor={self.tensor!r}")
        if self.mismatches:
            parts.append(
                f"mismatches={self.mismatches} "
                f"max_abs_err={self.max_abs_err:.3g} "
                f"tol={self.tolerance:.3g}"
            )
        super().__init__(" ".join(parts))


class TuningError(ReproError):
    """Autotuner failure (e.g. empty schedule space after pruning)."""


class CalibrationError(ReproError):
    """Cost-model calibration failed (singular fit, missing samples)."""


class WorkloadError(ReproError):
    """Unknown network/layer or invalid sweep specification."""
