"""Exception hierarchy for the swATOP reproduction.

Every layer of the stack raises a subclass of :class:`ReproError` so that
callers (tuners, harnesses) can distinguish "this candidate is illegal"
from genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class MachineError(ReproError):
    """Violation of a hardware constraint in the simulated SW26010."""


class SpmCapacityError(MachineError):
    """A kernel's scratch-pad plan exceeds the 64 KB per-CPE SPM."""


class MainMemoryError(MachineError):
    """Main-memory allocation or out-of-bounds access failure."""


#: deprecated alias -- the old name shadowed the builtin with a
#: trailing-underscore hack; new code should catch MainMemoryError.
MemoryError_ = MainMemoryError


class DmaError(MachineError):
    """Malformed DMA descriptor (bad stride/block/bounds/reply word)."""


class RegCommError(MachineError):
    """Illegal register-communication operation on the CPE mesh."""


class PipelineError(MachineError):
    """Malformed instruction sequence given to the pipeline scheduler."""


class DslError(ReproError):
    """Invalid DSL construction (bad axis, tensor, or schedule space)."""


class IrError(ReproError):
    """Structurally invalid IR or illegal IR mutation."""


class PassVerificationError(IrError):
    """The IR verifier found a structural invariant violated after a
    pass ran.

    ``pass_name`` names the offending pass, ``violations`` lists every
    broken invariant the verifier saw -- a pass produced IR the rest of
    the pipeline cannot trust, which is a bug in the pass (or in a
    hand-built kernel), never a prunable candidate condition.
    """

    def __init__(self, pass_name: str, violations):
        self.pass_name = pass_name
        self.violations = list(violations)
        detail = "; ".join(self.violations)
        super().__init__(
            f"IR verifier failed after pass {pass_name!r}: {detail}"
        )


class ScheduleError(ReproError):
    """A schedule strategy is invalid for the given compute seed."""


class IllegalCandidateError(ScheduleError):
    """Candidate violates a primitive legality rule or SPM capacity.

    The scheduler raises (and the enumerator catches) this to prune the
    schedule space, mirroring swATOP's validity filtering.
    """


class LoweringError(ReproError):
    """Failure while lowering a schedule strategy to IR."""


class CodegenError(ReproError):
    """Failure while emitting C code or building an executable kernel."""


class TuningError(ReproError):
    """Autotuner failure (e.g. empty schedule space after pruning)."""


class CalibrationError(ReproError):
    """Cost-model calibration failed (singular fit, missing samples)."""


class WorkloadError(ReproError):
    """Unknown network/layer or invalid sweep specification."""
