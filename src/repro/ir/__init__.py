"""Intermediate representation of swATOP kernels (Sec. 4.4)."""

from .expr import AffineExpr, Cond
from .nodes import (
    AllocSpmNode,
    ComputeOpNode,
    DmaCgNode,
    DmaGeometry,
    DmaWaitNode,
    ForNode,
    GemmOpNode,
    IfThenElseNode,
    KernelNode,
    MatMap,
    Node,
    PrefetchNode,
    SeqNode,
    TileAccess,
    ZeroSpmNode,
)
from .printer import pretty
from .visitors import (
    count_nodes,
    find_all,
    find_unique,
    loop_nest_of,
    transform,
    walk,
)

__all__ = [
    "AffineExpr",
    "Cond",
    "Node",
    "SeqNode",
    "ForNode",
    "IfThenElseNode",
    "AllocSpmNode",
    "TileAccess",
    "DmaCgNode",
    "DmaGeometry",
    "DmaWaitNode",
    "PrefetchNode",
    "ZeroSpmNode",
    "GemmOpNode",
    "ComputeOpNode",
    "KernelNode",
    "MatMap",
    "pretty",
    "walk",
    "find_all",
    "find_unique",
    "transform",
    "count_nodes",
    "loop_nest_of",
]
