"""Affine index expressions.

swATOP's auto-prefetching relies on data accesses being affine
functions of the enclosing loop variables (Sec. 4.5.2: "data access can
be considered as a function that maps values of enclosing loop
variables onto the accessed memory address").  We make that assumption
explicit: every address/offset in the IR is an :class:`AffineExpr` --
an integer constant plus integer-weighted loop variables.  This is all
the DMA-inference and prefetch passes need, and it keeps the IR far
simpler than a general expression tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from ..errors import IrError

Number = int


@dataclass(frozen=True)
class AffineExpr:
    """``const + sum(coeff[v] * v)`` over loop variables ``v``."""

    const: int = 0
    coeffs: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # normalise: drop zero coefficients, freeze the mapping
        cleaned = {v: int(c) for v, c in self.coeffs.items() if int(c) != 0}
        object.__setattr__(self, "coeffs", _FrozenDict(cleaned))
        object.__setattr__(self, "const", int(self.const))

    # --- constructors -----------------------------------------------------
    @staticmethod
    def of(value: Union["AffineExpr", int, str]) -> "AffineExpr":
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, int):
            return AffineExpr(value)
        if isinstance(value, str):
            return AffineExpr(0, {value: 1})
        raise IrError(f"cannot build AffineExpr from {value!r}")

    @staticmethod
    def var(name: str) -> "AffineExpr":
        return AffineExpr(0, {name: 1})

    # --- algebra -----------------------------------------------------------
    def __add__(self, other: Union["AffineExpr", int, str]) -> "AffineExpr":
        other = AffineExpr.of(other)
        coeffs = dict(self.coeffs)
        for v, c in other.coeffs.items():
            coeffs[v] = coeffs.get(v, 0) + c
        return AffineExpr(self.const + other.const, coeffs)

    __radd__ = __add__

    def __sub__(self, other: Union["AffineExpr", int, str]) -> "AffineExpr":
        return self + AffineExpr.of(other) * -1

    def __mul__(self, scale: int) -> "AffineExpr":
        if not isinstance(scale, int):
            raise IrError(f"AffineExpr can only be scaled by ints, got {scale!r}")
        return AffineExpr(
            self.const * scale, {v: c * scale for v, c in self.coeffs.items()}
        )

    __rmul__ = __mul__

    # --- evaluation ---------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        total = self.const
        for v, c in self.coeffs.items():
            if v not in env:
                raise IrError(f"unbound loop variable {v!r} in {self}")
            total += c * env[v]
        return total

    def substitute(self, env: Mapping[str, Union[int, "AffineExpr"]]) -> "AffineExpr":
        """Replace some variables with values or other affine exprs."""
        out = AffineExpr(self.const)
        for v, c in self.coeffs.items():
            if v in env:
                out = out + AffineExpr.of(env[v]) * c
            else:
                out = out + AffineExpr(0, {v: c})
        return out

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def variables(self) -> frozenset:
        return frozenset(self.coeffs)

    def __str__(self) -> str:
        parts = []
        for v in sorted(self.coeffs):
            c = self.coeffs[v]
            parts.append(v if c == 1 else f"{c}*{v}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


class _FrozenDict(dict):
    """Hashable immutable dict (coefficients of a frozen AffineExpr)."""

    def __hash__(self) -> int:  # type: ignore[override]
        return hash(frozenset(self.items()))

    def __reduce__(self):
        # default dict-subclass pickling replays __setitem__, which is
        # blocked; rebuild through the constructor instead (needed to
        # ship kernels to evaluation worker processes)
        return (self.__class__, (dict(self),))

    def _blocked(self, *args, **kwargs):
        raise IrError("AffineExpr coefficients are immutable")

    __setitem__ = __delitem__ = _blocked
    pop = popitem = clear = update = setdefault = _blocked


@dataclass(frozen=True)
class Cond:
    """A comparison between an affine expression and a constant."""

    lhs: AffineExpr
    op: str  # "==", "<", ">=", "!="
    rhs: int

    _OPS = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise IrError(f"unknown comparison {self.op!r}")

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return self._OPS[self.op](self.lhs.evaluate(env), self.rhs)

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"
