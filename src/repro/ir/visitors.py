"""IR traversal and rewriting infrastructure.

Two small primitives cover every pass in the optimizer:

* :func:`walk` -- pre-order generator over all nodes;
* :func:`transform` -- post-order rebuild with a node-mapping function
  (children are rebuilt first, then the mapper sees the updated node).

Both treat the IR as immutable-ish: passes return new trees and never
mutate nodes in place, so candidates can share subtrees safely.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Type, TypeVar

from ..errors import IrError
from .nodes import Node

N = TypeVar("N", bound=Node)


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants, pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)


def find_all(node: Node, kind: Type[N]) -> List[N]:
    """All descendants (including the root) of the given node class."""
    return [n for n in walk(node) if isinstance(n, kind)]


def find_unique(node: Node, kind: Type[N]) -> N:
    found = find_all(node, kind)
    if len(found) != 1:
        raise IrError(f"expected exactly one {kind.__name__}, found {len(found)}")
    return found[0]


def transform(node: Node, fn: Callable[[Node], Optional[Node]]) -> Node:
    """Post-order rewrite.

    ``fn`` receives each node (with already-rewritten children) and
    returns a replacement, or ``None`` to keep the node.  Returning a
    different node replaces the whole subtree.
    """
    children = node.children()
    if children:
        new_children = [transform(c, fn) for c in children]
        if any(nc is not oc for nc, oc in zip(new_children, children)):
            node = node.with_children(new_children)
    replacement = fn(node)
    return node if replacement is None else replacement


def count_nodes(node: Node, kind: Optional[Type[Node]] = None) -> int:
    if kind is None:
        return sum(1 for _ in walk(node))
    return sum(1 for n in walk(node) if isinstance(n, kind))


def loop_nest_of(root: Node, target: Node) -> List["Node"]:
    """The chain of ancestor ForNodes of ``target`` (outermost first).

    Used by DMA inference to know which loop variables an access's
    offsets may legally reference, and by the prefetch pass to build
    next-iteration inference.
    """
    from .nodes import ForNode

    path: List[Node] = []

    def visit(node: Node, stack: List[Node]) -> bool:
        if node is target:
            path.extend(stack)
            return True
        if isinstance(node, ForNode):
            stack = stack + [node]
        return any(visit(c, stack) for c in node.children())

    if not visit(root, []):
        raise IrError("target node not found under root")
    return path
