"""Human-readable IR pretty printer.

Mirrors the logical IR rendering of Fig. 4: loops, conditionals, DMA
nodes with their attributes, gemm_op sites.  Used by tests (structural
assertions read far better against text), by examples, and as the
skeleton the C emitter elaborates.
"""

from __future__ import annotations

from typing import List

from .nodes import (
    AllocSpmNode,
    ComputeOpNode,
    DmaCgNode,
    DmaWaitNode,
    ForNode,
    GemmOpNode,
    IfThenElseNode,
    KernelNode,
    Node,
    PrefetchNode,
    SeqNode,
    ZeroSpmNode,
)


def pretty(node: Node) -> str:
    """Render a subtree as indented pseudo-code."""
    lines: List[str] = []
    _emit(node, lines, 0)
    return "\n".join(lines)


def _ind(depth: int) -> str:
    return "  " * depth


def _emit(node: Node, lines: List[str], depth: int) -> None:
    pad = _ind(depth)
    if isinstance(node, KernelNode):
        lines.append(f"{pad}kernel {node.name} {{")
        for name, perm in sorted(node.tensor_layouts.items()):
            lines.append(f"{_ind(depth + 1)}layout {name}: dims{perm}")
        for alloc in node.allocs:
            _emit(alloc, lines, depth + 1)
        _emit(node.body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, AllocSpmNode):
        flags = []
        if node.double_buffered:
            flags.append("double_buffered")
        if not node.distributed:
            flags.append("replicated")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"{pad}alloc_spm {node.name}: f32{list(node.shape)} "
            f"{node.matrix_layout}{suffix}"
        )
    elif isinstance(node, SeqNode):
        for child in node.body:
            _emit(child, lines, depth)
    elif isinstance(node, ForNode):
        tag = "  // pipelined (double-buffered)" if node.pipelined else ""
        lines.append(f"{pad}for {node.var} in range({node.extent}) {{{tag}")
        _emit(node.body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, IfThenElseNode):
        lines.append(f"{pad}if ({node.cond}) {{")
        _emit(node.then_body, lines, depth + 1)
        if node.else_body is not None:
            lines.append(f"{pad}}} else {{")
            _emit(node.else_body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, DmaCgNode):
        dims = ", ".join(f"[{off}:+{length}]" for off, length in node.access.dims)
        mode = "async" if node.reply else "sync"
        geo = ""
        if node.geometry is not None:
            g = node.geometry
            geo = (
                f" geom(blocks={g.n_blocks}, block={g.block_bytes}B, "
                f"stride={g.stride_bytes}B, descs={g.n_descriptors})"
            )
        arrow = "->" if node.direction == "mem_to_spm" else "<-"
        lines.append(
            f"{pad}dma_{mode} {node.access.buffer}({dims}) {arrow} "
            f"{node.spm}{geo}"
            + (f" reply={node.reply}" if node.reply else "")
        )
    elif isinstance(node, DmaWaitNode):
        lines.append(f"{pad}dma_wait {node.reply} x{node.times}")
    elif isinstance(node, PrefetchNode):
        vars_ = ", ".join(v for v, _ in node.loops)
        lines.append(f"{pad}prefetch_next over ({vars_}) {{")
        lines.append(
            f"{_ind(depth + 1)}// nested if-then-else infers the next "
            f"iteration index vector (Sec. 4.5.2)"
        )
        for dma in node.dmas:
            _emit(dma, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(node, GemmOpNode):
        acc = "+=" if node.accumulate else "="
        lines.append(
            f"{pad}gemm_op {node.c_spm} {acc} {node.a_spm} x {node.b_spm} "
            f"(M={node.m}, N={node.n}, K={node.k}, variant={node.variant.name})"
        )
    elif isinstance(node, ComputeOpNode):
        lines.append(
            f"{pad}compute_op {node.name} (cycles={node.cycles:.0f}, "
            f"flops={node.flops})"
        )
    elif isinstance(node, ZeroSpmNode):
        extent = "all" if node.elems is None else str(node.elems)
        lines.append(f"{pad}zero_spm {node.spm} [{extent}]")
    else:
        lines.append(f"{pad}<{type(node).__name__}>")
